//! Phase-A mode parity: the optimized `mstA` (frozen-level skip, fused
//! cand/dec convergecast, deterministic fragment mating) is a pure
//! message-complexity optimization — on every instance it must produce
//! **the same trees and the same cut** as the legacy protocol, because
//! both resolve MOE ties by the shared weight-then-edge-id order and
//! the MST under a total edge order is unique.
//!
//! What is asserted per drawn instance:
//!  - identical MST edge sets, tree by tree (`tree_edges`),
//!  - identical λ, cut side, tree counts, and arg-min node,
//!  - identical per-phase metrics for every *structure-independent*
//!    phase stem (election, degree census, and the value-level cut
//!    machinery `s5f`, `s5g`, `side`), plus identical rounds/messages
//!    for `s3` (its message *count* is 2m by construction, but the
//!    payloads are per-fragment Euler in-times, so its bit tally is
//!    fragment-relative).
//!
//! Fragment-*dependent* stems (`mstA` itself, but also `mstB`, `orient`,
//! `s2a`…`s5e`, `s4*`) are deliberately excluded from the ledger
//! comparison: the two modes grow *different intermediate fragment
//! decompositions* (deterministic mating hooks along different edges
//! than the shared-coin heads/tails dance), so their per-level traffic
//! differs even though the resulting tree — and everything computed
//! from it — is identical. The suite proves exactly that boundary.

use congest::PhaseMetrics;
use mincut::dist::driver::{exact_mincut, DistMinCutResult, ExactConfig};
use mincut::dist::mst::{MstAMode, MstConfig};
use mincut::seq::tree_packing::{PackingConfig, PackingSize};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random recursive tree: node `v ≥ 1` attaches to a uniform earlier
/// node. Exactly `n − 1` edges — phase A must hook every one of them.
fn random_tree(n: usize, rng: &mut StdRng) -> graphs::WeightedGraph {
    let edges: Vec<(u32, u32, u64)> = (1..n as u32).map(|v| (rng.gen_range(0..v), v, 1)).collect();
    graphs::WeightedGraph::from_edges(n, edges).expect("valid tree")
}

/// Phase stems whose traffic cannot depend on which fragment
/// decomposition phase A moved through: the election and degree census
/// run before any tree exists, and the `s5f`/`s5g`/`side` stages move
/// cut *values* over the BFS tree — both identical across modes.
const STRUCTURE_INDEPENDENT: [&str; 5] = ["leader_bfs", "init", "s5f", "s5g", "side"];

fn run(g: &graphs::WeightedGraph, mode: MstAMode, trees: usize) -> DistMinCutResult {
    let cfg = ExactConfig {
        packing: PackingConfig {
            size: PackingSize::Fixed(trees),
            max_trees: trees,
        },
        mst: MstConfig {
            mode,
            ..Default::default()
        },
        ..Default::default()
    };
    exact_mincut(g, &cfg).expect("pipeline runs")
}

fn stem_slice(r: &DistMinCutResult) -> Vec<&PhaseMetrics> {
    r.ledger
        .phases()
        .iter()
        .filter(|p| {
            let stem = p.name.split('.').next().unwrap_or(&p.name);
            STRUCTURE_INDEPENDENT.contains(&stem)
        })
        .collect()
}

fn assert_parity(tag: &str, g: &graphs::WeightedGraph, trees: usize) {
    let legacy = run(g, MstAMode::Legacy, trees);
    let opt = run(g, MstAMode::Optimized, trees);
    assert_eq!(opt.tree_edges, legacy.tree_edges, "{tag}: MST edge sets");
    assert_eq!(opt.cut.value, legacy.cut.value, "{tag}: lambda");
    assert_eq!(opt.cut.side, legacy.cut.side, "{tag}: cut side");
    assert_eq!(opt.trees_packed, legacy.trees_packed, "{tag}: trees");
    assert_eq!(
        opt.trees_to_best, legacy.trees_to_best,
        "{tag}: trees_to_best"
    );
    assert_eq!(opt.best_node, legacy.best_node, "{tag}: best_node");
    assert_eq!(
        stem_slice(&opt),
        stem_slice(&legacy),
        "{tag}: structure-independent phase metrics"
    );
    // s3's shape is graph-determined (one round, a message per directed
    // edge) even though its payload bits are fragment-relative.
    let s3 = |r: &DistMinCutResult| -> Vec<(u64, u64)> {
        r.ledger
            .phases()
            .iter()
            .filter(|p| p.name == "s3")
            .map(|p| (p.rounds, p.messages))
            .collect()
    };
    assert_eq!(s3(&opt), s3(&legacy), "{tag}: s3 rounds/messages");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random trees: phase A *is* the whole MST here — every edge must
    /// be hooked, nothing is cut (and λ = 1 on any tree).
    #[test]
    fn parity_on_random_trees(n in 8usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_tree(n, &mut rng);
        assert_parity(&format!("tree n={n} seed={seed}"), &g, 1);
    }

    /// Tori: the canonical benchmark family (vertex-transitive, every
    /// level of fragment growth exercised, freezes guaranteed once
    /// fragments reach the √n cap).
    #[test]
    fn parity_on_tori(rows in 4usize..8, cols in 4usize..8) {
        let g = graphs::generators::torus2d(rows, cols).expect("torus");
        assert_parity(&format!("torus{rows}x{cols}"), &g, 2);
    }

    /// Connected Erdős–Rényi graphs: irregular degrees, multi-edge-free
    /// but unstructured — the adversarial case for the deterministic
    /// mating rule (arbitrary fragment-id adjacencies).
    #[test]
    fn parity_on_er_graphs(n in 10usize..32, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = graphs::generators::erdos_renyi_connected(n, 0.2, &mut rng)
            .expect("connected ER graph");
        assert_parity(&format!("er n={n} seed={seed}"), &g, 2);
    }
}
