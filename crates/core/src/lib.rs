//! Distributed minimum cut in the CONGEST model.
//!
//! This crate reproduces **Nanongkai, "Brief Announcement: Almost-Tight
//! Approximation Distributed Algorithm for Minimum Cut" (PODC 2014)**:
//!
//! * an exact distributed minimum-cut algorithm running in
//!   `Õ((√n + D)·poly(λ))` CONGEST rounds, built from Thorup's greedy tree
//!   packing, a Kutten–Peleg-style `Õ(√n + D)` distributed MST, and the
//!   paper's `Õ(√n + D)` algorithm for the **minimum cut that 1-respects a
//!   tree** (Section 2, via Karger's identity `C(v↓) = δ↓(v) − 2ρ↓(v)`);
//! * a `(1+ε)`-approximation in `Õ((√n + D)/poly(ε))` rounds via Karger's
//!   skeleton sampling;
//! * sequential oracles (Stoer–Wagner, Karger–Stein, brute force, the
//!   1-respecting dynamic program, Nagamochi–Ibaraki/Matula) used for
//!   verification and baselines;
//! * distributed baselines in the spirit of Ghaffari–Kuhn (2+ε) and Su's
//!   concurrent sampling algorithm.
//!
//! # Quick start
//!
//! ```
//! use mincut::dist::driver::{exact_mincut, ExactConfig};
//!
//! # fn main() -> Result<(), mincut::MinCutError> {
//! let planted = graphs::generators::clique_pair(8, 3).expect("valid parameters");
//! let result = exact_mincut(&planted.graph, &ExactConfig::default())?;
//! assert_eq!(result.cut.value, 3);
//! println!("min cut {} found in {} CONGEST rounds", result.cut.value, result.rounds);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod error;
pub mod figure1;
pub mod reference;
pub mod seq;
pub mod verify;

pub use error::MinCutError;
