//! Nagamochi–Ibaraki sparse certificates and a Matula-style `(2+ε)`
//! minimum-cut estimator — the sequential stand-in for the approximation
//! quality of Ghaffari–Kuhn's `(2+ε)` algorithm (see DESIGN.md).
//!
//! The NI scan (maximum-adjacency order) partitions edges into forests
//! `F₁, F₂, …`; the union of the first `k` forests preserves every cut of
//! value `< k`. Matula's algorithm alternates "contract non-certificate
//! edges" with "re-read the minimum degree" to certify a value `λ̂` with
//! `λ ≤ λ̂ ≤ (2+ε)·λ`.

use crate::MinCutError;
use graphs::{EdgeId, Weight, WeightedGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes the weighted NI certificate mask for threshold `k`: edge `e` is
/// **kept** iff it intersects the first `k` scan forests (for weighted
/// graphs an edge scanned when its endpoint had accumulated connectivity
/// `r` covers forests `r+1 ..= r+w`). Cuts of value `< k` are fully
/// preserved by the kept edges.
///
/// Returns `keep[e]` per edge.
pub fn ni_certificate_mask(g: &WeightedGraph, k: Weight) -> Vec<bool> {
    let n = g.node_count();
    let mut keep = vec![false; g.edge_count()];
    if n == 0 {
        return keep;
    }
    let mut scanned = vec![false; n];
    // r[v]: total weight of already-kept... in NI scanning, r[v] is the
    // connectivity of v to the scanned set.
    let mut r: Vec<Weight> = vec![0; n];
    let mut heap: BinaryHeap<(Weight, Reverse<usize>)> = BinaryHeap::new();
    for start in 0..n {
        if scanned[start] {
            continue;
        }
        heap.push((0, Reverse(start)));
        while let Some((key, Reverse(v))) = heap.pop() {
            if scanned[v] || key != r[v] {
                continue;
            }
            scanned[v] = true;
            for a in g.neighbors(graphs::NodeId::from_index(v)) {
                let u = a.neighbor.index();
                if scanned[u] {
                    continue;
                }
                // Edge (v, u) covers forests r[u]+1 ..= r[u]+w.
                if r[u] < k {
                    keep[a.edge.index()] = true;
                }
                r[u] += a.weight;
                heap.push((r[u], Reverse(u)));
            }
        }
    }
    keep
}

/// The edges of the first-`k`-forests certificate as a subgraph.
pub fn ni_certificate(g: &WeightedGraph, k: Weight) -> WeightedGraph {
    let keep = ni_certificate_mask(g, k);
    graphs::ops::edge_subgraph(g, &keep)
}

/// Edges that are **safe to contract** at threshold `k`: edge `e = (v, u)`
/// (scanned when `u` had accumulated connectivity `r`) has a unit of weight
/// beyond the first `k` forests iff `r + w > k`, which by Nagamochi–Ibaraki
/// certifies that `u` and `v` are `k`-edge-connected. Contracting them
/// preserves every cut of value `< k`.
pub fn ni_contractible_mask(g: &WeightedGraph, k: Weight) -> Vec<bool> {
    let n = g.node_count();
    let mut contract = vec![false; g.edge_count()];
    if n == 0 {
        return contract;
    }
    let mut scanned = vec![false; n];
    let mut r: Vec<Weight> = vec![0; n];
    let mut heap: BinaryHeap<(Weight, Reverse<usize>)> = BinaryHeap::new();
    for start in 0..n {
        if scanned[start] {
            continue;
        }
        heap.push((0, Reverse(start)));
        while let Some((key, Reverse(v))) = heap.pop() {
            if scanned[v] || key != r[v] {
                continue;
            }
            scanned[v] = true;
            for a in g.neighbors(graphs::NodeId::from_index(v)) {
                let u = a.neighbor.index();
                if scanned[u] {
                    continue;
                }
                if r[u] + a.weight > k {
                    contract[a.edge.index()] = true;
                }
                r[u] += a.weight;
                heap.push((r[u], Reverse(u)));
            }
        }
    }
    contract
}

/// Matula-style `(2+ε)` estimator: returns `λ̂` with `λ ≤ λ̂ ≤ (2+ε)·λ`.
///
/// Invariants: contraction never decreases the minimum cut, so the smallest
/// minimum weighted degree seen across the contraction sequence is always
/// `≥ λ`; and contraction only happens on non-certificate edges at threshold
/// `k = ⌈λ̂/(2+ε)⌉`, which preserves all cuts `< k` — if the true minimum
/// cut is ever lost, `λ ≥ k` already certified `λ̂ ≤ (2+ε)λ`.
///
/// # Errors
///
/// [`MinCutError::TooSmall`] / [`MinCutError::Disconnected`] as usual.
pub fn matula_estimate(g: &WeightedGraph, eps: f64) -> Result<Weight, MinCutError> {
    if g.node_count() < 2 {
        return Err(MinCutError::TooSmall {
            nodes: g.node_count(),
        });
    }
    if !graphs::traversal::is_connected(g) {
        return Err(MinCutError::Disconnected);
    }
    if eps <= 0.0 {
        return Err(MinCutError::InvalidConfig {
            reason: "eps must be positive".to_string(),
        });
    }
    let mut h = g.clone();
    let mut best: Weight = h
        .min_weighted_degree()
        .expect("non-empty graph has a degree");
    loop {
        // Min degree is only a (real) cut while ≥ 2 super-nodes remain.
        if h.node_count() >= 2 {
            best = best.min(h.min_weighted_degree().unwrap_or(best));
        }
        if h.node_count() <= 2 {
            break;
        }
        let k = ((best as f64) / (2.0 + eps)).ceil().max(1.0) as Weight;
        // Contract every edge with weight beyond the first k forests: its
        // endpoints are k-connected, so cuts < k survive; every cut of the
        // contracted graph is a real cut of `g`, so `best` stays ≥ λ.
        let contract = ni_contractible_mask(&h, k);
        if !contract.iter().any(|&b| b) {
            // Stall: every unit of weight fits in the first k forests, so
            // the total weight is ≤ k(n−1) and the minimum degree is < 2k —
            // `best` is already ≤ (2+ε)λ except possibly for constant-size
            // values; an exact finish on the (tiny) remainder settles it.
            break;
        }
        let mut dsu = trees::DisjointSets::new(h.node_count());
        for (e, u, v, _) in h.edge_tuples() {
            if contract[e.index()] {
                dsu.union(u.index(), v.index());
            }
        }
        let labels: Vec<u32> = (0..h.node_count()).map(|v| dsu.find(v) as u32).collect();
        let c = graphs::ops::contract_by_labels(&h, &labels).expect("labels are well-formed");
        if c.graph.node_count() == h.node_count() {
            break; // no progress
        }
        h = c.graph;
        if h.node_count() >= 2 && h.edge_count() == 0 {
            break;
        }
    }
    // Exact finish on a constant-size remainder keeps the (2+ε) bound tight
    // in the small-λ corner cases (standard implementation practice).
    if (2..=32).contains(&h.node_count()) && graphs::traversal::is_connected(&h) {
        if let Ok(exact) = crate::seq::stoer_wagner::stoer_wagner(&h) {
            best = best.min(exact.value);
        }
    }
    Ok(best)
}

/// Returns the ids of edges kept by the certificate (helper for tests).
pub fn ni_certificate_edges(g: &WeightedGraph, k: Weight) -> Vec<EdgeId> {
    ni_certificate_mask(g, k)
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .map(|(i, _)| EdgeId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::stoer_wagner::stoer_wagner;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn certificate_preserves_small_cuts() {
        let mut rng = StdRng::seed_from_u64(19);
        for n in [10usize, 20, 30] {
            let base = generators::erdos_renyi_connected(n, 0.3, &mut rng).unwrap();
            let g = generators::randomize_weights(&base, 1, 4, &mut rng).unwrap();
            let lambda = stoer_wagner(&g).unwrap().value;
            let cert = ni_certificate(&g, lambda + 1);
            // The certificate is connected and has the same minimum cut.
            let cert_lambda = stoer_wagner(&cert).unwrap().value;
            assert_eq!(cert_lambda, lambda, "n = {n}");
        }
    }

    #[test]
    fn certificate_is_sparse() {
        // Dense graph, small threshold: certificate has ≤ k(n-1) weight-1
        // edges (unweighted case).
        let g = generators::complete(30, 1).unwrap();
        let k = 3;
        let edges = ni_certificate_edges(&g, k);
        assert!(edges.len() <= (k as usize) * 29, "{} edges", edges.len());
        // And it preserves connectivity.
        let cert = ni_certificate(&g, k);
        assert!(graphs::traversal::is_connected(&cert));
    }

    #[test]
    fn matula_is_within_factor() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in [8usize, 16, 32, 64] {
            let base = generators::erdos_renyi_connected(n, 0.25, &mut rng).unwrap();
            let g = generators::randomize_weights(&base, 1, 6, &mut rng).unwrap();
            let lambda = stoer_wagner(&g).unwrap().value;
            for eps in [0.1, 0.5, 1.0] {
                let est = matula_estimate(&g, eps).unwrap();
                assert!(est >= lambda, "estimate below λ");
                let bound = ((2.0 + eps) * lambda as f64).ceil() as u64;
                assert!(
                    est <= bound,
                    "n = {n}, eps = {eps}: est {est} > (2+ε)λ = {bound}"
                );
            }
        }
    }

    #[test]
    fn matula_on_planted_cut() {
        let p = generators::clique_pair(10, 3).unwrap();
        let est = matula_estimate(&p.graph, 0.5).unwrap();
        assert!((3..=8).contains(&est), "est = {est}");
    }

    #[test]
    fn guards() {
        let tiny = graphs::WeightedGraph::from_edges(1, []).unwrap();
        assert!(matula_estimate(&tiny, 0.5).is_err());
        let g = generators::cycle(4).unwrap();
        assert!(matula_estimate(&g, 0.0).is_err());
    }
}
