//! Karger's randomized contraction and the Karger–Stein recursive variant.
//!
//! Used as a scalable randomized oracle (Stoer–Wagner is `O(n·m)`-ish;
//! Karger–Stein repeated `O(log² n)` times finds the minimum cut with high
//! probability and is much faster on large sparse graphs).

use crate::MinCutError;
use graphs::{CutResult, Weight, WeightedGraph};
use rand::Rng;
use trees::DisjointSets;

/// Internal working form: edge list + DSU over original nodes.
#[derive(Clone)]
struct ContractState {
    /// `(u, v, w)` with `u`, `v` original node ids; self loops are purged by
    /// [`ContractState::compact`].
    edges: Vec<(u32, u32, Weight)>,
    dsu: DisjointSets,
    super_nodes: usize,
}

impl ContractState {
    fn new(g: &WeightedGraph) -> Self {
        ContractState {
            edges: g
                .edge_tuples()
                .map(|(_, u, v, w)| (u.raw(), v.raw(), w))
                .collect(),
            dsu: DisjointSets::new(g.node_count()),
            super_nodes: g.node_count(),
        }
    }

    /// Drops edges whose endpoints were merged (self loops of the
    /// contracted multigraph).
    fn compact(&mut self) {
        let dsu = &mut self.dsu;
        self.edges
            .retain(|&(u, v, _)| dsu.find(u as usize) != dsu.find(v as usize));
    }

    /// Contracts weight-proportional random edges until `target` super
    /// nodes remain.
    fn contract_to<R: Rng>(&mut self, target: usize, rng: &mut R) {
        while self.super_nodes > target {
            self.compact();
            if self.edges.is_empty() {
                return; // disconnected remainder; caller handles
            }
            let total: u128 = self.edges.iter().map(|&(_, _, w)| w as u128).sum();
            let mut r = rng.gen_range(0..total);
            let mut pick = 0;
            for (i, &(_, _, w)) in self.edges.iter().enumerate() {
                let w = w as u128;
                if r < w {
                    pick = i;
                    break;
                }
                r -= w;
            }
            let (u, v, _) = self.edges[pick];
            if self.dsu.union(u as usize, v as usize) {
                self.super_nodes -= 1;
            }
        }
        self.compact();
    }

    /// Value of the cut defined by the current super-node partition
    /// (meaningful when exactly two super nodes remain).
    fn two_way_value(&mut self) -> Weight {
        let dsu = &mut self.dsu;
        let mut total = 0;
        for &(u, v, w) in &self.edges {
            if dsu.find(u as usize) != dsu.find(v as usize) {
                total += w;
            }
        }
        total
    }

    /// Side bitmap: nodes not in node 0's super node.
    fn side(&mut self, n: usize) -> Vec<bool> {
        let r0 = self.dsu.find(0);
        (0..n).map(|v| self.dsu.find(v) != r0).collect()
    }
}

/// One run of plain Karger contraction down to two super nodes.
/// Succeeds with probability `Ω(1/n²)`; use [`karger_stein_repeated`] for
/// high-probability results.
///
/// # Errors
///
/// [`MinCutError::TooSmall`] / [`MinCutError::Disconnected`] as usual.
pub fn karger_contract<R: Rng>(g: &WeightedGraph, rng: &mut R) -> Result<CutResult, MinCutError> {
    check(g)?;
    let mut st = ContractState::new(g);
    st.contract_to(2, rng);
    let value = st.two_way_value();
    let side = st.side(g.node_count());
    Ok(CutResult { side, value })
}

/// One Karger–Stein recursive run: contract to `⌈n/√2⌉ + 1`, recurse twice,
/// keep the better result. Success probability `Ω(1/log n)`.
///
/// # Errors
///
/// [`MinCutError::TooSmall`] / [`MinCutError::Disconnected`] as usual.
pub fn karger_stein<R: Rng>(g: &WeightedGraph, rng: &mut R) -> Result<CutResult, MinCutError> {
    check(g)?;
    let mut st = ContractState::new(g);
    let mut best: Option<(Weight, Vec<bool>)> = None;
    recurse(&mut st, g.node_count(), rng, &mut best);
    let (value, side) = best.expect("recursion always yields a candidate");
    Ok(CutResult { side, value })
}

fn recurse<R: Rng>(
    st: &mut ContractState,
    n: usize,
    rng: &mut R,
    best: &mut Option<(Weight, Vec<bool>)>,
) {
    if st.super_nodes <= 6 {
        let mut leaf = st.clone();
        leaf.contract_to(2, rng);
        consider(leaf, n, best);
        return;
    }
    let target = (st.super_nodes as f64 / std::f64::consts::SQRT_2).ceil() as usize + 1;
    for _ in 0..2 {
        let mut child = st.clone();
        child.contract_to(target, rng);
        recurse(&mut child, n, rng, best);
    }
}

fn consider(mut st: ContractState, n: usize, best: &mut Option<(Weight, Vec<bool>)>) {
    let value = st.two_way_value();
    if best.as_ref().is_none_or(|(b, _)| value < *b) {
        *best = Some((value, st.side(n)));
    }
}

/// Repeats [`karger_stein`] `runs` times and returns the best cut — with
/// `runs = Θ(log² n)` the result is the true minimum with high probability.
///
/// # Errors
///
/// [`MinCutError::TooSmall`] / [`MinCutError::Disconnected`] as usual.
pub fn karger_stein_repeated<R: Rng>(
    g: &WeightedGraph,
    runs: usize,
    rng: &mut R,
) -> Result<CutResult, MinCutError> {
    check(g)?;
    let mut best: Option<CutResult> = None;
    for _ in 0..runs.max(1) {
        let r = karger_stein(g, rng)?;
        if best.as_ref().is_none_or(|b| r.value < b.value) {
            best = Some(r);
        }
    }
    Ok(best.expect("at least one run"))
}

fn check(g: &WeightedGraph) -> Result<(), MinCutError> {
    if g.node_count() < 2 {
        return Err(MinCutError::TooSmall {
            nodes: g.node_count(),
        });
    }
    if !graphs::traversal::is_connected(g) {
        return Err(MinCutError::Disconnected);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::stoer_wagner::stoer_wagner;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn repeated_ks_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [6usize, 12, 24] {
            let base = generators::erdos_renyi_connected(n, 0.4, &mut rng).unwrap();
            let g = generators::randomize_weights(&base, 1, 5, &mut rng).unwrap();
            let want = stoer_wagner(&g).unwrap().value;
            let got = karger_stein_repeated(&g, 20, &mut rng).unwrap();
            assert_eq!(got.value, want, "n = {n}");
            assert_eq!(graphs::cut::cut_of_side(&g, &got.side), got.value);
        }
    }

    #[test]
    fn single_contract_returns_valid_cut() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::clique_pair(6, 2).unwrap().graph;
        let r = karger_contract(&g, &mut rng).unwrap();
        assert!(r.is_proper());
        assert_eq!(graphs::cut::cut_of_side(&g, &r.side), r.value);
        assert!(r.value >= 2);
    }

    #[test]
    fn finds_planted_cut_with_repeats() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = generators::clique_pair(8, 2).unwrap();
        let r = karger_stein_repeated(&p.graph, 16, &mut rng).unwrap();
        assert_eq!(r.value, 2);
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let tiny = graphs::WeightedGraph::from_edges(1, []).unwrap();
        assert!(karger_stein(&tiny, &mut rng).is_err());
        let disc = graphs::WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(karger_contract(&disc, &mut rng).is_err());
    }
}
