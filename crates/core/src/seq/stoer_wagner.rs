//! Stoer–Wagner global minimum cut: exact, deterministic,
//! `O(n·(m + n log n))` with a lazy binary heap.
//!
//! This is the primary verification oracle of the workspace.

use crate::MinCutError;
use graphs::{CutResult, Weight, WeightedGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Computes the exact minimum cut with Stoer–Wagner.
///
/// # Errors
///
/// Returns [`MinCutError::TooSmall`] for graphs with fewer than two nodes
/// and [`MinCutError::Disconnected`] for disconnected graphs.
pub fn stoer_wagner(g: &WeightedGraph) -> Result<CutResult, MinCutError> {
    let n = g.node_count();
    if n < 2 {
        return Err(MinCutError::TooSmall { nodes: n });
    }
    if !graphs::traversal::is_connected(g) {
        return Err(MinCutError::Disconnected);
    }

    // Super-node adjacency as hash maps; `members` tracks original nodes.
    let mut adj: Vec<HashMap<u32, Weight>> = vec![HashMap::new(); n];
    for (_, u, v, w) in g.edge_tuples() {
        *adj[u.index()].entry(v.raw()).or_insert(0) += w;
        *adj[v.index()].entry(u.raw()).or_insert(0) += w;
    }
    let mut members: Vec<Vec<u32>> = (0..n as u32).map(|v| vec![v]).collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut alive_count = n;

    let mut best_value = Weight::MAX;
    let mut best_side: Vec<u32> = Vec::new();

    while alive_count > 1 {
        // Minimum cut phase: maximum-adjacency order from the first alive
        // node, tracking connection weights with a lazy heap.
        let start = alive.iter().position(|&a| a).expect("some node alive");
        let mut in_a: Vec<bool> = vec![false; n];
        let mut conn: Vec<Weight> = vec![0; n];
        let mut order: Vec<usize> = Vec::with_capacity(alive_count);
        let mut heap: BinaryHeap<(Weight, Reverse<usize>)> = BinaryHeap::new();
        in_a[start] = true;
        order.push(start);
        for (&u, &w) in &adj[start] {
            conn[u as usize] += w;
            heap.push((conn[u as usize], Reverse(u as usize)));
        }
        while order.len() < alive_count {
            let next = loop {
                let (w, Reverse(v)) = heap.pop().expect("connected graph has a next node");
                if !in_a[v] && alive[v] && conn[v] == w {
                    break v;
                }
            };
            in_a[next] = true;
            order.push(next);
            for (&u, &w) in &adj[next] {
                let u = u as usize;
                if !in_a[u] && alive[u] {
                    conn[u] += w;
                    heap.push((conn[u], Reverse(u)));
                }
            }
        }
        let t = *order.last().expect("order non-empty");
        let s = order[order.len() - 2];
        // Cut of the phase: members of t versus the rest.
        let phase_value = conn[t];
        if phase_value < best_value {
            best_value = phase_value;
            best_side = members[t].clone();
        }
        // Merge t into s.
        let t_adj: Vec<(u32, Weight)> = adj[t].iter().map(|(&u, &w)| (u, w)).collect();
        for (u, w) in t_adj {
            let u = u as usize;
            if u == s {
                continue;
            }
            *adj[s].entry(u as u32).or_insert(0) += w;
            let e = adj[u].entry(s as u32).or_insert(0);
            *e += w;
            adj[u].remove(&(t as u32));
        }
        adj[s].remove(&(t as u32));
        adj[t].clear();
        let moved = std::mem::take(&mut members[t]);
        members[s].extend(moved);
        alive[t] = false;
        alive_count -= 1;
    }

    let mut side = vec![false; n];
    for v in best_side {
        side[v as usize] = true;
    }
    debug_assert_eq!(graphs::cut::cut_of_side(g, &side), best_value);
    Ok(CutResult {
        side,
        value: best_value,
    })
}

/// Convenience: just the minimum cut value.
///
/// # Errors
///
/// Same as [`stoer_wagner`].
pub fn mincut_value(g: &WeightedGraph) -> Result<Weight, MinCutError> {
    Ok(stoer_wagner(g)?.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use graphs::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_instances() {
        // Cycle: min cut 2.
        let c = generators::cycle(7).unwrap();
        assert_eq!(stoer_wagner(&c).unwrap().value, 2);
        // Path: min cut 1.
        let p = generators::path(9).unwrap();
        assert_eq!(stoer_wagner(&p).unwrap().value, 1);
        // Complete K5 unit: min cut 4 (singleton).
        let k = generators::complete(5, 1).unwrap();
        assert_eq!(stoer_wagner(&k).unwrap().value, 4);
        // Hypercube dim 4: min cut 4.
        let h = generators::hypercube(4).unwrap();
        assert_eq!(stoer_wagner(&h).unwrap().value, 4);
        // Torus 4x5: 4-regular, min cut 4 (singleton).
        let t = generators::torus2d(4, 5).unwrap();
        assert_eq!(stoer_wagner(&t).unwrap().value, 4);
    }

    #[test]
    fn planted_instances() {
        let p = generators::clique_pair(7, 4).unwrap();
        let r = stoer_wagner(&p.graph).unwrap();
        assert_eq!(r.value, 4);
        assert!(r.is_proper());
        let b = generators::barbell(5, 2).unwrap();
        assert_eq!(stoer_wagner(&b.graph).unwrap().value, 1);
    }

    #[test]
    fn weighted_instance() {
        // Heavy triangle with one light vertex.
        let g =
            graphs::WeightedGraph::from_edges(4, [(0, 1, 10), (1, 2, 10), (0, 2, 10), (2, 3, 3)])
                .unwrap();
        let r = stoer_wagner(&g).unwrap();
        assert_eq!(r.value, 3);
        assert_eq!(r.smaller_side(), vec![NodeId::new(3)]);
    }

    #[test]
    fn side_is_consistent_with_value() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [4usize, 8, 20, 40] {
            let base = generators::erdos_renyi_connected(n, 0.3, &mut rng).unwrap();
            let g = generators::randomize_weights(&base, 1, 9, &mut rng).unwrap();
            let r = stoer_wagner(&g).unwrap();
            assert_eq!(graphs::cut::cut_of_side(&g, &r.side), r.value);
            assert!(r.is_proper());
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let one = graphs::WeightedGraph::from_edges(1, []).unwrap();
        assert!(matches!(
            stoer_wagner(&one),
            Err(MinCutError::TooSmall { nodes: 1 })
        ));
        let disc = graphs::WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(matches!(
            stoer_wagner(&disc),
            Err(MinCutError::Disconnected)
        ));
    }

    #[test]
    fn two_node_graph() {
        let g = graphs::WeightedGraph::from_edges(2, [(0, 1, 7)]).unwrap();
        let r = stoer_wagner(&g).unwrap();
        assert_eq!(r.value, 7);
        assert!(r.is_proper());
    }
}
