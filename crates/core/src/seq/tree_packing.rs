//! Thorup's greedy tree packing and the sequential end-to-end packing-based
//! minimum cut — the exact sequential mirror of the paper's distributed
//! algorithm.
//!
//! Greedy packing: tree `Tᵢ` is the minimum spanning tree with respect to
//! the **relative loads** induced by `T₁ … Tᵢ₋₁` (`load(e)/w(e)`, the number
//! of previous trees using `e` per unit of capacity). Thorup's theorem
//! [Tho07, Theorem 9] guarantees that after `Θ(λ⁷ log³ n)` trees, some tree
//! contains **exactly one** edge of some minimum cut — i.e. the minimum cut
//! 1-respects that tree, and Karger's dynamic program finds it.
//!
//! The theoretical packing size is astronomically conservative; the packing
//! size is therefore a policy ([`PackingSize`]), and experiment E1 measures
//! how many trees are needed in practice (typically a handful).

use crate::seq::karger_dp::{min_one_respecting, subtree_side};
use crate::MinCutError;
use graphs::{CutResult, EdgeId, NodeId, Weight, WeightedGraph};
use trees::mst::kruskal_by;
use trees::spanning::to_rooted;

/// Lexicographic MST key for packed trees: relative load first
/// (cross-multiplied to stay exact), then weight, then edge id. A strict
/// total order — the MST is unique, so the sequential and distributed
/// packings produce identical trees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadKey {
    /// Number of previous trees using this edge.
    pub load: u64,
    /// The edge's capacity (graph weight).
    pub weight: Weight,
    /// Tie-breaking edge id.
    pub edge: u32,
}

impl Ord for LoadKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.load as u128 * other.weight as u128;
        let b = other.load as u128 * self.weight as u128;
        a.cmp(&b)
            .then_with(|| self.weight.cmp(&other.weight))
            .then_with(|| self.edge.cmp(&other.edge))
    }
}

impl PartialOrd for LoadKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// How many trees to pack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PackingSize {
    /// Thorup's theoretical bound `⌈λ̂⁷ ln³ n⌉` (capped by `max_trees`;
    /// astronomically conservative, kept for completeness).
    Thorup,
    /// `⌈factor · λ̂ · ln n⌉`, re-evaluated as the upper bound `λ̂` improves
    /// (the practical default; E1 validates it).
    Heuristic {
        /// Multiplier on `λ̂ ln n`.
        factor: f64,
    },
    /// Exactly this many trees.
    Fixed(usize),
}

impl Default for PackingSize {
    fn default() -> Self {
        PackingSize::Heuristic { factor: 2.0 }
    }
}

/// Packing configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct PackingConfig {
    /// Stopping policy.
    pub size: PackingSize,
    /// Hard cap on the number of trees regardless of policy.
    pub max_trees: usize,
}

impl Default for PackingConfig {
    fn default() -> Self {
        PackingConfig {
            size: PackingSize::default(),
            max_trees: 256,
        }
    }
}

impl PackingConfig {
    /// Trees to pack given the current upper bound `λ̂` on the minimum cut.
    pub fn target_trees(&self, n: usize, lambda_hat: Weight) -> usize {
        let ln_n = (n.max(2) as f64).ln();
        let t = match self.size {
            PackingSize::Thorup => {
                let l = lambda_hat.max(1) as f64;
                (l.powi(7) * ln_n.powi(3)).ceil()
            }
            PackingSize::Heuristic { factor } => (factor * lambda_hat.max(1) as f64 * ln_n).ceil(),
            PackingSize::Fixed(k) => k as f64,
        };
        (t.max(1.0) as usize).min(self.max_trees)
    }
}

/// Result of the packing-based minimum cut.
#[derive(Clone, Debug)]
pub struct PackingResult {
    /// The best cut found (verified value).
    pub cut: CutResult,
    /// Trees actually packed.
    pub trees_packed: usize,
    /// Index (1-based) of the tree that first achieved the final value.
    pub trees_to_best: usize,
    /// The 1-respecting arg-min node of the winning tree, if the winner was
    /// a 1-respecting cut (`None` if the trivial singleton won).
    pub best_node: Option<NodeId>,
}

/// Packs `k` greedy trees and returns their edge sets.
///
/// # Errors
///
/// [`MinCutError::Disconnected`] if the graph cannot be spanned.
pub fn greedy_packing(g: &WeightedGraph, k: usize) -> Result<Vec<Vec<EdgeId>>, MinCutError> {
    let mut loads: Vec<u64> = vec![0; g.edge_count()];
    let mut trees = Vec::with_capacity(k);
    for _ in 0..k {
        let t = next_packed_tree(g, &loads)?;
        for &e in &t {
            loads[e.index()] += 1;
        }
        trees.push(t);
    }
    Ok(trees)
}

/// One greedy step: MST under the current loads.
pub(crate) fn next_packed_tree(
    g: &WeightedGraph,
    loads: &[u64],
) -> Result<Vec<EdgeId>, MinCutError> {
    let mst = kruskal_by(g, |e, w| LoadKey {
        load: loads[e.index()],
        weight: w,
        edge: e.raw(),
    });
    if !mst.is_spanning_tree(g.node_count()) {
        return Err(MinCutError::Disconnected);
    }
    Ok(mst.edges)
}

/// Sequential packing-based minimum cut: pack trees greedily, run Karger's
/// 1-respecting dynamic program on each, return the best cut seen (also
/// considering the trivial minimum-degree singleton). With enough trees
/// (Thorup) this is the exact minimum cut; the returned value is always a
/// **real, verified cut value** regardless.
///
/// # Errors
///
/// [`MinCutError::TooSmall`] / [`MinCutError::Disconnected`] as usual.
pub fn packing_mincut(
    g: &WeightedGraph,
    config: &PackingConfig,
) -> Result<PackingResult, MinCutError> {
    let n = g.node_count();
    if n < 2 {
        return Err(MinCutError::TooSmall { nodes: n });
    }
    // Seed candidate: the minimum-degree singleton.
    let (best_deg_node, best_deg) = g
        .nodes()
        .map(|v| (v, g.weighted_degree(v)))
        .min_by_key(|&(v, d)| (d, v))
        .expect("n ≥ 2");
    let mut best_value = best_deg;
    let mut best_side: Vec<bool> = {
        let mut s = vec![false; n];
        s[best_deg_node.index()] = true;
        s
    };
    let mut best_node = None;
    let mut trees_to_best = 0;

    let mut loads = vec![0u64; g.edge_count()];
    let mut packed = 0;
    while packed < config.target_trees(n, best_value) {
        let tree_edges = next_packed_tree(g, &loads)?;
        for &e in &tree_edges {
            loads[e.index()] += 1;
        }
        packed += 1;
        let tree = to_rooted(g, &tree_edges, NodeId::new(0)).expect("spanning edges form a tree");
        if let Some((value, v)) = min_one_respecting(g, &tree) {
            if value < best_value {
                best_value = value;
                best_side = subtree_side(&tree, v);
                best_node = Some(v);
                trees_to_best = packed;
            }
        }
    }
    debug_assert_eq!(graphs::cut::cut_of_side(g, &best_side), best_value);
    Ok(PackingResult {
        cut: CutResult {
            side: best_side,
            value: best_value,
        },
        trees_packed: packed,
        trees_to_best,
        best_node,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::stoer_wagner::stoer_wagner;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn load_key_order_is_relative_load() {
        // load 1 weight 2 (0.5) < load 1 weight 1 (1.0)
        let a = LoadKey {
            load: 1,
            weight: 2,
            edge: 5,
        };
        let b = LoadKey {
            load: 1,
            weight: 1,
            edge: 0,
        };
        assert!(a < b);
        // Equal ratios tie-break by weight then id.
        let c = LoadKey {
            load: 2,
            weight: 4,
            edge: 1,
        };
        assert!(a < c); // same ratio 0.5, weight 2 < 4
        let d = LoadKey {
            load: 1,
            weight: 2,
            edge: 9,
        };
        assert!(a < d); // identical ratio+weight, id 5 < 9
    }

    #[test]
    fn packing_spreads_load() {
        // On a cycle, each tree omits one edge; after k trees the loads are
        // spread nearly evenly (difference ≤ 1).
        let g = generators::cycle(6).unwrap();
        let trees = greedy_packing(&g, 6).unwrap();
        assert_eq!(trees.len(), 6);
        let mut loads = vec![0u64; g.edge_count()];
        for t in &trees {
            assert_eq!(t.len(), 5);
            for e in t {
                loads[e.index()] += 1;
            }
        }
        let (mn, mx) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
        assert!(mx - mn <= 1, "loads = {loads:?}");
    }

    #[test]
    fn exact_on_planted_cliques() {
        for (h, lambda) in [(6, 1), (6, 2), (8, 4)] {
            let p = generators::clique_pair(h, lambda).unwrap();
            let r = packing_mincut(&p.graph, &PackingConfig::default()).unwrap();
            assert_eq!(r.cut.value, lambda as u64, "h={h} λ={lambda}");
            assert_eq!(graphs::cut::cut_of_side(&p.graph, &r.cut.side), r.cut.value);
        }
    }

    #[test]
    fn exact_on_structured_families() {
        let torus = generators::torus2d(4, 4).unwrap();
        let r = packing_mincut(&torus, &PackingConfig::default()).unwrap();
        assert_eq!(r.cut.value, 4);
        let cyc = generators::cycle(12).unwrap();
        let r = packing_mincut(&cyc, &PackingConfig::default()).unwrap();
        assert_eq!(r.cut.value, 2);
        let path = generators::path(9).unwrap();
        let r = packing_mincut(&path, &PackingConfig::default()).unwrap();
        assert_eq!(r.cut.value, 1);
        // The seed candidate (minimum-degree singleton) is already optimal
        // on a path, so no packed tree improves on it.
        assert_eq!(r.trees_to_best, 0);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(101);
        let mut exact = 0;
        let total = 12;
        for i in 0..total {
            let n = 12 + (i % 3) * 8;
            let base = generators::erdos_renyi_connected(n, 0.25, &mut rng).unwrap();
            let g = generators::randomize_weights(&base, 1, 4, &mut rng).unwrap();
            let want = stoer_wagner(&g).unwrap().value;
            let got = packing_mincut(&g, &PackingConfig::default()).unwrap();
            assert!(got.cut.value >= want, "returned value below the minimum");
            if got.cut.value == want {
                exact += 1;
            }
        }
        // The heuristic packing should be exact on the great majority of
        // small instances (E1 quantifies this precisely).
        assert!(exact >= total - 1, "only {exact}/{total} exact");
    }

    #[test]
    fn fixed_and_thorup_sizes() {
        let g = generators::cycle(5).unwrap();
        let cfg = PackingConfig {
            size: PackingSize::Fixed(3),
            max_trees: 256,
        };
        let r = packing_mincut(&g, &cfg).unwrap();
        assert_eq!(r.trees_packed, 3);
        // Thorup's bound is capped by max_trees.
        let cfg = PackingConfig {
            size: PackingSize::Thorup,
            max_trees: 10,
        };
        assert_eq!(cfg.target_trees(5, 2), 10);
        let r = packing_mincut(&g, &cfg).unwrap();
        assert_eq!(r.cut.value, 2);
    }

    #[test]
    fn disconnected_is_detected() {
        let g = graphs::WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(matches!(
            packing_mincut(&g, &PackingConfig::default()),
            Err(MinCutError::Disconnected)
        ));
    }
}
