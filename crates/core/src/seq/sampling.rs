//! Skeleton sampling (Karger [Kar94], as used by the paper and by
//! [Tho07, Lemma 7]): sampling each unit of weight with probability `p`
//! scales every cut to `≈ p·C` with `(1 ± ε)` relative error w.h.p. once
//! `p·λ = Ω(log n / ε²)`. Running the exact small-λ algorithm on the
//! skeleton yields a `(1+ε)`-approximate minimum cut of the original graph.
//!
//! Shared randomness: both endpoints of an edge must sample identically
//! without communicating. We derive every coin from `splitmix64` applied to
//! `(seed, edge id)` — the standard public-coin assumption, stated in
//! DESIGN.md.

use graphs::{Weight, WeightedGraph};

/// The splitmix64 mixing function — a fast, high-quality 64-bit hash used
/// to derive shared coins.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A uniform `f64` in `[0, 1)` derived from a hash of `(seed, stream, i)`.
pub fn hash_unit(seed: u64, stream: u64, i: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(stream.wrapping_add(0x51AF_3C1D) ^ splitmix64(i)));
    // 53 random mantissa bits.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic `Binomial(n, p)` sample derived from hashed coins.
///
/// Exact Bernoulli summation for `n ≤ 4096`; Gaussian approximation with
/// continuity correction (clamped to `[0, n]`) beyond — at that size the
/// approximation error is far below the sampling noise the algorithms
/// tolerate.
pub fn binomial(n: u64, p: f64, seed: u64, stream: u64) -> u64 {
    let p = p.clamp(0.0, 1.0);
    if p == 0.0 || n == 0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if n <= 4096 {
        let mut c = 0;
        for i in 0..n {
            if hash_unit(seed, stream, i) < p {
                c += 1;
            }
        }
        c
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // Box–Muller from two hashed uniforms.
        let u1 = hash_unit(seed, stream, 0).max(f64::MIN_POSITIVE);
        let u2 = hash_unit(seed, stream, 1);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = (mean + sd * z + 0.5).floor();
        x.clamp(0.0, n as f64) as u64
    }
}

/// Builds the Karger skeleton: each edge's weight is resampled as
/// `Binomial(w, p)` with shared coins keyed by `(seed, edge id)`; edges that
/// sample to zero disappear.
///
/// Both endpoints of an edge can perform this computation locally with zero
/// communication, which is how the distributed sampler uses it.
pub fn skeleton(g: &WeightedGraph, p: f64, seed: u64) -> WeightedGraph {
    graphs::ops::reweight(g, |e, w| binomial(w, p, seed, e.raw() as u64))
}

/// The sampling probability that makes the skeleton's expected minimum cut
/// about `target` (Karger: `target = Θ(log n / ε²)` suffices for `(1 ± ε)`
/// concentration of **all** cuts).
pub fn sampling_probability(lambda_hat: Weight, target: f64) -> f64 {
    if lambda_hat == 0 {
        return 1.0;
    }
    (target / lambda_hat as f64).clamp(0.0, 1.0)
}

/// The standard target `c·ln n / ε²` for the skeleton minimum cut.
pub fn skeleton_target(n: usize, eps: f64, c: f64) -> f64 {
    c * (n.max(2) as f64).ln() / (eps * eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;

    #[test]
    fn splitmix_is_stable_and_spread() {
        // Fixed values (regression guard: shared coins must never change
        // between versions, or distributed endpoints would disagree).
        assert_eq!(splitmix64(0), 16294208416658607535);
        assert_eq!(splitmix64(1), 10451216379200822465);
        let a = hash_unit(1, 2, 3);
        let b = hash_unit(1, 2, 4);
        assert!((0.0..1.0).contains(&a));
        assert!((0.0..1.0).contains(&b));
        assert_ne!(a, b);
        // Determinism.
        assert_eq!(hash_unit(9, 9, 9), hash_unit(9, 9, 9));
    }

    #[test]
    fn binomial_edge_cases() {
        assert_eq!(binomial(10, 0.0, 1, 1), 0);
        assert_eq!(binomial(10, 1.0, 1, 1), 10);
        assert_eq!(binomial(0, 0.5, 1, 1), 0);
        let x = binomial(100, 0.3, 5, 7);
        assert!(x <= 100);
    }

    #[test]
    fn binomial_concentrates() {
        // Mean over many streams approaches n·p.
        let n = 200u64;
        let p = 0.25;
        let total: u64 = (0..200).map(|s| binomial(n, p, 42, s)).sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 50.0).abs() < 3.0, "mean = {mean}");
    }

    #[test]
    fn large_binomial_uses_gaussian_sanely() {
        let n = 1_000_000u64;
        let p = 0.5;
        let x = binomial(n, p, 3, 4);
        let mean = 500_000.0;
        let sd = (n as f64 * 0.25).sqrt();
        assert!((x as f64 - mean).abs() < 6.0 * sd);
    }

    #[test]
    fn skeleton_scales_cuts() {
        // Torus with min cut 8; skeleton at p = 1/2 should have cuts near
        // half their original values.
        let g = generators::torus2d(8, 8).unwrap();
        let s = skeleton(&g, 0.5, 99);
        assert!(s.node_count() == g.node_count());
        let ratio = s.total_weight() as f64 / g.total_weight() as f64;
        assert!((ratio - 0.5).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn skeleton_is_deterministic_per_seed() {
        let g = generators::grid2d(5, 5).unwrap();
        assert_eq!(skeleton(&g, 0.3, 7), skeleton(&g, 0.3, 7));
        // And (overwhelmingly likely) differs across seeds.
        assert_ne!(skeleton(&g, 0.3, 7), skeleton(&g, 0.3, 8));
    }

    #[test]
    fn probability_helpers() {
        assert_eq!(sampling_probability(0, 10.0), 1.0);
        assert_eq!(sampling_probability(5, 100.0), 1.0);
        let p = sampling_probability(1000, 10.0);
        assert!((p - 0.01).abs() < 1e-12);
        assert!(skeleton_target(1000, 0.5, 3.0) > 0.0);
    }
}
