//! The sequential 1-respecting minimum cut — Karger's dynamic program
//! (Lemma 5.9 of [Kar00], the paper's Lemma 2.2):
//!
//! > `C(v↓) = δ↓(v) − 2ρ↓(v)`
//!
//! where `δ(v)` is the weighted degree, `ρ(v)` is the total weight of edges
//! whose endpoints' LCA is `v`, and `x↓` sums `x` over the subtree of `v`.
//!
//! This module is the sequential oracle for the paper's Section 2 (the
//! distributed version) and also a building block of the sequential packing
//! pipeline. Two implementations are provided: the `O((n + m) log n)`
//! Euler/LCA version and an `O(n·m)` brute-force version used to test it.

use graphs::{NodeId, Weight, WeightedGraph};
use trees::lca::SparseTableLca;
use trees::subtree::{subtree_sums, SubtreeIntervals};
use trees::RootedTree;

/// Computes `C(v↓)` for **every** node `v` via Karger's identity.
/// `C(root↓) = 0` by definition (the whole vertex set is not a proper cut).
///
/// # Panics
///
/// Panics if `tree` is not a spanning tree of `g`'s node set (sizes
/// mismatch).
pub fn one_respecting_cuts(g: &WeightedGraph, tree: &RootedTree) -> Vec<Weight> {
    assert_eq!(
        g.node_count(),
        tree.len(),
        "tree must span the graph's nodes"
    );
    let n = g.node_count();
    // δ(v): weighted degrees.
    let delta: Vec<u64> = g.nodes().map(|v| g.weighted_degree(v)).collect();
    // ρ(v): sum of w(x, y) over edges with lca(x, y) = v.
    let lca = SparseTableLca::new(tree);
    let mut rho = vec![0u64; n];
    for (_, x, y, w) in g.edge_tuples() {
        let a = lca.lca(x, y);
        rho[a.index()] += w;
    }
    let delta_down = subtree_sums(tree, &delta);
    let rho_down = subtree_sums(tree, &rho);
    (0..n).map(|v| delta_down[v] - 2 * rho_down[v]).collect()
}

/// Brute-force `C(v↓)` for every node: for each `v`, scan all edges and sum
/// those with exactly one endpoint in `v`'s subtree. `O(n·m)` — test oracle.
///
/// # Panics
///
/// Panics if `tree` does not span `g`'s nodes.
pub fn one_respecting_cuts_brute(g: &WeightedGraph, tree: &RootedTree) -> Vec<Weight> {
    assert_eq!(g.node_count(), tree.len());
    let iv = SubtreeIntervals::new(tree);
    let mut out = vec![0u64; g.node_count()];
    for v in g.nodes() {
        let mut total = 0;
        for (_, x, y, w) in g.edge_tuples() {
            if iv.is_ancestor(v, x) != iv.is_ancestor(v, y) {
                total += w;
            }
        }
        out[v.index()] = total;
    }
    out
}

/// The minimum cut that 1-respects `tree`: `min_{v ≠ root} C(v↓)` and its
/// arg-min node (smallest id among ties).
///
/// Returns `None` for a single-node tree (no proper 1-respecting cut).
pub fn min_one_respecting(g: &WeightedGraph, tree: &RootedTree) -> Option<(Weight, NodeId)> {
    let cuts = one_respecting_cuts(g, tree);
    let root = tree.root();
    (0..g.node_count())
        .map(NodeId::from_index)
        .filter(|&v| v != root)
        .map(|v| (cuts[v.index()], v))
        .min()
}

/// The node set of the cut side `v↓`.
pub fn subtree_side(tree: &RootedTree, v: NodeId) -> Vec<bool> {
    let iv = SubtreeIntervals::new(tree);
    (0..tree.len())
        .map(|u| iv.is_ancestor(v, NodeId::from_index(u)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trees::spanning::{random_spanning_edges, to_rooted};

    fn random_instance(n: usize, p: f64, wmax: u64, seed: u64) -> (WeightedGraph, RootedTree) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generators::erdos_renyi_connected(n, p, &mut rng).unwrap();
        let g = generators::randomize_weights(&base, 1, wmax, &mut rng).unwrap();
        let edges = random_spanning_edges(&g, &mut rng);
        let t = to_rooted(&g, &edges, NodeId::new(0)).unwrap();
        (g, t)
    }

    #[test]
    fn karger_identity_matches_brute_force() {
        for seed in 0..6 {
            let (g, t) = random_instance(40, 0.12, 9, seed);
            let fast = one_respecting_cuts(&g, &t);
            let brute = one_respecting_cuts_brute(&g, &t);
            assert_eq!(fast, brute, "seed {seed}");
        }
    }

    #[test]
    fn root_cut_is_zero_and_sides_check_out() {
        let (g, t) = random_instance(25, 0.2, 5, 42);
        let cuts = one_respecting_cuts(&g, &t);
        assert_eq!(cuts[t.root().index()], 0);
        // Every C(v↓) matches a direct evaluation of the side bitmap.
        for v in g.nodes() {
            let side = subtree_side(&t, v);
            assert_eq!(
                graphs::cut::cut_of_side(&g, &side),
                cuts[v.index()],
                "node {v}"
            );
        }
    }

    #[test]
    fn min_one_respecting_upper_bounds_mincut() {
        let (g, t) = random_instance(30, 0.15, 4, 7);
        let (val, v) = min_one_respecting(&g, &t).expect("n > 1");
        assert_ne!(v, t.root());
        let true_min = crate::seq::stoer_wagner::stoer_wagner(&g).unwrap().value;
        assert!(val >= true_min);
    }

    #[test]
    fn path_tree_on_cycle_finds_two() {
        // Cycle with its path spanning tree: every C(v↓) = 2 (two crossing
        // cycle edges) so the 1-respecting min is exactly the min cut.
        let g = generators::cycle(8).unwrap();
        let path_edges: Vec<graphs::EdgeId> = g
            .edges()
            .filter(|e| {
                let (u, v) = g.endpoints(*e);
                v.raw() == u.raw() + 1
            })
            .collect();
        let t = to_rooted(&g, &path_edges, NodeId::new(0)).unwrap();
        let cuts = one_respecting_cuts(&g, &t);
        for &c in cuts.iter().skip(1) {
            assert_eq!(c, 2);
        }
        assert_eq!(min_one_respecting(&g, &t), Some((2, NodeId::new(1))));
    }

    #[test]
    fn star_tree_gives_singleton_cuts() {
        // K4 with a star tree rooted at 0: every non-root subtree is a
        // singleton, so C(v↓) = weighted degree of v.
        let g = generators::complete(4, 2).unwrap();
        let star_edges: Vec<graphs::EdgeId> = g
            .edges()
            .filter(|e| g.endpoints(*e).0 == NodeId::new(0))
            .collect();
        let t = to_rooted(&g, &star_edges, NodeId::new(0)).unwrap();
        let cuts = one_respecting_cuts(&g, &t);
        for v in 1..4u32 {
            assert_eq!(cuts[v as usize], g.weighted_degree(NodeId::new(v)));
        }
    }

    #[test]
    fn single_node_has_no_proper_cut() {
        let g = WeightedGraph::from_edges(1, []).unwrap();
        let t = RootedTree::from_edges(1, NodeId::new(0), &[]).unwrap();
        assert_eq!(min_one_respecting(&g, &t), None);
    }
}
