//! Exhaustive minimum cut for tiny graphs — the ground-truth oracle used to
//! validate every other algorithm on small instances.

use crate::MinCutError;
use graphs::{CutResult, Weight, WeightedGraph};

/// Maximum node count [`mincut_brute`] accepts (2^23 subsets ≈ 8M edge
/// scans per edge — still fast, beyond that it is pointless).
pub const MAX_BRUTE_NODES: usize = 24;

/// Exhaustive minimum cut: tries all `2^{n−1} − 1` proper bipartitions
/// (node 0 fixed on the `false` side by symmetry).
///
/// # Errors
///
/// Returns [`MinCutError::TooSmall`] for `n < 2`,
/// [`MinCutError::InvalidConfig`] for `n >` [`MAX_BRUTE_NODES`], and
/// [`MinCutError::Disconnected`] for disconnected graphs.
pub fn mincut_brute(g: &WeightedGraph) -> Result<CutResult, MinCutError> {
    let n = g.node_count();
    if n < 2 {
        return Err(MinCutError::TooSmall { nodes: n });
    }
    if n > MAX_BRUTE_NODES {
        return Err(MinCutError::InvalidConfig {
            reason: format!("brute force limited to {MAX_BRUTE_NODES} nodes, got {n}"),
        });
    }
    if !graphs::traversal::is_connected(g) {
        return Err(MinCutError::Disconnected);
    }
    // Precompute endpoint bit positions.
    let edges: Vec<(u32, u32, Weight)> = g
        .edge_tuples()
        .map(|(_, u, v, w)| (u.raw(), v.raw(), w))
        .collect();
    let mut best_value = Weight::MAX;
    let mut best_mask: u32 = 0;
    // Mask over nodes 1..n (node 0 always on the false side).
    let top = 1u32 << (n - 1);
    for mask in 1..top {
        let side_bit = |v: u32| -> bool { v != 0 && (mask >> (v - 1)) & 1 == 1 };
        let mut value = 0;
        for &(u, v, w) in &edges {
            if side_bit(u) != side_bit(v) {
                value += w;
                if value >= best_value {
                    break;
                }
            }
        }
        if value < best_value {
            best_value = value;
            best_mask = mask;
        }
    }
    let side: Vec<bool> = (0..n as u32)
        .map(|v| v != 0 && (best_mask >> (v - 1)) & 1 == 1)
        .collect();
    Ok(CutResult {
        side,
        value: best_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::stoer_wagner::stoer_wagner;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_stoer_wagner_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [2usize, 3, 5, 8, 12] {
            for _ in 0..4 {
                let base = generators::erdos_renyi_connected(n, 0.5, &mut rng).unwrap();
                let g = generators::randomize_weights(&base, 1, 7, &mut rng).unwrap();
                let b = mincut_brute(&g).unwrap();
                let s = stoer_wagner(&g).unwrap();
                assert_eq!(b.value, s.value, "n = {n}");
                assert_eq!(graphs::cut::cut_of_side(&g, &b.side), b.value);
            }
        }
    }

    #[test]
    fn known_values() {
        let c = generators::cycle(6).unwrap();
        assert_eq!(mincut_brute(&c).unwrap().value, 2);
        let p = generators::clique_pair(5, 2).unwrap();
        assert_eq!(mincut_brute(&p.graph).unwrap().value, 2);
    }

    #[test]
    fn guards() {
        let big = generators::cycle(30).unwrap();
        assert!(matches!(
            mincut_brute(&big),
            Err(MinCutError::InvalidConfig { .. })
        ));
        let tiny = graphs::WeightedGraph::from_edges(1, []).unwrap();
        assert!(matches!(
            mincut_brute(&tiny),
            Err(MinCutError::TooSmall { .. })
        ));
    }
}
