//! Sequential algorithms: exact oracles, the 1-respecting dynamic program,
//! tree packing, sparsification, and the Matula-style `(2+ε)` estimator.
//!
//! Everything here exists for two reasons: (1) as verification oracles for
//! the distributed pipeline, and (2) as the sequential baselines the
//! experiment suite compares against.

pub mod brute_force;
pub mod karger_dp;
pub mod karger_stein;
pub mod nagamochi_ibaraki;
pub mod sampling;
pub mod stoer_wagner;
pub mod tree_packing;
pub mod two_respect;

pub use brute_force::mincut_brute;
pub use karger_dp::{min_one_respecting, one_respecting_cuts};
pub use karger_stein::{karger_stein, karger_stein_repeated};
pub use nagamochi_ibaraki::{matula_estimate, ni_certificate_mask};
pub use sampling::{binomial, skeleton, splitmix64};
pub use stoer_wagner::stoer_wagner;
pub use tree_packing::{greedy_packing, packing_mincut, PackingConfig, PackingSize};
pub use two_respect::{min_two_respecting, packing_mincut_two_respect};
