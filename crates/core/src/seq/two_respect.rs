//! Minimum cuts that **2-respect** a spanning tree — the extension Karger
//! [Kar00] uses for full exactness (and that the paper leaves implicit by
//! quoting `poly(λ)`): if a tree packing has size `≥ λ/2`, some tree shares
//! at most **two** edges with a minimum cut, so scanning 1- and 2-respecting
//! cuts of `O(log n)` greedily packed trees finds the exact minimum with
//! high probability — no `poly(λ)` tree count needed.
//!
//! A cut 2-respecting `T` is determined by an unordered pair of tree nodes
//! `{v, w}` (cutting the edges above both):
//!
//! * `v`, `w` incomparable: the side is `v↓ ∪ w↓` and
//!   `C = C(v↓) + C(w↓) − 2·W(v↓, w↓)`;
//! * `w` a proper ancestor of `v`: the side is `w↓ ∖ v↓` and
//!   `C = C(w↓) + C(v↓) − 2·W(v↓, V∖w↓)`,
//!
//! where `W(A, B)` is the total weight between the node sets. This module
//! provides an `O(n·m + n²·depth)`-style scan (cross terms accumulated per
//! edge over ancestor pairs) plus an `O(n²·m)` brute-force check, and the
//! packing driver [`packing_mincut_two_respect`]. The sub-quadratic
//! link-cut-tree version of Karger's paper (and its distributed successor,
//! Mukhopadhyay–Nanongkai 2020) are out of scope — see DESIGN.md §6.

use crate::seq::karger_dp::one_respecting_cuts;
use crate::seq::tree_packing::next_packed_tree;
use crate::MinCutError;
use graphs::{CutResult, NodeId, Weight, WeightedGraph};
use trees::spanning::to_rooted;
use trees::subtree::SubtreeIntervals;
use trees::RootedTree;

/// The pair of subtree roots defining a 2-respecting cut. `second == None`
/// means the cut 1-respects the tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RespectingPair {
    /// The (first) subtree root.
    pub first: NodeId,
    /// The second subtree root for 2-respecting cuts.
    pub second: Option<NodeId>,
}

/// The minimum 1- or 2-respecting cut of `tree`: value and defining pair.
///
/// `O(n²)` pairs, each evaluated in `O(1)` after an `O(n·m·depth)`-ish
/// cross-term accumulation (fine at oracle scale; see module docs).
///
/// # Panics
///
/// Panics if `tree` does not span `g` or has fewer than 2 nodes.
pub fn min_two_respecting(g: &WeightedGraph, tree: &RootedTree) -> (Weight, RespectingPair) {
    let n = g.node_count();
    assert_eq!(n, tree.len(), "tree must span the graph");
    assert!(n >= 2, "need at least two nodes");
    let cuts = one_respecting_cuts(g, tree);
    let iv = SubtreeIntervals::new(tree);

    // cross[v][w] accumulation is O(n²) memory; at oracle scale (n ≤ ~1500)
    // that is the pragmatic choice. cross[v][w] = W(v↓, w↓) for
    // *incomparable* v, w; and W(v↓ , ·) pieces for ancestor pairs are
    // derived from `down[v][w] = W(v↓, {w})` aggregated upward.
    // Step 1: point-to-subtree weights via per-edge ancestor walks.
    let mut sub_to_node: Vec<Vec<Weight>> = vec![vec![0; n]; n]; // [v][y] = W(v↓, {y})
    for (_, x, y, w) in g.edge_tuples() {
        for a in tree.ancestors(x) {
            sub_to_node[a.index()][y.index()] += w;
        }
        for a in tree.ancestors(y) {
            sub_to_node[a.index()][x.index()] += w;
        }
    }
    // Step 2: aggregate the node axis bottom-up: cross[v][w] = W(v↓, w↓).
    let mut cross = sub_to_node;
    for row in cross.iter_mut().take(n) {
        for u in tree.bottom_up() {
            if let Some(p) = tree.parent(u) {
                row[p.index()] += row[u.index()];
            }
        }
    }

    let root = tree.root();
    let mut best: (Weight, RespectingPair) = {
        // Seed with the best 1-respecting cut.
        let (val, v) = (0..n)
            .map(NodeId::from_index)
            .filter(|&v| v != root)
            .map(|v| (cuts[v.index()], v))
            .min()
            .expect("n ≥ 2");
        (
            val,
            RespectingPair {
                first: v,
                second: None,
            },
        )
    };
    for v in 0..n {
        let v_id = NodeId::from_index(v);
        if v_id == root {
            continue;
        }
        for w in (v + 1)..n {
            let w_id = NodeId::from_index(w);
            if w_id == root {
                continue;
            }
            let value = if iv.is_ancestor(w_id, v_id) {
                // side = w↓ ∖ v↓, so C = C(w↓) + C(v↓) − 2·W(v↓, V∖w↓)
                // with W(v↓, V∖w↓) = C(v↓) − W(v↓, w↓∖v↓) and
                // W(v↓, w↓∖v↓) = cross[v][w] − cross[v][v] (internal edges
                // of v↓ are double-counted in cross, see its construction).
                let w_vw = cross[v][w] - internal_double(&cross, v);
                cuts[w] + cuts[v] - 2 * (cuts[v] - w_vw)
            } else if iv.is_ancestor(v_id, w_id) {
                let w_wv = cross[w][v] - internal_double(&cross, w);
                cuts[v] + cuts[w] - 2 * (cuts[w] - w_wv)
            } else {
                cuts[v] + cuts[w] - 2 * cross[v][w]
            };
            // Improper pairs (side = V, e.g. the root's only two children)
            // always evaluate to 0 and must be skipped; proper cuts of a
            // connected graph are ≥ 1.
            if value < best.0 && is_proper_pair(&iv, n, v_id, w_id) {
                best = (
                    value,
                    RespectingPair {
                        first: v_id,
                        second: Some(w_id),
                    },
                );
            }
        }
    }
    best
}

/// `W(v↓, v↓)` counted twice = `cross[v][v]` (each internal edge contributes
/// once per endpoint ancestor-walk) — helper for the ancestor-pair case.
fn internal_double(cross: &[Vec<Weight>], v: usize) -> Weight {
    cross[v][v]
}

fn is_proper_pair(iv: &SubtreeIntervals, n: usize, v: NodeId, w: NodeId) -> bool {
    let size = if iv.is_ancestor(w, v) {
        iv.subtree_size(w) - iv.subtree_size(v)
    } else if iv.is_ancestor(v, w) {
        iv.subtree_size(v) - iv.subtree_size(w)
    } else {
        iv.subtree_size(v) + iv.subtree_size(w)
    };
    size > 0 && size < n
}

/// The side bitmap of a 2-respecting pair.
pub fn pair_side(tree: &RootedTree, pair: RespectingPair) -> Vec<bool> {
    let iv = SubtreeIntervals::new(tree);
    let n = tree.len();
    match pair.second {
        None => (0..n)
            .map(|u| iv.is_ancestor(pair.first, NodeId::from_index(u)))
            .collect(),
        Some(w) => {
            let (v, w) = (pair.first, w);
            if iv.is_ancestor(w, v) {
                (0..n)
                    .map(|u| {
                        let u = NodeId::from_index(u);
                        iv.is_ancestor(w, u) && !iv.is_ancestor(v, u)
                    })
                    .collect()
            } else if iv.is_ancestor(v, w) {
                (0..n)
                    .map(|u| {
                        let u = NodeId::from_index(u);
                        iv.is_ancestor(v, u) && !iv.is_ancestor(w, u)
                    })
                    .collect()
            } else {
                (0..n)
                    .map(|u| {
                        let u = NodeId::from_index(u);
                        iv.is_ancestor(v, u) || iv.is_ancestor(w, u)
                    })
                    .collect()
            }
        }
    }
}

/// Brute-force oracle: evaluates every pair's side bitmap directly.
/// `O(n²·(n + m))` — for tests only.
pub fn min_two_respecting_brute(g: &WeightedGraph, tree: &RootedTree) -> Weight {
    let n = g.node_count();
    let root = tree.root();
    let mut best = Weight::MAX;
    for v in 0..n {
        let v_id = NodeId::from_index(v);
        if v_id == root {
            continue;
        }
        let side = pair_side(
            tree,
            RespectingPair {
                first: v_id,
                second: None,
            },
        );
        best = best.min(graphs::cut::cut_of_side(g, &side));
        for w in (v + 1)..n {
            let w_id = NodeId::from_index(w);
            if w_id == root {
                continue;
            }
            let pair = RespectingPair {
                first: v_id,
                second: Some(w_id),
            };
            let side = pair_side(tree, pair);
            let k = side.iter().filter(|&&b| b).count();
            if k == 0 || k == n {
                continue;
            }
            best = best.min(graphs::cut::cut_of_side(g, &side));
        }
    }
    best
}

/// Exact minimum cut via 2-respecting scans over a **small** greedy packing
/// (`trees = ⌈c·ln n⌉` suffices per Karger's sampling theorem; no `poly(λ)`
/// factor). Returns the verified cut.
///
/// # Errors
///
/// The usual degenerate-input errors.
pub fn packing_mincut_two_respect(
    g: &WeightedGraph,
    trees: usize,
) -> Result<CutResult, MinCutError> {
    let n = g.node_count();
    if n < 2 {
        return Err(MinCutError::TooSmall { nodes: n });
    }
    if !graphs::traversal::is_connected(g) {
        return Err(MinCutError::Disconnected);
    }
    let mut loads = vec![0u64; g.edge_count()];
    let mut best: Option<(Weight, Vec<bool>)> = None;
    for _ in 0..trees.max(1) {
        let edges = next_packed_tree(g, &loads)?;
        for &e in &edges {
            loads[e.index()] += 1;
        }
        let tree = to_rooted(g, &edges, NodeId::new(0)).expect("spanning tree");
        let (value, pair) = min_two_respecting(g, &tree);
        if best.as_ref().is_none_or(|(b, _)| value < *b) {
            best = Some((value, pair_side(&tree, pair)));
        }
    }
    let (value, side) = best.expect("at least one tree");
    debug_assert_eq!(graphs::cut::cut_of_side(g, &side), value);
    Ok(CutResult { side, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::stoer_wagner::stoer_wagner;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trees::spanning::random_spanning_edges;

    fn instance(n: usize, p: f64, wmax: u64, seed: u64) -> (WeightedGraph, RootedTree) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generators::erdos_renyi_connected(n, p, &mut rng).unwrap();
        let g = generators::randomize_weights(&base, 1, wmax, &mut rng).unwrap();
        let edges = random_spanning_edges(&g, &mut rng);
        let t = to_rooted(&g, &edges, NodeId::new(0)).unwrap();
        (g, t)
    }

    #[test]
    fn algebraic_scan_matches_brute_force() {
        for seed in 0..6 {
            let (g, t) = instance(18, 0.3, 5, seed);
            let (fast, pair) = min_two_respecting(&g, &t);
            let brute = min_two_respecting_brute(&g, &t);
            assert_eq!(fast, brute, "seed {seed}");
            // The reported pair's side evaluates to the reported value.
            let side = pair_side(&t, pair);
            assert_eq!(graphs::cut::cut_of_side(&g, &side), fast);
        }
    }

    #[test]
    fn two_respecting_never_worse_than_one_respecting() {
        for seed in 10..16 {
            let (g, t) = instance(24, 0.25, 4, seed);
            let (two, _) = min_two_respecting(&g, &t);
            let (one, _) = crate::seq::karger_dp::min_one_respecting(&g, &t).unwrap();
            assert!(two <= one);
        }
    }

    #[test]
    fn small_packing_is_exact() {
        // O(log n) trees suffice — the whole point of 2-respecting.
        let mut rng = StdRng::seed_from_u64(21);
        for n in [14usize, 22, 30] {
            let base = generators::erdos_renyi_connected(n, 0.3, &mut rng).unwrap();
            let g = generators::randomize_weights(&base, 1, 6, &mut rng).unwrap();
            let want = stoer_wagner(&g).unwrap().value;
            let trees = (2.0 * (n as f64).ln()).ceil() as usize;
            let got = packing_mincut_two_respect(&g, trees).unwrap();
            assert_eq!(got.value, want, "n = {n}");
        }
    }

    #[test]
    fn exact_on_high_lambda_with_few_trees() {
        // λ = 8 planted: the 1-respecting heuristic would pack ~60 trees;
        // 2-respecting needs ⌈2 ln n⌉ ≈ 8.
        let p = generators::clique_pair(12, 8).unwrap();
        let got = packing_mincut_two_respect(&p.graph, 8).unwrap();
        assert_eq!(got.value, 8);
    }

    #[test]
    fn cycle_pairs() {
        // On a cycle with its path tree, the best 2-respecting cut is any
        // pair of tree edges: value 2 matches λ.
        let g = generators::cycle(10).unwrap();
        let path_edges: Vec<graphs::EdgeId> = g
            .edges()
            .filter(|e| {
                let (u, v) = g.endpoints(*e);
                v.raw() == u.raw() + 1
            })
            .collect();
        let t = to_rooted(&g, &path_edges, NodeId::new(0)).unwrap();
        let (val, _) = min_two_respecting(&g, &t);
        assert_eq!(val, 2);
    }

    #[test]
    fn degenerate_inputs() {
        let tiny = WeightedGraph::from_edges(1, []).unwrap();
        assert!(packing_mincut_two_respect(&tiny, 3).is_err());
        let disc = WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(packing_mincut_two_respect(&disc, 3).is_err());
    }
}
