//! Sequential mirrors of every structure the distributed algorithm builds —
//! fragments, the fragment tree `T_F`, ancestor sets `A(v)`, descendant
//! fragment sets `F(v)`, merging nodes, `T'_F`, and the `δ↓`/`ρ↓`
//! aggregates. These are the test oracles for Steps 1–5 of the paper.
//!
//! Definitions (paper, Section 2):
//!
//! * fragments `F₁ … F_k`: vertex-disjoint connected subtrees covering `T`;
//!   the **fragment root** `rᵢ` is the node of `Fᵢ` closest to `T`'s root;
//! * `T_F`: the tree obtained by contracting fragments;
//! * `F(v)`: the fragments fully contained in `v↓` — equivalently the
//!   fragments whose root lies in `v↓`;
//! * `A(v)`: `v` plus `v`'s ancestors lying in `v`'s own fragment or its
//!   parent fragment (`|A(v)| = O(√n)` by the diameter bound);
//! * merging node: a node with two distinct children `x`, `y` such that both
//!   `x↓` and `y↓` contain fragments;
//! * `T'_F`: the tree on fragment roots ∪ merging nodes, with parent = the
//!   lowest proper ancestor that is itself in `T'_F`.

use graphs::{NodeId, Weight, WeightedGraph};
use std::collections::HashMap;
use trees::decompose::Fragments;
use trees::lca::SparseTableLca;
use trees::subtree::{subtree_sums, SubtreeIntervals};
use trees::RootedTree;

/// All fragment-level structures of one (tree, fragmentation) pair.
#[derive(Clone, Debug)]
pub struct ReferenceStructure {
    /// The rooted spanning tree `T`.
    pub tree: RootedTree,
    /// `frag_of[v]` — fragment index of `v`.
    pub frag_of: Vec<u32>,
    /// Fragment roots, indexed by fragment.
    pub frag_roots: Vec<NodeId>,
    /// Parent fragment in `T_F` (`None` for the root fragment).
    pub tf_parent: Vec<Option<u32>>,
    /// `F(v)`: sorted fragment indices fully contained in `v↓`.
    pub f_sets: Vec<Vec<u32>>,
    /// `A(v)`: `v` followed by its ancestors in own/parent fragment,
    /// in walking order (v first).
    pub a_sets: Vec<Vec<NodeId>>,
    /// Merging-node indicator.
    pub merging: Vec<bool>,
    /// Parent in `T'_F` for every `T'_F` node (fragment roots and merging
    /// nodes); `None` for the global root.
    pub tprime_parent: HashMap<NodeId, Option<NodeId>>,
    /// `δ↓(v)` per node.
    pub delta_down: Vec<Weight>,
    /// `ρ↓(v)` per node.
    pub rho_down: Vec<Weight>,
    /// `C(v↓)` per node (`δ↓ − 2ρ↓`).
    pub cuts: Vec<Weight>,
}

impl ReferenceStructure {
    /// Builds every structure for graph `g`, spanning tree `tree`, and the
    /// given fragment decomposition.
    ///
    /// # Panics
    ///
    /// Panics if the fragmentation is inconsistent with the tree (labels
    /// out of range, fragments not connected, wrong root).
    pub fn new(g: &WeightedGraph, tree: RootedTree, fragments: &Fragments) -> Self {
        let n = tree.len();
        assert_eq!(g.node_count(), n, "graph and tree sizes must match");
        assert_eq!(fragments.label.len(), n, "one fragment label per node");
        let frag_of = fragments.label.clone();
        let _k = fragments.count;
        let frag_roots = fragments.root_of.clone();
        // Validate roots: a fragment root's parent (if any) is in another
        // fragment; every non-root node's parent in the same fragment chain
        // reaches the root.
        for (i, &r) in frag_roots.iter().enumerate() {
            assert_eq!(frag_of[r.index()] as usize, i, "root label mismatch");
            if let Some(p) = tree.parent(r) {
                assert_ne!(
                    frag_of[p.index()] as usize,
                    i,
                    "fragment root's parent must lie outside the fragment"
                );
            }
        }

        // T_F parents.
        let tf_parent: Vec<Option<u32>> = frag_roots
            .iter()
            .map(|&r| tree.parent(r).map(|p| frag_of[p.index()]))
            .collect();

        // F(v): fragments whose root lies in v↓.
        let iv = SubtreeIntervals::new(&tree);
        let mut f_sets: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, set) in f_sets.iter_mut().enumerate() {
            let v_id = NodeId::from_index(v);
            for (fi, &r) in frag_roots.iter().enumerate() {
                if iv.is_ancestor(v_id, r) {
                    set.push(fi as u32);
                }
            }
        }

        // A(v): v plus ancestors in own or parent fragment.
        let mut a_sets: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        for v in 0..n {
            let v_id = NodeId::from_index(v);
            let own = frag_of[v];
            let parent_frag = tf_parent[own as usize];
            let mut list = Vec::new();
            for a in tree.ancestors(v_id) {
                let fa = frag_of[a.index()];
                if fa == own || Some(fa) == parent_frag {
                    list.push(a);
                } else {
                    break;
                }
            }
            a_sets.push(list);
        }

        // Merging nodes.
        let mut merging = vec![false; n];
        for (v, flag) in merging.iter_mut().enumerate() {
            let v_id = NodeId::from_index(v);
            let children_with_frags = tree
                .children(v_id)
                .iter()
                .filter(|c| !f_sets[c.index()].is_empty())
                .count();
            *flag = children_with_frags >= 2;
        }

        // T'_F: fragment roots ∪ merging nodes; parent = lowest proper
        // ancestor in T'_F.
        let mut in_tprime = vec![false; n];
        for &r in &frag_roots {
            in_tprime[r.index()] = true;
        }
        for v in 0..n {
            if merging[v] {
                in_tprime[v] = true;
            }
        }
        let mut tprime_parent = HashMap::new();
        for v in 0..n {
            if !in_tprime[v] {
                continue;
            }
            let v_id = NodeId::from_index(v);
            let mut anc = tree.parent(v_id);
            while let Some(a) = anc {
                if in_tprime[a.index()] {
                    break;
                }
                anc = tree.parent(a);
            }
            tprime_parent.insert(v_id, anc);
        }

        // δ↓, ρ↓, cuts.
        let delta: Vec<u64> = g.nodes().map(|v| g.weighted_degree(v)).collect();
        let lca = SparseTableLca::new(&tree);
        let mut rho = vec![0u64; n];
        for (_, x, y, w) in g.edge_tuples() {
            rho[lca.lca(x, y).index()] += w;
        }
        let delta_down = subtree_sums(&tree, &delta);
        let rho_down = subtree_sums(&tree, &rho);
        let cuts = (0..n).map(|v| delta_down[v] - 2 * rho_down[v]).collect();

        ReferenceStructure {
            tree,
            frag_of,
            frag_roots,
            tf_parent,
            f_sets,
            a_sets,
            merging,
            tprime_parent,
            delta_down,
            rho_down,
            cuts,
        }
    }

    /// Fragment count.
    pub fn fragment_count(&self) -> usize {
        self.frag_roots.len()
    }

    /// `δ(Fᵢ)` for every fragment: sum of weighted degrees of its members.
    pub fn fragment_degree_sums(&self, g: &WeightedGraph) -> Vec<Weight> {
        let mut out = vec![0; self.fragment_count()];
        for v in g.nodes() {
            out[self.frag_of[v.index()] as usize] += g.weighted_degree(v);
        }
        out
    }

    /// The nodes of `T'_F`, sorted.
    pub fn tprime_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.tprime_parent.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trees::decompose::decompose;
    use trees::spanning::{random_spanning_edges, to_rooted};

    fn build(n: usize, p: f64, s: usize, seed: u64) -> (WeightedGraph, ReferenceStructure) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, p, &mut rng).unwrap();
        let edges = random_spanning_edges(&g, &mut rng);
        let tree = to_rooted(&g, &edges, NodeId::new(0)).unwrap();
        let frags = decompose(&tree, s);
        let r = ReferenceStructure::new(&g, tree, &frags);
        (g, r)
    }

    #[test]
    fn f_sets_contain_own_fragment_at_roots() {
        let (_, r) = build(60, 0.08, 8, 3);
        for (fi, &root) in r.frag_roots.iter().enumerate() {
            assert!(
                r.f_sets[root.index()].contains(&(fi as u32)),
                "fragment {fi} not in F(root)"
            );
        }
        // Global root sees every fragment.
        assert_eq!(r.f_sets[r.tree.root().index()].len(), r.fragment_count());
    }

    #[test]
    fn a_sets_start_at_v_and_walk_upward_within_two_fragments() {
        let (_, r) = build(60, 0.08, 8, 4);
        for v in 0..60 {
            let a = &r.a_sets[v];
            assert_eq!(a[0], NodeId::from_index(v));
            let own = r.frag_of[v];
            let pf = r.tf_parent[own as usize];
            for x in a {
                let fx = r.frag_of[x.index()];
                assert!(fx == own || Some(fx) == pf);
            }
            // Consecutive entries are parent links.
            for w in a.windows(2) {
                assert_eq!(r.tree.parent(w[0]), Some(w[1]));
            }
        }
    }

    #[test]
    fn tf_is_a_tree_on_fragments() {
        let (_, r) = build(80, 0.06, 9, 5);
        let k = r.fragment_count();
        let root_frags: Vec<usize> = (0..k).filter(|&f| r.tf_parent[f].is_none()).collect();
        assert_eq!(root_frags.len(), 1);
        assert_eq!(r.frag_roots[root_frags[0]], r.tree.root());
        // Walking tf_parent terminates (no cycles).
        for f in 0..k {
            let mut cur = Some(f as u32);
            let mut steps = 0;
            while let Some(c) = cur {
                cur = r.tf_parent[c as usize];
                steps += 1;
                assert!(steps <= k, "cycle in T_F");
            }
        }
    }

    #[test]
    fn merging_nodes_have_two_fragmentful_children() {
        let (_, r) = build(100, 0.05, 10, 6);
        for v in 0..100 {
            if r.merging[v] {
                let v_id = NodeId::from_index(v);
                let c = r
                    .tree
                    .children(v_id)
                    .iter()
                    .filter(|c| !r.f_sets[c.index()].is_empty())
                    .count();
                assert!(c >= 2);
            }
        }
    }

    #[test]
    fn tprime_contains_roots_and_merging_nodes_with_valid_parents() {
        let (_, r) = build(100, 0.05, 10, 7);
        let nodes = r.tprime_nodes();
        for &root in &r.frag_roots {
            assert!(nodes.contains(&root));
        }
        // Parent of every T'_F node is a proper ancestor in T'_F.
        let iv = SubtreeIntervals::new(&r.tree);
        for (&v, &p) in &r.tprime_parent {
            if let Some(p) = p {
                assert!(iv.is_ancestor(p, v) && p != v);
                assert!(r.tprime_parent.contains_key(&p));
            } else {
                assert_eq!(v, r.tree.root());
            }
        }
    }

    #[test]
    fn cuts_match_karger_dp() {
        let (g, r) = build(70, 0.07, 8, 8);
        let cuts = crate::seq::karger_dp::one_respecting_cuts(&g, &r.tree);
        assert_eq!(cuts, r.cuts);
    }

    #[test]
    fn fragment_degree_sums_total_is_twice_weight() {
        let (g, r) = build(50, 0.1, 7, 9);
        let sums = r.fragment_degree_sums(&g);
        assert_eq!(sums.iter().sum::<u64>(), 2 * g.total_weight());
    }
}
