//! Independent verification helpers: re-evaluate cuts, check invariants.

use crate::MinCutError;
use graphs::{CutResult, Weight, WeightedGraph};

/// Re-evaluates `cut.side` against `g` and checks the recorded value and
/// properness.
///
/// # Errors
///
/// Returns [`MinCutError::InvalidConfig`] describing the first violated
/// invariant.
pub fn check_cut(g: &WeightedGraph, cut: &CutResult) -> Result<(), MinCutError> {
    if cut.side.len() != g.node_count() {
        return Err(MinCutError::InvalidConfig {
            reason: format!(
                "side bitmap has {} entries for {} nodes",
                cut.side.len(),
                g.node_count()
            ),
        });
    }
    if !cut.is_proper() {
        return Err(MinCutError::InvalidConfig {
            reason: "cut is not proper (one side is empty)".to_string(),
        });
    }
    let actual = graphs::cut::cut_of_side(g, &cut.side);
    if actual != cut.value {
        return Err(MinCutError::InvalidConfig {
            reason: format!(
                "recorded value {} but side evaluates to {actual}",
                cut.value
            ),
        });
    }
    Ok(())
}

/// Checks an approximation claim: `cut` must be a valid cut with
/// `optimum ≤ cut.value ≤ (1+eps)·optimum`.
///
/// # Errors
///
/// [`MinCutError::InvalidConfig`] when the claim fails.
pub fn check_approximation(
    g: &WeightedGraph,
    cut: &CutResult,
    optimum: Weight,
    eps: f64,
) -> Result<(), MinCutError> {
    check_cut(g, cut)?;
    if cut.value < optimum {
        return Err(MinCutError::InvalidConfig {
            reason: format!("cut value {} below the optimum {optimum}", cut.value),
        });
    }
    let bound = (optimum as f64) * (1.0 + eps);
    if cut.value as f64 > bound + 1e-9 {
        return Err(MinCutError::InvalidConfig {
            reason: format!(
                "cut value {} exceeds (1+{eps})·{optimum} = {bound:.3}",
                cut.value
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;

    #[test]
    fn accepts_valid_cut() {
        let p = generators::clique_pair(5, 2).unwrap();
        let cut = CutResult {
            side: p.side.clone(),
            value: 2,
        };
        assert!(check_cut(&p.graph, &cut).is_ok());
        assert!(check_approximation(&p.graph, &cut, 2, 0.0).is_ok());
    }

    #[test]
    fn rejects_wrong_value() {
        let p = generators::clique_pair(5, 2).unwrap();
        let cut = CutResult {
            side: p.side.clone(),
            value: 3,
        };
        assert!(check_cut(&p.graph, &cut).is_err());
    }

    #[test]
    fn rejects_improper() {
        let g = generators::cycle(4).unwrap();
        let cut = CutResult {
            side: vec![false; 4],
            value: 0,
        };
        assert!(check_cut(&g, &cut).is_err());
    }

    #[test]
    fn approximation_bounds() {
        let g = generators::cycle(6).unwrap();
        let mut side = vec![false; 6];
        side[0] = true; // singleton: value 2 = optimum
        let cut = CutResult { side, value: 2 };
        assert!(check_approximation(&g, &cut, 2, 0.0).is_ok());
        assert!(check_approximation(&g, &cut, 1, 0.5).is_err()); // 2 > 1.5
        assert!(check_approximation(&g, &cut, 3, 0.5).is_err()); // below optimum
    }
}
