//! Distributed baselines the paper improves upon.
//!
//! * [`gk_baseline`] — in the spirit of **Ghaffari–Kuhn** (the `(2+ε)`
//!   quality class): a cheap run over the original graph with a small
//!   fixed tree budget (`⌈ln n⌉ + 1` trees instead of the exact
//!   algorithm's `Θ(λ log n)`), always considering the minimum-degree
//!   singleton. Fewer trees mean fewer rounds but no exactness
//!   guarantee — the quality/round trade-off experiment E4/E9 measures.
//! * [`su_baseline`] — in the spirit of **Su's concurrent sampling**
//!   (arXiv:1408.0557 lineage): one skeleton sampled at the `(2+ε)`-style
//!   rate, a fixed tree budget on the skeleton, candidates evaluated on
//!   the original weights. Sampling loses exactness by design (as the
//!   paper notes about sampling-based approaches) while staying sound.
//!
//! Both baselines return true, verified cuts of the input graph and run
//! entirely through the CONGEST simulator, so their round counts are
//! comparable with the exact pipeline's.

use crate::dist::driver::{run_pipeline, PipelineOpts};
use crate::dist::mst::MstConfig;
use crate::dist::packing::PackingTarget;
use crate::seq::sampling::{sampling_probability, skeleton_target};
use crate::MinCutError;
use congest::primitives::leader_bfs::Election;
use congest::{MetricsLedger, NetworkConfig};
use graphs::{CutResult, WeightedGraph};

/// Shared configuration of the baselines.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Quality slack of the baseline's sampling rate.
    pub eps: f64,
    /// CONGEST model parameters, including which round executor drives
    /// the phases (`network.executor`) — results are executor-independent.
    pub network: NetworkConfig,
    /// Distributed MST stage knobs.
    pub mst: MstConfig,
    /// Shared-coin seed (Su-style sampling).
    pub seed: u64,
    /// Packed trees per run (`None`: `⌈ln n⌉ + 1`).
    pub trees: Option<usize>,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            eps: 0.5,
            network: NetworkConfig::default(),
            mst: MstConfig::default(),
            seed: 0x4241_5345,
            trees: None,
        }
    }
}

impl BaselineConfig {
    fn tree_budget(&self, n: usize) -> usize {
        self.trees
            .unwrap_or_else(|| (n.max(2) as f64).ln().ceil() as usize + 1)
    }
}

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// The cut found (a true, verified cut of the input graph).
    pub cut: CutResult,
    /// Total CONGEST rounds.
    pub rounds: u64,
    /// Total messages.
    pub messages: u64,
    /// Per-phase metrics.
    pub ledger: MetricsLedger,
}

fn run_baseline(g: &WeightedGraph, opts: &PipelineOpts) -> Result<BaselineResult, MinCutError> {
    let outcome = run_pipeline(g, opts)?;
    Ok(BaselineResult {
        cut: outcome.cut,
        rounds: outcome.rounds,
        messages: outcome.messages,
        ledger: outcome.ledger,
    })
}

/// The Ghaffari–Kuhn-style `(2+ε)`-class baseline: a fixed small tree
/// budget on the original graph.
///
/// # Errors
///
/// Same as [`crate::dist::driver::exact_mincut`].
pub fn gk_baseline(
    g: &WeightedGraph,
    config: &BaselineConfig,
) -> Result<BaselineResult, MinCutError> {
    run_baseline(
        g,
        &PipelineOpts {
            network: config.network.clone(),
            mst: config.mst.clone(),
            target: PackingTarget::Fixed(config.tree_budget(g.node_count())),
            sample: None,
            election: Election::default(),
        },
    )
}

/// The Su-style concurrent-sampling baseline: one skeleton at the
/// `(2+ε)`-style rate, fixed tree budget, evaluated on original weights.
/// Falls back to the unsampled graph when the skeleton disconnects.
///
/// # Errors
///
/// Same as [`crate::dist::driver::exact_mincut`].
pub fn su_baseline(
    g: &WeightedGraph,
    config: &BaselineConfig,
) -> Result<BaselineResult, MinCutError> {
    let n = g.node_count();
    if n < 2 {
        return Err(MinCutError::TooSmall { nodes: n });
    }
    let lambda_hat = g.min_weighted_degree().expect("n ≥ 2").max(1);
    let p = sampling_probability(lambda_hat, skeleton_target(n, config.eps, 2.0));
    let opts = PipelineOpts {
        network: config.network.clone(),
        mst: config.mst.clone(),
        target: PackingTarget::Fixed(config.tree_budget(n)),
        sample: (p < 1.0).then_some((p, config.seed)),
        election: Election::default(),
    };
    match run_baseline(g, &opts) {
        Err(MinCutError::Disconnected) if opts.sample.is_some() => run_baseline(
            g,
            &PipelineOpts {
                sample: None,
                ..opts
            },
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::stoer_wagner;
    use crate::verify::check_cut;
    use graphs::generators;

    #[test]
    fn baselines_return_sound_cuts() {
        let p = generators::clique_pair(7, 2).unwrap();
        let opt = stoer_wagner(&p.graph).unwrap().value;
        for r in [
            gk_baseline(&p.graph, &BaselineConfig::default()).unwrap(),
            su_baseline(&p.graph, &BaselineConfig::default()).unwrap(),
        ] {
            check_cut(&p.graph, &r.cut).unwrap();
            assert!(r.cut.value >= opt);
            assert!(r.rounds > 0);
        }
    }

    #[test]
    fn gk_budget_is_smaller_than_exact_default() {
        // The point of the baseline: fewer trees, fewer rounds.
        let g = generators::torus2d(5, 5).unwrap();
        let gk = gk_baseline(&g, &BaselineConfig::default()).unwrap();
        let exact =
            crate::dist::driver::exact_mincut(&g, &crate::dist::driver::ExactConfig::default())
                .unwrap();
        assert!(gk.rounds < exact.rounds);
        assert!(gk.cut.value >= exact.cut.value);
    }
}
