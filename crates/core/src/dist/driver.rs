//! The public entry point of the distributed pipeline:
//! [`exact_mincut`] and its configuration/result types, plus the
//! internal phase orchestration shared with [`crate::dist::approx`] and
//! [`crate::dist::baselines`].
//!
//! The driver mirrors the sequential packing loop of
//! [`crate::seq::tree_packing::packing_mincut`] exactly — same seed
//! candidate (the minimum-weighted-degree singleton), same greedy trees
//! (the relative-load MST is unique), same per-tree argmin, same
//! stopping rule — so the distributed and sequential pipelines agree
//! bit for bit, which the unit tests assert.
//!
//! Between phases the driver performs only **per-node-local**
//! bookkeeping on each node's [`NodeMem`] (the engine's documented
//! "persistent local memory" convention) and loop-termination decisions
//! that a real deployment would obtain from an `O(D)` convergecast.

use crate::dist::mst::{
    ACand, BorCand, CandAgg, CandDec, CdInput, CompMsg, DecMsg, FragHook, FragHook2, FragMsg,
    HookInput, HookInput2, HookRole, MergeItem, MstAMode, MstConfig, OptAgg, OptCand, ReportItem,
};
use crate::dist::one_respect::{
    AttItem, FragReroot, IntervalDown, IntervalInput, Intervals, NbMsg, PairItem, RerootInput,
    SideFlood, SideInput, SideMsg, SizesUp, SumItem, TfRec, Token, TokensInput, TokensUp, TotItem,
};
use crate::dist::packing::{better, Cand, PackingTarget};
use crate::seq::tree_packing::PackingConfig;
use crate::MinCutError;
use congest::primitives::convergecast::{Convergecast, MinPair, SumU64};
use congest::primitives::leader_bfs::{Election, LeaderBfs};
use congest::primitives::subtree::SubtreeSums;
use congest::primitives::{
    Broadcast, BroadcastItems, DeltaExchange, GroupedBest, GroupedSum, NeighborExchange,
    PortDeltaExchange, UpcastItems,
};
use congest::{ExecutorKind, MetricsLedger, Network, NetworkConfig, Port, TreeInfo};
use graphs::{CutResult, NodeId, WeightedGraph};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of [`exact_mincut`]: the network model, the packing
/// policy, and the MST stage knobs.
#[derive(Clone, Debug, Default)]
pub struct ExactConfig {
    /// CONGEST model parameters (bandwidth `β`, strictness, round cap,
    /// and which round executor drives the phases — `network.executor`
    /// selects serial or deterministic-parallel execution; the result is
    /// executor-independent, see `tests/executor_parity.rs`).
    pub network: NetworkConfig,
    /// Greedy tree packing policy (how many trees, mirroring the
    /// sequential packing).
    pub packing: PackingConfig,
    /// Distributed MST stage knobs (fragment cap, coin seed).
    pub mst: MstConfig,
    /// Which leader-election protocol opens the pipeline. The staged
    /// election (default) and the legacy flood produce bit-identical
    /// leaders, BFS trees, and downstream cuts (election parity suite);
    /// the staged one moves an order of magnitude fewer messages.
    pub election: Election,
}

impl ExactConfig {
    /// This config with the given round executor on its network.
    pub fn with_executor(self, executor: ExecutorKind) -> Self {
        ExactConfig {
            network: self.network.with_executor(executor),
            ..self
        }
    }

    /// This config driven over a lossy asynchronous network: the
    /// fault-injecting executor (`congest::sim`) under `plan`. The cut,
    /// side, trees, and arg-min are bit-identical to the serial run
    /// (`tests/sim_parity.rs`); the ledger's `sim` counters report what
    /// the α-synchronizer paid for that.
    pub fn with_fault_plan(self, plan: congest::sim::FaultPlan) -> Self {
        ExactConfig {
            network: self.network.with_fault_plan(plan),
            ..self
        }
    }

    /// This config with an observability sink attached to its network.
    /// Every network the pipeline spawns clones the config, so the one
    /// sink sees the whole session (see `congest::obs`).
    pub fn with_obs(self, handle: congest::ObsHandle) -> Self {
        ExactConfig {
            network: self.network.with_obs(handle),
            ..self
        }
    }
}

/// Result of a distributed minimum-cut run.
#[derive(Clone, Debug)]
pub struct DistMinCutResult {
    /// The best (minimum) cut found, with its verified value.
    pub cut: CutResult,
    /// Total CONGEST rounds across all phases — the headline cost.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Greedy trees packed.
    pub trees_packed: usize,
    /// 1-based index of the tree that first achieved the final value
    /// (0 when the minimum-degree singleton was never beaten).
    pub trees_to_best: usize,
    /// The arg-min node of the winning 1-respecting cut (`None` when the
    /// singleton won).
    pub best_node: Option<NodeId>,
    /// Per-phase metrics of the whole run.
    pub ledger: MetricsLedger,
    /// Edge ids of every packed tree, sorted — one entry per tree, in
    /// packing order. The mode-independent object the phase-A parity
    /// suites compare: `MstAMode::Legacy` and `::Optimized` must
    /// produce identical sets (the MST is unique under the
    /// weight-then-edge-id tie-break both modes share).
    pub tree_edges: Vec<Vec<graphs::EdgeId>>,
}

/// Runs the paper's exact distributed minimum-cut pipeline on `g`.
///
/// Packs greedy trees by relative load (Thorup) with a distributed
/// `Õ(√n + D)` MST per tree, finds the minimum cut 1-respecting each
/// tree via the Section-2 fragment machinery, and returns the best cut
/// seen (also considering the minimum-degree singleton). With the
/// default heuristic packing this is exact on every instance family in
/// the test suite; Thorup's bound makes it exact with certainty at
/// impractical tree counts.
///
/// # Errors
///
/// [`MinCutError::TooSmall`] for `n < 2`, [`MinCutError::Disconnected`]
/// for disconnected inputs, and [`MinCutError::Congest`] when the
/// simulated network rejects the run (bandwidth violation in strict
/// mode, round cap). There is no upper bound on `n`: pair aggregation
/// keys are `u64`-wide, so every `n` addressable by `u32` node ids is
/// supported.
pub fn exact_mincut(
    g: &WeightedGraph,
    config: &ExactConfig,
) -> Result<DistMinCutResult, MinCutError> {
    let outcome = run_pipeline(
        g,
        &PipelineOpts {
            network: config.network.clone(),
            mst: config.mst.clone(),
            target: PackingTarget::TrackBest(config.packing.clone()),
            sample: None,
            election: config.election,
        },
    )?;
    Ok(DistMinCutResult {
        cut: outcome.cut,
        rounds: outcome.rounds,
        messages: outcome.messages,
        trees_packed: outcome.trees_packed,
        trees_to_best: outcome.trees_to_best,
        best_node: outcome.best_node,
        ledger: outcome.ledger,
        tree_edges: outcome.tree_edges,
    })
}

// ---------------------------------------------------------------------------
// Internal pipeline
// ---------------------------------------------------------------------------

/// Options of one pipeline run (shared by exact, approx and baselines).
#[derive(Clone, Debug)]
pub(crate) struct PipelineOpts {
    /// Network model parameters.
    pub network: NetworkConfig,
    /// MST stage knobs.
    pub mst: MstConfig,
    /// Packing-size policy.
    pub target: PackingTarget,
    /// `Some((p, seed))`: pack trees on the Karger skeleton sampled with
    /// probability `p` (shared coins keyed by `(seed, edge id)`); cuts
    /// are always *evaluated* with the original weights.
    pub sample: Option<(f64, u64)>,
    /// Leader-election protocol (see [`ExactConfig::election`]).
    pub election: Election,
}

/// Outcome of one pipeline run.
#[derive(Clone, Debug)]
pub(crate) struct PipelineOutcome {
    pub cut: CutResult,
    pub trees_packed: usize,
    pub trees_to_best: usize,
    pub best_node: Option<NodeId>,
    pub rounds: u64,
    pub messages: u64,
    pub ledger: MetricsLedger,
    pub tree_edges: Vec<Vec<graphs::EdgeId>>,
}

/// A driver-side snapshot of the pipeline's validated stage outputs,
/// filled in as the run progresses: the election/BFS stage once
/// [`Pipeline::new`] returns, one tree entry per completed packing
/// iteration. The self-healing driver keeps the latest log across
/// aborted attempts and hands validated pieces of it back as a
/// [`ResumeSpec`] — capture is pure bookkeeping over state the
/// sequential driver already holds, so it costs zero rounds.
///
/// Ids are in the current graph's id space; the recovery driver
/// translates through its compaction maps.
#[derive(Clone, Debug, Default)]
pub(crate) struct RecoveryLog {
    /// The elected leader.
    pub leader: Option<u32>,
    /// BFS-tree parent map: `bfs[v] = Some(u)` ⇒ `u` is `v`'s parent;
    /// `None` at the leader.
    pub bfs: Option<Vec<Option<u32>>>,
    /// One entry per finished packed tree, in packing order.
    pub trees: Vec<LoggedTree>,
}

/// One checkpointed packed tree: the global tree's parent map plus its
/// 1-respecting minimum `(value, argmin)`.
pub(crate) type LoggedTree = (Vec<Option<u32>>, (u64, u32));

/// One restorable packed tree in a [`ResumeSpec`]: an undirected edge
/// list plus the optionally still-trusted checkpointed minimum
/// `(value, (x, y))` — see [`ResumeSpec::trees`].
pub(crate) type RestoredTree = (Vec<(u32, u32)>, Option<(u64, (u32, u32))>);

/// A resume order handed to the pipeline by the self-healing driver:
/// checkpointed structures already validated against the survivor set,
/// to be restored instead of recomputed.
#[derive(Clone, Debug)]
pub(crate) struct ResumeSpec {
    /// Restore the election stage: `(leader, BFS parent map)`, already
    /// known to be a spanning tree of the current graph rooted at a
    /// live leader. `None` ⇒ re-elect from scratch (the checkpointed
    /// leader died).
    pub bfs: Option<(u32, Vec<Option<u32>>)>,
    /// Checkpointed packed trees to restore, oldest first, as
    /// undirected edge lists (the driver re-roots them at whatever
    /// leader the attempt ends up with). `Some((value, (x, y)))` ⇒ the
    /// checkpointed 1-respecting minimum is still trustworthy and is
    /// attained by cutting tree edge `(x, y)` — either because the
    /// participant set is unchanged, or because every excised node was
    /// pendant in the checkpoint's graph (a degree-1 node's only edge
    /// crosses no survivor subtree cut, so every surviving cut value is
    /// untouched by the excision). The edge form survives re-rooting:
    /// the argmin node is whichever endpoint is the child under the
    /// new orientation. `None` ⇒ the restored tree's cut must be
    /// re-evaluated distributed.
    pub trees: Vec<RestoredTree>,
    /// Name prefix of the resume validation phases
    /// (`recover.e{epoch}.resume`).
    pub prefix: String,
}

/// Orients an undirected spanning-tree edge list into a parent map
/// rooted at `root` (driver-side re-rooting: checkpointed trees stay
/// usable under a freshly elected leader).
fn reroot(n: usize, edges: &[(u32, u32)], root: u32) -> Vec<Option<u32>> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    let mut parents: Vec<Option<u32>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[root as usize] = true;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &u in &adj[v as usize] {
            if !seen[u as usize] {
                seen[u as usize] = true;
                parents[u as usize] = Some(v);
                queue.push_back(u);
            }
        }
    }
    debug_assert!(seen.iter().all(|&s| s), "resume spec trees span the graph");
    parents
}

/// Per-node [`TreeInfo`] views of a parent map (ports and depths
/// derived locally — every node knows its neighbors a priori, so the
/// restoration costs zero messages).
fn tree_infos(g: &WeightedGraph, parents: &[Option<u32>]) -> Vec<TreeInfo> {
    let n = parents.len();
    let port_to = |v: usize, u: u32| -> Port {
        Port(
            g.neighbors(NodeId::from_index(v))
                .iter()
                .position(|a| a.neighbor.raw() == u)
                .expect("tree edges are graph edges") as u32,
        )
    };
    let mut infos: Vec<TreeInfo> = (0..n)
        .map(|v| TreeInfo {
            parent: parents[v].map(|u| port_to(v, u)),
            children: Vec::new(),
            depth: 0,
        })
        .collect();
    let mut kids: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (v, &p) in parents.iter().enumerate() {
        if let Some(u) = p {
            infos[u as usize]
                .children
                .push(port_to(u as usize, v as u32));
            kids[u as usize].push(v as u32);
        }
    }
    let root = (0..n).find(|&v| parents[v].is_none()).expect("rooted tree");
    let mut queue = std::collections::VecDeque::from([root as u32]);
    while let Some(v) = queue.pop_front() {
        let d = infos[v as usize].depth + 1;
        infos[v as usize].children.sort_unstable();
        for &c in &kids[v as usize] {
            infos[c as usize].depth = d;
            queue.push_back(c);
        }
    }
    infos
}

/// Per-node persistent local memory threaded through the phases.
#[derive(Clone, Debug, Default)]
struct NodeMem {
    // -- static for the run (local knowledge) --
    bfs: TreeInfo,
    edge_ids: Vec<u32>,
    weights: Vec<u64>,
    pack_w: Vec<u64>,
    delta: u64,
    loads: Vec<u64>,
    // -- per packed tree --
    frag: u32,
    comp: u32,
    frozen: bool,
    parent: Option<Port>,
    tree_ports: BTreeSet<Port>,
    inter_ports: BTreeSet<Port>,
    inter_parent: Option<Port>,
    inter_children: Vec<Port>,
    port_frag: Vec<u32>,
    port_frozen: Vec<bool>,
    port_comp: Vec<u32>,
    /// Last `(frag, frozen)` announced to the neighbors (legacy mstA
    /// delta exchange); `None` before the first announcement of a tree.
    ann_frag: Option<FragMsg>,
    /// Optimized mstA: ports whose neighbor must still be told this
    /// node's `(frag, frozen)` at the next `.exch` (boundary ports of a
    /// relabel/freeze; old-fragment neighbors infer the change locally).
    ann_mask: Vec<bool>,
    /// Optimized mstA: this node's fragment-tree depth (maintained by
    /// the hook handshake; drives the `.cd` send schedule).
    depth: u32,
    /// Optimized mstA: aggregate last sent up in `.cd` (delta cache).
    cd_sent: Option<OptAgg>,
    /// Optimized mstA: last aggregate received per port in `.cd`.
    cd_children: Vec<Option<OptAgg>>,
    /// Optimized mstA: the fragment was restructured since the last
    /// `.cd` pass — drop the caches and speak unconditionally.
    cd_purge: bool,
    /// Last `(comp, frag)` announced (mstB delta exchange).
    ann_comp: Option<CompMsg>,
    tf: Vec<TfRec>,
    iv: Option<Intervals>,
    att: BTreeMap<u32, u32>,
    rho: u64,
    cval: u64,
    // -- snapshot of the best tree seen so far --
    snap_parent: Option<Port>,
    snap_children: Vec<Port>,
}

impl NodeMem {
    /// The in-fragment tree info (fragment forest view).
    fn ftree(&self) -> TreeInfo {
        TreeInfo {
            parent: self.parent,
            children: self
                .tree_ports
                .iter()
                .copied()
                .filter(|p| Some(*p) != self.parent)
                .collect(),
            depth: 0,
        }
    }

    /// The global-tree parent port (in-fragment parent, or the
    /// inter-fragment edge at a fragment root; `None` at the leader).
    fn t_parent(&self) -> Option<Port> {
        self.parent.or(self.inter_parent)
    }

    /// The global-tree child ports (in-fragment children plus attached
    /// child-fragment connectors).
    fn t_children(&self) -> Vec<Port> {
        let mut c = self.ftree().children;
        c.extend(self.inter_children.iter().copied());
        c.sort_unstable();
        c
    }

    /// The port carrying global edge id `e`, if incident.
    fn port_of_edge(&self, e: u32) -> Option<Port> {
        self.edge_ids
            .iter()
            .position(|&x| x == e)
            .map(|i| Port(i as u32))
    }
}

/// The pipeline state: the simulated network plus every node's memory.
struct Pipeline<'g> {
    g: &'g WeightedGraph,
    net: Network<'g>,
    mst: MstConfig,
    mems: Vec<NodeMem>,
    leader: NodeId,
    n: usize,
}

impl<'g> Pipeline<'g> {
    /// Elects the leader, builds its BFS tree, and initialises every
    /// node's static memory. On failure the ledger accumulated so far
    /// rides along with the error (see [`run_pipeline_traced`]).
    fn new(
        g: &'g WeightedGraph,
        network: NetworkConfig,
        mst: MstConfig,
        election: Election,
        pack_edge: &[u64],
    ) -> Result<Self, (MinCutError, MetricsLedger)> {
        let n = g.node_count();
        let mut net =
            Network::new(g, network).map_err(|e| (MinCutError::from(e), MetricsLedger::new()))?;
        let bfs = match net.run(
            "leader_bfs",
            &LeaderBfs::with_election(election),
            vec![(); n],
        ) {
            Ok(out) => out,
            Err(e) => {
                let ledger = net.ledger().clone();
                return Err((MinCutError::from(e), ledger));
            }
        };
        let leader = bfs.outputs[0].leader;
        let mems = g
            .nodes()
            .map(|v| {
                let adj = g.neighbors(v);
                NodeMem {
                    bfs: bfs.outputs[v.index()].tree.clone(),
                    edge_ids: adj.iter().map(|a| a.edge.raw()).collect(),
                    weights: adj.iter().map(|a| a.weight).collect(),
                    pack_w: adj.iter().map(|a| pack_edge[a.edge.index()]).collect(),
                    delta: g.weighted_degree(v),
                    loads: vec![0; adj.len()],
                    ..Default::default()
                }
            })
            .collect();
        Ok(Pipeline {
            g,
            net,
            mst,
            mems,
            leader,
            n,
        })
    }

    /// [`Pipeline::new`] minus the election: restores a checkpointed
    /// BFS tree (leader + parent map) instead of running `leader_bfs`.
    /// The caller must follow up with [`Pipeline::validate_restored`] —
    /// the distributed re-validation that every restored node is
    /// actually alive and reachable along the restored edges.
    fn new_restored(
        g: &'g WeightedGraph,
        network: NetworkConfig,
        mst: MstConfig,
        pack_edge: &[u64],
        leader: u32,
        parents: &[Option<u32>],
    ) -> Result<Self, (MinCutError, MetricsLedger)> {
        let n = g.node_count();
        let net =
            Network::new(g, network).map_err(|e| (MinCutError::from(e), MetricsLedger::new()))?;
        let infos = tree_infos(g, parents);
        let mems = g
            .nodes()
            .map(|v| {
                let adj = g.neighbors(v);
                NodeMem {
                    bfs: infos[v.index()].clone(),
                    edge_ids: adj.iter().map(|a| a.edge.raw()).collect(),
                    weights: adj.iter().map(|a| a.weight).collect(),
                    pack_w: adj.iter().map(|a| pack_edge[a.edge.index()]).collect(),
                    delta: g.weighted_degree(v),
                    loads: vec![0; adj.len()],
                    ..Default::default()
                }
            })
            .collect();
        Ok(Pipeline {
            g,
            net,
            mst,
            mems,
            leader: NodeId::new(leader),
            n,
        })
    }

    /// Distributed re-validation of a restored tree: one convergecast
    /// counting the nodes the tree's edges actually reach. A count
    /// short of `n` means the restored structure is stale (a logic
    /// error — the driver validates structurally before restoring);
    /// a node that died since the checkpoint surfaces as the usual
    /// suspicion abort, which the recovery loop catches.
    fn validate_restored(
        &mut self,
        name: &str,
        parents: &[Option<u32>],
    ) -> Result<(), MinCutError> {
        let infos = tree_infos(self.g, parents);
        let inputs: Vec<(TreeInfo, SumU64)> =
            (0..self.n).map(|v| (infos[v].clone(), SumU64(1))).collect();
        let out = self.net.run(name, &Convergecast::new(), inputs)?;
        let root = (0..self.n)
            .find(|&v| parents[v].is_none())
            .expect("rooted tree");
        let count = out.outputs[root].map_or(0, |SumU64(c)| c);
        if count != self.n as u64 {
            return Err(MinCutError::InvalidConfig {
                reason: format!(
                    "restored checkpoint tree reached {count} of {} survivors",
                    self.n
                ),
            });
        }
        Ok(())
    }

    /// The port of `v` toward neighbor `u`.
    fn port_to(&self, v: usize, u: u32) -> Port {
        Port(
            self.g
                .neighbors(NodeId::from_index(v))
                .iter()
                .position(|a| a.neighbor.raw() == u)
                .expect("tree edges are graph edges") as u32,
        )
    }

    /// Installs a restored spanning tree as **one fragment** rooted at
    /// the leader: every node carries the same fragment label and there
    /// are no inter-fragment edges, so `cut_stage` on this memory
    /// computes the exact global 1-respecting minimum of the restored
    /// tree (the single-fragment degradation of the fragment
    /// decomposition — every incident edge is a same-fragment case).
    fn install_tree(&mut self, parents: &[Option<u32>]) {
        debug_assert_eq!(
            parents[self.leader.index()],
            None,
            "re-rooted at the leader"
        );
        self.reset_tree();
        let root = self.leader.raw();
        let mut child_ports: Vec<Vec<Port>> = vec![Vec::new(); self.n];
        let mut parent_ports: Vec<Option<Port>> = vec![None; self.n];
        for v in 0..self.n {
            if let Some(u) = parents[v] {
                parent_ports[v] = Some(self.port_to(v, u));
                child_ports[u as usize].push(self.port_to(u as usize, v as u32));
            }
        }
        for (v, m) in self.mems.iter_mut().enumerate() {
            m.frag = root;
            m.port_frag = vec![root; m.edge_ids.len()];
            m.parent = parent_ports[v];
            m.tree_ports = child_ports[v]
                .iter()
                .copied()
                .chain(parent_ports[v])
                .collect();
        }
    }

    /// Replays a checkpointed tree's per-port load increments (what its
    /// `finish_tree` did when it originally completed): both endpoints
    /// of every tree edge count one more use. Evidence-resume
    /// bookkeeping — zero rounds.
    fn replay_tree_loads(&mut self, parents: &[Option<u32>]) {
        for (v, &p) in parents.iter().enumerate().take(self.n) {
            if let Some(u) = p {
                let pv = self.port_to(v, u);
                let pu = self.port_to(u as usize, v as u32);
                self.mems[v].loads[pv.index()] += 1;
                self.mems[u as usize].loads[pu.index()] += 1;
            }
        }
    }

    /// Re-installs the best-tree snapshot (`side()`'s flood scaffold)
    /// from a checkpointed parent map — what `finish_tree(true)` stored
    /// when that tree originally improved the bound.
    fn install_snap(&mut self, parents: &[Option<u32>]) {
        let mut child_ports: Vec<Vec<Port>> = vec![Vec::new(); self.n];
        let mut parent_ports: Vec<Option<Port>> = vec![None; self.n];
        for v in 0..self.n {
            if let Some(u) = parents[v] {
                parent_ports[v] = Some(self.port_to(v, u));
                child_ports[u as usize].push(self.port_to(u as usize, v as u32));
            }
        }
        for (v, m) in self.mems.iter_mut().enumerate() {
            m.snap_parent = parent_ports[v];
            m.snap_children = std::mem::take(&mut child_ports[v]);
            m.snap_children.sort_unstable();
        }
    }

    /// The current global tree as a parent map (checkpoint capture).
    fn tree_parents(&self) -> Vec<Option<u32>> {
        (0..self.n)
            .map(|v| {
                self.mems[v].t_parent().map(|p| {
                    self.g.neighbors(NodeId::from_index(v))[p.index()]
                        .neighbor
                        .raw()
                })
            })
            .collect()
    }

    /// The BFS tree as a parent map (checkpoint capture).
    fn bfs_parents(&self) -> Vec<Option<u32>> {
        (0..self.n)
            .map(|v| {
                self.mems[v].bfs.parent.map(|p| {
                    self.g.neighbors(NodeId::from_index(v))[p.index()]
                        .neighbor
                        .raw()
                })
            })
            .collect()
    }

    /// The sorted edge ids of a parent map (the `tree_edges` outcome
    /// entry for restored trees).
    fn edge_ids_of(&self, parents: &[Option<u32>]) -> Vec<graphs::EdgeId> {
        let mut ids: Vec<graphs::EdgeId> = (0..self.n)
            .filter_map(|v| {
                parents[v]
                    .map(|u| graphs::EdgeId::new(self.mems[v].edge_ids[self.port_to(v, u).index()]))
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The minimum-weighted-degree singleton: the packing's seed
    /// candidate and initial `λ̂`, via one convergecast.
    fn init_deg(&mut self) -> Result<(u64, NodeId), MinCutError> {
        let inputs: Vec<(TreeInfo, MinPair)> = self
            .mems
            .iter()
            .enumerate()
            .map(|(v, m)| (m.bfs.clone(), MinPair(m.delta, v as u64)))
            .collect();
        let out = self.net.run("init.deg", &Convergecast::new(), inputs)?;
        let MinPair(d, v) = out.outputs[self.leader.index()].expect("leader is the BFS root");
        Ok((d, NodeId::new(v as u32)))
    }

    /// Resets the per-tree memory before packing the next tree.
    fn reset_tree(&mut self) {
        let g = self.g;
        for (v, m) in self.mems.iter_mut().enumerate() {
            let deg = m.edge_ids.len();
            m.frag = v as u32;
            m.comp = v as u32;
            m.frozen = false;
            m.parent = None;
            m.tree_ports.clear();
            m.inter_ports.clear();
            m.inter_parent = None;
            m.inter_children.clear();
            // Level-0 fragment ids are node ids, and neighbor ids are
            // a-priori local knowledge in CONGEST — so the optimized
            // mode's initial per-port view costs zero messages. (The
            // legacy mode overwrites this with its level-0 broadcast.)
            m.port_frag = g
                .neighbors(NodeId::from_index(v))
                .iter()
                .map(|a| a.neighbor.raw())
                .collect();
            m.port_frozen = vec![false; deg];
            m.port_comp = vec![0; deg];
            m.ann_frag = None;
            m.ann_mask = vec![false; deg];
            m.depth = 0;
            m.cd_sent = None;
            m.cd_children = vec![None; deg];
            m.cd_purge = false;
            m.ann_comp = None;
            m.tf.clear();
            m.iv = None;
            m.att.clear();
            m.rho = 0;
            m.cval = 0;
        }
    }

    /// The local best packing candidate of node `v`: the minimum-key
    /// incident edge leaving `v`'s group, where `mine` is `v`'s group
    /// label and `port_labels[p]` the label across port `p` (fragments
    /// in phase A, components in phase B). Returns the port too.
    fn local_cand(&self, v: usize, mine: u32, port_labels: &[u32]) -> Option<(Port, Cand)> {
        let m = &self.mems[v];
        let mut best: Option<(Port, Cand)> = None;
        for (p, &other) in port_labels.iter().enumerate() {
            if other != mine && m.pack_w[p] > 0 {
                let cand = Cand {
                    load: m.loads[p],
                    weight: m.pack_w[p],
                    edge: m.edge_ids[p],
                };
                if better(best.map(|(_, c)| c), Some(cand)) == Some(cand) {
                    best = Some((Port(p as u32), cand));
                }
            }
        }
        best
    }

    /// Phase A: capped fragment growth. See [`crate::dist::mst`] and,
    /// for the optimized protocol, `docs/mst.md`.
    fn mst_phase_a(&mut self) -> Result<(), MinCutError> {
        match self.mst.mode {
            MstAMode::Legacy => self.mst_phase_a_legacy(),
            MstAMode::Optimized => self.mst_phase_a_opt(),
        }
    }

    /// The optimized phase A: boundary-only label refresh, one fused
    /// `.cd` pass per level (delta-convergecast up, decision broadcast
    /// down only when the fragment hooks or freezes), deterministic
    /// lowest-differing-bit mating, and frozen fragments out of the loop
    /// entirely.
    ///
    /// The per-level `maxdepth` scalar handed to every node is driver
    /// control plane — a loop-scheduling decision a real deployment
    /// would obtain from an `O(D)` convergecast, like the termination
    /// checks above it (see the module docs).
    fn mst_phase_a_opt(&mut self) -> Result<(), MinCutError> {
        let cap = self.mst.effective_cap(self.n) as u64;
        for level in 0..self.mst.max_levels {
            let frags: BTreeSet<u32> = self.mems.iter().map(|m| m.frag).collect();
            if frags.len() == 1 || self.mems.iter().all(|m| m.frozen) {
                return Ok(());
            }
            // 1. Label refresh, per-port delta discipline: a relabeled or
            // freshly frozen node announces only on the ports its
            // `ann_mask` marked (boundary edges of the change) — its
            // old-fragment neighbors relabeled with it and inferred the
            // new view for free. Level 0 is silent by construction
            // (fragment ids are node ids, already in every port view),
            // and a globally silent refresh skips the phase.
            let inputs: Vec<Vec<Option<FragMsg>>> = self
                .mems
                .iter()
                .map(|m| {
                    let cur = FragMsg {
                        frag: m.frag,
                        frozen: m.frozen,
                    };
                    m.ann_mask.iter().map(|&a| a.then_some(cur)).collect()
                })
                .collect();
            if inputs.iter().any(|i| i.iter().any(Option::is_some)) {
                let name = format!("mstA.l{level}.exch");
                let out = self.net.run(&name, &PortDeltaExchange::new(), inputs)?;
                for (m, o) in self.mems.iter_mut().zip(out.outputs) {
                    m.ann_mask.iter_mut().for_each(|a| *a = false);
                    for (p, got) in o.into_iter().enumerate() {
                        if let Some(f) = got {
                            m.port_frag[p] = f.frag;
                            m.port_frozen[p] = f.frozen;
                        }
                    }
                }
            }
            // 2. Fused candidate/decision pass over the unfrozen
            // fragment trees.
            let maxdepth = self
                .mems
                .iter()
                .filter(|m| !m.frozen)
                .map(|m| m.depth)
                .max()
                .unwrap_or(0);
            let inputs: Vec<CdInput> = (0..self.n)
                .map(|v| {
                    let m = &self.mems[v];
                    let local = if m.frozen {
                        None
                    } else {
                        self.local_cand(v, m.frag, &m.port_frag)
                            .map(|(p, c)| OptCand {
                                cand: c,
                                target_frag: m.port_frag[p.index()],
                                target_frozen: m.port_frozen[p.index()],
                            })
                    };
                    CdInput {
                        tree: m.ftree(),
                        depth: m.depth,
                        maxdepth,
                        frag: m.frag,
                        cap,
                        frozen: m.frozen,
                        local,
                        purge: m.cd_purge,
                        sent: m.cd_sent,
                        children: m.cd_children.clone(),
                    }
                })
                .collect();
            let name = format!("mstA.l{level}.cd");
            let out = self.net.run(&name, &CandDec, inputs)?;
            let mut decs: Vec<Option<DecMsg>> = Vec::with_capacity(self.n);
            let mut any_hook = false;
            for (v, o) in out.outputs.into_iter().enumerate() {
                let m = &mut self.mems[v];
                decs.push(o.dec);
                m.cd_sent = o.sent;
                m.cd_children = o.children;
                m.cd_purge = false;
                if let Some(d) = o.dec {
                    any_hook |= d.hook_edge.is_some();
                    if d.frozen && !m.frozen {
                        m.frozen = true;
                        // Fragment-internal neighbors froze with us (same
                        // broadcast); boundary neighbors hear it at the
                        // next refresh — unless they are frozen too (they
                        // never consult their phase-A views again; mstB's
                        // full i0 refresh picks them up) or the edge has
                        // no packing weight (it can never be a candidate
                        // of either side).
                        for p in 0..m.port_frag.len() {
                            if m.port_frag[p] == m.frag {
                                m.port_frozen[p] = true;
                            } else if !m.port_frozen[p] && m.pack_w[p] > 0 {
                                m.ann_mask[p] = true;
                            }
                        }
                    }
                }
            }
            if !any_hook {
                continue;
            }
            // 3. Hook handshake + re-root floods. Every fragment that is
            // not itself hooking accepts — deterministic mating admits
            // no 2-cycles, so no coin filter is needed.
            let inputs: Vec<HookInput2> = (0..self.n)
                .map(|v| {
                    let m = &self.mems[v];
                    let hook_edge = decs[v].and_then(|d| d.hook_edge);
                    let role = match hook_edge {
                        Some(e) => match m.port_of_edge(e) {
                            Some(p) if m.port_frag[p.index()] != m.frag => HookRole::Connector {
                                port: p,
                                target_frag: m.port_frag[p.index()],
                            },
                            _ => HookRole::Await,
                        },
                        None => HookRole::Passive,
                    };
                    HookInput2 {
                        tree_ports: m.tree_ports.iter().copied().collect(),
                        role,
                        eligible: hook_edge.is_none(),
                        frozen: m.frozen,
                        depth: m.depth,
                    }
                })
                .collect();
            let name = format!("mstA.l{level}.hook");
            let out = self.net.run(&name, &FragHook2, inputs)?;
            for (m, h) in self.mems.iter_mut().zip(out.outputs) {
                if let Some((f, fz)) = h.new_frag {
                    let old = m.frag;
                    m.frag = f;
                    m.frozen = fz;
                    // Only nodes whose parent flipped (the old-root →
                    // connector path of the re-root) have a restructured
                    // subtree; off-path members keep their child caches
                    // and stay silent next level unless their aggregate
                    // really changed.
                    if m.parent != h.new_parent {
                        m.cd_purge = true;
                    }
                    m.parent = h.new_parent;
                    if let Some(p) = h.new_parent {
                        m.tree_ports.insert(p);
                    }
                    m.depth = h.new_depth.expect("re-root floods carry a depth");
                    // Neighbors in the old fragment relabeled with us —
                    // their view of this node updates by the same local
                    // inference we apply to our view of them. Everyone
                    // else gets an announcement next level, with the same
                    // two exceptions as the freeze announcement: frozen
                    // neighbors and zero-packing-weight edges never read
                    // this view again.
                    for p in 0..m.port_frag.len() {
                        if m.port_frag[p] == old {
                            m.port_frag[p] = f;
                            m.port_frozen[p] = fz;
                            m.ann_mask[p] = false;
                        } else {
                            m.ann_mask[p] = !m.port_frozen[p] && m.pack_w[p] > 0;
                        }
                    }
                }
                for p in h.accepted {
                    m.tree_ports.insert(p);
                }
            }
        }
        Ok(())
    }

    /// The legacy phase A (the parity oracle): full label
    /// delta-exchange, counting convergecast + separate decision
    /// broadcast, shared-coin mating.
    ///
    /// Frozen fragments sit out the candidate/decision sub-phases (their
    /// members halt instantly on singleton forest inputs), so a level's
    /// cost is bounded by the *unfrozen* fragment diameter — below the
    /// cap by definition — plus the hook handshake.
    fn mst_phase_a_legacy(&mut self) -> Result<(), MinCutError> {
        let cap = self.mst.effective_cap(self.n);
        for level in 0..self.mst.max_levels {
            let frags: BTreeSet<u32> = self.mems.iter().map(|m| m.frag).collect();
            if frags.len() == 1 || self.mems.iter().all(|m| m.frozen) {
                return Ok(());
            }
            // Exchange fragment ids + frozen flags — delta discipline:
            // a node re-announces only when its (frag, frozen) changed
            // since its last announcement, and receivers keep their
            // stored per-port view otherwise. Level 0 announces
            // everywhere (nothing announced yet), so the view is always
            // complete; afterwards only freshly hooked or frozen
            // fragments speak, which is what keeps converged regions
            // silent.
            let name = format!("mstA.l{level}.exch");
            let inputs: Vec<Option<FragMsg>> = self
                .mems
                .iter()
                .map(|m| {
                    let cur = FragMsg {
                        frag: m.frag,
                        frozen: m.frozen,
                    };
                    (m.ann_frag != Some(cur)).then_some(cur)
                })
                .collect();
            let out = self.net.run(&name, &DeltaExchange::new(), inputs)?;
            for (m, o) in self.mems.iter_mut().zip(out.outputs) {
                m.ann_frag = Some(FragMsg {
                    frag: m.frag,
                    frozen: m.frozen,
                });
                for (p, got) in o.into_iter().enumerate() {
                    if let Some(f) = got {
                        m.port_frag[p] = f.frag;
                        m.port_frozen[p] = f.frozen;
                    }
                }
            }
            // Fragment minimum outgoing candidates + sizes (unfrozen
            // fragments only).
            let inputs: Vec<(TreeInfo, CandAgg)> = (0..self.n)
                .map(|v| {
                    let m = &self.mems[v];
                    if m.frozen {
                        (
                            TreeInfo::default(),
                            CandAgg {
                                size: 0,
                                cand: None,
                            },
                        )
                    } else {
                        let cand = self
                            .local_cand(v, m.frag, &m.port_frag)
                            .map(|(p, c)| ACand {
                                cand: c,
                                target_frozen: m.port_frozen[p.index()],
                            });
                        (m.ftree(), CandAgg { size: 1, cand })
                    }
                })
                .collect();
            let name = format!("mstA.l{level}.cand");
            let out = self.net.run(&name, &Convergecast::new(), inputs)?;
            // Roots of unfrozen fragments decide: hook when tails (the
            // mating coin) or when the target is frozen (always safe —
            // frozen fragments never re-root).
            let mut decisions: BTreeMap<u32, DecMsg> = BTreeMap::new();
            let mut any_hook = false;
            for (v, agg) in out.outputs.iter().enumerate() {
                let m = &self.mems[v];
                if let Some(agg) = agg {
                    if m.frozen {
                        continue;
                    }
                    let frozen = agg.size >= cap as u64;
                    let tails = !self.mst.heads(m.frag, level);
                    let hook_edge = if !frozen {
                        agg.cand
                            .filter(|c| tails || c.target_frozen)
                            .map(|c| c.cand.edge)
                    } else {
                        None
                    };
                    any_hook |= hook_edge.is_some();
                    decisions.insert(m.frag, DecMsg { frozen, hook_edge });
                }
            }
            // Broadcast decisions down the unfrozen fragment trees
            // (frozen members run a 1-round dummy and stay frozen).
            let dummy = DecMsg {
                frozen: true,
                hook_edge: None,
            };
            let inputs: Vec<(TreeInfo, Option<DecMsg>)> = (0..self.n)
                .map(|v| {
                    let m = &self.mems[v];
                    if m.frozen {
                        (TreeInfo::default(), Some(dummy))
                    } else {
                        let dec = m.ftree().is_root().then(|| decisions[&m.frag]);
                        (m.ftree(), dec)
                    }
                })
                .collect();
            let name = format!("mstA.l{level}.dec");
            let out = self.net.run(&name, &Broadcast::new(), inputs)?;
            let decs = out.outputs;
            for (m, d) in self.mems.iter_mut().zip(decs.iter()) {
                m.frozen = d.frozen;
            }
            if !any_hook {
                continue;
            }
            // Hook handshake + re-root floods.
            let inputs: Vec<(HookInput, u32)> = (0..self.n)
                .map(|v| {
                    let m = &self.mems[v];
                    let dec = &decs[v];
                    let role = match dec.hook_edge {
                        Some(e) => match m.port_of_edge(e) {
                            Some(p) if m.port_frag[p.index()] != m.frag => HookRole::Connector {
                                port: p,
                                target_frag: m.port_frag[p.index()],
                            },
                            _ => HookRole::Await,
                        },
                        None => HookRole::Passive,
                    };
                    // A fragment that is itself hooking must not accept
                    // (that is what keeps hook chains at length one).
                    let eligible =
                        m.frozen || (self.mst.heads(m.frag, level) && dec.hook_edge.is_none());
                    (
                        HookInput {
                            tree_ports: m.tree_ports.iter().copied().collect(),
                            role,
                            eligible,
                            frozen: m.frozen,
                        },
                        m.frag,
                    )
                })
                .collect();
            let name = format!("mstA.l{level}.hook");
            let out = self.net.run(&name, &FragHook, inputs)?;
            for (m, h) in self.mems.iter_mut().zip(out.outputs) {
                if let Some((f, fz)) = h.new_frag {
                    m.frag = f;
                    m.frozen = fz;
                    m.parent = h.new_parent;
                    if let Some(p) = h.new_parent {
                        m.tree_ports.insert(p);
                    }
                }
                for p in h.accepted {
                    m.tree_ports.insert(p);
                }
            }
        }
        Ok(())
    }

    /// Phase B: Borůvka over the BFS tree, components merged at the
    /// leader. Returns the leader's `T_F` edge reports.
    fn mst_phase_b(&mut self) -> Result<Vec<ReportItem>, MinCutError> {
        for m in self.mems.iter_mut() {
            m.comp = m.frag;
        }
        let mut iter = 0usize;
        loop {
            // Exchange (component, fragment) labels — same delta
            // discipline as `mstA.*.exch`: iteration 0 announces
            // everywhere (and thereby refreshes the port fragment view
            // with the final phase-A fragments); afterwards only nodes
            // whose component was remapped speak.
            let name = format!("mstB.i{iter}.exch");
            let inputs: Vec<Option<CompMsg>> = self
                .mems
                .iter()
                .map(|m| {
                    let cur = CompMsg {
                        comp: m.comp,
                        frag: m.frag,
                    };
                    (m.ann_comp != Some(cur)).then_some(cur)
                })
                .collect();
            let out = self.net.run(&name, &DeltaExchange::new(), inputs)?;
            for (m, o) in self.mems.iter_mut().zip(out.outputs) {
                m.ann_comp = Some(CompMsg {
                    comp: m.comp,
                    frag: m.frag,
                });
                for (p, got) in o.into_iter().enumerate() {
                    if let Some(c) = got {
                        m.port_comp[p] = c.comp;
                        m.port_frag[p] = c.frag;
                    }
                }
            }
            // Per-component minimum outgoing candidates to the leader.
            let inputs: Vec<(TreeInfo, Vec<BorCand>)> = (0..self.n)
                .map(|v| {
                    let m = &self.mems[v];
                    let items = self
                        .local_cand(v, m.comp, &m.port_comp)
                        .map(|(p, c)| {
                            vec![BorCand {
                                comp: m.comp,
                                cand: c,
                                other_comp: m.port_comp[p.index()],
                            }]
                        })
                        .unwrap_or_default();
                    (m.bfs.clone(), items)
                })
                .collect();
            let name = format!("mstB.i{iter}.cand");
            let out = self.net.run(&name, &GroupedBest::new(), inputs)?;
            let cands = out.outputs[self.leader.index()]
                .clone()
                .expect("leader is the BFS root");
            if cands.is_empty() {
                // No outgoing edge anywhere: the MST is complete.
                break;
            }
            // The leader merges components and announces the result.
            let mut dsu = trees::DisjointSets::new(self.n);
            let live: BTreeSet<u32> = cands.iter().flat_map(|c| [c.comp, c.other_comp]).collect();
            let mut chosen: BTreeSet<u32> = BTreeSet::new();
            for c in &cands {
                dsu.union(c.comp as usize, c.other_comp as usize);
                chosen.insert(c.cand.edge);
            }
            // Deterministic representative: the smallest member id.
            let mut rep: BTreeMap<usize, u32> = BTreeMap::new();
            for &c in &live {
                let r = dsu.find(c as usize);
                let e = rep.entry(r).or_insert(c);
                *e = (*e).min(c);
            }
            let mut items: Vec<MergeItem> = Vec::new();
            for &c in &live {
                let to = rep[&dsu.find(c as usize)];
                if to != c {
                    items.push(MergeItem::Remap { from: c, to });
                }
            }
            items.extend(chosen.iter().map(|&edge| MergeItem::Chosen { edge }));
            let inputs: Vec<(TreeInfo, Vec<MergeItem>)> = (0..self.n)
                .map(|v| {
                    let m = &self.mems[v];
                    let list = if v == self.leader.index() {
                        items.clone()
                    } else {
                        Vec::new()
                    };
                    (m.bfs.clone(), list)
                })
                .collect();
            let name = format!("mstB.i{iter}.merge");
            let out = self.net.run(&name, &BroadcastItems::new(), inputs)?;
            for (m, received) in self.mems.iter_mut().zip(out.outputs) {
                for item in &received {
                    match *item {
                        MergeItem::Remap { from, to } => {
                            if m.comp == from {
                                m.comp = to;
                            }
                        }
                        MergeItem::Chosen { edge } => {
                            if let Some(p) = m.port_of_edge(edge) {
                                m.inter_ports.insert(p);
                            }
                        }
                    }
                }
            }
            iter += 1;
            if iter > self.n {
                return Err(MinCutError::InvalidConfig {
                    reason: "distributed MST failed to converge (disconnected packing graph?)"
                        .to_string(),
                });
            }
        }
        // Chosen-edge endpoints report their side so the leader can
        // assemble T_F with exact endpoints.
        let inputs: Vec<(TreeInfo, Vec<ReportItem>)> = (0..self.n)
            .map(|v| {
                let m = &self.mems[v];
                let items = m
                    .inter_ports
                    .iter()
                    .map(|p| ReportItem {
                        edge: m.edge_ids[p.index()],
                        frag: m.frag,
                        node: v as u32,
                    })
                    .collect();
                (m.bfs.clone(), items)
            })
            .collect();
        let out = self.net.run("mstB.report", &UpcastItems::new(), inputs)?;
        Ok(out.outputs[self.leader.index()]
            .clone()
            .expect("leader is the BFS root"))
    }

    /// Orientation: the leader roots `T_F` at its own fragment,
    /// broadcasts the table, and every fragment re-roots at its
    /// connector.
    fn orient(&mut self, reports: Vec<ReportItem>) -> Result<(), MinCutError> {
        // Leader-local: assemble and root T_F.
        let mut by_edge: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
        for r in &reports {
            by_edge.entry(r.edge).or_default().push((r.frag, r.node));
        }
        let mut adj: BTreeMap<u32, Vec<(u32, u32, u32, u32)>> = BTreeMap::new();
        for (&edge, ends) in &by_edge {
            debug_assert_eq!(ends.len(), 2, "each chosen edge has two reports");
            let (f1, x1) = ends[0];
            let (f2, x2) = ends[1];
            adj.entry(f1).or_default().push((f2, edge, x1, x2));
            adj.entry(f2).or_default().push((f1, edge, x2, x1));
        }
        let root_frag = self.mems[self.leader.index()].frag;
        let mut recs: Vec<TfRec> = Vec::new();
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        seen.insert(root_frag);
        let mut queue: std::collections::VecDeque<u32> = [root_frag].into();
        while let Some(pf) = queue.pop_front() {
            for &(gf, edge, a, c) in adj.get(&pf).into_iter().flatten() {
                if seen.insert(gf) {
                    recs.push(TfRec {
                        frag: gf,
                        parent: pf,
                        c,
                        a,
                        edge,
                    });
                    queue.push_back(gf);
                }
            }
        }
        // Broadcast the table over the BFS tree.
        let inputs: Vec<(TreeInfo, Vec<TfRec>)> = (0..self.n)
            .map(|v| {
                let list = if v == self.leader.index() {
                    recs.clone()
                } else {
                    Vec::new()
                };
                (self.mems[v].bfs.clone(), list)
            })
            .collect();
        let out = self.net.run("orient.tf", &BroadcastItems::new(), inputs)?;
        for (m, table) in self.mems.iter_mut().zip(out.outputs) {
            m.tf = table;
        }
        // Per-node roles derived from the table (local).
        let leader_idx = self.leader.index();
        for (v, m) in self.mems.iter_mut().enumerate() {
            let me = v as u32;
            m.inter_parent =
                m.tf.iter()
                    .find(|r| r.c == me)
                    .map(|r| m.port_of_edge(r.edge).expect("connector owns its edge"));
            m.inter_children =
                m.tf.iter()
                    .filter(|r| r.a == me)
                    .map(|r| m.port_of_edge(r.edge).expect("attachment owns its edge"))
                    .collect();
            m.inter_children.sort_unstable();
            let _ = leader_idx;
        }
        // Re-root every fragment at its connector (the leader for the
        // root fragment).
        let inputs: Vec<RerootInput> = (0..self.n)
            .map(|v| {
                let m = &self.mems[v];
                RerootInput {
                    tree_ports: m.tree_ports.iter().copied().collect(),
                    initiator: v == leader_idx || m.inter_parent.is_some(),
                }
            })
            .collect();
        let out = self.net.run("orient.flood", &FragReroot, inputs)?;
        for (m, parent) in self.mems.iter_mut().zip(out.outputs) {
            m.parent = parent;
        }
        Ok(())
    }

    /// The Section-2 cut stage on the current tree: every node ends up
    /// with `C(v↓)`; returns the leader's `(min, argmin)` over `v ≠ root`.
    fn cut_stage(&mut self) -> Result<(u64, NodeId), MinCutError> {
        let n = self.n;
        // s2a: in-fragment subtree sizes.
        let inputs: Vec<TreeInfo> = self.mems.iter().map(NodeMem::ftree).collect();
        let sizes = self.net.run("s2a", &SizesUp, inputs)?.outputs;
        // s2b: in-fragment Euler intervals.
        let inputs: Vec<IntervalInput> = self
            .mems
            .iter()
            .zip(sizes.iter())
            .map(|(m, (size, child_sizes))| IntervalInput {
                tree: m.ftree(),
                size: *size,
                child_sizes: child_sizes.clone(),
            })
            .collect();
        let ivs = self.net.run("s2b", &IntervalDown, inputs)?.outputs;
        for (m, iv) in self.mems.iter_mut().zip(ivs) {
            m.iv = Some(iv);
        }
        // s2c: gather + spread the attachment in-times per fragment.
        let inputs: Vec<(TreeInfo, Vec<AttItem>)> = (0..n)
            .map(|v| {
                let m = &self.mems[v];
                let items = if m.inter_children.is_empty() {
                    vec![]
                } else {
                    vec![AttItem {
                        node: v as u32,
                        in_t: m.iv.as_ref().expect("intervals set").in_t as u32,
                    }]
                };
                (m.ftree(), items)
            })
            .collect();
        let up = self.net.run("s2c.up", &UpcastItems::new(), inputs)?.outputs;
        let inputs: Vec<(TreeInfo, Vec<AttItem>)> = (0..n)
            .map(|v| (self.mems[v].ftree(), up[v].clone().unwrap_or_default()))
            .collect();
        let down = self
            .net
            .run("s2c.down", &BroadcastItems::new(), inputs)?
            .outputs;
        for (m, list) in self.mems.iter_mut().zip(down) {
            m.att = list.into_iter().map(|a| (a.node, a.in_t)).collect();
        }
        // s3: per-edge exchange of in-times (fragments are already known
        // per port from the mstB delta exchanges).
        let out = self.net.run(
            "s3",
            &NeighborExchange::new(),
            self.mems
                .iter()
                .map(|m| NbMsg {
                    in_t: m.iv.as_ref().expect("intervals set").in_t as u32,
                })
                .collect(),
        )?;
        let nb: Vec<Vec<u32>> = out
            .outputs
            .into_iter()
            .map(|o| {
                o.into_iter()
                    .map(|x| x.expect("every neighbor sends").in_t)
                    .collect()
            })
            .collect();
        // Local LCA case analysis (chains are derived from the broadcast
        // T_F table, which every node holds).
        let tf_table: Vec<TfRec> = self.mems[self.leader.index()].tf.clone();
        let tf_parent: BTreeMap<u32, TfRec> = tf_table.iter().map(|r| (r.frag, *r)).collect();
        let chain = |f: u32| -> Vec<u32> {
            let mut c = vec![f];
            let mut cur = f;
            while let Some(r) = tf_parent.get(&cur) {
                cur = r.parent;
                c.push(cur);
            }
            c
        };
        let chains: BTreeMap<u32, Vec<u32>> = self
            .mems
            .iter()
            .map(|m| m.frag)
            .chain(self.mems.iter().flat_map(|m| m.port_frag.iter().copied()))
            .map(|f| (f, chain(f)))
            .collect();
        let deepest_common = |a: &[u32], b: &[u32]| -> u32 {
            let mut last = *a.last().expect("chains end at the root fragment");
            let mut i = a.len();
            let mut j = b.len();
            while i > 0 && j > 0 && a[i - 1] == b[j - 1] {
                last = a[i - 1];
                i -= 1;
                j -= 1;
            }
            last
        };
        let child_below = |chain: &[u32], fstar: u32| -> u32 {
            let pos = chain
                .iter()
                .position(|&f| f == fstar)
                .expect("fstar on chain");
            debug_assert!(pos > 0, "child_below of the chain's own fragment");
            chain[pos - 1]
        };
        let mut tokens: Vec<Vec<Token>> = vec![Vec::new(); n];
        let mut pairs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        for v in 0..n {
            let m = &self.mems[v];
            let iv = m.iv.as_ref().expect("intervals set");
            let my_chain = &chains[&m.frag];
            let mut add_rho = 0u64;
            for (p, &other_in_t) in nb[v].iter().enumerate() {
                let w = m.weights[p];
                let other_frag = m.port_frag[p];
                if other_frag == m.frag {
                    // Case 1 (same fragment): the deeper-in-preorder
                    // endpoint routes a token toward the LCA.
                    if iv.in_t > other_in_t as u64 {
                        if iv.contains(other_in_t as u64) {
                            add_rho += w;
                        } else {
                            tokens[v].push(Token {
                                t_in: other_in_t,
                                w,
                            });
                        }
                    }
                    continue;
                }
                let their_chain = &chains[&other_frag];
                let fstar = deepest_common(my_chain, their_chain);
                if fstar == m.frag {
                    // Case 3 with the LCA in my fragment: target the
                    // attachment of the other side's chain.
                    let g_child = child_below(their_chain, fstar);
                    let a = tf_parent[&g_child].a;
                    let a_in = *m.att.get(&a).expect("attachment table covers a") as u64;
                    if iv.contains(a_in) {
                        add_rho += w;
                    } else {
                        tokens[v].push(Token {
                            t_in: a_in as u32,
                            w,
                        });
                    }
                } else if fstar != other_frag {
                    // Case 2: the LCA is a merging node in a third
                    // fragment; aggregate by the attachment pair. The
                    // smaller endpoint id emits.
                    let nbr_id = self.g.neighbors(NodeId::from_index(v))[p].neighbor.raw();
                    if (v as u32) < nbr_id {
                        let a1 = tf_parent[&child_below(my_chain, fstar)].a;
                        let a2 = tf_parent[&child_below(their_chain, fstar)].a;
                        let (lo, hi) = (a1.min(a2), a1.max(a2));
                        // Pack the attachment pair into one u64 key:
                        // `lo·n + hi < n²` costs 2⌈log₂ n⌉ key bits, so
                        // any n addressable by u32 node ids fits.
                        pairs[v].push((lo as u64 * n as u64 + hi as u64, w));
                    }
                }
                // fstar == other_frag: the other endpoint originates.
            }
            self.mems[v].rho += add_rho;
        }
        // s4a/s4b: merging-node contributions through the leader.
        let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = (0..n)
            .map(|v| (self.mems[v].bfs.clone(), std::mem::take(&mut pairs[v])))
            .collect();
        let out = self.net.run("s4a", &GroupedSum::new(), inputs)?;
        let pair_totals = out.outputs[self.leader.index()]
            .clone()
            .expect("leader is the BFS root");
        let items: Vec<PairItem> = pair_totals
            .into_iter()
            .map(|(key, w)| PairItem {
                a1: (key / n as u64) as u32,
                a2: (key % n as u64) as u32,
                w,
            })
            .collect();
        let inputs: Vec<(TreeInfo, Vec<PairItem>)> = (0..n)
            .map(|v| {
                let list = if v == self.leader.index() {
                    items.clone()
                } else {
                    Vec::new()
                };
                (self.mems[v].bfs.clone(), list)
            })
            .collect();
        let out = self.net.run("s4b", &BroadcastItems::new(), inputs)?;
        for (v, received) in out.outputs.into_iter().enumerate() {
            let m = &mut self.mems[v];
            let iv = m.iv.as_ref().expect("intervals set");
            let mut add = 0u64;
            for item in received {
                let (Some(&i1), Some(&i2)) = (m.att.get(&item.a1), m.att.get(&item.a2)) else {
                    continue;
                };
                let (i1, i2) = (i1 as u64, i2 as u64);
                if iv.contains(i1) && iv.contains(i2) {
                    let c1 = iv.child_containing(i1);
                    let c2 = iv.child_containing(i2);
                    if c1.is_none() || c1 != c2 {
                        add += item.w;
                    }
                }
            }
            m.rho += add;
        }
        // s5: route case-1/3 tokens to their LCAs.
        let inputs: Vec<TokensInput> = (0..n)
            .map(|v| {
                let m = &self.mems[v];
                let iv = m.iv.as_ref().expect("intervals set");
                TokensInput {
                    tree: m.ftree(),
                    iv: (iv.in_t, iv.out_t),
                    tokens: std::mem::take(&mut tokens[v]),
                }
            })
            .collect();
        let out = self.net.run("s5", &TokensUp, inputs)?;
        for (m, r) in self.mems.iter_mut().zip(out.outputs) {
            m.rho += r;
        }
        // s5b: fragment totals (Σδ, Σρ) at fragment roots.
        let inputs: Vec<(TreeInfo, (SumU64, SumU64))> = self
            .mems
            .iter()
            .map(|m| (m.ftree(), (SumU64(m.delta), SumU64(m.rho))))
            .collect();
        let tots = self.net.run("s5b", &Convergecast::new(), inputs)?.outputs;
        // s5c: totals to the leader.
        let inputs: Vec<(TreeInfo, Vec<TotItem>)> = (0..n)
            .map(|v| {
                let m = &self.mems[v];
                let items = tots[v]
                    .map(|(d, r)| {
                        vec![TotItem {
                            frag: m.frag,
                            d: d.0,
                            r: r.0,
                        }]
                    })
                    .unwrap_or_default();
                (m.bfs.clone(), items)
            })
            .collect();
        let out = self.net.run("s5c", &UpcastItems::new(), inputs)?;
        let tot_items = out.outputs[self.leader.index()]
            .clone()
            .expect("leader is the BFS root");
        // Leader-local: T_F subtree sums.
        let tf = &self.mems[self.leader.index()].tf;
        let tot_map: BTreeMap<u32, (u64, u64)> =
            tot_items.iter().map(|t| (t.frag, (t.d, t.r))).collect();
        let mut children_of: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for r in tf {
            children_of.entry(r.parent).or_default().push(r.frag);
        }
        let mut sums: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        // Process fragments bottom-up: repeated passes are unnecessary —
        // recurse iteratively with an explicit stack.
        let root_frag = self.mems[self.leader.index()].frag;
        let mut stack = vec![(root_frag, false)];
        while let Some((f, expanded)) = stack.pop() {
            if expanded {
                let base = tot_map[&f];
                let mut acc = base;
                for c in children_of.get(&f).into_iter().flatten() {
                    let s = sums[c];
                    acc.0 += s.0;
                    acc.1 += s.1;
                }
                sums.insert(f, acc);
            } else {
                stack.push((f, true));
                for &c in children_of.get(&f).into_iter().flatten() {
                    stack.push((c, false));
                }
            }
        }
        // s5d: broadcast the subtree sums; attachments pick up their
        // child fragments' masses.
        let items: Vec<SumItem> = sums
            .iter()
            .map(|(&frag, &(sd, sr))| SumItem { frag, sd, sr })
            .collect();
        let inputs: Vec<(TreeInfo, Vec<SumItem>)> = (0..n)
            .map(|v| {
                let list = if v == self.leader.index() {
                    items.clone()
                } else {
                    Vec::new()
                };
                (self.mems[v].bfs.clone(), list)
            })
            .collect();
        let out = self.net.run("s5d", &BroadcastItems::new(), inputs)?;
        let mut wd = vec![0u64; n];
        let mut wr = vec![0u64; n];
        for (v, received) in out.outputs.into_iter().enumerate() {
            let m = &self.mems[v];
            let smap: BTreeMap<u32, (u64, u64)> = received
                .into_iter()
                .map(|s| (s.frag, (s.sd, s.sr)))
                .collect();
            for r in &m.tf {
                if r.a == v as u32 {
                    let s = smap[&r.frag];
                    wd[v] += s.0;
                    wr[v] += s.1;
                }
            }
        }
        // s5e: in-fragment subtree sums of (δ + Wδ) and (ρ + Wρ) give
        // the global δ↓ and ρ↓ at every node.
        let inputs: Vec<(TreeInfo, u64)> = (0..n)
            .map(|v| (self.mems[v].ftree(), self.mems[v].delta + wd[v]))
            .collect();
        let ddown = self
            .net
            .run("s5e.delta", &SubtreeSums::new(), inputs)?
            .outputs;
        let inputs: Vec<(TreeInfo, u64)> = (0..n)
            .map(|v| (self.mems[v].ftree(), self.mems[v].rho + wr[v]))
            .collect();
        let rdown = self
            .net
            .run("s5e.rho", &SubtreeSums::new(), inputs)?
            .outputs;
        for (v, m) in self.mems.iter_mut().enumerate() {
            let (d, r) = (ddown[v], rdown[v]);
            debug_assert!(d >= 2 * r, "Karger identity underflow at node {v}");
            m.cval = d - 2 * r;
        }
        // s5f: global argmin (the root's C is 0 by definition; excluded).
        let inputs: Vec<(TreeInfo, MinPair)> = (0..n)
            .map(|v| {
                let c = if v == self.leader.index() {
                    u64::MAX
                } else {
                    self.mems[v].cval
                };
                (self.mems[v].bfs.clone(), MinPair(c, v as u64))
            })
            .collect();
        let out = self.net.run("s5f", &Convergecast::new(), inputs)?;
        let MinPair(minc, argmin) =
            out.outputs[self.leader.index()].expect("leader is the BFS root");
        Ok((minc, NodeId::new(argmin as u32)))
    }

    /// Announces whether this tree improved the global best; improving
    /// trees are snapshotted, and every node bumps the loads of its
    /// incident tree edges.
    fn finish_tree(&mut self, improved: bool) -> Result<(), MinCutError> {
        let inputs: Vec<(TreeInfo, Option<bool>)> = (0..self.n)
            .map(|v| {
                let m = &self.mems[v];
                (
                    (v == self.leader.index()).then_some(improved),
                    m.bfs.clone(),
                )
            })
            .map(|(flag, bfs)| (bfs, flag))
            .collect();
        let out = self.net.run("s5g", &Broadcast::new(), inputs)?;
        for (m, flag) in self.mems.iter_mut().zip(out.outputs) {
            if flag {
                m.snap_parent = m.t_parent();
                m.snap_children = m.t_children();
            }
            let ports: Vec<Port> = m
                .tree_ports
                .iter()
                .chain(m.inter_ports.iter())
                .copied()
                .collect();
            for p in ports {
                m.loads[p.index()] += 1;
            }
        }
        Ok(())
    }

    /// Extracts the winning side: a broadcast of the winner plus — for
    /// subtree winners — one wave down the snapshotted tree.
    fn side(
        &mut self,
        best_node: Option<NodeId>,
        singleton: NodeId,
    ) -> Result<Vec<bool>, MinCutError> {
        let msg = SideMsg {
            singleton: best_node.is_none(),
            v: best_node.unwrap_or(singleton).raw(),
        };
        let inputs: Vec<(TreeInfo, Option<SideMsg>)> = (0..self.n)
            .map(|v| {
                (
                    self.mems[v].bfs.clone(),
                    (v == self.leader.index()).then_some(msg),
                )
            })
            .collect();
        let out = self.net.run("side.bc", &Broadcast::new(), inputs)?;
        let announced = out.outputs;
        if msg.singleton {
            return Ok((0..self.n).map(|v| v as u32 == announced[v].v).collect());
        }
        let inputs: Vec<SideInput> = (0..self.n)
            .map(|v| {
                let m = &self.mems[v];
                SideInput {
                    parent: m.snap_parent,
                    children: m.snap_children.clone(),
                    vstar: announced[v].v,
                }
            })
            .collect();
        let out = self.net.run("side.flood", &SideFlood, inputs)?;
        Ok(out.outputs)
    }

    /// The current tree's edge set (test/debug view assembled from the
    /// per-node port markings).
    #[cfg(test)]
    fn tree_edges(&self) -> Vec<graphs::EdgeId> {
        let mut edges: BTreeSet<u32> = BTreeSet::new();
        for m in &self.mems {
            for &p in m.tree_ports.iter().chain(m.inter_ports.iter()) {
                edges.insert(m.edge_ids[p.index()]);
            }
        }
        edges.into_iter().map(graphs::EdgeId::new).collect()
    }
}

/// Runs the packing pipeline; see [`PipelineOpts`].
pub(crate) fn run_pipeline(
    g: &WeightedGraph,
    opts: &PipelineOpts,
) -> Result<PipelineOutcome, MinCutError> {
    run_pipeline_traced(g, opts).map_err(|(e, _)| e)
}

/// [`run_pipeline`] that surrenders the metrics ledger accumulated up to
/// the point of failure alongside the error. The self-healing driver
/// ([`crate::dist::recover`]) needs both: the typed
/// [`congest::CongestError::NodeSuspected`] carries the virtual-round
/// clock for rebasing the crash schedule, and the partial ledger is what
/// makes an aborted attempt's cost visible in the merged accounting.
pub(crate) fn run_pipeline_traced(
    g: &WeightedGraph,
    opts: &PipelineOpts,
) -> Result<PipelineOutcome, (MinCutError, MetricsLedger)> {
    run_pipeline_checkpointed(g, opts, None, None)
}

/// [`run_pipeline_traced`] with the self-healing driver's checkpoint
/// seam: `resume` restores pre-validated structures from an earlier
/// attempt's [`RecoveryLog`] (skipping the stages that produced them),
/// and `log` captures this attempt's own stage outputs as they
/// complete. Both default to off — `exact_mincut` and the baselines pay
/// nothing for the seam.
pub(crate) fn run_pipeline_checkpointed(
    g: &WeightedGraph,
    opts: &PipelineOpts,
    resume: Option<&ResumeSpec>,
    log: Option<&mut RecoveryLog>,
) -> Result<PipelineOutcome, (MinCutError, MetricsLedger)> {
    let n = g.node_count();
    if n < 2 {
        return Err((MinCutError::TooSmall { nodes: n }, MetricsLedger::new()));
    }
    // No upper bound on n here: the case-2 pair aggregation packs
    // attachment pairs into u64 stream keys (2⌈log₂ n⌉ bits), so every
    // n addressable by u32 node ids is in range for exact and approx
    // drivers alike.
    if !graphs::traversal::is_connected(g) {
        return Err((MinCutError::Disconnected, MetricsLedger::new()));
    }
    // Packing weights (skeleton or original), shared-coin sampled.
    let pack_edge: Vec<u64> = match opts.sample {
        None => g.edges().map(|e| g.weight(e)).collect(),
        Some((p, seed)) => g
            .edges()
            .map(|e| crate::seq::sampling::binomial(g.weight(e), p, seed, e.raw() as u64))
            .collect(),
    };
    // The packing subgraph must span the nodes.
    {
        let mut dsu = trees::DisjointSets::new(n);
        for (e, u, v, _) in g.edge_tuples() {
            if pack_edge[e.index()] > 0 {
                dsu.union(u.index(), v.index());
            }
        }
        if dsu.set_count() > 1 {
            return Err((MinCutError::Disconnected, MetricsLedger::new()));
        }
    }

    let mut pl = match resume.and_then(|s| s.bfs.as_ref()) {
        Some((leader, parents)) => Pipeline::new_restored(
            g,
            opts.network.clone(),
            opts.mst.clone(),
            &pack_edge,
            *leader,
            parents,
        )?,
        None => Pipeline::new(
            g,
            opts.network.clone(),
            opts.mst.clone(),
            opts.election,
            &pack_edge,
        )?,
    };
    // Fail-fast distributed re-validation of the restored structures: a
    // node that died since the checkpoint aborts here (cheaply), before
    // any restored evidence is acted on. The structural re-runs of the
    // shrunk-survivor path validate themselves (each restored tree's
    // cut stage runs in full), so the explicit phases only cover the
    // evidence path.
    if let Some(spec) = resume {
        if let Some((_, parents)) = &spec.bfs {
            if let Err(e) = pl.validate_restored(&format!("{}.bfs", spec.prefix), parents) {
                let ledger = pl.net.ledger().clone();
                return Err((e, ledger));
            }
        }
        // Trusted trees replay their cut values without re-running the
        // cut stage, so their structure is the evidence — validate the
        // deepest trusted entry whether the BFS tree was restored or
        // freshly elected (the pendant-excision trust path arrives
        // here with `bfs: None`: the dead leader invalidated the BFS
        // tree but not the finished trees' cut values).
        if let Some((edges, _)) = spec.trees.iter().rev().find(|(_, c)| c.is_some()) {
            let parents = reroot(n, edges, pl.leader.raw());
            if let Err(e) = pl.validate_restored(&format!("{}.trees", spec.prefix), &parents) {
                let ledger = pl.net.ledger().clone();
                return Err((e, ledger));
            }
        }
    }
    match drive_packing(&mut pl, opts, resume, log) {
        Ok(outcome) => Ok(outcome),
        Err(e) => {
            let ledger = pl.net.ledger().clone();
            Err((e, ledger))
        }
    }
}

/// The packing loop proper, on an initialised pipeline: packs trees until
/// the target is met and assembles the outcome. Split out of
/// [`run_pipeline_traced`] so a failure leaves `pl` — and its ledger —
/// accessible to the caller.
fn drive_packing(
    pl: &mut Pipeline<'_>,
    opts: &PipelineOpts,
    resume: Option<&ResumeSpec>,
    mut log: Option<&mut RecoveryLog>,
) -> Result<PipelineOutcome, MinCutError> {
    let n = pl.n;
    if let Some(log) = log.as_deref_mut() {
        log.leader = Some(pl.leader.raw());
        log.bfs = Some(pl.bfs_parents());
        log.trees.clear();
    }
    let (mut best_value, singleton) = pl.init_deg()?;
    let mut best_node: Option<NodeId> = None;
    let mut trees_to_best = 0usize;
    let mut packed = 0usize;
    let mut tree_edges: Vec<Vec<graphs::EdgeId>> = Vec::new();
    // Restore the checkpointed trees before packing new ones. Trusted
    // entries (unchanged participant set) replay their bookkeeping —
    // loads, best-so-far, the side-flood snapshot — at zero rounds; the
    // rest re-run their cut stage on the restored structure (the MST
    // stages, the expensive part, are skipped either way).
    if let Some(spec) = resume {
        pl.net.obs_emit("recover.resume", spec.trees.len() as u64);
        let mut snap: Option<Vec<Option<u32>>> = None;
        for (edges, cut) in &spec.trees {
            let parents = reroot(n, edges, pl.leader.raw());
            tree_edges.push(pl.edge_ids_of(&parents));
            packed += 1;
            let (minc, argmin, replayed) = match cut {
                Some((c, (x, y))) => {
                    pl.replay_tree_loads(&parents);
                    // The checkpointed argmin names a tree edge; its
                    // argmin *node* is whichever endpoint is the child
                    // under this attempt's rooting (a fresh leader may
                    // have flipped the orientation).
                    let a = if parents[*x as usize] == Some(*y) {
                        *x
                    } else {
                        debug_assert_eq!(parents[*y as usize], Some(*x));
                        *y
                    };
                    (*c, NodeId::new(a), true)
                }
                None => {
                    pl.install_tree(&parents);
                    let (minc, argmin) = pl.cut_stage()?;
                    pl.finish_tree(minc < best_value)?;
                    (minc, argmin, false)
                }
            };
            if minc < best_value {
                best_value = minc;
                best_node = Some(argmin);
                trees_to_best = packed;
                // A structural tree that improves the bound snapshots
                // itself inside `finish_tree`; a replayed one runs no
                // phases, so the driver re-installs its snapshot after
                // the loop (only if it is still the best).
                snap = replayed.then(|| parents.clone());
            }
            if let Some(log) = log.as_deref_mut() {
                log.trees.push((parents, (minc, argmin.raw())));
                pl.net.obs_emit("recover.checkpoint", packed as u64);
            }
        }
        if let Some(parents) = &snap {
            pl.install_snap(parents);
        }
    }
    while packed < opts.target.target(n, best_value) {
        pl.reset_tree();
        pl.mst_phase_a()?;
        let reports = pl.mst_phase_b()?;
        pl.orient(reports)?;
        // Snapshot the finished tree's edge set (orientation installs
        // the inter-fragment links and re-roots the fragments, so only
        // now does every node but the leader hold its global-parent
        // edge).
        let mut edges: Vec<graphs::EdgeId> = pl
            .mems
            .iter()
            .filter_map(|m| {
                m.t_parent()
                    .map(|p| graphs::EdgeId::new(m.edge_ids[p.index()]))
            })
            .collect();
        edges.sort_unstable();
        tree_edges.push(edges);
        let (minc, argmin) = pl.cut_stage()?;
        packed += 1;
        let improved = minc < best_value;
        if improved {
            best_value = minc;
            best_node = Some(argmin);
            trees_to_best = packed;
        }
        pl.finish_tree(improved)?;
        if let Some(log) = log.as_deref_mut() {
            log.trees.push((pl.tree_parents(), (minc, argmin.raw())));
            pl.net.obs_emit("recover.checkpoint", packed as u64);
        }
    }
    let side = pl.side(best_node, singleton)?;
    let cut = CutResult {
        side,
        value: best_value,
    };
    debug_assert_eq!(
        graphs::cut::cut_of_side(pl.g, &cut.side),
        cut.value,
        "the announced side must evaluate to the announced value"
    );
    Ok(PipelineOutcome {
        cut,
        trees_packed: packed,
        trees_to_best,
        best_node,
        rounds: pl.net.ledger().total_rounds(),
        messages: pl.net.ledger().total_messages(),
        ledger: pl.net.ledger().clone(),
        tree_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::stoer_wagner;
    use crate::seq::tree_packing::{greedy_packing, packing_mincut};
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn opts_fixed(k: usize) -> PipelineOpts {
        PipelineOpts {
            network: NetworkConfig::default(),
            mst: MstConfig::default(),
            target: PackingTarget::Fixed(k),
            sample: None,
            election: Election::default(),
        }
    }

    /// The distributed MST of every packing iteration equals the unique
    /// sequential relative-load MST — same edges, same weight.
    #[test]
    fn distributed_mst_matches_sequential_packing_trees() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut cases = vec![
            generators::torus2d(5, 5).unwrap(),
            generators::clique_pair(8, 3).unwrap().graph,
            generators::caterpillar(8, 2).unwrap(),
        ];
        let base = generators::erdos_renyi_connected(30, 0.2, &mut rng).unwrap();
        cases.push(generators::randomize_weights(&base, 1, 8, &mut rng).unwrap());
        for g in &cases {
            let k = 3;
            let want = greedy_packing(g, k).unwrap();
            let pack_edge: Vec<u64> = g.edges().map(|e| g.weight(e)).collect();
            let mut pl = Pipeline::new(
                g,
                NetworkConfig::default(),
                MstConfig::default(),
                Election::default(),
                &pack_edge,
            )
            .unwrap();
            pl.init_deg().unwrap();
            for tree_want in want.iter().take(k) {
                pl.reset_tree();
                pl.mst_phase_a().unwrap();
                let reports = pl.mst_phase_b().unwrap();
                pl.orient(reports).unwrap();
                let got = pl.tree_edges();
                let mut want_sorted = tree_want.clone();
                want_sorted.sort_unstable();
                assert_eq!(got, want_sorted, "n = {}", g.node_count());
                // Weights agree with the sequential MST as well.
                let got_w: u64 = got.iter().map(|&e| g.weight(e)).sum();
                let want_w: u64 = want_sorted.iter().map(|&e| g.weight(e)).sum();
                assert_eq!(got_w, want_w);
                // Advance the loads exactly like the packing loop.
                pl.cut_stage().unwrap();
                pl.finish_tree(false).unwrap();
            }
        }
    }

    /// The distributed 1-respecting stage computes the same `C(v↓)` as
    /// Karger's sequential dynamic program on the same tree.
    #[test]
    fn distributed_one_respecting_matches_karger_dp_oracle() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cases = vec![
            generators::cycle(17).unwrap(),
            generators::grid2d(4, 6).unwrap(),
            generators::torus2d(4, 4).unwrap(),
            generators::clique_pair(7, 2).unwrap().graph,
            generators::das_sarma_style(2, 8).unwrap(),
        ];
        for n in [14usize, 26] {
            let base = generators::erdos_renyi_connected(n, 0.25, &mut rng).unwrap();
            cases.push(generators::randomize_weights(&base, 1, 6, &mut rng).unwrap());
        }
        for g in &cases {
            let pack_edge: Vec<u64> = g.edges().map(|e| g.weight(e)).collect();
            let mut pl = Pipeline::new(
                g,
                NetworkConfig::default(),
                MstConfig::default(),
                Election::default(),
                &pack_edge,
            )
            .unwrap();
            pl.init_deg().unwrap();
            pl.reset_tree();
            pl.mst_phase_a().unwrap();
            let reports = pl.mst_phase_b().unwrap();
            pl.orient(reports).unwrap();
            let (minc, argmin) = pl.cut_stage().unwrap();
            // Sequential oracle on the same tree, rooted at the leader.
            let edges = pl.tree_edges();
            let tree = trees::spanning::to_rooted(g, &edges, NodeId::new(0)).unwrap();
            let cuts = crate::seq::karger_dp::one_respecting_cuts(g, &tree);
            for (v, &want) in cuts.iter().enumerate() {
                assert_eq!(
                    pl.mems[v].cval,
                    want,
                    "C(v↓) mismatch at node {v} (n = {})",
                    g.node_count()
                );
            }
            let want = crate::seq::karger_dp::min_one_respecting(g, &tree).unwrap();
            assert_eq!((minc, argmin), want);
        }
    }

    /// Full parity with the sequential packing pipeline: same value,
    /// same side, same tree counts.
    #[test]
    fn exact_mincut_mirrors_sequential_packing_mincut() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut cases = vec![
            generators::cycle(12).unwrap(),
            generators::torus2d(4, 5).unwrap(),
            generators::clique_pair(6, 2).unwrap().graph,
        ];
        let base = generators::erdos_renyi_connected(22, 0.25, &mut rng).unwrap();
        cases.push(generators::randomize_weights(&base, 1, 5, &mut rng).unwrap());
        for g in &cases {
            let seq = packing_mincut(g, &PackingConfig::default()).unwrap();
            let dist = exact_mincut(g, &ExactConfig::default()).unwrap();
            assert_eq!(dist.cut.value, seq.cut.value);
            assert_eq!(dist.cut.side, seq.cut.side);
            assert_eq!(dist.trees_packed, seq.trees_packed);
            assert_eq!(dist.trees_to_best, seq.trees_to_best);
            assert_eq!(dist.best_node, seq.best_node);
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let single = WeightedGraph::from_edges(1, []).unwrap();
        assert!(matches!(
            exact_mincut(&single, &ExactConfig::default()),
            Err(MinCutError::TooSmall { nodes: 1 })
        ));
        let disconnected = WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(matches!(
            exact_mincut(&disconnected, &ExactConfig::default()),
            Err(MinCutError::Disconnected)
        ));
    }

    #[test]
    fn two_node_graph_works() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 5)]).unwrap();
        let r = exact_mincut(&g, &ExactConfig::default()).unwrap();
        assert_eq!(r.cut.value, 5);
        assert!(r.cut.is_proper());
        assert_eq!(stoer_wagner(&g).unwrap().value, 5);
    }

    #[test]
    fn fixed_packing_size_is_respected() {
        let g = generators::torus2d(4, 4).unwrap();
        let outcome = run_pipeline(
            &g,
            &PipelineOpts {
                target: PackingTarget::Fixed(2),
                ..opts_fixed(2)
            },
        )
        .unwrap();
        assert_eq!(outcome.trees_packed, 2);
        assert!(outcome.cut.is_proper());
    }
}
