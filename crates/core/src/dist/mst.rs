//! The distributed minimum spanning tree, Kutten–Peleg style, as used by
//! the greedy tree packing.
//!
//! The MST is built in two phases over whatever edge key the packing
//! supplies (relative load, weight, edge id — a strict total order, so
//! the MST is unique and equals the sequential
//! [`trees::mst::kruskal_by`] tree):
//!
//! * **Phase A (`mstA.*`) — capped local growth.** Fragments grow by
//!   Borůvka hooking with a size cap of `√n`: each level, every live
//!   fragment finds its minimum outgoing edge (convergecast over the
//!   fragment tree), flips a deterministic shared coin, and *tails*
//!   fragments hook into their target when the target is *heads* or
//!   already frozen (size ≥ cap). Heads/tails mating keeps hook chains at
//!   length one, so a level costs `O(fragment diameter)` rounds and all
//!   fragments run in parallel. After `O(log n)` levels every fragment
//!   has ≥ `√n` nodes, so at most `√n` fragments remain.
//! * **Phase B (`mstB.*`) — Borůvka through the leader.** With `k ≤ √n`
//!   fragments left, each iteration aggregates the per-component minimum
//!   outgoing edge at the leader with one pipelined grouped argmin over
//!   the BFS tree (`O(k + D)` rounds), the leader merges components
//!   locally and broadcasts the merge table (`O(k + D)`), and components
//!   at least halve. Fragments stay *physical* (their internal trees are
//!   untouched); phase-B edges become the inter-fragment edges of the
//!   final tree, which is exactly the fragment decomposition Section 2
//!   needs.
//!
//! This module holds the node-side algorithms and wire types; the phase
//! sequencing lives in [`crate::dist::driver`].

use crate::dist::packing::Cand;
use congest::message::TAG_BITS;
use congest::primitives::grouped_min::KeyedItem;
use congest::{value_bits, Algorithm, FinishResult, Message, NodeCtx, Outbox, Port, Step};

/// Which phase-A engine [`crate::dist::driver`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MstAMode {
    /// The PR 1–7 protocol: per-level full label delta-exchange, counting
    /// convergecast (`.cand`), separate decision broadcast (`.dec`), and
    /// shared-coin heads/tails mating. Kept as the parity oracle.
    Legacy,
    /// The fused protocol: per-port boundary-only label exchange with
    /// local relabel inference, one up-then-down `.cd` pass with
    /// depth-scheduled delta-convergecast (silence = unchanged, silence
    /// down = no hook), frozen fragments out of the loop entirely, and
    /// deterministic lowest-differing-bit fragment mating (no coins).
    /// Same outputs, a fraction of the messages. See `docs/mst.md`.
    #[default]
    Optimized,
}

/// Configuration of the distributed MST stage.
#[derive(Clone, Debug, PartialEq)]
pub struct MstConfig {
    /// Fragment size cap of phase A; `None` derives the paper's `⌈√n⌉`.
    /// Smaller caps mean more (cheaper) fragments, larger caps fewer
    /// (deeper) ones — experiment E8 sweeps this.
    pub cap: Option<usize>,
    /// Safety cap on phase-A levels (the heads/tails mating argument
    /// finishes in `O(log n)` levels with overwhelming probability; any
    /// fragments still small after `max_levels` are simply handed to
    /// phase B, which remains correct).
    pub max_levels: usize,
    /// Seed of the deterministic shared fragment coins (legacy mating
    /// only; the optimized mode is coin-free).
    pub seed: u64,
    /// Which phase-A engine to run.
    pub mode: MstAMode,
}

impl Default for MstConfig {
    fn default() -> Self {
        MstConfig {
            cap: None,
            max_levels: 96,
            seed: 0x4d53_5431,
            mode: MstAMode::default(),
        }
    }
}

impl MstConfig {
    /// The effective fragment size cap for an `n`-node network.
    pub fn effective_cap(&self, n: usize) -> usize {
        match self.cap {
            Some(c) => c.max(2),
            None => (n as f64).sqrt().ceil() as usize,
        }
    }

    /// The deterministic shared coin of `frag` at `level`: `true` =
    /// heads (accepts hooks), `false` = tails (tries to hook). Every
    /// node can evaluate any fragment's coin locally — the coins are
    /// public randomness derived from the seed, which is the standard
    /// shared-coin assumption. Legacy mating only.
    pub fn heads(&self, frag: u32, level: usize) -> bool {
        crate::seq::sampling::splitmix64(
            self.seed ^ (level as u64).wrapping_mul(0x9E37_79B9) ^ frag as u64,
        ) & 1
            == 0
    }
}

/// The optimized mode's deterministic mating rule — a one-shot
/// Cole–Vishkin-style symmetry breaker on the fragment choice graph.
/// Fragment `frag`, whose minimum outgoing edge leads to (unfrozen)
/// fragment `target`, hooks along it iff `frag`'s bit is `0` at the
/// *lowest differing bit position* of the two ids.
///
/// Two properties replace the coin argument:
///
/// * **No 2-cycles.** For any unordered pair `{F, T}` the rule fires in
///   exactly one direction (the differing bit is `0` on exactly one
///   side), so two fragments that choose each other — in particular the
///   two endpoints of a GHS *core* edge — never both hook: one hooks,
///   the other is not hooking and therefore accepts. Hook chains have
///   length one, exactly the invariant the coins bought, but now on
///   *every* level instead of in expectation.
/// * **Progress.** In each choice-graph component the minimum-key edge
///   is the minimum outgoing edge of *both* endpoints (keys are a total
///   order), and by the point above exactly one endpoint hooks along it
///   and the other accepts — every component merges at least one pair
///   per level, so phase A still finishes in `O(log n)` levels,
///   deterministically.
pub fn hooks_toward(frag: u32, target: u32) -> bool {
    debug_assert_ne!(frag, target, "choice edges join distinct fragments");
    let i = (frag ^ target).trailing_zeros();
    (frag >> i) & 1 == 0
}

// ---------------------------------------------------------------------------
// Phase A wire types
// ---------------------------------------------------------------------------

/// The `mstA.*.exch` payload: the sender's fragment and frozen state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragMsg {
    /// Sender's fragment id.
    pub frag: u32,
    /// Sender's fragment is frozen.
    pub frozen: bool,
}

impl Message for FragMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.frag as u64) + 1
    }
}

/// An annotated phase-A candidate: the edge's packing key plus whether
/// the fragment across it is frozen (frozen targets accept hooks
/// unconditionally, so tails/heads mating is unnecessary there).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ACand {
    /// The candidate edge's key fields.
    pub cand: Cand,
    /// The fragment across the edge is frozen.
    pub target_frozen: bool,
}

/// The better (smaller-key) of two optional annotated candidates.
pub fn better_a(a: Option<ACand>, b: Option<ACand>) -> Option<ACand> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.cand.key() <= y.cand.key() { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Aggregate carried up the fragment tree in `mstA.*.cand`: subtree size
/// plus the best outgoing candidate seen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandAgg {
    /// Nodes in the subtree.
    pub size: u64,
    /// Best outgoing edge in the subtree, if any.
    pub cand: Option<ACand>,
}

impl congest::primitives::Aggregate for CandAgg {
    fn combine(&self, other: &Self) -> Self {
        CandAgg {
            size: self.size + other.size,
            cand: better_a(self.cand, other.cand),
        }
    }

    fn bits(&self) -> usize {
        // Presence bit + candidate fields + frozen flag.
        value_bits(self.size) + 1 + self.cand.map_or(0, |c| c.cand.bits() + 1)
    }
}

/// The per-fragment decision broadcast down the fragment tree in
/// `mstA.*.dec`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecMsg {
    /// The fragment has reached the size cap.
    pub frozen: bool,
    /// Edge to hook along this level (`None`: stay put).
    pub hook_edge: Option<u32>,
}

impl Message for DecMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS + 2 + self.hook_edge.map_or(0, |e| value_bits(e as u64))
    }
}

// ---------------------------------------------------------------------------
// Phase A hook handshake + re-root flood
// ---------------------------------------------------------------------------

/// A node's role in one `mstA.*.hook` phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HookRole {
    /// The chosen endpoint of a tails fragment's hook edge.
    Connector {
        /// Port of the hook edge.
        port: Port,
        /// Fragment id on the other side (learned in the exchange).
        target_frag: u32,
    },
    /// Other member of a hooking fragment: awaits the re-root flood.
    Await,
    /// Member of a fragment that is not hooking this level.
    Passive,
}

/// Input of [`FragHook`].
#[derive(Clone, Debug)]
pub struct HookInput {
    /// Current in-fragment tree ports (undirected set: parent + children).
    pub tree_ports: Vec<Port>,
    /// This node's role.
    pub role: HookRole,
    /// Whether this node's fragment accepts incoming hooks this level
    /// (fragment is heads or frozen).
    pub eligible: bool,
    /// Whether this node's fragment is frozen (echoed in grants so the
    /// absorbed fragment adopts the state).
    pub frozen: bool,
}

/// Output of [`FragHook`].
#[derive(Clone, Debug, Default)]
pub struct HookOutput {
    /// `Some((f, frozen))`: the fragment re-rooted, adopting fragment id
    /// `f` and the target fragment's frozen state.
    pub new_frag: Option<(u32, bool)>,
    /// New parent port after a re-root (the hook port at the connector).
    pub new_parent: Option<Port>,
    /// Hook ports accepted from other fragments (new child tree edges).
    pub accepted: Vec<Port>,
}

/// Messages of [`FragHook`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HookMsg {
    /// "My (tails) fragment wants to merge along this edge."
    Request,
    /// "Granted — adopt my fragment id." Carries the granting fragment's
    /// frozen state so absorbed members know whether to keep competing.
    Accept {
        /// The granting fragment is already frozen.
        frozen: bool,
    },
    /// "Denied — my fragment is tails too, try another level."
    Reject,
    /// Re-root flood: adopt fragment `frag`, parent = arrival port.
    Reroot {
        /// The adopted fragment id.
        frag: u32,
        /// The adopted fragment's frozen state.
        frozen: bool,
    },
    /// The hook was rejected: keep the old tree, stop waiting.
    Keep,
}

impl Message for HookMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + match self {
                HookMsg::Accept { .. } => 1,
                HookMsg::Reroot { frag, .. } => 1 + value_bits(*frag as u64),
                _ => 0,
            }
    }
}

/// One level's hook handshake: connectors fire a request at boot, targets
/// grant or deny in round 1 based on their fragment's coin, and granted
/// fragments re-root toward the hook edge with an in-fragment flood.
///
/// **Mutual choices** (two tails fragments whose minimum outgoing edges
/// coincide — GHS "core" edges) merge unconditionally: both connectors
/// see each other's request on the hook edge in round 1 and the
/// larger-id fragment re-roots into the smaller. Every choice-graph
/// component contains such a core edge, so each level makes progress
/// regardless of the coins.
///
/// Rounds: `2 + fragment diameter`; all fragments in parallel.
#[derive(Clone, Debug, Default)]
pub struct FragHook;

/// Node state for [`FragHook`].
#[derive(Debug)]
pub struct HookState {
    input: HookInput,
    my_frag: u32,
    out: HookOutput,
}

impl Algorithm for FragHook {
    type Input = (HookInput, u32);
    type State = HookState;
    type Msg = HookMsg;
    type Output = HookOutput;

    fn boot(
        &self,
        _ctx: &NodeCtx<'_>,
        (input, my_frag): Self::Input,
    ) -> (HookState, Outbox<HookMsg>) {
        let mut out = Outbox::new();
        if let HookRole::Connector { port, .. } = input.role {
            out.send(port, HookMsg::Request);
        }
        (
            HookState {
                input,
                my_frag,
                out: HookOutput::default(),
            },
            out,
        )
    }

    fn round(
        &self,
        s: &mut HookState,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Port, HookMsg)],
    ) -> Step<HookMsg> {
        let mut out = Outbox::new();
        let hook_port = match s.input.role {
            HookRole::Connector { port, .. } => Some(port),
            _ => None,
        };
        // Requests only ever arrive in round 1 (sent at boot). A request
        // on the connector's own hook port is the mutual case, handled in
        // the connector logic below instead of being answered.
        for (port, msg) in inbox {
            if matches!(msg, HookMsg::Request) && Some(*port) != hook_port {
                if s.input.eligible {
                    s.out.accepted.push(*port);
                    out.send(
                        *port,
                        HookMsg::Accept {
                            frozen: s.input.frozen,
                        },
                    );
                } else {
                    out.send(*port, HookMsg::Reject);
                }
            }
        }
        match s.input.role.clone() {
            HookRole::Passive => {
                // Nothing else can reach a passive node after round 1.
                return Step::Halt(out);
            }
            HookRole::Connector { port, target_frag } => {
                let mutual = inbox
                    .iter()
                    .any(|(p, m)| *p == port && matches!(m, HookMsg::Request));
                if mutual {
                    // Core edge: merge now, larger fragment id yields.
                    // Both sides are tails, hence unfrozen.
                    let flood = if s.my_frag > target_frag {
                        s.out.new_frag = Some((target_frag, false));
                        s.out.new_parent = Some(port);
                        HookMsg::Reroot {
                            frag: target_frag,
                            frozen: false,
                        }
                    } else {
                        s.out.accepted.push(port);
                        HookMsg::Keep
                    };
                    for &p in &s.input.tree_ports {
                        out.send(p, flood);
                    }
                    return Step::Halt(out);
                }
                let reply = inbox.iter().find_map(|(p, m)| {
                    (*p == port && matches!(m, HookMsg::Accept { .. } | HookMsg::Reject))
                        .then_some(*m)
                });
                if let Some(reply) = reply {
                    let flood = if let HookMsg::Accept { frozen } = reply {
                        s.out.new_frag = Some((target_frag, frozen));
                        s.out.new_parent = Some(port);
                        HookMsg::Reroot {
                            frag: target_frag,
                            frozen,
                        }
                    } else {
                        HookMsg::Keep
                    };
                    for &p in &s.input.tree_ports {
                        out.send(p, flood);
                    }
                    return Step::Halt(out);
                }
            }
            HookRole::Await => {
                let flood = inbox.iter().find_map(|(p, m)| {
                    matches!(m, HookMsg::Reroot { .. } | HookMsg::Keep).then_some((*p, *m))
                });
                if let Some((from, msg)) = flood {
                    if let HookMsg::Reroot { frag, frozen } = msg {
                        s.out.new_frag = Some((frag, frozen));
                        s.out.new_parent = Some(from);
                    }
                    for &p in &s.input.tree_ports {
                        if p != from {
                            out.send(p, msg);
                        }
                    }
                    return Step::Halt(out);
                }
            }
        }
        Step::Continue(out)
    }

    fn finish(&self, s: HookState, _ctx: &NodeCtx<'_>) -> FinishResult<HookOutput> {
        Ok(s.out)
    }
}

// ---------------------------------------------------------------------------
// Optimized phase A: fused cand/dec round-trip (`mstA.*.cd`)
// ---------------------------------------------------------------------------

/// The optimized phase-A candidate: the edge's packing key plus the
/// fragment across it — the root needs the target's *id* to evaluate
/// [`hooks_toward`] and its frozen state for the unconditional-hook rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptCand {
    /// The candidate edge's key fields.
    pub cand: Cand,
    /// Fragment id across the edge.
    pub target_frag: u32,
    /// The fragment across the edge is frozen.
    pub target_frozen: bool,
}

/// The better (smaller-key) of two optional optimized candidates.
pub fn better_opt(a: Option<OptCand>, b: Option<OptCand>) -> Option<OptCand> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.cand.key() <= y.cand.key() { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The subtree aggregate of the fused pass: size plus best outgoing
/// candidate. Unlike [`CandAgg`] this is a *wire* type (the `.cd` pass
/// does its own delta-scheduled aggregation instead of going through the
/// counting [`congest::primitives::Convergecast`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptAgg {
    /// Nodes in the subtree.
    pub size: u64,
    /// Best outgoing edge in the subtree, if any.
    pub cand: Option<OptCand>,
}

/// Messages of [`CandDec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CdMsg {
    /// Subtree aggregate, child → parent (only when changed).
    Up(OptAgg),
    /// Fragment decision, parent → child (only when hooking or freezing).
    Dec(DecMsg),
}

impl Message for CdMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + match self {
                CdMsg::Up(a) => {
                    value_bits(a.size)
                        + 1
                        + a.cand
                            .map_or(0, |c| c.cand.bits() + value_bits(c.target_frag as u64) + 1)
                }
                CdMsg::Dec(d) => 2 + d.hook_edge.map_or(0, |e| value_bits(e as u64)),
            }
    }
}

/// Input of [`CandDec`] for one node. The caches (`sent`, `children`)
/// persist across levels in the driver's `NodeMem` — they are what makes
/// the convergecast a *delta*: a quiescent subtree stays silent.
#[derive(Clone, Debug)]
pub struct CdInput {
    /// Fragment-tree view (parent + children ports).
    pub tree: congest::TreeInfo,
    /// This node's depth in its fragment tree (maintained by the hook
    /// phase; roots are 0).
    pub depth: u32,
    /// Maximum unfrozen-fragment depth network-wide this level — the
    /// shared schedule bound (driver control plane, see `docs/mst.md`).
    pub maxdepth: u32,
    /// This node's fragment id.
    pub frag: u32,
    /// Phase-A size cap.
    pub cap: u64,
    /// Frozen fragments sit the pass out entirely (level skip).
    pub frozen: bool,
    /// This node's best local outgoing candidate.
    pub local: Option<OptCand>,
    /// This node's tree links flipped since the last level (re-root
    /// path): send unconditionally so the (possibly new) parent's cache
    /// entry is refreshed.
    pub purge: bool,
    /// The aggregate last sent up (`None` before the first send).
    pub sent: Option<OptAgg>,
    /// Last aggregate received per port (children caches).
    pub children: Vec<Option<OptAgg>>,
}

/// Output of [`CandDec`] for one node.
#[derive(Clone, Debug, Default)]
pub struct CdOutput {
    /// The decision this node learned: at a root, its own (if it decided
    /// to act); elsewhere, the broadcast received. `None` = the fragment
    /// neither hooks nor freezes this level (the silent default).
    pub dec: Option<DecMsg>,
    /// Updated `sent` cache, to persist in `NodeMem`.
    pub sent: Option<OptAgg>,
    /// Updated children caches, to persist in `NodeMem`.
    pub children: Vec<Option<OptAgg>>,
}

/// The fused cand/dec round-trip (`mstA.l*.cd`): one up-then-down pass
/// over every unfrozen fragment tree.
///
/// **Up.** A node at depth `d` sends its subtree aggregate at round
/// `maxdepth − d` — *iff* it differs from what it last sent (or the
/// fragment was restructured). By that round all children (depth `d+1`,
/// scheduled one round earlier) have spoken or stayed silent, and
/// silence means "unchanged": the parent's cached copy is current. A
/// fully quiescent subtree costs zero messages.
///
/// **Down.** The root's aggregate is complete at round `maxdepth`; it
/// decides (freeze at the cap, else the [`hooks_toward`] mating rule on
/// the best candidate) and broadcasts the decision — *only* if the
/// fragment hooks or freezes. Members that hear nothing by round
/// `maxdepth + depth` know the fragment stays put and halt: silence
/// down is "no hook", and a fragment whose minimum outgoing edge went
/// nowhere this level ends the pass with zero traffic in both
/// directions.
///
/// Rounds: `maxdepth + depth` per node, ≤ `2·maxdepth` + 1 total —
/// the same order as the counting convergecast plus broadcast it fuses,
/// one phase instead of two.
#[derive(Clone, Debug, Default)]
pub struct CandDec;

/// Node state for [`CandDec`].
#[derive(Debug)]
pub struct CdState {
    input: CdInput,
    dec: Option<DecMsg>,
}

impl CdState {
    /// Own value + cached child aggregates. Every current child has a
    /// live cache entry by this node's send slot: unchanged children
    /// carried one over, restructured children were forced to speak.
    fn compute(&self) -> OptAgg {
        let mut agg = OptAgg {
            size: 1,
            cand: self.input.local,
        };
        for &p in &self.input.tree.children {
            if let Some(c) = &self.input.children[p.index()] {
                agg.size += c.size;
                agg.cand = better_opt(agg.cand, c.cand);
            }
        }
        agg
    }

    /// The root's per-fragment decision on its completed aggregate.
    fn decide(&self, agg: OptAgg) -> Option<DecMsg> {
        let frozen = agg.size >= self.input.cap;
        let hook_edge = if frozen {
            None
        } else {
            agg.cand
                .filter(|c| c.target_frozen || hooks_toward(self.input.frag, c.target_frag))
                .map(|c| c.cand.edge)
        };
        (frozen || hook_edge.is_some()).then_some(DecMsg { frozen, hook_edge })
    }
}

impl Algorithm for CandDec {
    type Input = CdInput;
    type State = CdState;
    type Msg = CdMsg;
    type Output = CdOutput;

    fn boot(&self, _ctx: &NodeCtx<'_>, input: CdInput) -> (CdState, Outbox<CdMsg>) {
        let mut out = Outbox::new();
        // A purged node force-sends (its parent is new, or its child set
        // flipped) but keeps its caches: entries of *continuing* children
        // are still in sync with their `sent`, and every freshly flipped
        // child is itself purged and overwrites its entry this pass.
        let mut s = CdState { input, dec: None };
        if s.input.frozen {
            return (s, out);
        }
        if s.input.tree.is_root() {
            if s.input.maxdepth == 0 {
                // Singleton fragment: the aggregate is complete at boot.
                s.dec = s.decide(s.compute());
                // A singleton has no children to broadcast to.
            }
        } else if s.input.depth == s.input.maxdepth {
            // Deepest nodes send at slot 0, i.e. at boot.
            let agg = s.compute();
            if s.input.purge || s.input.sent != Some(agg) {
                s.input.sent = Some(agg);
                out.send(s.input.tree.parent.unwrap(), CdMsg::Up(agg));
            }
        }
        (s, out)
    }

    fn round(&self, s: &mut CdState, ctx: &NodeCtx<'_>, inbox: &[(Port, CdMsg)]) -> Step<CdMsg> {
        if s.input.frozen {
            return Step::halt();
        }
        for (port, msg) in inbox {
            match msg {
                CdMsg::Up(agg) => s.input.children[port.index()] = Some(*agg),
                CdMsg::Dec(d) => s.dec = Some(*d),
            }
        }
        let mut out = Outbox::new();
        let (depth, maxdepth) = (s.input.depth as u64, s.input.maxdepth as u64);
        if s.input.tree.is_root() {
            if ctx.round >= maxdepth {
                if ctx.round == maxdepth {
                    s.dec = s.decide(s.compute());
                    if let Some(d) = s.dec {
                        for &p in &s.input.tree.children {
                            out.send(p, CdMsg::Dec(d));
                        }
                    }
                }
                return Step::Halt(out);
            }
        } else {
            if ctx.round == maxdepth - depth {
                let agg = s.compute();
                if s.input.purge || s.input.sent != Some(agg) {
                    s.input.sent = Some(agg);
                    out.send(s.input.tree.parent.unwrap(), CdMsg::Up(agg));
                }
            }
            if ctx.round >= maxdepth + depth {
                if let Some(d) = s.dec {
                    for &p in &s.input.tree.children {
                        out.send(p, CdMsg::Dec(d));
                    }
                }
                return Step::Halt(out);
            }
        }
        Step::Continue(out)
    }

    fn finish(&self, s: CdState, _ctx: &NodeCtx<'_>) -> FinishResult<CdOutput> {
        Ok(CdOutput {
            dec: s.dec,
            sent: s.input.sent,
            children: s.input.children,
        })
    }
}

// ---------------------------------------------------------------------------
// Optimized phase A: depth-carrying hook handshake (`mstA.*.hook`)
// ---------------------------------------------------------------------------

/// Input of [`FragHook2`] — [`HookInput`] plus this node's fragment-tree
/// depth (so grants and re-root floods can maintain depths for the next
/// level's `.cd` schedule).
#[derive(Clone, Debug)]
pub struct HookInput2 {
    /// Current in-fragment tree ports (undirected set: parent + children).
    pub tree_ports: Vec<Port>,
    /// This node's role.
    pub role: HookRole,
    /// Whether this node's fragment accepts incoming hooks this level.
    /// Optimized mating: *every* fragment that is not itself hooking
    /// accepts (frozen included) — [`hooks_toward`] guarantees no
    /// 2-cycles, so no coin filter is needed.
    pub eligible: bool,
    /// Whether this node's fragment is frozen (echoed in grants so the
    /// absorbed fragment adopts the state).
    pub frozen: bool,
    /// This node's depth in its fragment tree.
    pub depth: u32,
}

/// Output of [`FragHook2`]: [`HookOutput`] plus the node's new depth
/// after a re-root.
#[derive(Clone, Debug, Default)]
pub struct HookOutput2 {
    /// `Some((f, frozen))`: the fragment re-rooted, adopting fragment id
    /// `f` and the target fragment's frozen state.
    pub new_frag: Option<(u32, bool)>,
    /// New parent port after a re-root (the hook port at the connector).
    pub new_parent: Option<Port>,
    /// Hook ports accepted from other fragments (new child tree edges).
    pub accepted: Vec<Port>,
    /// New fragment-tree depth after a re-root (`None`: unchanged).
    pub new_depth: Option<u32>,
}

/// Messages of [`FragHook2`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hook2Msg {
    /// "My fragment's mating rule chose this edge."
    Request,
    /// "Granted — adopt my fragment id." Carries the granting fragment's
    /// frozen state and the acceptor's depth (the connector hangs one
    /// below it).
    Accept {
        /// The granting fragment is already frozen.
        frozen: bool,
        /// The acceptor's fragment-tree depth.
        depth: u32,
    },
    /// "Denied — my fragment is hooking elsewhere, try another level."
    Reject,
    /// Re-root flood: adopt fragment `frag`, parent = arrival port,
    /// depth = `depth + 1`.
    Reroot {
        /// The adopted fragment id.
        frag: u32,
        /// The adopted fragment's frozen state.
        frozen: bool,
        /// The flooding sender's (new) depth.
        depth: u32,
    },
    /// The hook was rejected: keep the old tree, stop waiting.
    Keep,
}

impl Message for Hook2Msg {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + match self {
                Hook2Msg::Accept { depth, .. } => 1 + value_bits(*depth as u64),
                Hook2Msg::Reroot { frag, depth, .. } => {
                    1 + value_bits(*frag as u64) + value_bits(*depth as u64)
                }
                _ => 0,
            }
    }
}

/// The optimized level's hook handshake: [`FragHook`] with deterministic
/// mating and depth maintenance. Because [`hooks_toward`] admits no
/// 2-cycles, the mutual (core-edge) special case of the legacy protocol
/// cannot arise: on a core edge exactly one side is the connector and
/// the other side accepts like any target. Rounds: `2 + fragment
/// diameter`; all fragments in parallel.
#[derive(Clone, Debug, Default)]
pub struct FragHook2;

/// Node state for [`FragHook2`].
#[derive(Debug)]
pub struct Hook2State {
    input: HookInput2,
    out: HookOutput2,
}

impl Algorithm for FragHook2 {
    type Input = HookInput2;
    type State = Hook2State;
    type Msg = Hook2Msg;
    type Output = HookOutput2;

    fn boot(&self, _ctx: &NodeCtx<'_>, input: HookInput2) -> (Hook2State, Outbox<Hook2Msg>) {
        let mut out = Outbox::new();
        if let HookRole::Connector { port, .. } = input.role {
            out.send(port, Hook2Msg::Request);
        }
        (
            Hook2State {
                input,
                out: HookOutput2::default(),
            },
            out,
        )
    }

    fn round(
        &self,
        s: &mut Hook2State,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Port, Hook2Msg)],
    ) -> Step<Hook2Msg> {
        let mut out = Outbox::new();
        let hook_port = match s.input.role {
            HookRole::Connector { port, .. } => Some(port),
            _ => None,
        };
        // Requests only ever arrive in round 1 (sent at boot). The mating
        // rule fires in one direction per fragment pair, so a request can
        // never arrive on the connector's own hook port.
        for (port, msg) in inbox {
            if matches!(msg, Hook2Msg::Request) {
                debug_assert_ne!(
                    Some(*port),
                    hook_port,
                    "deterministic mating admits no mutual hooks"
                );
                if s.input.eligible {
                    s.out.accepted.push(*port);
                    out.send(
                        *port,
                        Hook2Msg::Accept {
                            frozen: s.input.frozen,
                            depth: s.input.depth,
                        },
                    );
                } else {
                    out.send(*port, Hook2Msg::Reject);
                }
            }
        }
        match s.input.role.clone() {
            HookRole::Passive => {
                // Nothing else can reach a passive node after round 1.
                return Step::Halt(out);
            }
            HookRole::Connector { port, target_frag } => {
                let reply = inbox.iter().find_map(|(p, m)| {
                    (*p == port && matches!(m, Hook2Msg::Accept { .. } | Hook2Msg::Reject))
                        .then_some(*m)
                });
                if let Some(reply) = reply {
                    let flood = if let Hook2Msg::Accept { frozen, depth } = reply {
                        s.out.new_frag = Some((target_frag, frozen));
                        s.out.new_parent = Some(port);
                        s.out.new_depth = Some(depth + 1);
                        Hook2Msg::Reroot {
                            frag: target_frag,
                            frozen,
                            depth: depth + 1,
                        }
                    } else {
                        Hook2Msg::Keep
                    };
                    for &p in &s.input.tree_ports {
                        out.send(p, flood);
                    }
                    return Step::Halt(out);
                }
            }
            HookRole::Await => {
                let flood = inbox.iter().find_map(|(p, m)| {
                    matches!(m, Hook2Msg::Reroot { .. } | Hook2Msg::Keep).then_some((*p, *m))
                });
                if let Some((from, msg)) = flood {
                    let fwd = if let Hook2Msg::Reroot {
                        frag,
                        frozen,
                        depth,
                    } = msg
                    {
                        s.out.new_frag = Some((frag, frozen));
                        s.out.new_parent = Some(from);
                        s.out.new_depth = Some(depth + 1);
                        Hook2Msg::Reroot {
                            frag,
                            frozen,
                            depth: depth + 1,
                        }
                    } else {
                        msg
                    };
                    for &p in &s.input.tree_ports {
                        if p != from {
                            out.send(p, fwd);
                        }
                    }
                    return Step::Halt(out);
                }
            }
        }
        Step::Continue(out)
    }

    fn finish(&self, s: Hook2State, _ctx: &NodeCtx<'_>) -> FinishResult<HookOutput2> {
        Ok(s.out)
    }
}

// ---------------------------------------------------------------------------
// Phase B wire types
// ---------------------------------------------------------------------------

/// The `mstB.*.exch` payload: current component and physical fragment of
/// the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompMsg {
    /// Sender's Borůvka component.
    pub comp: u32,
    /// Sender's physical fragment (phase-A).
    pub frag: u32,
}

impl Message for CompMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.comp as u64) + value_bits(self.frag as u64)
    }
}

/// A Borůvka candidate flowing up the BFS tree in `mstB.*.cand`: the best
/// outgoing edge proposal of one component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BorCand {
    /// The proposing component (grouping key).
    pub comp: u32,
    /// The candidate edge's packing key fields.
    pub cand: Cand,
    /// Component on the other side of the edge.
    pub other_comp: u32,
}

impl Message for BorCand {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + value_bits(self.comp as u64)
            + self.cand.bits()
            + value_bits(self.other_comp as u64)
    }
}

impl KeyedItem for BorCand {
    fn key(&self) -> u64 {
        self.comp as u64
    }
    fn better_than(&self, other: &Self) -> bool {
        self.cand.key() < other.cand.key()
    }
}

/// Items of the `mstB.*.merge` broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeItem {
    /// Component `from` is now part of component `to`.
    Remap {
        /// Old component id.
        from: u32,
        /// New (representative) component id.
        to: u32,
    },
    /// This edge joined the tree; both endpoints mark it.
    Chosen {
        /// Global edge id.
        edge: u32,
    },
}

impl Message for MergeItem {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + match self {
                MergeItem::Remap { from, to } => value_bits(*from as u64) + value_bits(*to as u64),
                MergeItem::Chosen { edge } => value_bits(*edge as u64),
            }
    }
}

/// Items of the `mstB.report` upcast: an endpoint of a chosen
/// inter-fragment edge reporting its side, so the leader can assemble the
/// fragment tree `T_F` with exact endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReportItem {
    /// The chosen edge.
    pub edge: u32,
    /// The reporting endpoint's physical fragment.
    pub frag: u32,
    /// The reporting endpoint.
    pub node: u32,
}

impl Message for ReportItem {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + value_bits(self.edge as u64)
            + value_bits(self.frag as u64)
            + value_bits(self.node as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_cap_defaults_to_sqrt_n() {
        let cfg = MstConfig::default();
        assert_eq!(cfg.effective_cap(36), 6);
        assert_eq!(cfg.effective_cap(144), 12);
        assert_eq!(cfg.effective_cap(50), 8); // ⌈7.07⌉
        let fixed = MstConfig {
            cap: Some(1),
            ..Default::default()
        };
        // A cap below 2 would freeze singletons instantly; clamped.
        assert_eq!(fixed.effective_cap(100), 2);
    }

    #[test]
    fn coins_are_deterministic_and_mixed() {
        let cfg = MstConfig::default();
        assert_eq!(cfg.heads(5, 3), cfg.heads(5, 3));
        // Over many (frag, level) pairs both sides appear.
        let heads = (0..64u32)
            .flat_map(|f| (0..8usize).map(move |l| (f, l)))
            .filter(|&(f, l)| cfg.heads(f, l))
            .count();
        assert!((128..384).contains(&heads), "heads = {heads}/512");
    }

    #[test]
    fn message_sizes_are_logarithmic() {
        let dec = DecMsg {
            frozen: true,
            hook_edge: Some(200),
        };
        assert!(dec.bit_len() <= TAG_BITS + 2 + 8);
        let bc = BorCand {
            comp: 100,
            cand: Cand {
                load: 3,
                weight: 9,
                edge: 250,
            },
            other_comp: 40,
        };
        assert!(bc.bit_len() <= TAG_BITS + 7 + 2 + 4 + 8 + 6);
        assert_eq!(
            (HookMsg::Request.bit_len(), HookMsg::Keep.bit_len()),
            (TAG_BITS, TAG_BITS)
        );
        assert!(
            HookMsg::Reroot {
                frag: 7,
                frozen: true
            }
            .bit_len()
                <= TAG_BITS + 4
        );
    }

    #[test]
    fn bor_cand_orders_by_relative_load() {
        let mk = |load, weight, edge| BorCand {
            comp: 1,
            cand: Cand { load, weight, edge },
            other_comp: 2,
        };
        // 1/4 beats 1/2; equal ratios fall back to weight then id.
        assert!(mk(1, 4, 9).better_than(&mk(1, 2, 0)));
        assert!(mk(1, 2, 0).better_than(&mk(2, 4, 1)));
        assert!(mk(1, 2, 0).better_than(&mk(1, 2, 1)));
    }
}
