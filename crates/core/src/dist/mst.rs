//! The distributed minimum spanning tree, Kutten–Peleg style, as used by
//! the greedy tree packing.
//!
//! The MST is built in two phases over whatever edge key the packing
//! supplies (relative load, weight, edge id — a strict total order, so
//! the MST is unique and equals the sequential
//! [`trees::mst::kruskal_by`] tree):
//!
//! * **Phase A (`mstA.*`) — capped local growth.** Fragments grow by
//!   Borůvka hooking with a size cap of `√n`: each level, every live
//!   fragment finds its minimum outgoing edge (convergecast over the
//!   fragment tree), flips a deterministic shared coin, and *tails*
//!   fragments hook into their target when the target is *heads* or
//!   already frozen (size ≥ cap). Heads/tails mating keeps hook chains at
//!   length one, so a level costs `O(fragment diameter)` rounds and all
//!   fragments run in parallel. After `O(log n)` levels every fragment
//!   has ≥ `√n` nodes, so at most `√n` fragments remain.
//! * **Phase B (`mstB.*`) — Borůvka through the leader.** With `k ≤ √n`
//!   fragments left, each iteration aggregates the per-component minimum
//!   outgoing edge at the leader with one pipelined grouped argmin over
//!   the BFS tree (`O(k + D)` rounds), the leader merges components
//!   locally and broadcasts the merge table (`O(k + D)`), and components
//!   at least halve. Fragments stay *physical* (their internal trees are
//!   untouched); phase-B edges become the inter-fragment edges of the
//!   final tree, which is exactly the fragment decomposition Section 2
//!   needs.
//!
//! This module holds the node-side algorithms and wire types; the phase
//! sequencing lives in [`crate::dist::driver`].

use crate::dist::packing::Cand;
use congest::message::TAG_BITS;
use congest::primitives::grouped_min::KeyedItem;
use congest::{value_bits, Algorithm, FinishResult, Message, NodeCtx, Outbox, Port, Step};

/// Configuration of the distributed MST stage.
#[derive(Clone, Debug, PartialEq)]
pub struct MstConfig {
    /// Fragment size cap of phase A; `None` derives the paper's `⌈√n⌉`.
    /// Smaller caps mean more (cheaper) fragments, larger caps fewer
    /// (deeper) ones — experiment E8 sweeps this.
    pub cap: Option<usize>,
    /// Safety cap on phase-A levels (the heads/tails mating argument
    /// finishes in `O(log n)` levels with overwhelming probability; any
    /// fragments still small after `max_levels` are simply handed to
    /// phase B, which remains correct).
    pub max_levels: usize,
    /// Seed of the deterministic shared fragment coins.
    pub seed: u64,
}

impl Default for MstConfig {
    fn default() -> Self {
        MstConfig {
            cap: None,
            max_levels: 96,
            seed: 0x4d53_5431,
        }
    }
}

impl MstConfig {
    /// The effective fragment size cap for an `n`-node network.
    pub fn effective_cap(&self, n: usize) -> usize {
        match self.cap {
            Some(c) => c.max(2),
            None => (n as f64).sqrt().ceil() as usize,
        }
    }

    /// The deterministic shared coin of `frag` at `level`: `true` =
    /// heads (accepts hooks), `false` = tails (tries to hook). Every
    /// node can evaluate any fragment's coin locally — the coins are
    /// public randomness derived from the seed, which is the standard
    /// shared-coin assumption.
    pub fn heads(&self, frag: u32, level: usize) -> bool {
        crate::seq::sampling::splitmix64(
            self.seed ^ (level as u64).wrapping_mul(0x9E37_79B9) ^ frag as u64,
        ) & 1
            == 0
    }
}

// ---------------------------------------------------------------------------
// Phase A wire types
// ---------------------------------------------------------------------------

/// The `mstA.*.exch` payload: the sender's fragment and frozen state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragMsg {
    /// Sender's fragment id.
    pub frag: u32,
    /// Sender's fragment is frozen.
    pub frozen: bool,
}

impl Message for FragMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.frag as u64) + 1
    }
}

/// An annotated phase-A candidate: the edge's packing key plus whether
/// the fragment across it is frozen (frozen targets accept hooks
/// unconditionally, so tails/heads mating is unnecessary there).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ACand {
    /// The candidate edge's key fields.
    pub cand: Cand,
    /// The fragment across the edge is frozen.
    pub target_frozen: bool,
}

/// The better (smaller-key) of two optional annotated candidates.
pub fn better_a(a: Option<ACand>, b: Option<ACand>) -> Option<ACand> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.cand.key() <= y.cand.key() { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Aggregate carried up the fragment tree in `mstA.*.cand`: subtree size
/// plus the best outgoing candidate seen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandAgg {
    /// Nodes in the subtree.
    pub size: u64,
    /// Best outgoing edge in the subtree, if any.
    pub cand: Option<ACand>,
}

impl congest::primitives::Aggregate for CandAgg {
    fn combine(&self, other: &Self) -> Self {
        CandAgg {
            size: self.size + other.size,
            cand: better_a(self.cand, other.cand),
        }
    }

    fn bits(&self) -> usize {
        // Presence bit + candidate fields + frozen flag.
        value_bits(self.size) + 1 + self.cand.map_or(0, |c| c.cand.bits() + 1)
    }
}

/// The per-fragment decision broadcast down the fragment tree in
/// `mstA.*.dec`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecMsg {
    /// The fragment has reached the size cap.
    pub frozen: bool,
    /// Edge to hook along this level (`None`: stay put).
    pub hook_edge: Option<u32>,
}

impl Message for DecMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS + 2 + self.hook_edge.map_or(0, |e| value_bits(e as u64))
    }
}

// ---------------------------------------------------------------------------
// Phase A hook handshake + re-root flood
// ---------------------------------------------------------------------------

/// A node's role in one `mstA.*.hook` phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HookRole {
    /// The chosen endpoint of a tails fragment's hook edge.
    Connector {
        /// Port of the hook edge.
        port: Port,
        /// Fragment id on the other side (learned in the exchange).
        target_frag: u32,
    },
    /// Other member of a hooking fragment: awaits the re-root flood.
    Await,
    /// Member of a fragment that is not hooking this level.
    Passive,
}

/// Input of [`FragHook`].
#[derive(Clone, Debug)]
pub struct HookInput {
    /// Current in-fragment tree ports (undirected set: parent + children).
    pub tree_ports: Vec<Port>,
    /// This node's role.
    pub role: HookRole,
    /// Whether this node's fragment accepts incoming hooks this level
    /// (fragment is heads or frozen).
    pub eligible: bool,
    /// Whether this node's fragment is frozen (echoed in grants so the
    /// absorbed fragment adopts the state).
    pub frozen: bool,
}

/// Output of [`FragHook`].
#[derive(Clone, Debug, Default)]
pub struct HookOutput {
    /// `Some((f, frozen))`: the fragment re-rooted, adopting fragment id
    /// `f` and the target fragment's frozen state.
    pub new_frag: Option<(u32, bool)>,
    /// New parent port after a re-root (the hook port at the connector).
    pub new_parent: Option<Port>,
    /// Hook ports accepted from other fragments (new child tree edges).
    pub accepted: Vec<Port>,
}

/// Messages of [`FragHook`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HookMsg {
    /// "My (tails) fragment wants to merge along this edge."
    Request,
    /// "Granted — adopt my fragment id." Carries the granting fragment's
    /// frozen state so absorbed members know whether to keep competing.
    Accept {
        /// The granting fragment is already frozen.
        frozen: bool,
    },
    /// "Denied — my fragment is tails too, try another level."
    Reject,
    /// Re-root flood: adopt fragment `frag`, parent = arrival port.
    Reroot {
        /// The adopted fragment id.
        frag: u32,
        /// The adopted fragment's frozen state.
        frozen: bool,
    },
    /// The hook was rejected: keep the old tree, stop waiting.
    Keep,
}

impl Message for HookMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + match self {
                HookMsg::Accept { .. } => 1,
                HookMsg::Reroot { frag, .. } => 1 + value_bits(*frag as u64),
                _ => 0,
            }
    }
}

/// One level's hook handshake: connectors fire a request at boot, targets
/// grant or deny in round 1 based on their fragment's coin, and granted
/// fragments re-root toward the hook edge with an in-fragment flood.
///
/// **Mutual choices** (two tails fragments whose minimum outgoing edges
/// coincide — GHS "core" edges) merge unconditionally: both connectors
/// see each other's request on the hook edge in round 1 and the
/// larger-id fragment re-roots into the smaller. Every choice-graph
/// component contains such a core edge, so each level makes progress
/// regardless of the coins.
///
/// Rounds: `2 + fragment diameter`; all fragments in parallel.
#[derive(Clone, Debug, Default)]
pub struct FragHook;

/// Node state for [`FragHook`].
#[derive(Debug)]
pub struct HookState {
    input: HookInput,
    my_frag: u32,
    out: HookOutput,
}

impl Algorithm for FragHook {
    type Input = (HookInput, u32);
    type State = HookState;
    type Msg = HookMsg;
    type Output = HookOutput;

    fn boot(
        &self,
        _ctx: &NodeCtx<'_>,
        (input, my_frag): Self::Input,
    ) -> (HookState, Outbox<HookMsg>) {
        let mut out = Outbox::new();
        if let HookRole::Connector { port, .. } = input.role {
            out.send(port, HookMsg::Request);
        }
        (
            HookState {
                input,
                my_frag,
                out: HookOutput::default(),
            },
            out,
        )
    }

    fn round(
        &self,
        s: &mut HookState,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Port, HookMsg)],
    ) -> Step<HookMsg> {
        let mut out = Outbox::new();
        let hook_port = match s.input.role {
            HookRole::Connector { port, .. } => Some(port),
            _ => None,
        };
        // Requests only ever arrive in round 1 (sent at boot). A request
        // on the connector's own hook port is the mutual case, handled in
        // the connector logic below instead of being answered.
        for (port, msg) in inbox {
            if matches!(msg, HookMsg::Request) && Some(*port) != hook_port {
                if s.input.eligible {
                    s.out.accepted.push(*port);
                    out.send(
                        *port,
                        HookMsg::Accept {
                            frozen: s.input.frozen,
                        },
                    );
                } else {
                    out.send(*port, HookMsg::Reject);
                }
            }
        }
        match s.input.role.clone() {
            HookRole::Passive => {
                // Nothing else can reach a passive node after round 1.
                return Step::Halt(out);
            }
            HookRole::Connector { port, target_frag } => {
                let mutual = inbox
                    .iter()
                    .any(|(p, m)| *p == port && matches!(m, HookMsg::Request));
                if mutual {
                    // Core edge: merge now, larger fragment id yields.
                    // Both sides are tails, hence unfrozen.
                    let flood = if s.my_frag > target_frag {
                        s.out.new_frag = Some((target_frag, false));
                        s.out.new_parent = Some(port);
                        HookMsg::Reroot {
                            frag: target_frag,
                            frozen: false,
                        }
                    } else {
                        s.out.accepted.push(port);
                        HookMsg::Keep
                    };
                    for &p in &s.input.tree_ports {
                        out.send(p, flood);
                    }
                    return Step::Halt(out);
                }
                let reply = inbox.iter().find_map(|(p, m)| {
                    (*p == port && matches!(m, HookMsg::Accept { .. } | HookMsg::Reject))
                        .then_some(*m)
                });
                if let Some(reply) = reply {
                    let flood = if let HookMsg::Accept { frozen } = reply {
                        s.out.new_frag = Some((target_frag, frozen));
                        s.out.new_parent = Some(port);
                        HookMsg::Reroot {
                            frag: target_frag,
                            frozen,
                        }
                    } else {
                        HookMsg::Keep
                    };
                    for &p in &s.input.tree_ports {
                        out.send(p, flood);
                    }
                    return Step::Halt(out);
                }
            }
            HookRole::Await => {
                let flood = inbox.iter().find_map(|(p, m)| {
                    matches!(m, HookMsg::Reroot { .. } | HookMsg::Keep).then_some((*p, *m))
                });
                if let Some((from, msg)) = flood {
                    if let HookMsg::Reroot { frag, frozen } = msg {
                        s.out.new_frag = Some((frag, frozen));
                        s.out.new_parent = Some(from);
                    }
                    for &p in &s.input.tree_ports {
                        if p != from {
                            out.send(p, msg);
                        }
                    }
                    return Step::Halt(out);
                }
            }
        }
        Step::Continue(out)
    }

    fn finish(&self, s: HookState, _ctx: &NodeCtx<'_>) -> FinishResult<HookOutput> {
        Ok(s.out)
    }
}

// ---------------------------------------------------------------------------
// Phase B wire types
// ---------------------------------------------------------------------------

/// The `mstB.*.exch` payload: current component and physical fragment of
/// the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompMsg {
    /// Sender's Borůvka component.
    pub comp: u32,
    /// Sender's physical fragment (phase-A).
    pub frag: u32,
}

impl Message for CompMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.comp as u64) + value_bits(self.frag as u64)
    }
}

/// A Borůvka candidate flowing up the BFS tree in `mstB.*.cand`: the best
/// outgoing edge proposal of one component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BorCand {
    /// The proposing component (grouping key).
    pub comp: u32,
    /// The candidate edge's packing key fields.
    pub cand: Cand,
    /// Component on the other side of the edge.
    pub other_comp: u32,
}

impl Message for BorCand {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + value_bits(self.comp as u64)
            + self.cand.bits()
            + value_bits(self.other_comp as u64)
    }
}

impl KeyedItem for BorCand {
    fn key(&self) -> u64 {
        self.comp as u64
    }
    fn better_than(&self, other: &Self) -> bool {
        self.cand.key() < other.cand.key()
    }
}

/// Items of the `mstB.*.merge` broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeItem {
    /// Component `from` is now part of component `to`.
    Remap {
        /// Old component id.
        from: u32,
        /// New (representative) component id.
        to: u32,
    },
    /// This edge joined the tree; both endpoints mark it.
    Chosen {
        /// Global edge id.
        edge: u32,
    },
}

impl Message for MergeItem {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + match self {
                MergeItem::Remap { from, to } => value_bits(*from as u64) + value_bits(*to as u64),
                MergeItem::Chosen { edge } => value_bits(*edge as u64),
            }
    }
}

/// Items of the `mstB.report` upcast: an endpoint of a chosen
/// inter-fragment edge reporting its side, so the leader can assemble the
/// fragment tree `T_F` with exact endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReportItem {
    /// The chosen edge.
    pub edge: u32,
    /// The reporting endpoint's physical fragment.
    pub frag: u32,
    /// The reporting endpoint.
    pub node: u32,
}

impl Message for ReportItem {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + value_bits(self.edge as u64)
            + value_bits(self.frag as u64)
            + value_bits(self.node as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_cap_defaults_to_sqrt_n() {
        let cfg = MstConfig::default();
        assert_eq!(cfg.effective_cap(36), 6);
        assert_eq!(cfg.effective_cap(144), 12);
        assert_eq!(cfg.effective_cap(50), 8); // ⌈7.07⌉
        let fixed = MstConfig {
            cap: Some(1),
            ..Default::default()
        };
        // A cap below 2 would freeze singletons instantly; clamped.
        assert_eq!(fixed.effective_cap(100), 2);
    }

    #[test]
    fn coins_are_deterministic_and_mixed() {
        let cfg = MstConfig::default();
        assert_eq!(cfg.heads(5, 3), cfg.heads(5, 3));
        // Over many (frag, level) pairs both sides appear.
        let heads = (0..64u32)
            .flat_map(|f| (0..8usize).map(move |l| (f, l)))
            .filter(|&(f, l)| cfg.heads(f, l))
            .count();
        assert!((128..384).contains(&heads), "heads = {heads}/512");
    }

    #[test]
    fn message_sizes_are_logarithmic() {
        let dec = DecMsg {
            frozen: true,
            hook_edge: Some(200),
        };
        assert!(dec.bit_len() <= TAG_BITS + 2 + 8);
        let bc = BorCand {
            comp: 100,
            cand: Cand {
                load: 3,
                weight: 9,
                edge: 250,
            },
            other_comp: 40,
        };
        assert!(bc.bit_len() <= TAG_BITS + 7 + 2 + 4 + 8 + 6);
        assert_eq!(
            (HookMsg::Request.bit_len(), HookMsg::Keep.bit_len()),
            (TAG_BITS, TAG_BITS)
        );
        assert!(
            HookMsg::Reroot {
                frag: 7,
                frozen: true
            }
            .bit_len()
                <= TAG_BITS + 4
        );
    }

    #[test]
    fn bor_cand_orders_by_relative_load() {
        let mk = |load, weight, edge| BorCand {
            comp: 1,
            cand: Cand { load, weight, edge },
            other_comp: 2,
        };
        // 1/4 beats 1/2; equal ratios fall back to weight then id.
        assert!(mk(1, 4, 9).better_than(&mk(1, 2, 0)));
        assert!(mk(1, 2, 0).better_than(&mk(2, 4, 1)));
        assert!(mk(1, 2, 0).better_than(&mk(1, 2, 1)));
    }
}
