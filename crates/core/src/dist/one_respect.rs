//! Section 2 of the paper: the minimum cut that **1-respects** a spanning
//! tree, computed in `Õ(√n + D)` rounds *independent of the tree's
//! depth* via Karger's identity `C(v↓) = δ↓(v) − 2ρ↓(v)`.
//!
//! The packed tree arrives already decomposed into fragments of `Õ(√n)`
//! size (phase A of the MST), connected by at most `√n` inter-fragment
//! edges (phase B), with the fragment tree `T_F` known at the leader.
//! The stage then runs, per packed tree:
//!
//! 1. `orient.tf` / `orient.flood` — the leader roots `T_F` at its own
//!    fragment and broadcasts one [`TfRec`] per fragment (child
//!    connector, parent attachment, edge). Each fragment re-roots
//!    internally at its connector ([`FragReroot`]), which globally roots
//!    the tree at the leader without ever paying `Θ(depth)` rounds.
//! 2. `s2a`/`s2b` — in-fragment subtree sizes ([`SizesUp`]) and Euler
//!    intervals ([`IntervalDown`]): afterwards every node can test
//!    in-fragment ancestorship locally from `O(log n)` bits.
//! 3. `s2c` — each fragment gathers and rebroadcasts the Euler in-times
//!    of its *attachment points* (nodes where child fragments hang).
//! 4. `s3` — every edge exchanges `(fragment, in-time)` across itself;
//!    with the `T_F` table each endpoint classifies its edge into the
//!    paper's LCA cases: same fragment (case 1), LCA in one endpoint's
//!    fragment (case 3), or LCA in a third fragment — a *merging node*
//!    (case 2).
//! 5. `s4a`/`s4b` — case-2 contributions are keyed by the pair of
//!    attachment points below the merging node, summed with one
//!    pipelined grouped-sum to the leader, and broadcast back; the
//!    merging node recognises itself by an interval test.
//! 6. `s5` — case-1/3 contributions travel as [`Token`]s up the fragment
//!    tree ([`TokensUp`]) and are absorbed by the first ancestor whose
//!    interval contains the partner, i.e. exactly the LCA. Afterwards
//!    every node holds its ρ(v).
//! 7. `s5b`–`s5f` — `(δ, ρ)` fragment totals converge to fragment
//!    roots, `T_F`-subtree sums are formed at the leader and handed back
//!    to the attachment points, and one in-fragment subtree-sum pass
//!    yields `δ↓(v)` and `ρ↓(v)` — hence `C(v↓)` — at every node; a
//!    final convergecast delivers the global argmin to the leader.
//!
//! Every phase is `O(√n + D + k)` rounds (fragment diameter, BFS depth,
//! or pipelined item count), which is the Theorem 2.1 bound; experiment
//! E7 measures the depth-independence explicitly.

use congest::message::TAG_BITS;
use congest::{
    value_bits, Algorithm, FinishResult, Message, NodeCtx, Outbox, Port, ProtocolViolation, Step,
    TreeInfo,
};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Orient
// ---------------------------------------------------------------------------

/// One row of the fragment tree `T_F`, broadcast to every node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TfRec {
    /// The (physical) fragment this row describes.
    pub frag: u32,
    /// Its parent fragment in `T_F`.
    pub parent: u32,
    /// The connector: the endpoint of the inter-fragment edge inside
    /// `frag`; becomes the fragment's root after orientation.
    pub c: u32,
    /// The attachment: the endpoint inside the parent fragment; becomes
    /// the connector's parent in the global tree.
    pub a: u32,
    /// The inter-fragment tree edge.
    pub edge: u32,
}

impl Message for TfRec {
    fn bit_len(&self) -> usize {
        TAG_BITS
            + value_bits(self.frag as u64)
            + value_bits(self.parent as u64)
            + value_bits(self.c as u64)
            + value_bits(self.a as u64)
            + value_bits(self.edge as u64)
    }
}

/// Re-roots each fragment's internal tree at its connector: connectors
/// flood over the fragment's (undirected) tree edges; every member's new
/// parent is the port the flood arrived on. Rounds: fragment diameter +1.
#[derive(Clone, Debug, Default)]
pub struct FragReroot;

/// Input of [`FragReroot`].
#[derive(Clone, Debug)]
pub struct RerootInput {
    /// In-fragment tree ports (undirected set).
    pub tree_ports: Vec<Port>,
    /// Whether this node starts the flood (it is a connector, or the
    /// leader inside the root fragment).
    pub initiator: bool,
}

/// Node state for [`FragReroot`].
#[derive(Debug)]
pub struct RerootState {
    input: RerootInput,
    parent: Option<Port>,
}

impl Algorithm for FragReroot {
    type Input = RerootInput;
    type State = RerootState;
    type Msg = ();
    type Output = Option<Port>;

    fn boot(&self, _ctx: &NodeCtx<'_>, input: RerootInput) -> (RerootState, Outbox<()>) {
        let mut out = Outbox::new();
        if input.initiator {
            out.send_all(input.tree_ports.iter().copied(), ());
        }
        (
            RerootState {
                input,
                parent: None,
            },
            out,
        )
    }

    fn round(&self, s: &mut RerootState, _ctx: &NodeCtx<'_>, inbox: &[(Port, ())]) -> Step<()> {
        if s.input.initiator {
            return Step::halt();
        }
        if let Some((from, ())) = inbox.first().copied() {
            s.parent = Some(from);
            let mut out = Outbox::new();
            for &p in &s.input.tree_ports {
                if p != from {
                    out.send(p, ());
                }
            }
            return Step::Halt(out);
        }
        Step::idle()
    }

    fn finish(&self, s: RerootState, _ctx: &NodeCtx<'_>) -> FinishResult<Option<Port>> {
        Ok(s.parent)
    }
}

// ---------------------------------------------------------------------------
// s2a: in-fragment subtree sizes (retaining per-child sizes)
// ---------------------------------------------------------------------------

/// Convergecast of subtree sizes over the fragment forest that also
/// *retains* each child's contribution — needed to assign child Euler
/// intervals in [`IntervalDown`]. Rounds: fragment height + 1.
#[derive(Clone, Debug, Default)]
pub struct SizesUp;

/// Node state for [`SizesUp`].
#[derive(Debug)]
pub struct SizesState {
    tree: TreeInfo,
    acc: u64,
    child_sizes: Vec<(Port, u64)>,
    waiting: usize,
    sent: bool,
}

impl Algorithm for SizesUp {
    type Input = TreeInfo;
    type State = SizesState;
    type Msg = u64;
    type Output = (u64, Vec<(Port, u64)>);

    fn boot(&self, _ctx: &NodeCtx<'_>, tree: TreeInfo) -> (SizesState, Outbox<u64>) {
        let waiting = tree.children.len();
        (
            SizesState {
                tree,
                acc: 1,
                child_sizes: Vec::with_capacity(waiting),
                waiting,
                sent: false,
            },
            Outbox::new(),
        )
    }

    fn round(&self, s: &mut SizesState, _ctx: &NodeCtx<'_>, inbox: &[(Port, u64)]) -> Step<u64> {
        for &(port, v) in inbox {
            s.acc += v;
            s.child_sizes.push((port, v));
            s.waiting -= 1;
        }
        if s.waiting == 0 && !s.sent {
            s.sent = true;
            match s.tree.parent {
                Some(p) => {
                    let mut o = Outbox::new();
                    o.send(p, s.acc);
                    Step::Halt(o)
                }
                None => Step::halt(),
            }
        } else {
            Step::idle()
        }
    }

    fn finish(
        &self,
        mut s: SizesState,
        _ctx: &NodeCtx<'_>,
    ) -> FinishResult<(u64, Vec<(Port, u64)>)> {
        s.child_sizes.sort_unstable_by_key(|&(p, _)| p);
        Ok((s.acc, s.child_sizes))
    }
}

// ---------------------------------------------------------------------------
// s2b: in-fragment Euler intervals
// ---------------------------------------------------------------------------

/// Input of [`IntervalDown`]: the fragment tree info plus the sizes from
/// [`SizesUp`].
#[derive(Clone, Debug)]
pub struct IntervalInput {
    /// In-fragment tree info.
    pub tree: TreeInfo,
    /// Own subtree size.
    pub size: u64,
    /// Per-child subtree sizes (sorted by port).
    pub child_sizes: Vec<(Port, u64)>,
}

/// Per-node output of [`IntervalDown`]: the node's in-fragment pre-order
/// interval and its children's.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Intervals {
    /// Pre-order entry time within the fragment.
    pub in_t: u64,
    /// Last entry time of the subtree (`in_t + size − 1`).
    pub out_t: u64,
    /// `(port, in, out)` of every in-fragment child.
    pub children: Vec<(Port, u64, u64)>,
}

impl Intervals {
    /// Does this node's in-fragment subtree contain the entry time `t`?
    pub fn contains(&self, t: u64) -> bool {
        self.in_t <= t && t <= self.out_t
    }

    /// Is `t` inside a single child's subtree (returns that child)?
    pub fn child_containing(&self, t: u64) -> Option<Port> {
        self.children
            .iter()
            .find(|&&(_, lo, hi)| lo <= t && t <= hi)
            .map(|&(p, _, _)| p)
    }
}

/// One top-down wave assigning pre-order intervals within each fragment:
/// each node receives its own entry time, computes its children's from
/// the retained sizes, and forwards. Rounds: fragment height + 1.
#[derive(Clone, Debug, Default)]
pub struct IntervalDown;

/// Node state for [`IntervalDown`].
#[derive(Debug)]
pub struct IntervalState {
    input: IntervalInput,
    iv: Option<Intervals>,
}

fn assign_children(input: &IntervalInput, my_in: u64) -> Intervals {
    let mut children = Vec::with_capacity(input.child_sizes.len());
    let mut next = my_in + 1;
    for &(port, size) in &input.child_sizes {
        children.push((port, next, next + size - 1));
        next += size;
    }
    Intervals {
        in_t: my_in,
        out_t: my_in + input.size - 1,
        children,
    }
}

impl Algorithm for IntervalDown {
    type Input = IntervalInput;
    type State = IntervalState;
    type Msg = u64;
    type Output = Intervals;

    fn boot(&self, _ctx: &NodeCtx<'_>, input: IntervalInput) -> (IntervalState, Outbox<u64>) {
        let mut out = Outbox::new();
        let iv = if input.tree.is_root() {
            let iv = assign_children(&input, 0);
            for &(port, lo, _) in &iv.children {
                out.send(port, lo);
            }
            Some(iv)
        } else {
            None
        };
        (IntervalState { input, iv }, out)
    }

    fn round(&self, s: &mut IntervalState, _ctx: &NodeCtx<'_>, inbox: &[(Port, u64)]) -> Step<u64> {
        if s.iv.is_some() {
            return Step::halt();
        }
        if let Some(&(_, my_in)) = inbox.first() {
            let iv = assign_children(&s.input, my_in);
            let mut out = Outbox::new();
            for &(port, lo, _) in &iv.children {
                out.send(port, lo);
            }
            s.iv = Some(iv);
            return Step::Halt(out);
        }
        Step::idle()
    }

    fn finish(&self, s: IntervalState, _ctx: &NodeCtx<'_>) -> FinishResult<Intervals> {
        s.iv.ok_or_else(|| {
            ProtocolViolation::new("never received its interval (inconsistent fragment forest?)")
        })
    }
}

// ---------------------------------------------------------------------------
// s2c / s3 / s4 wire types
// ---------------------------------------------------------------------------

/// An attachment point's identity and in-fragment entry time, gathered to
/// the fragment root and rebroadcast fragment-wide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttItem {
    /// The attachment node.
    pub node: u32,
    /// Its in-fragment entry time.
    pub in_t: u32,
}

impl Message for AttItem {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.node as u64) + value_bits(self.in_t as u64)
    }
}

/// The `s3` per-edge exchange payload: the in-fragment entry time of the
/// endpoint. The endpoint's *fragment* is deliberately not on the wire —
/// every node already holds its neighbors' fragments from the `mstB.*`
/// delta exchanges, so re-sending them would pay `⌈log₂ n⌉` bits per
/// edge direction for information the receiver has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NbMsg {
    /// Sender's in-fragment entry time.
    pub in_t: u32,
}

impl Message for NbMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.in_t as u64)
    }
}

/// A resolved case-2 (merging node) contribution broadcast from the
/// leader: total weight `w` of the edges whose LCA is the lowest common
/// ancestor of attachments `a1`, `a2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairItem {
    /// First attachment (smaller id).
    pub a1: u32,
    /// Second attachment.
    pub a2: u32,
    /// Total crossing weight of the pair.
    pub w: u64,
}

impl Message for PairItem {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.a1 as u64) + value_bits(self.a2 as u64) + value_bits(self.w)
    }
}

// ---------------------------------------------------------------------------
// s5: token routing up the fragment trees
// ---------------------------------------------------------------------------

/// A case-1/3 contribution travelling up the fragment tree: `w` is
/// absorbed (into ρ) by the first ancestor-or-self whose in-fragment
/// interval contains `t_in` — exactly the LCA of the originating edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Entry time of the partner endpoint (or attachment) to look for.
    pub t_in: u32,
    /// The edge weight to deliver.
    pub w: u64,
}

impl Message for Token {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.t_in as u64) + value_bits(self.w)
    }
}

/// Input of [`TokensUp`].
#[derive(Clone, Debug)]
pub struct TokensInput {
    /// In-fragment tree info.
    pub tree: TreeInfo,
    /// Own in-fragment interval.
    pub iv: (u64, u64),
    /// Tokens originating at this node (origination-time absorption
    /// already done by the caller).
    pub tokens: Vec<Token>,
}

/// Pipelined token routing: one token per tree edge per round, absorb at
/// the LCA. Rounds: `O(max per-edge token load + fragment height)`.
#[derive(Clone, Debug, Default)]
pub struct TokensUp;

/// Node state for [`TokensUp`].
#[derive(Debug)]
pub struct TokensState {
    tree: TreeInfo,
    iv: (u64, u64),
    queue: VecDeque<Token>,
    open_children: usize,
    rho: u64,
    end_sent: bool,
}

impl TokensState {
    fn take(&mut self, t: Token) {
        if self.iv.0 <= t.t_in as u64 && t.t_in as u64 <= self.iv.1 {
            self.rho += t.w;
        } else {
            self.queue.push_back(t);
        }
    }
}

impl Algorithm for TokensUp {
    type Input = TokensInput;
    type State = TokensState;
    type Msg = congest::primitives::broadcast::StreamMsg<Token>;
    type Output = u64;

    fn boot(&self, _ctx: &NodeCtx<'_>, input: TokensInput) -> (TokensState, Outbox<Self::Msg>) {
        let mut s = TokensState {
            open_children: input.tree.children.len(),
            tree: input.tree,
            iv: input.iv,
            queue: VecDeque::new(),
            rho: 0,
            end_sent: false,
        };
        for t in input.tokens {
            s.take(t);
        }
        (s, Outbox::new())
    }

    fn round(
        &self,
        s: &mut TokensState,
        ctx: &NodeCtx<'_>,
        inbox: &[(Port, Self::Msg)],
    ) -> Step<Self::Msg> {
        use congest::primitives::broadcast::StreamMsg;
        for (_, msg) in inbox {
            match msg {
                StreamMsg::Item(t) => s.take(*t),
                StreamMsg::End => s.open_children -= 1,
            }
        }
        match s.tree.parent {
            None => {
                // The fragment root's interval spans the whole fragment,
                // so every token has been absorbed on arrival.
                debug_assert!(
                    s.queue.is_empty(),
                    "token escaped its fragment at node {}",
                    ctx.node
                );
                if s.open_children == 0 {
                    Step::halt()
                } else {
                    Step::idle()
                }
            }
            Some(p) => {
                let mut out = Outbox::new();
                if let Some(t) = s.queue.pop_front() {
                    out.send(p, StreamMsg::Item(t));
                    Step::Continue(out)
                } else if s.open_children == 0 && !s.end_sent {
                    s.end_sent = true;
                    out.send(p, StreamMsg::End);
                    Step::Halt(out)
                } else {
                    Step::idle()
                }
            }
        }
    }

    fn finish(&self, s: TokensState, _ctx: &NodeCtx<'_>) -> FinishResult<u64> {
        Ok(s.rho)
    }
}

// ---------------------------------------------------------------------------
// s5c/s5d wire types
// ---------------------------------------------------------------------------

/// A fragment's `(Σδ, Σρ)` totals, upcast from its root to the leader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TotItem {
    /// The fragment.
    pub frag: u32,
    /// Sum of weighted degrees over the fragment.
    pub d: u64,
    /// Sum of ρ over the fragment.
    pub r: u64,
}

impl Message for TotItem {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.frag as u64) + value_bits(self.d) + value_bits(self.r)
    }
}

/// A fragment's `T_F`-subtree sums `(Sδ, Sρ)`, broadcast from the leader
/// and consumed by the fragment's attachment point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SumItem {
    /// The fragment.
    pub frag: u32,
    /// `Σδ` over the fragment's `T_F` subtree.
    pub sd: u64,
    /// `Σρ` over the fragment's `T_F` subtree.
    pub sr: u64,
}

impl Message for SumItem {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.frag as u64) + value_bits(self.sd) + value_bits(self.sr)
    }
}

// ---------------------------------------------------------------------------
// side: winner announcement + subtree flood over the snapshot tree
// ---------------------------------------------------------------------------

/// The winner announcement broadcast over the BFS tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SideMsg {
    /// `true`: the minimum-degree singleton won; `false`: a subtree cut.
    pub singleton: bool,
    /// The winning node (`v*` of `C(v*↓)`, or the singleton).
    pub v: u32,
}

impl Message for SideMsg {
    fn bit_len(&self) -> usize {
        TAG_BITS + 1 + value_bits(self.v as u64)
    }
}

/// Input of [`SideFlood`]: the snapshotted winning tree plus the
/// announced winner.
#[derive(Clone, Debug)]
pub struct SideInput {
    /// Snapshot parent port in the winning tree (`None` at the leader).
    pub parent: Option<Port>,
    /// Snapshot child ports in the winning tree (in-fragment children
    /// plus attached child-fragment connectors).
    pub children: Vec<Port>,
    /// The announced `v*`.
    pub vstar: u32,
}

/// Marks the subtree `v*↓` of the snapshotted winning tree: one wave from
/// the root carrying an "inside" bit that flips at `v*`. Rounds: tree
/// depth — paid **once per run**, only for the final winner.
#[derive(Clone, Debug, Default)]
pub struct SideFlood;

/// Node state for [`SideFlood`].
#[derive(Debug)]
pub struct SideState {
    input: SideInput,
    inside: Option<bool>,
}

impl Algorithm for SideFlood {
    type Input = SideInput;
    type State = SideState;
    type Msg = bool;
    type Output = bool;

    fn boot(&self, ctx: &NodeCtx<'_>, input: SideInput) -> (SideState, Outbox<bool>) {
        let mut out = Outbox::new();
        let inside = if input.parent.is_none() {
            let inside = ctx.node.raw() == input.vstar;
            out.send_all(input.children.iter().copied(), inside);
            Some(inside)
        } else {
            None
        };
        (SideState { input, inside }, out)
    }

    fn round(&self, s: &mut SideState, ctx: &NodeCtx<'_>, inbox: &[(Port, bool)]) -> Step<bool> {
        if s.inside.is_some() {
            return Step::halt();
        }
        if let Some(&(_, upstream)) = inbox.first() {
            let inside = upstream || ctx.node.raw() == s.input.vstar;
            s.inside = Some(inside);
            let mut out = Outbox::new();
            out.send_all(s.input.children.iter().copied(), inside);
            return Step::Halt(out);
        }
        Step::idle()
    }

    fn finish(&self, s: SideState, _ctx: &NodeCtx<'_>) -> FinishResult<bool> {
        s.inside.ok_or_else(|| {
            ProtocolViolation::new("never received the side wave (snapshot tree inconsistent?)")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::{Network, NetworkConfig};
    use graphs::generators;

    /// A path 0-1-2-3-4-5 as one fragment rooted at node 2 (ports on a
    /// path: interior nodes have port 0 = left, port 1 = right).
    fn path6_net(g: &graphs::WeightedGraph) -> Network<'_> {
        Network::new(g, NetworkConfig::default()).unwrap()
    }

    fn t(parent: Option<u32>, children: Vec<u32>) -> TreeInfo {
        TreeInfo {
            parent: parent.map(Port),
            children: children.into_iter().map(Port).collect(),
            depth: 0,
        }
    }

    #[test]
    fn sizes_and_intervals_on_a_rooted_path_fragment() {
        let g = generators::path(6).unwrap();
        let mut net = path6_net(&g);
        // Rooted at 2: 2 -> {1 (port0), 3 (port1)}, 1 -> {0}, 3 -> {4}, 4 -> {5}.
        let forest = vec![
            t(Some(0), vec![]),
            t(Some(1), vec![0]),
            t(None, vec![0, 1]),
            t(Some(0), vec![1]),
            t(Some(0), vec![1]),
            t(Some(0), vec![]),
        ];
        let sizes = net.run("s2a", &SizesUp, forest.clone()).unwrap().outputs;
        assert_eq!(sizes[2].0, 6);
        assert_eq!(sizes[1].0, 2);
        assert_eq!(sizes[3].0, 3);
        let inputs: Vec<IntervalInput> = forest
            .iter()
            .zip(sizes.iter())
            .map(|(tree, (size, cs))| IntervalInput {
                tree: tree.clone(),
                size: *size,
                child_sizes: cs.clone(),
            })
            .collect();
        let ivs = net.run("s2b", &IntervalDown, inputs).unwrap().outputs;
        // Pre-order from 2: 2=0, then child port0 (node 1) subtree {1,0},
        // then port1 (node 3) subtree {3,4,5}.
        assert_eq!((ivs[2].in_t, ivs[2].out_t), (0, 5));
        assert_eq!((ivs[1].in_t, ivs[1].out_t), (1, 2));
        assert_eq!((ivs[0].in_t, ivs[0].out_t), (2, 2));
        assert_eq!((ivs[3].in_t, ivs[3].out_t), (3, 5));
        assert_eq!((ivs[4].in_t, ivs[4].out_t), (4, 5));
        assert_eq!((ivs[5].in_t, ivs[5].out_t), (5, 5));
        // Ancestor tests work from intervals alone.
        assert!(ivs[3].contains(ivs[5].in_t));
        assert!(!ivs[1].contains(ivs[5].in_t));
        assert_eq!(ivs[2].child_containing(ivs[0].in_t), Some(Port(0)));
    }

    #[test]
    fn tokens_are_absorbed_at_the_lca() {
        let g = generators::path(6).unwrap();
        let mut net = path6_net(&g);
        let forest = [
            t(Some(0), vec![]),
            t(Some(1), vec![0]),
            t(None, vec![0, 1]),
            t(Some(0), vec![1]),
            t(Some(0), vec![1]),
            t(Some(0), vec![]),
        ];
        // Intervals as in the previous test.
        let iv = [(2, 2), (1, 2), (0, 5), (3, 5), (4, 5), (5, 5)];
        // Node 5 holds a token looking for node 4 (its parent): LCA = 4.
        // Node 0 holds a token looking for node 5: LCA = 2 (the root).
        let tokens: Vec<Vec<Token>> = vec![
            vec![Token { t_in: 5, w: 7 }],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![Token { t_in: 4, w: 3 }],
        ];
        let inputs: Vec<TokensInput> = forest
            .iter()
            .zip(iv.iter())
            .zip(tokens.iter())
            .map(|((tree, &(lo, hi)), toks)| TokensInput {
                tree: tree.clone(),
                iv: (lo, hi),
                tokens: toks.clone(),
            })
            .collect();
        let rho = net.run("s5", &TokensUp, inputs).unwrap().outputs;
        assert_eq!(rho, vec![0, 0, 7, 0, 3, 0]);
    }

    #[test]
    fn side_flood_marks_exactly_the_subtree() {
        let g = generators::path(6).unwrap();
        let mut net = path6_net(&g);
        // Same rooted tree; winner v* = 3 → side {3,4,5}.
        let parents = [Some(0u32), Some(1), None, Some(0), Some(0), Some(0)];
        let children: [Vec<u32>; 6] = [vec![], vec![0], vec![0, 1], vec![1], vec![1], vec![]];
        let inputs: Vec<SideInput> = (0..6)
            .map(|v| SideInput {
                parent: parents[v].map(Port),
                children: children[v].iter().copied().map(Port).collect(),
                vstar: 3,
            })
            .collect();
        let side = net.run("side", &SideFlood, inputs).unwrap().outputs;
        assert_eq!(side, vec![false, false, false, true, true, true]);
    }

    #[test]
    fn reroot_flood_orients_toward_the_initiator() {
        let g = generators::path(5).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        // One fragment spanning the path; initiator = node 3.
        let inputs: Vec<RerootInput> = (0..5)
            .map(|v| RerootInput {
                tree_ports: match v {
                    0 => vec![Port(0)],
                    4 => vec![Port(0)],
                    _ => vec![Port(0), Port(1)],
                },
                initiator: v == 3,
            })
            .collect();
        let parents = net
            .run("orient.flood", &FragReroot, inputs)
            .unwrap()
            .outputs;
        assert_eq!(parents[3], None);
        // 2's parent is its right port (toward 3), 4's parent is its left.
        assert_eq!(parents[2], Some(Port(1)));
        assert_eq!(parents[4], Some(Port(0)));
        assert_eq!(parents[1], Some(Port(1)));
        assert_eq!(parents[0], Some(Port(0)));
    }

    #[test]
    fn message_sizes_are_logarithmic() {
        let tf = TfRec {
            frag: 100,
            parent: 90,
            c: 101,
            a: 91,
            edge: 250,
        };
        assert!(tf.bit_len() <= TAG_BITS + 4 * 7 + 8);
        assert!(Token { t_in: 140, w: 8 }.bit_len() <= TAG_BITS + 8 + 4);
        assert!(
            PairItem {
                a1: 10,
                a2: 20,
                w: 300
            }
            .bit_len()
                <= TAG_BITS + 4 + 5 + 9
        );
        assert!(
            SideMsg {
                singleton: false,
                v: 77
            }
            .bit_len()
                <= TAG_BITS + 1 + 7
        );
    }
}
