//! The self-healing driver: crash detection, checkpointed recovery and
//! rejoin wrapped around the exact pipeline.
//!
//! [`recover_mincut`] runs [`crate::dist::driver::exact_mincut`]'s
//! pipeline under a fault-scheduling [`FaultPlan`] and survives
//! fail-stop faults — including the death of the elected leader —
//! transient partitions, and scheduled rejoins, by an *epoch* loop:
//!
//! 1. **Attempt.** Run the full pipeline with
//!    [`SuspicionPolicy::Abort`]: the first time the transport's timeout
//!    detector suspects a silent peer, the phase aborts with the typed
//!    [`CongestError::NodeSuspected`], whose `round` field is the
//!    session's virtual-round clock at the abort. As the attempt
//!    progresses, the driver snapshots each completed stage's validated
//!    output — the election/BFS tree, every finished packed tree with
//!    its 1-respecting minimum — into a recovery log (driver-side
//!    bookkeeping over state it already holds: zero rounds).
//! 2. **Census.** Rebase the plan by the abort clock (crashes that
//!    already fired become dead-from-boot) and run a
//!    [`FailureDetector`] pass under [`SuspicionPolicy::Continue`]
//!    (`census.e{epoch}.r{pass}`): every surviving node idles through
//!    the suspicion window and reports which neighbors its detector
//!    suspects. A node can die *mid-census*; when the schedule says one
//!    fired during the pass, the census is re-run to a fixpoint (the
//!    next pass sees it dead-from-boot) under a small pass bound.
//! 3. **Classify.** Suspects split three ways. A suspect whose crash is
//!    still active and permanent is **dead**. A suspect whose
//!    [`CrashEvent`](congest::sim::CrashEvent) carries a now-due
//!    `rejoin` is **rejoined**: it stays in the participant set and is
//!    re-admitted through a join handshake (`census.e{epoch}.join`, the
//!    [`JoinEcho`] adopting flood — veterans announce the session tag,
//!    rejoiners adopt and forward it; the driver asserts every rejoiner
//!    adopted it). A suspect with a *pending* rejoin is kept too — it
//!    re-enters at a later epoch boundary. And when the census finds
//!    nobody dead at all but the aborted plan had begun a partition
//!    window ([`FaultPlan::partition_begun_by`]), the abort is blamed
//!    on the partition: the participants are unchanged and the attempt
//!    simply retries (the window is one-shot — rebasing consumed it).
//!    The driver therefore never certifies a λ computed on a
//!    half-partition: the abort discarded that attempt, and the retry
//!    runs on the healed network.
//! 4. **Excise and resume.** Truly dead nodes (plus any survivors they
//!    separate from the anchor component) are excised; ids are
//!    compacted, the schedule renamed ([`FaultPlan::remapped`] — which
//!    *parks* rejoin-pending events of excised nodes rather than
//!    dropping them) and shifted ([`FaultPlan::rebased`]). The next
//!    attempt then resumes from the deepest checkpoint whose structures
//!    survive the excision instead of restarting from round 0:
//!    * the BFS tree is restored when the leader and every survivor's
//!      parent chain survived (skipping re-election), and re-validated
//!      by one distributed convergecast (`recover.e{epoch}.resume.bfs`);
//!    * checkpointed packed trees are kept as long as their edge sets,
//!      restricted to the survivors, still span them (validated by
//!      union-find; a dead *leaf* — even a dead leader — keeps the tree
//!      usable, re-rooted driver-side at the current leader);
//!    * with the participant set unchanged (rejoin, partition retry),
//!      the checkpointed cut values are *evidence*: loads and
//!      best-so-far are replayed at zero rounds and only a validation
//!      convergecast runs (`recover.e{epoch}.resume.trees`);
//!    * the same evidence replay applies when every excised node was
//!      *pendant* (degree 1) in the checkpoint's graph: a pendant's
//!      only edge crosses no survivor subtree cut, so every surviving
//!      1-respecting value is provably unchanged by the excision —
//!      unless the checkpointed argmin itself died (its cut vanished
//!      with it), which voids the entry;
//!    * with any other shrunk survivor set the structures are kept but
//!      the cut values are stale: each restored tree re-runs its
//!      (cheap) cut stage as one fragment, skipping the expensive MST
//!      stages.
//!
//!    Validation falls back one stage at a time: invalid trees drop the
//!    suffix from the first failure, an invalid BFS falls back to
//!    re-election, and with nothing restorable the attempt runs from
//!    scratch exactly as before.
//!
//! The loop ends when an attempt completes; the recovered cut is then
//! **certified** against the sequential Stoer–Wagner oracle on the
//! surviving subgraph (enabled by default). If a *resumed* attempt
//! fails certification, the checkpoints are discarded and the epoch
//! retries from scratch — stale evidence can cost rounds, never
//! correctness; a from-scratch mismatch is a real error.
//!
//! # Accounting
//!
//! Every phase of every failed attempt is folded into the merged
//! [`MetricsLedger`] under a `recover.e{epoch}.` name prefix (resume
//! validation phases are born with it); census and join phases carry
//! `census.e{epoch}.*` names. The successful attempt's phases keep
//! their canonical names. Recovery cost is one query away:
//! `recover.` + `census.` sums surface as
//! [`RecoveredMinCut::recovery_rounds`] /
//! [`RecoveredMinCut::recovery_messages`], and the per-epoch split as
//! [`RecoveredMinCut::wasted_rounds`] /
//! [`RecoveredMinCut::wasted_messages`].
//!
//! Everything is deterministic: the same graph and the same plan yield
//! byte-identical merged ledgers (asserted in `tests/self_healing.rs`).

use crate::dist::driver::{
    run_pipeline_checkpointed, ExactConfig, LoggedTree, PipelineOpts, RecoveryLog, RestoredTree,
    ResumeSpec,
};
use crate::dist::packing::PackingTarget;
use crate::seq::stoer_wagner;
use crate::MinCutError;
use congest::primitives::failure_detector::{FailureDetector, JoinEcho};
use congest::sim::{FaultPlan, SuspicionPolicy};
use congest::{CongestError, MetricsLedger, Network};
use graphs::{CutResult, NodeId, WeightedGraph};
use std::collections::BTreeSet;

/// Census passes per epoch before the dead set is declared stable. Each
/// pass rebases the schedule past itself, so a node that died mid-pass
/// is dead-from-boot in the next; two passes settle any single
/// mid-census death and the third is slack for cascades.
const MAX_CENSUS_PASSES: usize = 3;

/// The pipeline stage a resumed attempt restarted from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// The election/BFS checkpoint was restored (no finished trees
    /// survived excision).
    Bfs,
    /// This many checkpointed packed trees were restored (the BFS stage
    /// was either restored too or cheaply re-elected).
    Packed(usize),
}

/// Configuration of [`recover_mincut`].
#[derive(Clone, Debug)]
pub struct RecoverConfig {
    /// The pipeline configuration (network model, packing policy, MST
    /// knobs, election protocol). Its executor choice is overridden: the
    /// attempts run under the fault-injecting executor with [`plan`]
    /// (with the abort-on-suspicion policy forced).
    ///
    /// [`plan`]: RecoverConfig::plan
    pub base: ExactConfig,
    /// The adversary: link faults, partitions, corruption, and the
    /// crash/rejoin schedule, in **global virtual rounds** counted
    /// across the whole recovery session (failed attempts, censuses and
    /// handshakes included).
    pub plan: FaultPlan,
    /// Maximum pipeline attempts before giving up (min 1). Each epoch
    /// either excises at least one node or consumes a one-shot
    /// adversary event (a partition window, a pending rejoin), so this
    /// caps how much adversity the driver absorbs before declaring the
    /// instance unrecoverable.
    pub max_epochs: usize,
    /// Certify the recovered cut against the sequential Stoer–Wagner
    /// oracle on the surviving subgraph (default `true`). Disable only
    /// for benchmarks where the oracle's `O(nm + n² log n)` cost drowns
    /// the signal.
    pub certify: bool,
    /// Resume aborted sessions from stage checkpoints (default `true`).
    /// Disable to force every epoch to restart from round 0 — the
    /// from-scratch baseline the chaos gate compares against.
    pub checkpoint: bool,
}

impl Default for RecoverConfig {
    /// Default pipeline config, a lossless crash-free plan, at most 8
    /// epochs, certification and checkpointing on.
    fn default() -> Self {
        RecoverConfig {
            base: ExactConfig::default(),
            plan: FaultPlan::lossless(),
            max_epochs: 8,
            certify: true,
            checkpoint: true,
        }
    }
}

impl RecoverConfig {
    /// This config with the given fault plan.
    pub fn with_plan(self, plan: FaultPlan) -> Self {
        RecoverConfig { plan, ..self }
    }

    /// This config with checkpointed resume on or off.
    pub fn with_checkpoint(self, checkpoint: bool) -> Self {
        RecoverConfig { checkpoint, ..self }
    }

    /// This config with an observability sink attached to its base
    /// network — and therefore to every attempt, census, and join
    /// network the driver spawns (they all clone the base config).
    pub fn with_obs(self, handle: congest::ObsHandle) -> Self {
        RecoverConfig {
            base: self.base.with_obs(handle),
            ..self
        }
    }
}

/// Result of a self-healing run: the minimum cut of the surviving
/// subgraph, plus the recovery accounting.
#[derive(Clone, Debug)]
pub struct RecoveredMinCut {
    /// The best cut of the **surviving** subgraph. `cut.side[i]` refers
    /// to the node whose original id is `survivors[i]`.
    pub cut: CutResult,
    /// Original ids of the surviving nodes, ascending — the new-id →
    /// original-id map of the final subgraph.
    pub survivors: Vec<NodeId>,
    /// Original ids of the excised nodes, ascending: diagnosed crashed
    /// nodes plus any survivors the crashes separated from the surviving
    /// component.
    pub dead: Vec<NodeId>,
    /// Original ids of nodes that died and were re-admitted through the
    /// rejoin handshake, ascending. Disjoint from `dead`.
    pub rejoined: Vec<NodeId>,
    /// Pipeline attempts executed (1 = no crash was ever suspected).
    pub epochs: usize,
    /// The stage checkpoint the **successful** attempt resumed from
    /// (`None` = it ran from scratch — also the crash-free case).
    pub resumed_from: Option<Stage>,
    /// The Stoer–Wagner λ of the surviving subgraph, when certification
    /// ran (it always equals `cut.value` — a mismatch is an error).
    pub oracle: Option<u64>,
    /// Total virtual rounds across the whole session, recovery included.
    pub rounds: u64,
    /// Total messages across the whole session, recovery included.
    pub messages: u64,
    /// Rounds spent on recovery alone: aborted attempts, resume
    /// validations, censuses and join handshakes.
    pub recovery_rounds: u64,
    /// Messages spent on recovery alone.
    pub recovery_messages: u64,
    /// Per-epoch recovery rounds: entry `k` sums the `recover.e{k+1}.*`
    /// and `census.e{k+1}.*` phases (aborted attempt, resume overhead,
    /// census, handshake of that epoch).
    pub wasted_rounds: Vec<u64>,
    /// Per-epoch recovery messages, same split as `wasted_rounds`.
    pub wasted_messages: Vec<u64>,
    /// The merged per-phase ledger: `recover.e{epoch}.*` /
    /// `census.e{epoch}.*` entries for the recovery work, canonical
    /// names for the successful attempt.
    pub ledger: MetricsLedger,
}

/// The master checkpoint snapshot kept across epochs, in **original**
/// graph ids (the one id space stable under compaction). Always one
/// coherent attempt's log — structures from different packing sequences
/// are never mixed.
struct MasterLog {
    /// Original ids of the participants when the log was captured,
    /// ascending. Cut values are evidence only for this exact set.
    participants: Vec<u32>,
    /// Original id of the leader of that attempt.
    leader: Option<u32>,
    /// BFS parent map, indexed by original id.
    bfs: Option<Vec<Option<u32>>>,
    /// Finished packed trees, in packing order: parent map (original
    /// ids) plus the tree's 1-respecting minimum `(value, argmin)`.
    trees: Vec<LoggedTree>,
}

/// Translates an attempt's [`RecoveryLog`] (current ids) into the
/// original id space through the compaction map `orig`.
fn to_orig(log: &RecoveryLog, orig: &[u32], n0: usize) -> MasterLog {
    let tr = |parents: &[Option<u32>]| -> Vec<Option<u32>> {
        let mut out = vec![None; n0];
        for (v, p) in parents.iter().enumerate() {
            out[orig[v] as usize] = p.map(|u| orig[u as usize]);
        }
        out
    };
    MasterLog {
        participants: orig.to_vec(),
        leader: log.leader.map(|l| orig[l as usize]),
        bfs: log.bfs.as_ref().map(|p| tr(p)),
        trees: log
            .trees
            .iter()
            .map(|(p, (c, a))| (tr(p), (*c, orig[*a as usize])))
            .collect(),
    }
}

/// Validates the master log against the current survivor set and builds
/// the deepest restorable [`ResumeSpec`], falling back one stage at a
/// time: trees are kept as the longest prefix still spanning the
/// survivors; the BFS restore requires the leader and every parent
/// chain alive; cut values are trusted when the participant set is
/// exactly unchanged, or when every excised node was pendant in the
/// checkpoint's graph (see below). Returns `None` when nothing
/// survived validation.
fn build_resume(
    g: &WeightedGraph,
    m: &MasterLog,
    orig: &[u32],
    n0: usize,
    epoch: usize,
) -> Option<(ResumeSpec, Stage)> {
    let k = orig.len();
    let mut cur_of: Vec<Option<u32>> = vec![None; n0];
    for (v, &o) in orig.iter().enumerate() {
        cur_of[o as usize] = Some(v as u32);
    }
    let full = m.participants == orig;
    // Pendant-excision trust: when every node excised since the
    // checkpoint was pendant (degree 1) in the checkpoint's graph — the
    // induced subgraph on `m.participants` — its only edge crossed no
    // surviving subtree cut, so every finished tree's 1-respecting
    // minimum over the survivors is byte-for-byte unchanged and stays
    // evidence even though the participant set shrank.
    let excised: Vec<u32> = m
        .participants
        .iter()
        .copied()
        .filter(|&o| cur_of[o as usize].is_none())
        .collect();
    let shrunk =
        !excised.is_empty() && orig.iter().all(|o| m.participants.binary_search(o).is_ok());
    let pendant_trust = shrunk
        && excised.iter().all(|&d| {
            g.neighbors(NodeId::new(d))
                .iter()
                .filter(|a| m.participants.binary_search(&a.neighbor.raw()).is_ok())
                .count()
                == 1
        });
    let bfs = m
        .leader
        .and_then(|l| cur_of[l as usize])
        .and_then(|leader_cur| {
            let p = m.bfs.as_ref()?;
            let mut out: Vec<Option<u32>> = vec![None; k];
            for (v, &o) in orig.iter().enumerate() {
                match p[o as usize] {
                    None => {
                        if Some(o) != m.leader {
                            return None;
                        }
                    }
                    Some(u) => {
                        out[v] = Some(cur_of[u as usize]?);
                    }
                }
            }
            Some((leader_cur, out))
        });
    let mut kept: Vec<RestoredTree> = Vec::new();
    for (p, (c, a)) in &m.trees {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (v, &o) in orig.iter().enumerate() {
            if let Some(u) = p[o as usize] {
                if let Some(ucur) = cur_of[u as usize] {
                    edges.push((v as u32, ucur));
                }
            }
        }
        // Spanning-tree check on the survivors: k-1 surviving edges
        // connecting all k (a dead leaf costs its one edge and nothing
        // else; a dead cut vertex disconnects the restriction).
        if edges.len() + 1 != k {
            break;
        }
        let mut dsu = trees::DisjointSets::new(k);
        for &(x, y) in &edges {
            dsu.union(x as usize, y as usize);
        }
        if dsu.set_count() != 1 {
            break;
        }
        // The trusted payload carries the best *edge* `(argmin, its
        // checkpointed parent)` rather than the argmin node alone: the
        // attempt re-roots the tree at whatever leader it elects, and
        // only the edge identity survives a flipped orientation. A
        // dead endpoint voids the entry (the minimum may have been the
        // excised pendant's own cut) and falls back to a re-run.
        let trusted = ((full && bfs.is_some()) || pendant_trust)
            .then(|| {
                let x = cur_of[*a as usize]?;
                let y = cur_of[p[*a as usize]? as usize]?;
                Some((*c, (x, y)))
            })
            .flatten();
        kept.push((edges, trusted));
    }
    if bfs.is_none() && kept.is_empty() {
        return None;
    }
    let stage = if kept.is_empty() {
        Stage::Bfs
    } else {
        Stage::Packed(kept.len())
    };
    Some((
        ResumeSpec {
            bfs,
            trees: kept,
            prefix: format!("recover.e{epoch}.resume"),
        },
        stage,
    ))
}

/// Runs the exact distributed min-cut pipeline on `g` under
/// `cfg.plan`'s faults, recovering from crashes, partitions and
/// rejoins; see the module docs.
///
/// # Errors
///
/// Everything [`crate::dist::driver::exact_mincut`] can return, plus
/// [`MinCutError::InvalidConfig`] when recovery does not converge
/// within [`RecoverConfig::max_epochs`] epochs, when a from-scratch
/// attempt fails certification, or when the rejoin handshake misses a
/// rejoiner, and [`MinCutError::TooSmall`] when fewer than two nodes
/// survive. Errors other than [`CongestError::NodeSuspected`] —
/// bandwidth violations, retransmission exhaustion — are *not*
/// recoverable and propagate from the failing attempt unchanged.
pub fn recover_mincut(
    g: &WeightedGraph,
    cfg: &RecoverConfig,
) -> Result<RecoveredMinCut, MinCutError> {
    let n0 = g.node_count();
    let mut merged = MetricsLedger::new();
    let mut cur = g.clone();
    // orig[v] = the original id of the current subgraph's node v.
    let mut orig: Vec<u32> = (0..n0 as u32).collect();
    let mut dead: Vec<u32> = Vec::new();
    let mut rejoined: BTreeSet<u32> = BTreeSet::new();
    let mut plan = cfg.plan.clone();
    plan.on_suspect = SuspicionPolicy::Abort;
    let max_epochs = cfg.max_epochs.max(1);
    let mut master: Option<MasterLog> = None;

    for epoch in 1..=max_epochs {
        let resume = if cfg.checkpoint {
            master
                .as_ref()
                .and_then(|m| build_resume(g, m, &orig, n0, epoch))
        } else {
            None
        };
        let (spec, stage) = match resume {
            Some((spec, stage)) => (Some(spec), Some(stage)),
            None => (None, None),
        };
        let opts = PipelineOpts {
            network: cfg.base.network.clone().with_fault_plan(plan.clone()),
            mst: cfg.base.mst.clone(),
            target: PackingTarget::TrackBest(cfg.base.packing.clone()),
            sample: None,
            election: cfg.base.election,
        };
        let mut attempt_log = RecoveryLog::default();
        let err =
            match run_pipeline_checkpointed(&cur, &opts, spec.as_ref(), Some(&mut attempt_log)) {
                Ok(outcome) => {
                    let oracle = if cfg.certify {
                        let sw = stoer_wagner(&cur)?;
                        if sw.value != outcome.cut.value {
                            if spec.is_some() {
                                // The safety valve: resumed evidence that
                                // fails the oracle is discarded, the
                                // poisoned attempt is booked as recovery
                                // waste, and the epoch retries from
                                // scratch. Stale checkpoints can cost
                                // rounds, never correctness.
                                for p in outcome.ledger.phases() {
                                    let mut q = p.clone();
                                    if !q.name.starts_with("recover.") {
                                        q.name = format!("recover.e{epoch}.{}", q.name);
                                    }
                                    merged.push(q);
                                }
                                plan = plan.rebased(outcome.ledger.total_rounds());
                                master = None;
                                continue;
                            }
                            return Err(MinCutError::InvalidConfig {
                                reason: format!(
                                    "survivor certification failed: recovered λ = {} but the \
                                 sequential oracle finds {} on the surviving subgraph",
                                    outcome.cut.value, sw.value
                                ),
                            });
                        }
                        Some(sw.value)
                    } else {
                        None
                    };
                    for p in outcome.ledger.phases() {
                        merged.push(p.clone());
                    }
                    dead.sort_unstable();
                    let wasted_rounds: Vec<u64> = (1..=epoch)
                        .map(|k| {
                            merged.rounds_matching(&format!("recover.e{k}."))
                                + merged.rounds_matching(&format!("census.e{k}."))
                        })
                        .collect();
                    let wasted_messages: Vec<u64> = (1..=epoch)
                        .map(|k| {
                            merged.messages_matching(&format!("recover.e{k}."))
                                + merged.messages_matching(&format!("census.e{k}."))
                        })
                        .collect();
                    return Ok(RecoveredMinCut {
                        cut: outcome.cut,
                        survivors: orig.iter().map(|&v| NodeId::new(v)).collect(),
                        dead: dead.iter().map(|&v| NodeId::new(v)).collect(),
                        rejoined: rejoined.iter().map(|&v| NodeId::new(v)).collect(),
                        epochs: epoch,
                        resumed_from: stage,
                        oracle,
                        rounds: merged.total_rounds(),
                        messages: merged.total_messages(),
                        recovery_rounds: merged.rounds_matching("recover.")
                            + merged.rounds_matching("census."),
                        recovery_messages: merged.messages_matching("recover.")
                            + merged.messages_matching("census."),
                        wasted_rounds,
                        wasted_messages,
                        ledger: merged,
                    });
                }
                Err((e, attempt_ledger)) => {
                    for p in attempt_ledger.phases() {
                        let mut q = p.clone();
                        // Resume validation phases are born with the
                        // `recover.` prefix — never double-prefix.
                        if !q.name.starts_with("recover.") {
                            q.name = format!("recover.e{epoch}.{}", q.name);
                        }
                        merged.push(q);
                    }
                    // Keep the richest coherent checkpoint snapshot: a
                    // deeper log supersedes; a shallower abort (it died
                    // before re-reaching the old depth) keeps the old one.
                    if attempt_log.bfs.is_some()
                        && master
                            .as_ref()
                            .is_none_or(|m| attempt_log.trees.len() >= m.trees.len())
                    {
                        master = Some(to_orig(&attempt_log, &orig, n0));
                    }
                    e
                }
            };
        let MinCutError::Congest(CongestError::NodeSuspected { round, .. }) = &err else {
            // Non-crash failures (bandwidth, retransmission exhaustion,
            // degenerate inputs) are not recoverable by excision.
            return Err(err);
        };
        let abort_round = *round;
        let attempt_plan = plan.clone();
        // Census to a fixpoint: rebase past the aborted attempt, then
        // past each pass; re-run while the schedule says a node died
        // *during* the pass (the re-run sees it dead-from-boot).
        let mut census_plan = plan.rebased(abort_round).continue_on_suspicion();
        let mut pass = 0usize;
        let reports = loop {
            pass += 1;
            let detector = FailureDetector::for_plan(&census_plan);
            let net_cfg = cfg
                .base
                .network
                .clone()
                .with_fault_plan(census_plan.clone());
            let mut net = Network::new(&cur, net_cfg)?;
            let name = format!("census.e{epoch}.r{pass}");
            let reports = net
                .run(&name, &detector, vec![(); cur.node_count()])?
                .outputs;
            let pass_rounds = net.ledger().total_rounds();
            net.obs_emit("census.pass", pass as u64);
            for p in net.ledger().phases() {
                merged.push(p.clone());
            }
            let mid_pass_death = census_plan
                .crashes
                .iter()
                .any(|e| 0 < e.at_round && e.at_round <= pass_rounds);
            census_plan = census_plan.rebased(pass_rounds);
            if !mid_pass_death || pass >= MAX_CENSUS_PASSES {
                break reports;
            }
        };
        plan = census_plan;
        plan.on_suspect = SuspicionPolicy::Abort;

        // Diagnose and classify: dead / rejoined-now / pending-rejoin /
        // partition ghost.
        let n = cur.node_count();
        let mut is_dead = vec![false; n];
        for r in reports.iter().filter(|r| r.completed) {
            for s in &r.suspects {
                is_dead[s.index()] = true;
            }
        }
        let any_suspected = is_dead.iter().any(|&d| d);
        let mut rejoining: Vec<u32> = Vec::new();
        for v in 0..n {
            if !is_dead[v] {
                continue;
            }
            let v32 = v as u32;
            match plan.crash_round_of(v32, 0) {
                // No active crash left: a zombie whose scheduled rejoin
                // came due is re-admitted; a *live* suspect (a
                // partition ghost — it completed its census) was never
                // dead at all.
                None => {
                    is_dead[v] = false;
                    if !reports[v].completed {
                        rejoining.push(v32);
                    }
                }
                // Still down but scheduled to return: keep it — it
                // re-enters at a later epoch boundary.
                Some(_)
                    if plan
                        .crashes
                        .iter()
                        .any(|e| e.node == v32 && e.rejoin.is_some()) =>
                {
                    is_dead[v] = false;
                }
                Some(_) => {}
            }
        }
        if !any_suspected {
            if !attempt_plan.partition_begun_by(abort_round) {
                // The abort was real but the census sees a healthy
                // network and no partition explains it — retrying would
                // loop. Surface the original error.
                return Err(err);
            }
            // Partition blame: the window (one-shot, now consumed by
            // the rebase) caused the abort. Retry on the same
            // participants.
            continue;
        }

        if is_dead.iter().any(|&d| d) {
            // The surviving component: flood from the smallest-id
            // completed node through non-dead nodes (kept rejoiners and
            // pending-rejoin nodes are topologically present).
            let Some(start) = (0..n).find(|&v| reports[v].completed && !is_dead[v]) else {
                return Err(MinCutError::TooSmall { nodes: 0 });
            };
            let mut in_comp = vec![false; n];
            in_comp[start] = true;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for a in cur.neighbors(NodeId::from_index(v)) {
                    let u = a.neighbor.index();
                    if !is_dead[u] && !in_comp[u] {
                        in_comp[u] = true;
                        queue.push_back(u);
                    }
                }
            }
            let k = in_comp.iter().filter(|&&s| s).count();
            if k < 2 {
                return Err(MinCutError::TooSmall { nodes: k });
            }
            // Excise: compact ids, rebuild the graph, rename the
            // schedule (rejoin-pending events of excised nodes are
            // parked, not dropped).
            let mut new_id = vec![u32::MAX; n];
            let mut next = 0u32;
            for v in 0..n {
                if in_comp[v] {
                    new_id[v] = next;
                    next += 1;
                } else {
                    dead.push(orig[v]);
                }
            }
            let edges = cur
                .edge_tuples()
                .filter(|(_, u, v, _)| in_comp[u.index()] && in_comp[v.index()])
                .map(|(_, u, v, w)| (new_id[u.index()], new_id[v.index()], w));
            let sub = WeightedGraph::from_edges(k, edges.collect::<Vec<_>>())
                .expect("induced subgraph of a valid graph is valid");
            orig = (0..n).filter(|&v| in_comp[v]).map(|v| orig[v]).collect();
            plan = plan.remapped(|u| {
                let u = u as usize;
                (u < new_id.len() && new_id[u] != u32::MAX).then(|| new_id[u])
            });
            rejoining = rejoining
                .iter()
                .filter_map(|&v| {
                    let id = new_id[v as usize];
                    (id != u32::MAX).then_some(id)
                })
                .collect();
            cur = sub;
        }

        // The rejoin handshake: re-admitted nodes catch the session tag
        // up from any live veteran; the adoption assertion *is* the
        // re-admission.
        if !rejoining.is_empty() {
            let nn = cur.node_count();
            let is_rejoining = |v: u32| rejoining.contains(&v);
            let veteran = |v: u32| plan.crash_round_of(v, 0).is_none() && !is_rejoining(v);
            let Some(anchor) = (0..nn as u32).find(|&v| veteran(v)) else {
                return Err(MinCutError::TooSmall { nodes: 0 });
            };
            let tag = (epoch as u64) * (nn as u64) + u64::from(anchor);
            let join_plan = plan.clone().continue_on_suspicion();
            let net_cfg = cfg.base.network.clone().with_fault_plan(join_plan);
            let mut net = Network::new(&cur, net_cfg)?;
            let inputs: Vec<Option<u64>> =
                (0..nn as u32).map(|v| veteran(v).then_some(tag)).collect();
            let name = format!("census.e{epoch}.join");
            let outs = net.run(&name, &JoinEcho::new(nn as u64), inputs)?.outputs;
            let join_rounds = net.ledger().total_rounds();
            net.obs_emit("census.join", rejoining.len() as u64);
            for p in net.ledger().phases() {
                merged.push(p.clone());
            }
            plan = plan.rebased(join_rounds);
            for &v in &rejoining {
                if outs[v as usize] != Some(tag) {
                    return Err(MinCutError::InvalidConfig {
                        reason: format!(
                            "rejoin handshake did not reach node {} (original id {})",
                            v, orig[v as usize]
                        ),
                    });
                }
                rejoined.insert(orig[v as usize]);
            }
        }
    }
    Err(MinCutError::InvalidConfig {
        reason: format!("crash recovery did not converge within {max_epochs} epochs"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::driver::exact_mincut;
    use congest::sim::CrashEvent;
    use graphs::generators;

    /// Virtual rounds consumed before the first `mstA` phase of a clean
    /// run — used to aim a crash mid-MST.
    fn rounds_before_mst(g: &WeightedGraph) -> u64 {
        let clean = exact_mincut(g, &ExactConfig::default()).unwrap();
        clean
            .ledger
            .phases()
            .iter()
            .take_while(|p| !p.name.starts_with("mstA"))
            .map(|p| p.rounds)
            .sum()
    }

    #[test]
    fn crash_free_plan_takes_one_epoch_and_matches_exact() {
        let g = generators::torus2d(4, 4).unwrap();
        // An unreachable crash arms the detector without killing anyone.
        let plan = FaultPlan::with_drop(30, 9)
            .delayed(1)
            .with_crash(3, 1 << 40);
        let r = recover_mincut(&g, &RecoverConfig::default().with_plan(plan.clone())).unwrap();
        assert_eq!(r.epochs, 1);
        assert!(r.dead.is_empty());
        assert!(r.rejoined.is_empty());
        assert_eq!(r.resumed_from, None);
        assert_eq!(r.survivors.len(), 16);
        assert_eq!(r.recovery_rounds, 0);
        assert_eq!(r.recovery_messages, 0);
        assert_eq!(r.wasted_rounds, vec![0]);
        assert_eq!(r.wasted_messages, vec![0]);
        let direct = exact_mincut(&g, &ExactConfig::default().with_fault_plan(plan)).unwrap();
        assert_eq!(r.cut.value, direct.cut.value);
        assert_eq!(r.cut.side, direct.cut.side);
        assert_eq!(r.ledger.phases(), direct.ledger.phases());
        assert_eq!(r.oracle, Some(r.cut.value));
    }

    #[test]
    fn leader_death_mid_mst_recovers_and_certifies() {
        let g = generators::torus2d(4, 4).unwrap();
        // The min-id election makes node 0 the leader; kill it two
        // rounds into the first MST phase.
        let crash_at = rounds_before_mst(&g) + 2;
        let plan = FaultPlan::lossless().with_crash(0, crash_at);
        let r = recover_mincut(&g, &RecoverConfig::default().with_plan(plan)).unwrap();
        assert_eq!(r.epochs, 2);
        assert_eq!(r.dead, vec![NodeId::new(0)]);
        assert_eq!(r.survivors.len(), 15);
        assert!(!r.survivors.contains(&NodeId::new(0)));
        // The leader died before any tree finished, and it roots the
        // BFS tree — nothing is restorable, the retry runs from
        // scratch.
        assert_eq!(r.resumed_from, None);
        assert_eq!(r.oracle, Some(r.cut.value), "certified against the oracle");
        assert!(r.recovery_rounds > 0);
        assert!(r.rounds > r.recovery_rounds);
        assert_eq!(r.wasted_rounds.len(), 2);
        assert!(r.wasted_rounds[0] > 0, "epoch 1 was aborted and censused");
        assert_eq!(r.wasted_rounds[1], 0, "epoch 2 ran from scratch, clean");
        assert_eq!(
            r.wasted_rounds.iter().sum::<u64>(),
            r.recovery_rounds,
            "the per-epoch split covers exactly the recovery total"
        );
        assert!(r.ledger.total_suspicions() > 0);
        assert_eq!(r.ledger.total_false_suspicions(), 0, "lossless links");
    }

    #[test]
    fn group_crash_excises_separated_survivors_too() {
        // A path: killing interior nodes separates the tail from the
        // head's component; the driver must excise both.
        let g = generators::path(8).unwrap();
        let plan = FaultPlan::lossless().with_crash_group(&[3, 4], 0);
        let r = recover_mincut(&g, &RecoverConfig::default().with_plan(plan)).unwrap();
        // Survivors: the component of node 0 → {0, 1, 2}; nodes 5..8
        // are alive but unreachable and get excised with the dead.
        assert_eq!(
            r.survivors,
            (0..3).map(NodeId::new).collect::<Vec<_>>(),
            "the smallest-id completed node anchors the surviving component"
        );
        assert_eq!(r.dead.len(), 5);
        assert_eq!(r.cut.value, 1);
        assert_eq!(r.oracle, Some(1));
    }

    #[test]
    fn lossy_leader_kill_is_deterministic() {
        let g = generators::torus2d(4, 4).unwrap();
        let crash_at = rounds_before_mst(&g) + 2;
        let plan = FaultPlan::with_drop(50, 0xC4A5)
            .delayed(2)
            .with_crash(0, crash_at);
        let cfg = RecoverConfig::default().with_plan(plan);
        let a = recover_mincut(&g, &cfg).unwrap();
        let b = recover_mincut(&g, &cfg).unwrap();
        assert_eq!(a.cut.value, b.cut.value);
        assert_eq!(a.cut.side, b.cut.side);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(
            a.ledger.phases(),
            b.ledger.phases(),
            "same plan ⇒ byte-identical merged ledgers"
        );
    }

    #[test]
    fn unrecoverable_errors_propagate() {
        let g = generators::path(3).unwrap();
        // Total frame loss exhausts the retransmission budget — that is
        // not a crash and must surface, not loop. The budget is shrunk
        // below the suspicion window so exhaustion fires first (with
        // the default budget, total blackout is indistinguishable from
        // everyone crashing and the detector aborts instead).
        let plan = FaultPlan {
            max_attempts: 4,
            ..FaultPlan::with_drop(1000, 1).with_crash(0, 1 << 40)
        };
        let err = recover_mincut(&g, &RecoverConfig::default().with_plan(plan)).unwrap_err();
        assert!(matches!(
            err,
            MinCutError::Congest(CongestError::RetransmitExhausted { .. })
        ));
    }

    #[test]
    fn non_leader_death_mid_packing_resumes_from_checkpoints() {
        // Kill a node that is a LEAF of the first packed tree, after
        // that tree finished — the checkpointed tree minus a leaf still
        // spans the survivors, so the retry must restore it — and
        // compare checkpointed resume against the from-scratch
        // baseline: same certified answer, strictly fewer post-abort
        // rounds.
        let g = generators::torus2d(4, 4).unwrap();
        let base = ExactConfig::default();
        let opts = PipelineOpts {
            network: base.network.clone(),
            mst: base.mst.clone(),
            target: PackingTarget::TrackBest(base.packing.clone()),
            sample: None,
            election: base.election,
        };
        let mut log = RecoveryLog::default();
        let clean = run_pipeline_checkpointed(&g, &opts, None, Some(&mut log))
            .map_err(|(e, _)| e)
            .unwrap();
        assert!(!log.trees.is_empty(), "the clean run checkpoints its trees");
        let (parents, _) = &log.trees[0];
        let mut is_parent = [false; 16];
        for p in parents.iter().flatten() {
            is_parent[*p as usize] = true;
        }
        let victim = (0..16u32)
            .rev()
            .find(|&v| !is_parent[v as usize] && parents[v as usize].is_some())
            .expect("every tree has a non-root leaf");
        // Crash after the second tree's mstA begins: 1 tree checkpointed.
        let mut seen_trees = 0;
        let mut crash_at = 0;
        for p in clean.ledger.phases() {
            if p.name == "s5g" {
                seen_trees += 1;
            }
            crash_at += p.rounds;
            if seen_trees == 1 && p.name.starts_with("mstA") {
                break;
            }
        }
        let plan = FaultPlan::lossless().with_crash(victim, crash_at + 1);
        let ckpt = recover_mincut(&g, &RecoverConfig::default().with_plan(plan.clone())).unwrap();
        let scratch = recover_mincut(
            &g,
            &RecoverConfig::default()
                .with_plan(plan)
                .with_checkpoint(false),
        )
        .unwrap();
        assert_eq!(ckpt.cut.value, scratch.cut.value);
        assert_eq!(ckpt.oracle, scratch.oracle);
        assert_eq!(ckpt.dead, vec![NodeId::new(victim)]);
        assert_eq!(scratch.resumed_from, None);
        assert!(
            matches!(ckpt.resumed_from, Some(Stage::Packed(k)) if k >= 1),
            "at least the finished tree must be restored, got {:?}",
            ckpt.resumed_from
        );
        // The resumed epoch skips the restored trees' MST stages.
        let work = |r: &RecoveredMinCut| r.rounds - r.wasted_rounds[0];
        assert!(
            work(&ckpt) < work(&scratch),
            "resume must be cheaper: {} vs {}",
            work(&ckpt),
            work(&scratch)
        );
    }

    #[test]
    fn pendant_leader_death_replays_cut_values_as_evidence() {
        // A torus relabeled to 1..17 plus a pendant leader: node 0 hangs
        // off node 1 by a single heavy edge. Every spanning tree
        // contains node 0 exactly through that edge, so no survivor
        // subtree cut is touched by its excision — the finished trees'
        // checkpointed minima must be replayed as trusted evidence
        // (zero-round replay + one validation convergecast), not
        // re-evaluated.
        let base = generators::torus2d(4, 4).unwrap();
        let mut edges: Vec<(u32, u32, u64)> = base
            .edge_tuples()
            .map(|(_, u, v, w)| (u.raw() + 1, v.raw() + 1, w))
            .collect();
        edges.push((0, 1, 100));
        let g = WeightedGraph::from_edges(17, edges).unwrap();
        // Pack exactly three trees and kill the leader two rounds after
        // the second finishes (its "s5g" improvement broadcast) — two
        // checkpointed trees, one still to pack.
        let base = ExactConfig {
            packing: crate::seq::tree_packing::PackingConfig {
                size: crate::seq::tree_packing::PackingSize::Fixed(3),
                max_trees: 3,
            },
            ..Default::default()
        };
        let clean = exact_mincut(&g, &base).unwrap();
        let mut finished = 0;
        let mut crash_at = 0u64;
        for p in clean.ledger.phases() {
            crash_at += p.rounds;
            if p.name == "s5g" {
                finished += 1;
                if finished == 2 {
                    break;
                }
            }
        }
        let plan = FaultPlan::lossless().with_crash(0, crash_at + 2);
        let cfg = RecoverConfig {
            base,
            ..Default::default()
        }
        .with_plan(plan);
        let ckpt = recover_mincut(&g, &cfg).unwrap();
        let scratch = recover_mincut(&g, &cfg.clone().with_checkpoint(false)).unwrap();
        assert_eq!(ckpt.dead, vec![NodeId::new(0)]);
        assert_eq!(ckpt.survivors.len(), 16);
        assert_eq!(ckpt.cut.value, 4, "λ of the bare torus remnant");
        assert_eq!(ckpt.oracle, Some(4));
        assert_eq!(scratch.cut.value, 4);
        assert!(
            matches!(ckpt.resumed_from, Some(Stage::Packed(k)) if k >= 1),
            "the finished tree must be restored, got {:?}",
            ckpt.resumed_from
        );
        // The dead leader rules out a BFS restore, yet the trusted
        // trees still get their fail-fast validation convergecast.
        assert_eq!(ckpt.ledger.phases_matching("recover.e2.resume.bfs"), 0);
        assert!(
            ckpt.ledger.phases_matching("recover.e2.resume.trees") > 0,
            "trusted evidence is validated before it is acted on"
        );
        // Evidence replay runs no cut stage for the restored tree: the
        // final epoch books one fewer `s5g` than the from-scratch path.
        let final_s5g =
            |r: &RecoveredMinCut| r.ledger.phases().iter().filter(|p| p.name == "s5g").count();
        assert!(
            final_s5g(&ckpt) < final_s5g(&scratch),
            "a replayed tree must not re-run its cut stage: {} vs {}",
            final_s5g(&ckpt),
            final_s5g(&scratch)
        );
        let work = |r: &RecoveredMinCut| r.rounds - r.wasted_rounds[0];
        assert!(
            2 * work(&ckpt) <= work(&scratch),
            "evidence replay must at least halve the rebuild: {} vs {}",
            work(&ckpt),
            work(&scratch)
        );
    }

    #[test]
    fn scheduled_rejoin_is_readmitted_with_unchanged_lambda() {
        let g = generators::torus2d(4, 4).unwrap();
        let crash_at = rounds_before_mst(&g) + 2;
        // Node 5 dies mid-MST and rejoins shortly after the abort — due
        // by the time the census settles.
        let plan = FaultPlan::lossless().with_crashes(vec![CrashEvent {
            node: 5,
            at_round: crash_at,
            rejoin: Some(crash_at + 20),
        }]);
        let r = recover_mincut(&g, &RecoverConfig::default().with_plan(plan)).unwrap();
        assert_eq!(r.epochs, 2, "one abort, one clean retry");
        assert!(r.dead.is_empty(), "nobody is excised");
        assert_eq!(r.rejoined, vec![NodeId::new(5)]);
        assert_eq!(r.survivors.len(), 16, "the full graph survives");
        let clean = exact_mincut(&g, &ExactConfig::default()).unwrap();
        assert_eq!(r.cut.value, clean.cut.value, "λ of the full graph");
        assert_eq!(r.oracle, Some(r.cut.value));
        assert!(
            r.ledger.phases_matching("census.e1.join") > 0,
            "the rejoin handshake ran"
        );
        assert!(
            r.resumed_from.is_some(),
            "unchanged participants ⇒ checkpointed resume, got {:?}",
            r.resumed_from
        );
    }

    #[test]
    fn partition_abort_retries_without_excision() {
        let g = generators::torus2d(4, 4).unwrap();
        // Cut a band of edges long past the suspicion threshold: the
        // attempt aborts, but the census (run after the one-shot window
        // is consumed) finds everyone alive.
        let cut_edges: Vec<(u32, u32)> = vec![(0, 1), (4, 5), (8, 9), (12, 13)];
        let plan = FaultPlan::lossless().with_partition(cut_edges, 10, 10_000);
        let r = recover_mincut(&g, &RecoverConfig::default().with_plan(plan)).unwrap();
        assert_eq!(r.epochs, 2, "abort + clean retry");
        assert!(r.dead.is_empty(), "a partition is not a death");
        assert!(r.rejoined.is_empty());
        assert_eq!(r.survivors.len(), 16);
        let clean = exact_mincut(&g, &ExactConfig::default()).unwrap();
        assert_eq!(
            r.cut.value, clean.cut.value,
            "never certifies a half-partition λ"
        );
        assert_eq!(r.oracle, Some(r.cut.value));
        // The abort itself is the partition's only surviving trace: the
        // engine discards an aborted phase's meters, and the census
        // runs on a rebased plan whose one-shot window is consumed — so
        // the proof of the blame path is a second epoch with nobody
        // excised plus a censused (nonzero) recovery bill.
        assert!(r.recovery_rounds > 0, "the abort and census were booked");
        assert!(
            r.ledger.phases_matching("census.e1.") > 0,
            "the census ran and found a healthy network"
        );
    }
}
