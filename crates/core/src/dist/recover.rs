//! The self-healing driver: crash detection and recovery wrapped around
//! the exact pipeline.
//!
//! [`recover_mincut`] runs [`crate::dist::driver::exact_mincut`]'s
//! pipeline under a crash-scheduling [`FaultPlan`] and survives
//! fail-stop faults — including the death of the elected leader — by an
//! *epoch* loop:
//!
//! 1. **Attempt.** Run the full pipeline with
//!    [`SuspicionPolicy::Abort`]: the first time the transport's timeout
//!    detector suspects a silent peer, the phase aborts with the typed
//!    [`CongestError::NodeSuspected`], whose `round` field is the
//!    session's virtual-round clock at the abort.
//! 2. **Census.** Rebase the plan by that clock (crashes that already
//!    fired become dead-from-boot) and run one
//!    [`FailureDetector`] phase under [`SuspicionPolicy::Continue`] on
//!    the same topology: every surviving node idles through the
//!    suspicion window and reports which neighbors its detector
//!    suspects. Reports of crashed nodes arrive with
//!    `completed == false` and are discarded; the union of the
//!    completed reports' suspect sets is the diagnosed dead set.
//! 3. **Excise and retry.** The next epoch runs on the subgraph induced
//!    by the surviving component of the smallest-id completed node
//!    (connectivity is recomputed, so survivors separated from that
//!    component by an interior dead region are excised too — the
//!    pipeline requires a connected graph). Node ids are compacted; the
//!    crash schedule is renamed through the same map
//!    ([`FaultPlan::remapped`]) and shifted past the rounds consumed so
//!    far ([`FaultPlan::rebased`]). A new leader is elected from
//!    scratch — re-election *is* the first phase of the re-run pipeline.
//!
//! The loop ends when an attempt completes; the recovered cut is then
//! **certified** against the sequential Stoer–Wagner oracle on the
//! surviving subgraph (enabled by default), making "recovered λ is the
//! minimum cut of what survived" a checked property rather than a
//! convention.
//!
//! # Accounting
//!
//! Every phase of every failed attempt and every census is folded into
//! the merged [`MetricsLedger`] under a `recover.e{epoch}.` name prefix;
//! the successful attempt's phases keep their canonical names. The cost
//! of crash recovery is therefore one query away:
//! `ledger.rounds_matching("recover.")` /
//! `ledger.messages_matching("recover.")` are surfaced as
//! [`RecoveredMinCut::recovery_rounds`] and
//! [`RecoveredMinCut::recovery_messages`], and the detector's own
//! suspicion counters ride in the per-phase `sim` stats.
//!
//! Everything is deterministic: the same graph and the same plan yield
//! byte-identical merged ledgers (asserted in `tests/self_healing.rs`).

use crate::dist::driver::{run_pipeline_traced, ExactConfig, PipelineOpts};
use crate::dist::packing::PackingTarget;
use crate::seq::stoer_wagner;
use crate::MinCutError;
use congest::primitives::failure_detector::FailureDetector;
use congest::sim::{FaultPlan, SuspicionPolicy};
use congest::{CongestError, MetricsLedger, Network};
use graphs::{CutResult, NodeId, WeightedGraph};

/// Configuration of [`recover_mincut`].
#[derive(Clone, Debug)]
pub struct RecoverConfig {
    /// The pipeline configuration (network model, packing policy, MST
    /// knobs, election protocol). Its executor choice is overridden: the
    /// attempts run under the fault-injecting executor with [`plan`]
    /// (with the abort-on-suspicion policy forced).
    ///
    /// [`plan`]: RecoverConfig::plan
    pub base: ExactConfig,
    /// The adversary: link faults plus the crash schedule, in **global
    /// virtual rounds** counted across the whole recovery session
    /// (failed attempts and censuses included).
    pub plan: FaultPlan,
    /// Maximum pipeline attempts before giving up (min 1). Each epoch
    /// excises at least one node, so the loop always terminates; this
    /// caps how much of the graph may die before the driver declares
    /// the instance unrecoverable.
    pub max_epochs: usize,
    /// Certify the recovered cut against the sequential Stoer–Wagner
    /// oracle on the surviving subgraph (default `true`). Disable only
    /// for benchmarks where the oracle's `O(nm + n² log n)` cost drowns
    /// the signal.
    pub certify: bool,
}

impl Default for RecoverConfig {
    /// Default pipeline config, a lossless crash-free plan, at most 8
    /// epochs, certification on.
    fn default() -> Self {
        RecoverConfig {
            base: ExactConfig::default(),
            plan: FaultPlan::lossless(),
            max_epochs: 8,
            certify: true,
        }
    }
}

impl RecoverConfig {
    /// This config with the given fault plan.
    pub fn with_plan(self, plan: FaultPlan) -> Self {
        RecoverConfig { plan, ..self }
    }
}

/// Result of a self-healing run: the minimum cut of the surviving
/// subgraph, plus the recovery accounting.
#[derive(Clone, Debug)]
pub struct RecoveredMinCut {
    /// The best cut of the **surviving** subgraph. `cut.side[i]` refers
    /// to the node whose original id is `survivors[i]`.
    pub cut: CutResult,
    /// Original ids of the surviving nodes, ascending — the new-id →
    /// original-id map of the final subgraph.
    pub survivors: Vec<NodeId>,
    /// Original ids of the excised nodes, ascending: diagnosed crashed
    /// nodes plus any survivors the crashes separated from the surviving
    /// component.
    pub dead: Vec<NodeId>,
    /// Pipeline attempts executed (1 = no crash was ever suspected).
    pub epochs: usize,
    /// The Stoer–Wagner λ of the surviving subgraph, when certification
    /// ran (it always equals `cut.value` — a mismatch is an error).
    pub oracle: Option<u64>,
    /// Total virtual rounds across the whole session, recovery included.
    pub rounds: u64,
    /// Total messages across the whole session, recovery included.
    pub messages: u64,
    /// Rounds spent on recovery alone: every phase of every aborted
    /// attempt plus every failure-detector census.
    pub recovery_rounds: u64,
    /// Messages spent on recovery alone.
    pub recovery_messages: u64,
    /// The merged per-phase ledger: `recover.e{epoch}.*` entries for the
    /// recovery work, canonical names for the successful attempt.
    pub ledger: MetricsLedger,
}

/// Runs the exact distributed min-cut pipeline on `g` under
/// `cfg.plan`'s faults, recovering from crashes; see the module docs.
///
/// # Errors
///
/// Everything [`crate::dist::driver::exact_mincut`] can return, plus
/// [`MinCutError::InvalidConfig`] when recovery does not converge
/// within [`RecoverConfig::max_epochs`] epochs or when certification
/// fails, and [`MinCutError::TooSmall`] when fewer than two nodes
/// survive. Errors other than [`CongestError::NodeSuspected`] —
/// bandwidth violations, retransmission exhaustion — are *not*
/// recoverable and propagate from the failing attempt unchanged.
pub fn recover_mincut(
    g: &WeightedGraph,
    cfg: &RecoverConfig,
) -> Result<RecoveredMinCut, MinCutError> {
    let mut merged = MetricsLedger::new();
    let mut cur = g.clone();
    // orig[v] = the original id of the current subgraph's node v.
    let mut orig: Vec<u32> = (0..g.node_count() as u32).collect();
    let mut dead: Vec<u32> = Vec::new();
    let mut plan = cfg.plan.clone();
    plan.on_suspect = SuspicionPolicy::Abort;
    let max_epochs = cfg.max_epochs.max(1);

    for epoch in 1..=max_epochs {
        let opts = PipelineOpts {
            network: cfg.base.network.clone().with_fault_plan(plan.clone()),
            mst: cfg.base.mst.clone(),
            target: PackingTarget::TrackBest(cfg.base.packing.clone()),
            sample: None,
            election: cfg.base.election,
        };
        let err = match run_pipeline_traced(&cur, &opts) {
            Ok(outcome) => {
                for p in outcome.ledger.phases() {
                    merged.push(p.clone());
                }
                let oracle = if cfg.certify {
                    let sw = stoer_wagner(&cur)?;
                    if sw.value != outcome.cut.value {
                        return Err(MinCutError::InvalidConfig {
                            reason: format!(
                                "survivor certification failed: recovered λ = {} but the \
                                 sequential oracle finds {} on the surviving subgraph",
                                outcome.cut.value, sw.value
                            ),
                        });
                    }
                    Some(sw.value)
                } else {
                    None
                };
                dead.sort_unstable();
                return Ok(RecoveredMinCut {
                    cut: outcome.cut,
                    survivors: orig.iter().map(|&v| NodeId::new(v)).collect(),
                    dead: dead.iter().map(|&v| NodeId::new(v)).collect(),
                    epochs: epoch,
                    oracle,
                    rounds: merged.total_rounds(),
                    messages: merged.total_messages(),
                    recovery_rounds: merged.rounds_matching("recover."),
                    recovery_messages: merged.messages_matching("recover."),
                    ledger: merged,
                });
            }
            Err((e, attempt_ledger)) => {
                for p in attempt_ledger.phases() {
                    let mut q = p.clone();
                    q.name = format!("recover.e{epoch}.{}", q.name);
                    merged.push(q);
                }
                e
            }
        };
        let MinCutError::Congest(CongestError::NodeSuspected { round, .. }) = &err else {
            // Non-crash failures (bandwidth, retransmission exhaustion,
            // degenerate inputs) are not recoverable by excision.
            return Err(err);
        };
        // Rebase the crash schedule past the aborted attempt: everything
        // that already fired becomes dead-from-boot for the census.
        let census_plan = plan.rebased(*round).continue_on_suspicion();
        let detector = FailureDetector::for_plan(&census_plan);
        let net_cfg = cfg
            .base
            .network
            .clone()
            .with_fault_plan(census_plan.clone());
        let mut net = Network::new(&cur, net_cfg)?;
        let name = format!("recover.e{epoch}.census");
        let reports = net
            .run(&name, &detector, vec![(); cur.node_count()])?
            .outputs;
        let census_rounds = net.ledger().total_rounds();
        for p in net.ledger().phases() {
            merged.push(p.clone());
        }
        plan = census_plan.rebased(census_rounds);
        plan.on_suspect = SuspicionPolicy::Abort;

        // Diagnose: the union of suspect sets over completed reports.
        let n = cur.node_count();
        let mut is_dead = vec![false; n];
        let mut any = false;
        for r in reports.iter().filter(|r| r.completed) {
            for s in &r.suspects {
                is_dead[s.index()] = true;
                any = true;
            }
        }
        if !any {
            // The abort was real but the census sees a healthy network —
            // nothing to excise, so retrying would loop. Surface the
            // original error.
            return Err(err);
        }
        // The surviving component: flood from the smallest-id completed
        // node through non-dead nodes.
        let Some(start) = (0..n).find(|&v| reports[v].completed && !is_dead[v]) else {
            return Err(MinCutError::TooSmall { nodes: 0 });
        };
        let mut in_comp = vec![false; n];
        in_comp[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for a in cur.neighbors(NodeId::from_index(v)) {
                let u = a.neighbor.index();
                if !is_dead[u] && !in_comp[u] {
                    in_comp[u] = true;
                    queue.push_back(u);
                }
            }
        }
        let k = in_comp.iter().filter(|&&s| s).count();
        if k < 2 {
            return Err(MinCutError::TooSmall { nodes: k });
        }
        // Excise: compact ids, rebuild the graph, rename the schedule.
        let mut new_id = vec![u32::MAX; n];
        let mut next = 0u32;
        for v in 0..n {
            if in_comp[v] {
                new_id[v] = next;
                next += 1;
            } else {
                dead.push(orig[v]);
            }
        }
        let edges = cur
            .edge_tuples()
            .filter(|(_, u, v, _)| in_comp[u.index()] && in_comp[v.index()])
            .map(|(_, u, v, w)| (new_id[u.index()], new_id[v.index()], w));
        let sub = WeightedGraph::from_edges(k, edges.collect::<Vec<_>>())
            .expect("induced subgraph of a valid graph is valid");
        orig = (0..n).filter(|&v| in_comp[v]).map(|v| orig[v]).collect();
        plan = plan.remapped(|u| {
            let u = u as usize;
            (u < new_id.len() && new_id[u] != u32::MAX).then(|| new_id[u])
        });
        cur = sub;
    }
    Err(MinCutError::InvalidConfig {
        reason: format!("crash recovery did not converge within {max_epochs} epochs"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::driver::exact_mincut;
    use graphs::generators;

    /// Virtual rounds consumed before the first `mstA` phase of a clean
    /// run — used to aim a crash mid-MST.
    fn rounds_before_mst(g: &WeightedGraph) -> u64 {
        let clean = exact_mincut(g, &ExactConfig::default()).unwrap();
        clean
            .ledger
            .phases()
            .iter()
            .take_while(|p| !p.name.starts_with("mstA"))
            .map(|p| p.rounds)
            .sum()
    }

    #[test]
    fn crash_free_plan_takes_one_epoch_and_matches_exact() {
        let g = generators::torus2d(4, 4).unwrap();
        // An unreachable crash arms the detector without killing anyone.
        let plan = FaultPlan::with_drop(30, 9)
            .delayed(1)
            .with_crash(3, 1 << 40);
        let r = recover_mincut(&g, &RecoverConfig::default().with_plan(plan.clone())).unwrap();
        assert_eq!(r.epochs, 1);
        assert!(r.dead.is_empty());
        assert_eq!(r.survivors.len(), 16);
        assert_eq!(r.recovery_rounds, 0);
        assert_eq!(r.recovery_messages, 0);
        let direct = exact_mincut(&g, &ExactConfig::default().with_fault_plan(plan)).unwrap();
        assert_eq!(r.cut.value, direct.cut.value);
        assert_eq!(r.cut.side, direct.cut.side);
        assert_eq!(r.ledger.phases(), direct.ledger.phases());
        assert_eq!(r.oracle, Some(r.cut.value));
    }

    #[test]
    fn leader_death_mid_mst_recovers_and_certifies() {
        let g = generators::torus2d(4, 4).unwrap();
        // The min-id election makes node 0 the leader; kill it two
        // rounds into the first MST phase.
        let crash_at = rounds_before_mst(&g) + 2;
        let plan = FaultPlan::lossless().with_crash(0, crash_at);
        let r = recover_mincut(&g, &RecoverConfig::default().with_plan(plan)).unwrap();
        assert_eq!(r.epochs, 2);
        assert_eq!(r.dead, vec![NodeId::new(0)]);
        assert_eq!(r.survivors.len(), 15);
        assert!(!r.survivors.contains(&NodeId::new(0)));
        assert_eq!(r.oracle, Some(r.cut.value), "certified against the oracle");
        assert!(r.recovery_rounds > 0);
        assert!(r.rounds > r.recovery_rounds);
        assert!(r.ledger.total_suspicions() > 0);
        assert_eq!(r.ledger.total_false_suspicions(), 0, "lossless links");
    }

    #[test]
    fn group_crash_excises_separated_survivors_too() {
        // A path: killing interior nodes separates the tail from the
        // head's component; the driver must excise both.
        let g = generators::path(8).unwrap();
        let plan = FaultPlan::lossless().with_crash_group(&[3, 4], 0);
        let r = recover_mincut(&g, &RecoverConfig::default().with_plan(plan)).unwrap();
        // Survivors: the component of node 0 → {0, 1, 2}; nodes 5..8
        // are alive but unreachable and get excised with the dead.
        assert_eq!(
            r.survivors,
            (0..3).map(NodeId::new).collect::<Vec<_>>(),
            "the smallest-id completed node anchors the surviving component"
        );
        assert_eq!(r.dead.len(), 5);
        assert_eq!(r.cut.value, 1);
        assert_eq!(r.oracle, Some(1));
    }

    #[test]
    fn lossy_leader_kill_is_deterministic() {
        let g = generators::torus2d(4, 4).unwrap();
        let crash_at = rounds_before_mst(&g) + 2;
        let plan = FaultPlan::with_drop(50, 0xC4A5)
            .delayed(2)
            .with_crash(0, crash_at);
        let cfg = RecoverConfig::default().with_plan(plan);
        let a = recover_mincut(&g, &cfg).unwrap();
        let b = recover_mincut(&g, &cfg).unwrap();
        assert_eq!(a.cut.value, b.cut.value);
        assert_eq!(a.cut.side, b.cut.side);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(
            a.ledger.phases(),
            b.ledger.phases(),
            "same plan ⇒ byte-identical merged ledgers"
        );
    }

    #[test]
    fn unrecoverable_errors_propagate() {
        let g = generators::path(3).unwrap();
        // Total frame loss exhausts the retransmission budget — that is
        // not a crash and must surface, not loop. The budget is shrunk
        // below the suspicion window so exhaustion fires first (with
        // the default budget, total blackout is indistinguishable from
        // everyone crashing and the detector aborts instead).
        let plan = FaultPlan {
            max_attempts: 4,
            ..FaultPlan::with_drop(1000, 1).with_crash(0, 1 << 40)
        };
        let err = recover_mincut(&g, &RecoverConfig::default().with_plan(plan)).unwrap_err();
        assert!(matches!(
            err,
            MinCutError::Congest(CongestError::RetransmitExhausted { .. })
        ));
    }
}
