//! The paper's **distributed** minimum-cut pipeline in the CONGEST model.
//!
//! This module implements Nanongkai's PODC 2014 algorithm end to end on
//! the [`congest`] simulator:
//!
//! * [`driver`] — the public entry point [`driver::exact_mincut`]: packs
//!   greedy trees (Thorup), runs the Section-2 1-respecting stage on each,
//!   and returns the best cut with full per-phase metrics;
//! * [`mst`] — the `Õ(√n + D)` distributed minimum spanning tree in the
//!   Kutten–Peleg two-phase style: capped local fragment growth, then
//!   Borůvka iterations coordinated through the leader's BFS tree;
//! * [`packing`] — the wire/bookkeeping types of the greedy tree packing
//!   (relative-load keys, per-node load memory, packing-size policy);
//! * [`one_respect`] — Section 2: the minimum cut that 1-respects a tree
//!   via Karger's identity `C(v↓) = δ↓(v) − 2ρ↓(v)`, computed with
//!   fragment decomposition so the cost is `Õ(√n + D)` independent of the
//!   tree's depth;
//! * [`recover`] — the self-healing driver
//!   ([`recover::recover_mincut`]): runs the pipeline under a
//!   crash-scheduling fault plan, catches the transport's typed
//!   suspicion abort, diagnoses the dead via a failure-detector census,
//!   excises them, and re-runs on the surviving component until a
//!   certified cut emerges;
//! * [`approx`] — the `(1+ε)` approximation via Karger skeleton sampling
//!   ([`approx::approx_mincut`]);
//! * [`baselines`] — distributed baselines in the spirit of Ghaffari–Kuhn
//!   (`2+ε` quality class) and Su's concurrent sampling.
//!
//! # Phase naming
//!
//! Every [`congest::Network::run`] call is one metered phase; the ledger
//! entries follow the paper's step structure: `leader_bfs`, `mstA.*`
//! (fragment growth levels), `mstB.*` (Borůvka-over-BFS iterations),
//! `orient.*` (rooting the tree and the fragment tree `T_F`), `s2a`–`s2c`
//! (fragment-internal structure: subtree sizes, Euler intervals,
//! attachment tables), `s3` (per-edge exchange and LCA case analysis),
//! `s4*` (merging-node resolution for case-(i) edges through the leader),
//! `s5*` (pipelined aggregation of `δ↓`/`ρ↓` and the global argmin), and
//! `side.*` (extracting the winning side).
//!
//! # Model fidelity
//!
//! All communication goes through the simulator: node code sees only its
//! local state, its incident edges, and its inbox, and every message is
//! charged against the `β·⌈log₂ n⌉`-bit budget (strict by default). The
//! sequential driver performs only per-node-local bookkeeping between
//! phases (the engine's documented "persistent local memory" convention)
//! plus loop-termination decisions that a deployment would obtain from an
//! `O(D)` convergecast.

pub mod approx;
pub mod baselines;
pub mod driver;
pub mod mst;
pub mod one_respect;
pub mod packing;
pub mod recover;

pub use approx::{approx_mincut, ApproxConfig};
pub use baselines::{gk_baseline, su_baseline, BaselineConfig};
pub use driver::{exact_mincut, DistMinCutResult, ExactConfig};
pub use mst::MstConfig;
pub use recover::{recover_mincut, RecoverConfig, RecoveredMinCut, Stage};
