//! The `(1+ε)`-approximate distributed minimum cut via Karger skeleton
//! sampling — the paper's headline improvement over the `(2+ε)` class.
//!
//! The algorithm guesses the minimum cut by a halving ladder
//! `λ̂₀ ≥ λ̂₀/2 ≥ …` starting from the minimum-weighted-degree upper
//! bound. Each rung samples every unit of weight with probability
//! `p = min(1, c·ln n / (ε²·λ̂))` using shared coins keyed by the edge
//! id (both endpoints sample identically without communication), packs
//! trees on the *skeleton*, and evaluates the 1-respecting cuts with the
//! **original** weights — so every candidate is a true cut of `g` and
//! the result is always sound. Once `p` reaches 1 the skeleton is the
//! graph itself, the rung degenerates to the exact algorithm, and the
//! ladder stops; at the test-suite sizes this happens immediately, which
//! is why the approximation is "effectively exact" there.

use crate::dist::driver::{run_pipeline, PipelineOpts};
use crate::dist::mst::MstConfig;
use crate::dist::packing::PackingTarget;
use crate::seq::sampling::{sampling_probability, skeleton_target};
use crate::seq::tree_packing::PackingConfig;
use crate::MinCutError;
use congest::primitives::leader_bfs::Election;
use congest::{MetricsLedger, NetworkConfig};
use graphs::{CutResult, WeightedGraph};

/// Configuration of [`approx_mincut`].
#[derive(Clone, Debug)]
pub struct ApproxConfig {
    /// Approximation slack: the returned value is `≤ (1+ε)·λ` w.h.p.
    pub eps: f64,
    /// CONGEST model parameters, including which round executor drives
    /// the phases (`network.executor`) — results are executor-independent.
    pub network: NetworkConfig,
    /// Distributed MST stage knobs.
    pub mst: MstConfig,
    /// Shared-coin seed of the skeleton sampling.
    pub seed: u64,
    /// The constant `c` of the skeleton target `c·ln n / ε²`.
    pub skeleton_c: f64,
    /// Trees per sampled rung (`None`: `⌈2 ln n⌉`). The final `p = 1`
    /// rung always uses the exact algorithm's adaptive policy.
    pub trees_per_rung: Option<usize>,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            eps: 0.25,
            network: NetworkConfig::default(),
            mst: MstConfig::default(),
            seed: 0x4150_5258,
            skeleton_c: 3.0,
            trees_per_rung: None,
        }
    }
}

/// One rung of the guess ladder.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LadderGuess {
    /// The minimum-cut guess of this rung.
    pub lambda_hat: u64,
    /// The sampling probability used (`1.0` = exact rung).
    pub p: f64,
}

/// Result of [`approx_mincut`].
#[derive(Clone, Debug)]
pub struct ApproxResult {
    /// The best cut found (a true, verified cut of the input graph).
    pub cut: CutResult,
    /// Total CONGEST rounds across all rungs.
    pub rounds: u64,
    /// Total messages across all rungs.
    pub messages: u64,
    /// The ladder actually run, from the largest guess downward.
    pub guesses: Vec<LadderGuess>,
    /// Per-phase metrics of every rung, concatenated.
    pub ledger: MetricsLedger,
}

/// Runs the `(1+ε)`-approximate distributed minimum cut on `g`.
///
/// # Errors
///
/// [`MinCutError::InvalidConfig`] for `ε ≤ 0`, plus everything
/// [`crate::dist::driver::exact_mincut`] can return.
pub fn approx_mincut(
    g: &WeightedGraph,
    config: &ApproxConfig,
) -> Result<ApproxResult, MinCutError> {
    if config.eps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(MinCutError::InvalidConfig {
            reason: format!("eps must be positive, got {}", config.eps),
        });
    }
    let n = g.node_count();
    if n < 2 {
        return Err(MinCutError::TooSmall { nodes: n });
    }
    let target = skeleton_target(n, config.eps, config.skeleton_c);
    let rung_trees = config
        .trees_per_rung
        .unwrap_or_else(|| (2.0 * (n.max(2) as f64).ln()).ceil() as usize);
    let mut lambda_hat = g.min_weighted_degree().expect("n ≥ 2").max(1);
    let mut guesses = Vec::new();
    let mut best: Option<PipelineBest> = None;
    let mut rounds = 0u64;
    let mut messages = 0u64;
    let mut ledger = MetricsLedger::new();
    for rung in 0u64.. {
        let p = sampling_probability(lambda_hat, target);
        guesses.push(LadderGuess { lambda_hat, p });
        let exact_rung = p >= 1.0;
        let opts = PipelineOpts {
            network: config.network.clone(),
            mst: config.mst.clone(),
            target: if exact_rung {
                PackingTarget::TrackBest(PackingConfig::default())
            } else {
                PackingTarget::Fixed(rung_trees)
            },
            sample: (!exact_rung).then_some((p, config.seed ^ rung)),
            election: Election::default(),
        };
        match run_pipeline(g, &opts) {
            Ok(outcome) => {
                rounds += outcome.rounds;
                messages += outcome.messages;
                for ph in outcome.ledger.phases() {
                    ledger.push(ph.clone());
                }
                if best
                    .as_ref()
                    .is_none_or(|b| outcome.cut.value < b.cut.value)
                {
                    best = Some(PipelineBest { cut: outcome.cut });
                }
            }
            // A too-aggressive skeleton can disconnect; the rung is
            // simply uninformative and the ladder continues.
            Err(MinCutError::Disconnected) if !exact_rung => {}
            Err(e) => return Err(e),
        }
        if exact_rung || lambda_hat == 1 {
            break;
        }
        lambda_hat /= 2;
    }
    let best = match best {
        Some(b) => b,
        None => {
            // Possible when ε is so large that p < 1 even at λ̂ = 1 and
            // every sampled skeleton disconnected: finish with one
            // exact rung so a result is always produced.
            guesses.push(LadderGuess {
                lambda_hat: 1,
                p: 1.0,
            });
            let outcome = run_pipeline(
                g,
                &PipelineOpts {
                    network: config.network.clone(),
                    mst: config.mst.clone(),
                    target: PackingTarget::TrackBest(PackingConfig::default()),
                    sample: None,
                    election: Election::default(),
                },
            )?;
            rounds += outcome.rounds;
            messages += outcome.messages;
            for ph in outcome.ledger.phases() {
                ledger.push(ph.clone());
            }
            PipelineBest { cut: outcome.cut }
        }
    };
    Ok(ApproxResult {
        cut: best.cut,
        rounds,
        messages,
        guesses,
        ledger,
    })
}

struct PipelineBest {
    cut: CutResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::stoer_wagner;
    use graphs::generators;

    #[test]
    fn exact_on_small_instances_via_p1_rung() {
        let g = generators::torus2d(4, 4).unwrap();
        let r = approx_mincut(&g, &ApproxConfig::default()).unwrap();
        assert_eq!(r.cut.value, 4);
        assert!(r.cut.is_proper());
        assert!(!r.guesses.is_empty());
        assert!(r.guesses.iter().all(|g| g.p > 0.0 && g.p <= 1.0));
        assert_eq!(r.guesses.last().unwrap().p, 1.0);
    }

    #[test]
    fn value_is_always_a_true_cut_value_above_optimum() {
        let p = generators::clique_pair(7, 3).unwrap();
        let opt = stoer_wagner(&p.graph).unwrap().value;
        for eps in [0.5, 0.125] {
            let cfg = ApproxConfig {
                eps,
                ..Default::default()
            };
            let r = approx_mincut(&p.graph, &cfg).unwrap();
            assert!(r.cut.value >= opt);
            assert_eq!(graphs::cut::cut_of_side(&p.graph, &r.cut.side), r.cut.value);
        }
    }

    #[test]
    fn huge_eps_with_all_skeletons_disconnected_still_returns_a_cut() {
        // ε so large that p < 1 even at λ̂ = 1; on a cycle every sampled
        // skeleton disconnects, so only the fallback exact rung answers.
        let g = generators::cycle(8).unwrap();
        let cfg = ApproxConfig {
            eps: 4.0,
            ..Default::default()
        };
        let r = approx_mincut(&g, &cfg).unwrap();
        assert_eq!(r.cut.value, 2);
        assert_eq!(r.guesses.last().unwrap().p, 1.0);
    }

    #[test]
    fn rejects_nonpositive_eps() {
        let g = generators::cycle(5).unwrap();
        for eps in [0.0, -1.0, f64::NAN] {
            let cfg = ApproxConfig {
                eps,
                ..Default::default()
            };
            assert!(matches!(
                approx_mincut(&g, &cfg),
                Err(MinCutError::InvalidConfig { .. })
            ));
        }
    }
}
