//! Wire and bookkeeping types of the distributed greedy tree packing.
//!
//! Thorup's greedy packing orders edges by **relative load**
//! `load(e)/w(e)` (number of previous trees using `e` per unit of
//! capacity), tie-broken by weight then edge id — the same strict total
//! order as the sequential [`crate::seq::tree_packing::LoadKey`], so the
//! distributed MST of every packing iteration is *the* unique MST and
//! matches the sequential packing tree for tree. Loads are per-edge local
//! state: both endpoints of a tree edge learn the tree membership during
//! MST construction and bump their local counters, no communication
//! needed.

use crate::seq::tree_packing::LoadKey;
use congest::message::TAG_BITS;
use congest::{value_bits, Message};

/// A packing-MST edge candidate as carried on the wire: the relative-load
/// key fields of one incident edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cand {
    /// Trees already using this edge.
    pub load: u64,
    /// The edge's packing weight (skeleton weight for sampled runs).
    pub weight: u64,
    /// Global edge id (deterministic tie-break; both endpoints agree).
    pub edge: u32,
}

impl Cand {
    /// The strict-total-order key (relative load, weight, id).
    pub fn key(&self) -> LoadKey {
        LoadKey {
            load: self.load,
            weight: self.weight,
            edge: self.edge,
        }
    }

    /// Transmission size of the three fields.
    pub fn bits(&self) -> usize {
        value_bits(self.load) + value_bits(self.weight) + value_bits(self.edge as u64)
    }
}

impl Message for Cand {
    fn bit_len(&self) -> usize {
        TAG_BITS + self.bits()
    }
}

/// Returns the better (smaller-key) of two optional candidates.
pub fn better(a: Option<Cand>, b: Option<Cand>) -> Option<Cand> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.key() <= y.key() { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// How the packing loop decides how many trees to pack.
#[derive(Clone, Debug)]
pub enum PackingTarget {
    /// Re-evaluate the configured policy as the upper bound `λ̂`
    /// improves — the exact algorithm's behaviour, mirroring
    /// [`crate::seq::tree_packing::PackingConfig::target_trees`].
    TrackBest(crate::seq::tree_packing::PackingConfig),
    /// Pack exactly this many trees (skeleton rungs, baselines).
    Fixed(usize),
}

impl PackingTarget {
    /// Trees to pack given `n` and the current best known cut value.
    pub fn target(&self, n: usize, lambda_hat: u64) -> usize {
        match self {
            PackingTarget::TrackBest(cfg) => cfg.target_trees(n, lambda_hat),
            PackingTarget::Fixed(k) => (*k).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_prefers_smaller_relative_load() {
        let a = Cand {
            load: 1,
            weight: 4,
            edge: 9,
        };
        let b = Cand {
            load: 1,
            weight: 2,
            edge: 0,
        };
        // 1/4 < 1/2.
        assert_eq!(better(Some(a), Some(b)), Some(a));
        assert_eq!(better(None, Some(b)), Some(b));
        assert_eq!(better(Some(a), None), Some(a));
        assert_eq!(better(None, None), None);
    }

    #[test]
    fn fixed_target_is_constant_and_positive() {
        let t = PackingTarget::Fixed(3);
        assert_eq!(t.target(100, 1), 3);
        assert_eq!(t.target(10, 99), 3);
        assert_eq!(PackingTarget::Fixed(0).target(5, 5), 1);
    }

    #[test]
    fn track_best_mirrors_sequential_policy() {
        let cfg = crate::seq::tree_packing::PackingConfig::default();
        let t = PackingTarget::TrackBest(cfg.clone());
        for (n, l) in [(36usize, 4u64), (144, 4), (20, 1)] {
            assert_eq!(t.target(n, l), cfg.target_trees(n, l));
        }
    }

    #[test]
    fn cand_message_is_logarithmic() {
        let c = Cand {
            load: 3,
            weight: 7,
            edge: 200,
        };
        assert!(c.bit_len() <= TAG_BITS + 2 + 3 + 8);
    }
}
