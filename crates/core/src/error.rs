//! Crate-wide error type.

use std::error::Error;
use std::fmt;

/// Errors from the min-cut algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinCutError {
    /// The input graph is not connected — the minimum cut is 0 and the
    /// algorithms in this crate require connectivity.
    Disconnected,
    /// The input graph has fewer than two nodes, so no proper cut exists.
    TooSmall {
        /// Number of nodes supplied.
        nodes: usize,
    },
    /// A CONGEST simulation failed (bandwidth violation, livelock, …).
    Congest(congest::CongestError),
    /// Invalid configuration.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for MinCutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinCutError::Disconnected => {
                write!(f, "graph is disconnected (minimum cut is trivially 0)")
            }
            MinCutError::TooSmall { nodes } => {
                write!(
                    f,
                    "graph has {nodes} nodes; need at least 2 for a proper cut"
                )
            }
            MinCutError::Congest(e) => write!(f, "CONGEST simulation failed: {e}"),
            MinCutError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl Error for MinCutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MinCutError::Congest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<congest::CongestError> for MinCutError {
    fn from(e: congest::CongestError) -> Self {
        MinCutError::Congest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MinCutError::Disconnected;
        assert!(e.to_string().contains("disconnected"));
        let c: MinCutError = congest::CongestError::MaxRoundsExceeded {
            phase: "x".into(),
            cap: 5,
        }
        .into();
        assert!(c.source().is_some());
        assert!(c.to_string().contains("CONGEST"));
    }
}
