//! The paper's Figure 1, reconstructed as a runnable instance.
//!
//! The published figure shows a 16-node rooted tree partitioned into four
//! fragments (labelled (0), (5), (6), (7)), the fragment tree `T_F`, the
//! ancestor set `A(15)`, merging nodes, `T'_F`, the LCA case analysis, and
//! the type-(i)/(ii) message classification. The exact drawing is not
//! recoverable from the text dump of the paper, so this module builds a
//! faithful 16-node instance that exhibits **every one** of those
//! structures; `examples/figure1_walkthrough.rs` prints the walkthrough and
//! `tests/figure1.rs` pins each quantity.
//!
//! Tree (rooted at 0):
//!
//! ```text
//!                0
//!              /   \
//!             1     2
//!           /  \     \
//!          3    4     5
//!         / \  / \   /  \
//!        6  7 8   9 10  11
//!        |  | |   |
//!       12 13 14 15
//! ```
//!
//! Fragments: `F0 = {0,1,2}` (root 0), `F1 = {3,6,7,12,13}` (root 3),
//! `F2 = {4,8,9,14,15}` (root 4), `F3 = {5,10,11}` (root 5).
//!
//! * `T_F`: F1, F2, F3 are children of F0.
//! * Merging nodes: 0 (children 1, 2 both lead to fragments) and
//!   1 (children 3, 4 are fragment roots).
//! * `T'_F` nodes: {0, 1, 3, 4, 5}; parents: 1→0, 3→1, 4→1, 5→0.
//! * `A(15) = [15, 9, 4, 1, 0]` — as in the paper's Figure 1(c).
//!
//! Non-tree edges exercise the three LCA cases of Step 5:
//!
//! * (12, 13): same fragment F1 — **case 1**, LCA 3, type (ii);
//! * (14, 10): fragments F2/F3, LCA 0 outside both — **case 2**, type (i);
//! * (12, 15): fragments F1/F2, LCA 1 outside both — **case 2**, type (i);
//! * (1, 13): LCA 1 lies in endpoint 1's fragment F0 — **case 3**, type (ii);
//! * (2, 11): LCA 2 in F0 — **case 3**, type (ii).

use graphs::{NodeId, WeightedGraph};
use trees::decompose::Fragments;
use trees::RootedTree;

/// The tree edges of the Figure-1 instance (child, parent).
pub const TREE_EDGES: [(u32, u32); 15] = [
    (1, 0),
    (2, 0),
    (3, 1),
    (4, 1),
    (5, 2),
    (6, 3),
    (7, 3),
    (8, 4),
    (9, 4),
    (10, 5),
    (11, 5),
    (12, 6),
    (13, 7),
    (14, 8),
    (15, 9),
];

/// The non-tree edges (u, v, weight) exercising the LCA cases.
pub const EXTRA_EDGES: [(u32, u32, u64); 5] = [
    (12, 13, 1), // case 1 (same fragment), type (ii) at 3
    (14, 10, 1), // case 2, type (i) at 0
    (12, 15, 1), // case 2, type (i) at 1
    (1, 13, 1),  // case 3, type (ii) at 1
    (2, 11, 1),  // case 3, type (ii) at 2
];

/// Fragment label per node (0..=3).
pub const FRAGMENT_OF: [u32; 16] = [0, 0, 0, 1, 2, 3, 1, 1, 2, 2, 3, 3, 1, 1, 2, 2];

/// The Figure-1 instance bundled together.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// The 16-node graph (tree + extra edges, unit weights).
    pub graph: WeightedGraph,
    /// The spanning tree of the figure, rooted at node 0.
    pub tree: RootedTree,
    /// The fragment decomposition of the figure.
    pub fragments: Fragments,
}

impl Figure1 {
    /// Builds the instance.
    pub fn build() -> Self {
        let mut edges: Vec<(u32, u32, u64)> = TREE_EDGES.iter().map(|&(c, p)| (c, p, 1)).collect();
        edges.extend_from_slice(&EXTRA_EDGES);
        let graph = WeightedGraph::from_edges(16, edges).expect("figure instance is valid");
        let pairs: Vec<(NodeId, NodeId)> = TREE_EDGES
            .iter()
            .map(|&(c, p)| (NodeId::new(c), NodeId::new(p)))
            .collect();
        let tree =
            RootedTree::from_edges(16, NodeId::new(0), &pairs).expect("figure tree is valid");
        let fragments = Fragments {
            label: FRAGMENT_OF.to_vec(),
            root_of: vec![
                NodeId::new(0),
                NodeId::new(3),
                NodeId::new(4),
                NodeId::new(5),
            ],
            count: 4,
        };
        Figure1 {
            graph,
            tree,
            fragments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceStructure;

    #[test]
    fn structures_match_the_figure() {
        let f = Figure1::build();
        let r = ReferenceStructure::new(&f.graph, f.tree.clone(), &f.fragments);
        // T_F: F1, F2, F3 children of F0.
        assert_eq!(r.tf_parent, vec![None, Some(0), Some(0), Some(0)]);
        // Merging nodes exactly {0, 1}.
        let merging: Vec<usize> = (0..16).filter(|&v| r.merging[v]).collect();
        assert_eq!(merging, vec![0, 1]);
        // T'_F nodes and parents.
        let mut nodes = r.tprime_nodes();
        nodes.sort_unstable();
        assert_eq!(
            nodes,
            vec![0, 1, 3, 4, 5]
                .into_iter()
                .map(NodeId::new)
                .collect::<Vec<_>>()
        );
        assert_eq!(r.tprime_parent[&NodeId::new(1)], Some(NodeId::new(0)));
        assert_eq!(r.tprime_parent[&NodeId::new(3)], Some(NodeId::new(1)));
        assert_eq!(r.tprime_parent[&NodeId::new(4)], Some(NodeId::new(1)));
        assert_eq!(r.tprime_parent[&NodeId::new(5)], Some(NodeId::new(0)));
        assert_eq!(r.tprime_parent[&NodeId::new(0)], None);
        // A(15) as in the paper's Figure 1(c).
        assert_eq!(
            r.a_sets[15],
            vec![15, 9, 4, 1, 0]
                .into_iter()
                .map(NodeId::new)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn lca_cases_are_as_documented() {
        let f = Figure1::build();
        let lca = trees::lca::SparseTableLca::new(&f.tree);
        let cases = [
            ((12, 13), 3),
            ((14, 10), 0),
            ((12, 15), 1),
            ((1, 13), 1),
            ((2, 11), 2),
        ];
        for ((u, v), want) in cases {
            assert_eq!(
                lca.lca(NodeId::new(u), NodeId::new(v)),
                NodeId::new(want),
                "lca({u},{v})"
            );
        }
    }

    #[test]
    fn karger_identity_on_figure() {
        let f = Figure1::build();
        let fast = crate::seq::karger_dp::one_respecting_cuts(&f.graph, &f.tree);
        let brute = crate::seq::karger_dp::one_respecting_cuts_brute(&f.graph, &f.tree);
        assert_eq!(fast, brute);
        // Root subtree is the whole graph.
        assert_eq!(fast[0], 0);
    }
}
