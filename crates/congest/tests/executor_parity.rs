//! Executor parity: the deterministic parallel executor must be
//! **bit-identical** to the serial one — same per-node outputs, same
//! round counts, and the same full [`PhaseMetrics`] — on every topology
//! and protocol, at every thread count.
//!
//! Random trees exercise deep sequential dependencies (pipelined streams
//! live for `O(k + height)` rounds), tori exercise uniform degree with
//! wrap-around routing, and cliques exercise the widest inboxes (n − 1
//! slots per node, all occupied). `MinFlood` stresses raw flooding,
//! `LeaderBfs` stresses halting at different times (echo termination),
//! and `GroupedSum` routes everything through the shared
//! `KeyedStreamReduce` merge core. The full-pipeline parity test
//! (`exact_mincut` serial vs parallel on a planted graph) lives in the
//! umbrella crate's `tests/executor_parity.rs`, next to the code it
//! drives.

use congest::primitives::leader_bfs::LeaderBfs;
use congest::primitives::GroupedSum;
use congest::{
    Algorithm, ExecutorKind, FinishResult, Network, NetworkConfig, NodeCtx, Outbox, Port,
    RunOutcome, Step, TreeInfo,
};
use graphs::{generators, WeightedGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every node floods its id for `ttl` rounds and outputs the minimum it
/// has seen (the engine's own smoke-test algorithm, re-declared here
/// because integration tests cannot see `engine::tests`).
struct MinFlood {
    ttl: u64,
}

struct MinState {
    best: u32,
    changed: bool,
}

impl Algorithm for MinFlood {
    type Input = ();
    type State = MinState;
    type Msg = u32;
    type Output = u32;

    fn boot(&self, ctx: &NodeCtx<'_>, _input: ()) -> (MinState, Outbox<u32>) {
        let mut o = Outbox::new();
        o.send_all(ctx.ports(), ctx.node.raw());
        (
            MinState {
                best: ctx.node.raw(),
                changed: false,
            },
            o,
        )
    }

    fn round(&self, state: &mut MinState, ctx: &NodeCtx<'_>, inbox: &[(Port, u32)]) -> Step<u32> {
        state.changed = false;
        for (_, m) in inbox {
            if *m < state.best {
                state.best = *m;
                state.changed = true;
            }
        }
        if ctx.round >= self.ttl {
            return Step::halt();
        }
        let mut o = Outbox::new();
        if state.changed {
            o.send_all(ctx.ports(), state.best);
        }
        Step::Continue(o)
    }

    fn finish(&self, state: MinState, _ctx: &NodeCtx<'_>) -> FinishResult<u32> {
        Ok(state.best)
    }
}

/// One graph from the three stress families, keyed by `family % 3`.
fn make_graph(family: u8, seed: u64, size: usize) -> WeightedGraph {
    match family % 3 {
        // Random tree: node i attaches to a uniform ancestor.
        0 => {
            let n = size.max(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let edges: Vec<(u32, u32, u64)> = (1..n)
                .map(|i| {
                    let parent = rng.gen_range(0..i) as u32;
                    (parent, i as u32, 1 + (seed + i as u64) % 7)
                })
                .collect();
            WeightedGraph::from_edges(n, edges).expect("valid tree")
        }
        // Torus: uniform degree 4, wrap-around routing.
        1 => {
            let side = (2 + size % 5).max(2);
            generators::torus2d(side, side).expect("valid torus")
        }
        // Clique: the widest possible inboxes.
        _ => generators::complete(3 + size % 6, 1 + seed % 5).expect("valid clique"),
    }
}

/// Runs `algo` on `g` under the given executor and returns the outcome.
fn run_with<A: Algorithm>(
    g: &WeightedGraph,
    kind: ExecutorKind,
    name: &str,
    algo: &A,
    inputs: Vec<A::Input>,
) -> RunOutcome<A::Output> {
    // Threshold 0: always exercise the multi-worker machinery, even on
    // the small proptest graphs (the adaptive inline fallback would
    // otherwise — correctly but uninterestingly — serialize them).
    let cfg = NetworkConfig {
        executor: kind,
        parallel_inline_threshold: 0,
        ..Default::default()
    };
    let mut net = Network::new(g, cfg).expect("valid topology");
    net.run(name, algo, inputs).expect("phase must succeed")
}

/// Per-node `(key, value)` lists with duplicate keys and empty nodes, so
/// the grouped-sum streams have uneven lengths and racing `End` markers.
fn keyed_inputs(n: usize, seed: u64) -> Vec<Vec<(u64, u64)>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..4usize);
            (0..k)
                .map(|_| (rng.gen_range(0..10u64), rng.gen_range(1..100u64)))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// MinFlood: outputs, rounds, and the full metrics struct agree
    /// between serial and parallel at 2 and 5 threads.
    #[test]
    fn min_flood_parity(family in 0u8..3, seed in 0u64..1000, size in 4usize..40) {
        let g = make_graph(family, seed, size);
        let n = g.node_count();
        let ttl = 2 + (seed % 9);
        let want = run_with(&g, ExecutorKind::Serial, "flood", &MinFlood { ttl }, vec![(); n]);
        for threads in [2usize, 5] {
            let got = run_with(
                &g,
                ExecutorKind::Parallel { threads },
                "flood",
                &MinFlood { ttl },
                vec![(); n],
            );
            prop_assert_eq!(&got.outputs, &want.outputs);
            prop_assert_eq!(&got.metrics, &want.metrics);
        }
    }

    /// LeaderBfs (nodes halt at different rounds via echo termination)
    /// followed by GroupedSum (the KeyedStreamReduce merge core): both
    /// phases are bit-identical across executors, including the session
    /// ledger totals.
    #[test]
    fn bfs_and_keyed_stream_reduce_parity(family in 0u8..3, seed in 0u64..1000, size in 4usize..32) {
        let g = make_graph(family, seed, size);
        let n = g.node_count();
        let lists = keyed_inputs(n, seed);

        let run_session = |kind: ExecutorKind| {
            let cfg = NetworkConfig {
                executor: kind,
                parallel_inline_threshold: 0,
                ..Default::default()
            };
            let mut net = Network::new(&g, cfg).expect("valid topology");
            let bfs = net
                .run("leader_bfs", &LeaderBfs::new(), vec![(); n])
                .expect("bfs succeeds");
            let trees: Vec<TreeInfo> = bfs.outputs.iter().map(|o| o.tree.clone()).collect();
            let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = trees
                .into_iter()
                .zip(lists.iter().cloned())
                .collect();
            let gs = net
                .run("grouped_sum", &GroupedSum::new(), inputs)
                .expect("grouped sum succeeds");
            (
                bfs.metrics,
                gs.outputs,
                gs.metrics,
                net.ledger().total_rounds(),
                net.ledger().total_bits(),
                net.ledger().max_edge_load_bits(),
            )
        };

        let want = run_session(ExecutorKind::Serial);
        for threads in [2usize, 5] {
            let got = run_session(ExecutorKind::Parallel { threads });
            prop_assert_eq!(&got.0, &want.0);
            prop_assert_eq!(&got.1, &want.1);
            prop_assert_eq!(&got.2, &want.2);
            prop_assert_eq!(got.3, want.3);
            prop_assert_eq!(got.4, want.4);
            prop_assert_eq!(got.5, want.5);
        }
    }
}

/// Strict-mode failures also agree, and the lowest-id error wins even
/// when two nodes err in the same round. `n = 200` keeps the sweep
/// domain well above the parallel executor's inline-fallback threshold
/// (chunk = max(n/(threads·4), 32)), so the multi-worker claiming path
/// and the cross-chunk error merge really run; the two errors land in
/// different chunks *and* different domain segments (node 1 in the
/// halted-touched segment, node 150 in the live segment).
#[test]
fn strict_error_parity_picks_the_lowest_node_across_chunks() {
    struct TwoFaults;
    impl Algorithm for TwoFaults {
        type Input = ();
        type State = ();
        type Msg = u32;
        type Output = ();
        fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<u32>) {
            ((), Outbox::new())
        }
        fn round(&self, _s: &mut (), ctx: &NodeCtx<'_>, _i: &[(Port, u32)]) -> Step<u32> {
            // Node 1 halts immediately; node 0 messages it in round 2
            // (arriving round 3, a MessageToHalted at node 1); node 150
            // double-sends in round 3 (a DoubleSend at node 150). Both
            // errors surface in round 3 — the engine must pick node 1,
            // under every schedule.
            if ctx.node.raw() == 1 {
                return Step::halt();
            }
            if ctx.round == 2 && ctx.node.raw() == 0 {
                let mut o = Outbox::new();
                o.send(Port(0), 9);
                return Step::Halt(o);
            }
            if ctx.round == 3 && ctx.node.raw() == 150 {
                let mut o = Outbox::new();
                o.send(Port(0), 1).send(Port(0), 2);
                return Step::Halt(o);
            }
            if ctx.round >= 3 {
                return Step::halt();
            }
            Step::idle()
        }
        fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
            Ok(())
        }
    }

    let g = generators::path(200).unwrap();
    let errs: Vec<_> = [
        ExecutorKind::Serial,
        ExecutorKind::Parallel { threads: 2 },
        ExecutorKind::Parallel { threads: 7 },
    ]
    .into_iter()
    .map(|kind| {
        let cfg = NetworkConfig {
            executor: kind,
            parallel_inline_threshold: 0,
            ..Default::default()
        };
        let mut net = Network::new(&g, cfg).unwrap();
        net.run("late", &TwoFaults, vec![(); 200]).unwrap_err()
    })
    .collect();
    for e in &errs {
        assert!(
            matches!(
                e,
                congest::CongestError::MessageToHalted { node, round: 3, .. }
                    if node.raw() == 1
            ),
            "expected MessageToHalted at node 1, got {e:?}"
        );
    }
    assert_eq!(errs[0], errs[1]);
    assert_eq!(errs[0], errs[2]);
}
