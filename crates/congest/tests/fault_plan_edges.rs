//! Edge cases of the crash-schedule algebra: [`FaultPlan::rebased`]
//! (the recovery driver's clock shift) and [`FaultPlan::remapped`] (the
//! surviving-subgraph rename). These two are composed by the
//! self-healing driver after every aborted phase, so their boundary
//! behaviour — dead-from-boot events, rejoins landing exactly on the
//! consumed-round boundary, correlated groups partially excised —
//! decides whether a recovery replays the same faults or silently
//! drifts.

use congest::{CrashEvent, FaultPlan};

fn ev(node: u32, at_round: u64, rejoin: Option<u64>) -> CrashEvent {
    CrashEvent {
        node,
        at_round,
        rejoin,
    }
}

#[test]
fn crash_at_round_zero_is_dead_from_boot_and_stays_dead_under_rebasing() {
    let plan = FaultPlan::lossless().with_crash(4, 0);
    assert_eq!(plan.crash_round_of(4, 0), Some(0), "dead from boot");
    assert_eq!(plan.crash_round_of(4, 1_000), Some(0), "dead forever");

    // Rebasing cannot resurrect it: saturating_sub pins at_round at 0.
    let shifted = plan.rebased(77);
    assert_eq!(shifted.crashes, [ev(4, 0, None)]);
    assert_eq!(shifted.crash_round_of(4, 0), Some(0));
}

#[test]
fn rebasing_by_zero_is_the_identity() {
    let plan = FaultPlan::lossless()
        .with_crash(1, 9)
        .with_crashes(vec![ev(2, 10, Some(30)), ev(3, 0, None)]);
    assert_eq!(plan.rebased(0), plan);
}

#[test]
fn rejoin_landing_exactly_on_the_boundary_expires_the_event() {
    let plan = FaultPlan::lossless().with_crashes(vec![ev(2, 10, Some(30))]);

    // rejoin == consumed: the outage is over when the next phase starts,
    // so the event must vanish (the node is alive again). Keeping it
    // would subtract below the rejoin and re-kill a healthy node.
    assert!(
        !plan.rebased(30).has_crashes(),
        "rejoin == consumed expires"
    );
    assert!(!plan.rebased(31).has_crashes(), "rejoin < consumed expires");

    // One round short of the boundary: still down, rejoin pending at
    // global round 1 of the rebased clock.
    let pending = plan.rebased(29);
    assert_eq!(pending.crashes, [ev(2, 0, Some(1))]);
    assert_eq!(pending.crash_round_of(2, 0), Some(0), "down at boot");
    assert_eq!(pending.crash_round_of(2, 1), None, "back at the boundary");
}

#[test]
fn mid_outage_rebasing_pins_the_crash_and_shifts_the_rejoin_together() {
    let plan = FaultPlan::lossless().with_crashes(vec![ev(9, 40, Some(100))]);
    let mid = plan.rebased(60); // 20 rounds into the outage
    assert_eq!(mid.crashes, [ev(9, 0, Some(40))]);
    // The outage length left (40 rounds) is exactly what remained.
    assert_eq!(mid.crash_round_of(9, 39), Some(0));
    assert_eq!(mid.crash_round_of(9, 40), None);
}

#[test]
fn rebasing_composes_additively() {
    let plan = FaultPlan::lossless().with_crashes(vec![
        ev(1, 5, None),
        ev(2, 50, Some(80)),
        ev(3, 0, None),
        ev(4, 12, Some(25)),
    ]);
    for (a, b) in [(0, 17), (10, 15), (25, 0), (13, 13), (60, 60)] {
        assert_eq!(
            plan.rebased(a).rebased(b),
            plan.rebased(a + b),
            "rebased({a}).rebased({b}) must equal rebased({})",
            a + b
        );
    }
}

#[test]
fn correlated_group_remap_drops_excised_members_and_renames_the_rest() {
    // A rack of three dies together; the recovery driver excises node 3
    // (it is outside the surviving component) and compacts ids.
    let plan = FaultPlan::lossless().with_crash_group(&[2, 3, 4], 60);
    let survivors = plan.remapped(|v| match v {
        3 => None,
        v if v > 3 => Some(v - 1),
        v => Some(v),
    });
    assert_eq!(survivors.crashes, [ev(2, 60, None), ev(3, 60, None)]);
    // The group stays correlated: both remaining members still fail at
    // the same global round.
    assert_eq!(survivors.crash_round_of(2, 59), Some(1));
    assert_eq!(survivors.crash_round_of(3, 59), Some(1));
}

#[test]
fn remap_to_the_empty_schedule_disarms_the_crash_machinery() {
    let plan = FaultPlan::lossless().with_crash(5, 10);
    assert!(plan.has_crashes());
    let none = plan.remapped(|_| None);
    assert!(!none.has_crashes(), "all events excised → crash-free plan");
    // Everything but the schedule is untouched (coins, timers, policy).
    assert_eq!(none, FaultPlan::lossless());
}

#[test]
fn remap_then_rebase_equals_rebase_then_remap() {
    // The recovery driver applies both per recovery step; order must not
    // matter, or two drivers disagreeing on it would diverge.
    let plan = FaultPlan::lossless().with_crashes(vec![
        ev(1, 5, None),
        ev(6, 50, Some(70)),
        ev(7, 90, None),
    ]);
    let map = |v: u32| if v == 1 { None } else { Some(v - 1) };
    for consumed in [0, 5, 49, 70, 95] {
        assert_eq!(
            plan.remapped(map).rebased(consumed),
            plan.rebased(consumed).remapped(map),
            "consumed = {consumed}"
        );
    }
}

#[test]
fn remap_parks_rejoin_events_of_excised_nodes() {
    // Node 7 dies at round 10 but is scheduled to rejoin at round 50.
    // The recovery driver excises it after the abort and compacts ids —
    // the live crash schedule must drop it (nothing left to kill in the
    // surviving subgraph), but the *rejoin* must not be forgotten:
    // silently dropping the event turns a scheduled transient outage
    // into a permanent death. Parked events keep their pre-remap ids;
    // the recovery driver owns the id translation back into the graph.
    let plan = FaultPlan::lossless().with_crashes(vec![
        ev(7, 10, Some(50)), // excised, rejoin pending → parked
        ev(3, 20, None),     // excised, no rejoin → gone for good
        ev(9, 30, Some(90)), // survives the remap → stays live
    ]);
    let survivors = plan.remapped(|v| match v {
        3 | 7 => None,
        v if v > 7 => Some(v - 2),
        v => Some(v - 1),
    });
    assert_eq!(survivors.crashes, [ev(7, 30, Some(90))]);
    assert_eq!(
        survivors.parked,
        [ev(7, 10, Some(50))],
        "rejoin-pending events of excised nodes must survive the remap"
    );
    // Parked events do not arm the crash machinery and are invisible to
    // the executor's schedule (the node is not even in the id space)...
    let fully = plan.remapped(|_| None);
    assert!(!fully.has_crashes(), "parked events do not arm crashes");
    assert_eq!(fully.crash_round_of(7, 0), None);
    assert_eq!(fully.parked, [ev(7, 10, Some(50)), ev(9, 30, Some(90))]);
    // ...but they ride the recovery clock: rebasing shifts them like
    // live events, and a due rejoin (rejoin ≤ consumed) pins at zero so
    // the driver sees the re-admission instead of losing it.
    let shifted = survivors.rebased(30);
    assert_eq!(shifted.parked, [ev(7, 0, Some(20))]);
    let due = survivors.rebased(60);
    assert_eq!(
        due.parked,
        [ev(7, 0, Some(0))],
        "due rejoins pin at zero rather than vanish"
    );
}

#[test]
fn duplicate_events_for_one_node_take_the_earliest_crash() {
    // Two overlapping schedules for the same node (e.g. a group crash
    // composed with an individual one): the node dies at the *earliest*
    // scheduled round among the events still live at the phase base.
    let plan = FaultPlan::lossless()
        .with_crash(8, 30)
        .with_crash_group(&[8, 9], 50);
    assert_eq!(plan.crash_round_of(8, 0), Some(30));
    assert_eq!(plan.crash_round_of(9, 0), Some(50));
    // After the first outage is consumed, the earlier event has pinned
    // to 0 — the node stays dead through the second schedule too.
    let later = plan.rebased(40);
    assert_eq!(later.crash_round_of(8, 0), Some(0));
    assert_eq!(later.crash_round_of(9, 0), Some(10));
}
