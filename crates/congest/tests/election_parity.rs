//! Election parity: the staged election (local-minima candidacy,
//! radius-doubling fronts) must produce **bit-identical outputs** to the
//! legacy every-node flood — same leader, same parent port, same depth,
//! same children at every node — on every topology, under both round
//! executors. The depth must additionally equal the true BFS distance
//! (the staged schedule releases the winning front in lockstep, so the
//! wave still advances one hop per released round).
//!
//! Strict mode is on throughout, so any protocol violation the staged
//! schedule could introduce (a probe or ack reaching a halted node, a
//! front outrunning its stage) would fail the run itself, not just the
//! assertions.

use congest::primitives::leader_bfs::{LeaderBfs, LeaderBfsOutput};
use congest::{ExecutorKind, Network, NetworkConfig};
use graphs::{generators, NodeId, WeightedGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One graph from the three stress families, keyed by `family % 3`
/// (mirrors the executor parity suite).
fn make_graph(family: u8, seed: u64, size: usize) -> WeightedGraph {
    match family % 3 {
        // Random tree: node i attaches to a uniform ancestor — deep
        // BFS trees, many local minima among the leaves.
        0 => {
            let n = size.max(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let edges: Vec<(u32, u32, u64)> = (1..n)
                .map(|i| {
                    let parent = rng.gen_range(0..i) as u32;
                    (parent, i as u32, 1 + (seed + i as u64) % 7)
                })
                .collect();
            WeightedGraph::from_edges(n, edges).expect("valid tree")
        }
        // Torus: uniform degree 4, wrap-around routing, one local
        // minimum under row-major ids.
        1 => {
            let side = 3 + size % 5;
            generators::torus2d(side, side).expect("valid torus")
        }
        // Clique: diameter 1, every probe is a crossing.
        _ => generators::complete(3 + size % 6, 1 + seed % 5).expect("valid clique"),
    }
}

fn run_election(g: &WeightedGraph, algo: &LeaderBfs, kind: ExecutorKind) -> Vec<LeaderBfsOutput> {
    let cfg = NetworkConfig {
        executor: kind,
        parallel_inline_threshold: 0,
        ..Default::default()
    };
    let mut net = Network::new(g, cfg).expect("valid topology");
    net.run("leader_bfs", algo, vec![(); g.node_count()])
        .expect("election succeeds in strict mode")
        .outputs
}

/// The outputs describe the leader-0 BFS tree: depths are true BFS
/// distances, parents are one level up, children lists mirror parents.
fn check_bfs_tree(g: &WeightedGraph, outs: &[LeaderBfsOutput]) {
    let dist = graphs::traversal::bfs(g, NodeId::new(0)).dist;
    for (v, o) in outs.iter().enumerate() {
        assert_eq!(o.leader, NodeId::new(0), "node {v} elected {:?}", o.leader);
        assert_eq!(o.tree.depth, dist[v], "node {v} depth ≠ BFS distance");
        match o.tree.parent {
            None => assert_eq!(v, 0, "only the leader is a root"),
            Some(p) => {
                let parent = g.neighbors(NodeId::from_index(v))[p.index()].neighbor;
                assert_eq!(dist[parent.index()] + 1, dist[v], "node {v} parent level");
            }
        }
    }
    let children: usize = outs.iter().map(|o| o.tree.children.len()).sum();
    assert_eq!(children, g.node_count() - 1, "tree has n − 1 edges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Staged ≡ legacy, node by node, field by field — and both valid —
    /// under the serial and the parallel executor.
    #[test]
    fn staged_equals_legacy_everywhere(family in 0u8..3, seed in 0u64..1000, size in 2usize..40) {
        let g = make_graph(family, seed, size);
        let legacy = run_election(&g, &LeaderBfs::legacy(), ExecutorKind::Serial);
        check_bfs_tree(&g, &legacy);
        for kind in [ExecutorKind::Serial, ExecutorKind::Parallel { threads: 3 }] {
            let staged = run_election(&g, &LeaderBfs::new(), kind.clone());
            prop_assert_eq!(&staged, &legacy, "executor {:?}", kind);
        }
    }
}

/// Random weighted graphs (not from the three families): denser, with
/// shortcut edges that give equal-depth parent candidates — the
/// tie-break territory.
#[test]
fn staged_equals_legacy_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(99);
    for n in [2usize, 5, 17, 40, 90] {
        for p in [0.06, 0.2, 0.6] {
            let g = generators::erdos_renyi_connected(n, p, &mut rng).unwrap();
            let legacy = run_election(&g, &LeaderBfs::legacy(), ExecutorKind::Serial);
            let staged = run_election(&g, &LeaderBfs::new(), ExecutorKind::Serial);
            assert_eq!(staged, legacy, "n = {n}, p = {p}");
            check_bfs_tree(&g, &staged);
        }
    }
}

/// The acceptance criterion of the staged election, measured where the
/// ROADMAP recorded the problem: ≥ 5× fewer `leader_bfs` messages on
/// the 24×24 torus, with bit-identical outputs (asserted above).
#[test]
fn staged_cuts_torus24_messages_five_fold() {
    let g = generators::torus2d(24, 24).unwrap();
    let count = |algo: &LeaderBfs| {
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        net.run("leader_bfs", algo, vec![(); g.node_count()])
            .unwrap()
            .metrics
            .messages
    };
    let legacy = count(&LeaderBfs::legacy());
    let staged = count(&LeaderBfs::new());
    assert!(
        staged * 5 <= legacy,
        "staged {staged} vs legacy {legacy}: less than a 5× cut"
    );
}
