//! The two determinism contracts of `congest::obs`, randomized:
//!
//! * **stream determinism**: with a sink attached, the same seed and
//!   the same [`FaultPlan`] produce a **byte-identical**
//!   [`congest::ObsSink::virtual_stream`] across independent runs —
//!   the stream carries only virtual facts (events, rounds, ticks),
//!   never wall time, so this holds on any host at any load;
//! * **zero observer effect**: attaching a sink changes nothing the
//!   simulation can see — outputs and the full payload+transport
//!   [`congest::MetricsLedger`] are bit-identical to the undecorated
//!   run (obs hooks fire strictly off the simulation's state, and the
//!   disabled path does not even read a clock).
//!
//! The session is the same two-phase election + keyed aggregation as
//! `sim_determinism.rs`, under lossy and crashy plans.

use congest::primitives::leader_bfs::LeaderBfs;
use congest::primitives::GroupedSum;
use congest::sim::FaultPlan;
use congest::{ExecutorKind, MetricsLedger, Network, NetworkConfig, ObsHandle, TreeInfo};
use graphs::{generators, WeightedGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One graph from the three stress families, keyed by `family % 3` (the
/// same construction as the determinism/parity suites).
fn make_graph(family: u8, seed: u64, size: usize) -> WeightedGraph {
    match family % 3 {
        0 => {
            let n = size.max(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let edges: Vec<(u32, u32, u64)> = (1..n)
                .map(|i| {
                    let parent = rng.gen_range(0..i) as u32;
                    (parent, i as u32, 1 + (seed + i as u64) % 7)
                })
                .collect();
            WeightedGraph::from_edges(n, edges).expect("valid tree")
        }
        1 => {
            let side = 3 + size % 4;
            generators::torus2d(side, side).expect("valid torus")
        }
        _ => generators::complete(3 + size % 6, 1 + seed % 5).expect("valid clique"),
    }
}

/// Per-node `(key, value)` lists with duplicate keys and empty nodes.
fn keyed_inputs(n: usize, seed: u64) -> Vec<Vec<(u64, u64)>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..4usize);
            (0..k)
                .map(|_| (rng.gen_range(0..10u64), rng.gen_range(1..100u64)))
                .collect()
        })
        .collect()
}

/// `GroupedSum`'s per-node output: the aggregated list at the root.
type GroupedOut = Option<Vec<(u64, u64)>>;

/// Runs the two-phase session, optionally decorated with an obs sink,
/// and returns (outputs, ledger, the sink's virtual stream or "").
fn run_session(
    g: &WeightedGraph,
    kind: ExecutorKind,
    lists: &[Vec<(u64, u64)>],
    observe: bool,
) -> (Vec<GroupedOut>, MetricsLedger, String) {
    let n = g.node_count();
    let obs = observe.then(ObsHandle::new);
    let mut cfg = NetworkConfig::default().with_executor(kind);
    if let Some(handle) = &obs {
        cfg = cfg.with_obs(handle.clone());
    }
    let mut net = Network::new(g, cfg).expect("valid topology");
    let bfs = net
        .run("leader_bfs", &LeaderBfs::new(), vec![(); n])
        .expect("bfs succeeds");
    let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = bfs
        .outputs
        .iter()
        .map(|o| o.tree.clone())
        .zip(lists.iter().cloned())
        .collect();
    let gs = net
        .run("grouped_sum", &GroupedSum::new(), inputs)
        .expect("grouped sum succeeds");
    let stream = obs.map(|h| h.sink().virtual_stream()).unwrap_or_default();
    (gs.outputs, net.ledger().clone(), stream)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed + same plan + a sink ⇒ byte-identical virtual stream;
    /// and the observed run's ledger + outputs are bit-identical to the
    /// unobserved run's.
    #[test]
    fn obs_streams_are_deterministic_and_effect_free(
        family in 0u8..3,
        seed in 0u64..1000,
        size in 4usize..28,
        drop_idx in 0usize..4,
        delay in 0u8..4,
    ) {
        let drop = [0u16, 50, 150, 300][drop_idx];
        let g = make_graph(family, seed, size);
        let n = g.node_count();
        let lists = keyed_inputs(n, seed);
        let plan = FaultPlan::with_drop(drop, seed ^ 0xDEAD)
            .delayed(delay)
            .duplicated(drop / 2)
            .corrupted(drop / 3);
        let kind = ExecutorKind::Faulty(plan);

        let (out_a, ledger_a, stream_a) = run_session(&g, kind.clone(), &lists, true);
        let (out_b, ledger_b, stream_b) = run_session(&g, kind.clone(), &lists, true);
        prop_assert_eq!(&stream_a, &stream_b, "virtual streams must be byte-identical");
        prop_assert!(!stream_a.is_empty());
        prop_assert_eq!(&out_a, &out_b);
        prop_assert_eq!(ledger_a.phases(), ledger_b.phases());

        // Zero observer effect: detach the sink, nothing else changes.
        let (out_p, ledger_p, stream_p) = run_session(&g, kind, &lists, false);
        prop_assert_eq!(&stream_p, &String::new());
        prop_assert_eq!(&out_a, &out_p);
        prop_assert_eq!(ledger_a.phases(), ledger_p.phases());
    }
}

/// The crash/keepalive/suspicion event path is deterministic and
/// effect-free too (the proptest above never arms the detector). The
/// phase may or may not survive the crash — what must hold is that
/// both observed runs and the unobserved run agree on *everything*,
/// and that the crash shows up in the stream.
#[test]
fn crashy_streams_are_deterministic_and_effect_free() {
    let g = generators::torus2d(4, 4).expect("valid torus");
    let n = g.node_count();
    let run = |observe: bool| {
        let plan = FaultPlan::with_drop(60, 0xFEED)
            .delayed(2)
            .duplicated(20)
            .with_crash(5, 3)
            .continue_on_suspicion();
        let obs = observe.then(ObsHandle::new);
        let mut cfg = NetworkConfig::default().with_executor(ExecutorKind::Faulty(plan));
        if let Some(handle) = &obs {
            cfg = cfg.with_obs(handle.clone());
        }
        let mut net = Network::new(&g, cfg).expect("valid topology");
        let result = net
            .run("leader_bfs", &LeaderBfs::new(), vec![(); n])
            .map(|r| r.outputs.iter().map(|o| o.leader).collect::<Vec<_>>())
            .map_err(|e| e.to_string());
        let stream = obs.map(|h| h.sink().virtual_stream()).unwrap_or_default();
        (result, net.ledger().clone(), stream)
    };

    let (res_a, ledger_a, stream_a) = run(true);
    let (res_b, ledger_b, stream_b) = run(true);
    assert_eq!(stream_a, stream_b);
    assert!(
        stream_a.contains("event transport.crash"),
        "the scheduled crash must be traced:\n{stream_a}"
    );
    assert_eq!(res_a, res_b);
    assert_eq!(ledger_a.phases(), ledger_b.phases());

    let (res_p, ledger_p, stream_p) = run(false);
    assert_eq!(stream_p, "");
    assert_eq!(res_a, res_p);
    assert_eq!(ledger_a.phases(), ledger_p.phases());
}
