//! Property tests of the shared keyed-stream reducer
//! (`congest::primitives::merge::KeyedStreamReduce`), exercised through
//! its three protocol instantiations over random trees.
//!
//! The edge cases that used to be untested *per copy* of the protocol —
//! duplicate keys, empty child streams, single-node networks, and `End`
//! markers arriving in different orders across children — are all drawn
//! here: random BFS trees mix leaf children (whose `End` arrives in round
//! one) with deep chains that stream items long after, and a random
//! subset of nodes contributes nothing at all. A directed adversarial
//! `End`-ordering test at the state-machine level lives next to the core
//! in `merge.rs`.

use congest::primitives::leader_bfs::LeaderBfs;
use congest::primitives::{GroupedBest, GroupedSum, KeyedMin, KeyedSubtreeSum};
use congest::{Network, NetworkConfig, TreeInfo};
use graphs::{generators, NodeId, WeightedGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A reproducible connected graph; `n == 1` is the single-node network
/// (no edges, no rounds — everything must settle locally).
fn graph_from(seed: u64, n: usize) -> WeightedGraph {
    if n == 1 {
        return WeightedGraph::from_edges(1, []).expect("single node");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    generators::erdos_renyi_connected(n, 0.25, &mut rng).expect("valid parameters")
}

/// The leader's BFS trees (node 0 wins the min-id election), or the
/// trivial forest for the single-node network.
fn bfs_trees(g: &WeightedGraph, net: &mut Network<'_>) -> Vec<TreeInfo> {
    if g.node_count() == 1 {
        return vec![TreeInfo::default()];
    }
    net.run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
        .unwrap()
        .outputs
        .into_iter()
        .map(|o| o.tree)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GroupedSum equals the sequential per-key fold for every tree
    /// shape: duplicate keys merge, empty nodes only contribute `End`s,
    /// and `End` markers race items across sibling streams.
    #[test]
    fn grouped_sum_matches_oracle(seed in 0u64..5000, n in 1usize..33, spread in 1u64..9) {
        let g = graph_from(seed, n);
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        // Roughly a third of the nodes hold nothing (early-`End` streams).
        let lists: Vec<Vec<(u64, u64)>> = (0..n)
            .map(|_| {
                (0..rng.gen_range(0..4usize) * usize::from(rng.gen_range(0u32..3) > 0))
                    .map(|_| (rng.gen_range(0..spread), rng.gen_range(1..50u64)))
                    .collect()
            })
            .collect();
        let mut want: BTreeMap<u64, u64> = BTreeMap::new();
        for l in &lists {
            for &(k, v) in l {
                *want.entry(k).or_insert(0) += v;
            }
        }
        let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> =
            trees.into_iter().zip(lists).collect();
        let out = net.run("gs_prop", &GroupedSum::new(), inputs).unwrap();
        prop_assert_eq!(
            out.outputs[0].clone().expect("node 0 is the root"),
            want.into_iter().collect::<Vec<_>>()
        );
    }

    /// GroupedBest equals the sequential per-key argmin under a strict
    /// total order (unique tags), over the same tree/stream shapes.
    #[test]
    fn grouped_best_matches_oracle(seed in 0u64..5000, n in 1usize..33, spread in 1u64..7) {
        let g = graph_from(seed, n);
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBE57);
        let lists: Vec<Vec<KeyedMin>> = (0..n)
            .map(|v| {
                (0..rng.gen_range(0usize..4))
                    .map(|i| KeyedMin {
                        key: rng.gen_range(0..spread),
                        value: rng.gen_range(1..40u64),
                        tag: (v * 8 + i) as u64, // unique → strict order
                    })
                    .collect()
            })
            .collect();
        let mut want: BTreeMap<u64, KeyedMin> = BTreeMap::new();
        for l in &lists {
            for item in l {
                match want.get(&item.key) {
                    Some(b) if (b.value, b.tag) <= (item.value, item.tag) => {}
                    _ => {
                        want.insert(item.key, item.clone());
                    }
                }
            }
        }
        let inputs: Vec<(TreeInfo, Vec<KeyedMin>)> =
            trees.into_iter().zip(lists).collect();
        let out = net.run("gb_prop", &GroupedBest::new(), inputs).unwrap();
        prop_assert_eq!(
            out.outputs[0].clone().expect("node 0 is the root"),
            want.into_values().collect::<Vec<_>>()
        );
    }

    /// KeyedSubtreeSum delivers, at every node, exactly the total of the
    /// subtree's tokens keyed by that node — tokens keyed by ancestors at
    /// random depths, duplicates included.
    #[test]
    fn keyed_subtree_sum_matches_oracle(seed in 0u64..5000, n in 1usize..29) {
        let g = graph_from(seed, n);
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        // Reconstruct the rooted tree to enumerate ancestors.
        let parent_ids: Vec<Option<NodeId>> = trees
            .iter()
            .enumerate()
            .map(|(v, t)| {
                t.parent
                    .map(|p| g.neighbors(NodeId::from_index(v))[p.index()].neighbor)
            })
            .collect();
        let rt = trees::RootedTree::from_parents(NodeId::new(0), &parent_ids).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA9C);
        let mut tokens: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        let mut want = vec![0u64; n];
        for (v, node_tokens) in tokens.iter_mut().enumerate() {
            let ancs: Vec<NodeId> = rt.ancestors(NodeId::from_index(v)).collect();
            for _ in 0..rng.gen_range(0..4) {
                let a = ancs[rng.gen_range(0..ancs.len())];
                let w = rng.gen_range(1..30u64);
                node_tokens.push((a.raw() as u64, w));
                want[a.index()] += w;
            }
        }
        let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> =
            trees.into_iter().zip(tokens).collect();
        let out = net.run("ks_prop", &KeyedSubtreeSum::new(), inputs).unwrap();
        prop_assert_eq!(out.outputs, want);
    }
}
