//! Determinism and parity of the fault-injecting executor, randomized:
//! on small random trees, tori, and cliques —
//!
//! * **determinism**: the same seed and the same [`FaultPlan`] produce a
//!   **byte-identical** [`congest::MetricsLedger`] (every phase, every
//!   payload field, every transport counter) across independent runs.
//!   The simulation is single-threaded and hash-free, so this holds
//!   regardless of `--test-threads`, test ordering, or host — CI runs
//!   this suite under the default harness parallelism;
//! * **parity**: per-node outputs and payload-level metrics equal the
//!   serial executor's, whatever the adversary does (the full-pipeline
//!   version of this property lives in `tests/sim_parity.rs` at the
//!   workspace root).
//!
//! The multi-phase session (election, then a pipelined keyed-stream
//! aggregation over the elected tree) exercises nodes halting at
//! different virtual rounds, long pipelined tails, and per-node state
//! carried across phases — the situations where a synchronizer that
//! advanced a node one round too early would corrupt downstream phases
//! rather than fail loudly.

use congest::primitives::leader_bfs::LeaderBfs;
use congest::primitives::GroupedSum;
use congest::sim::FaultPlan;
use congest::{ExecutorKind, MetricsLedger, Network, NetworkConfig, TreeInfo};
use graphs::{generators, WeightedGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One graph from the three stress families, keyed by `family % 3` (the
/// same construction as the executor-parity suite).
fn make_graph(family: u8, seed: u64, size: usize) -> WeightedGraph {
    match family % 3 {
        0 => {
            let n = size.max(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let edges: Vec<(u32, u32, u64)> = (1..n)
                .map(|i| {
                    let parent = rng.gen_range(0..i) as u32;
                    (parent, i as u32, 1 + (seed + i as u64) % 7)
                })
                .collect();
            WeightedGraph::from_edges(n, edges).expect("valid tree")
        }
        1 => {
            let side = 3 + size % 4;
            generators::torus2d(side, side).expect("valid torus")
        }
        _ => generators::complete(3 + size % 6, 1 + seed % 5).expect("valid clique"),
    }
}

/// Per-node `(key, value)` lists with duplicate keys and empty nodes.
fn keyed_inputs(n: usize, seed: u64) -> Vec<Vec<(u64, u64)>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..4usize);
            (0..k)
                .map(|_| (rng.gen_range(0..10u64), rng.gen_range(1..100u64)))
                .collect()
        })
        .collect()
}

/// `GroupedSum`'s per-node output: the aggregated list at the root.
type GroupedOut = Option<Vec<(u64, u64)>>;

/// Runs the two-phase session and returns (outputs, the full ledger).
fn run_session(
    g: &WeightedGraph,
    kind: ExecutorKind,
    lists: &[Vec<(u64, u64)>],
) -> (Vec<GroupedOut>, MetricsLedger) {
    let n = g.node_count();
    let cfg = NetworkConfig::default().with_executor(kind);
    let mut net = Network::new(g, cfg).expect("valid topology");
    let bfs = net
        .run("leader_bfs", &LeaderBfs::new(), vec![(); n])
        .expect("bfs succeeds");
    let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = bfs
        .outputs
        .iter()
        .map(|o| o.tree.clone())
        .zip(lists.iter().cloned())
        .collect();
    let gs = net
        .run("grouped_sum", &GroupedSum::new(), inputs)
        .expect("grouped sum succeeds");
    (gs.outputs, net.ledger().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed + same plan ⇒ byte-identical ledger; and the faulty
    /// session's outputs and payload metrics equal the serial session's.
    #[test]
    fn same_plan_same_ledger_and_serial_parity(
        family in 0u8..3,
        seed in 0u64..1000,
        size in 4usize..28,
        drop_idx in 0usize..4,
        delay in 0u8..4,
    ) {
        let drop = [0u16, 50, 150, 300][drop_idx];
        let g = make_graph(family, seed, size);
        let n = g.node_count();
        let lists = keyed_inputs(n, seed);
        let plan = FaultPlan::with_drop(drop, seed ^ 0xDEAD).delayed(delay).duplicated(drop / 2);
        let kind = ExecutorKind::Faulty(plan);

        let (out_a, ledger_a) = run_session(&g, kind.clone(), &lists);
        let (out_b, ledger_b) = run_session(&g, kind, &lists);
        // Determinism: ledgers agree field for field, sim counters
        // included.
        prop_assert_eq!(&out_a, &out_b);
        prop_assert_eq!(ledger_a.phases(), ledger_b.phases());

        // Parity: the serial run agrees on outputs and on every
        // payload-level metric.
        let (out_s, ledger_s) = run_session(&g, ExecutorKind::Serial, &lists);
        prop_assert_eq!(&out_a, &out_s);
        prop_assert_eq!(ledger_a.phases().len(), ledger_s.phases().len());
        for (f, s) in ledger_a.phases().iter().zip(ledger_s.phases()) {
            let mut payload = f.clone();
            payload.sim = s.sim;
            prop_assert_eq!(&payload, s);
        }
        prop_assert!(ledger_a.total_phys_rounds() >= ledger_a.total_rounds());
    }
}
