//! Adversarial identifier layouts for the staged election.
//!
//! The staged election's message win is largest on identifier layouts
//! with a single local minimum (row-major grids). An adversary can
//! instead *permute* the identifiers so that many nodes are local minima
//! — every one of them a candidate flooding its own probe front. The
//! `O(log D)`-front argument says the doubling schedule keeps this
//! cheap anyway: fronts that survive to stage `k` are pairwise `≥ 2^k`
//! apart, so any node is reached by `O(log D)` fronts and total probe
//! traffic stays `O(m log D)` — versus the legacy flood's per-node
//! re-flood for every prefix minimum it hears. This suite validates
//! that empirically on a permuted torus24x24 and a permuted
//! Erdős–Rényi instance: bit-identical outputs, a message budget of the
//! `O(m log D)` shape, and the `O(D)` round envelope.

use congest::primitives::leader_bfs::LeaderBfs;
use congest::{Network, NetworkConfig};
use graphs::{generators, NodeId, WeightedGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Relabels `g` by a seeded uniform permutation: node `v` becomes
/// `perm[v]`, adjacency and weights unchanged. Returns the new graph.
fn permute_ids(g: &WeightedGraph, seed: u64) -> WeightedGraph {
    let n = g.node_count();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    let edges: Vec<(u32, u32, u64)> = g
        .edge_tuples()
        .map(|(_, u, v, w)| (perm[u.index()], perm[v.index()], w))
        .collect();
    WeightedGraph::from_edges(n, edges).expect("permutation preserves validity")
}

/// Number of local-minimum identifiers — the staged election's
/// candidate count.
fn local_minima(g: &WeightedGraph) -> usize {
    g.nodes()
        .filter(|&v| {
            g.neighbors(v)
                .iter()
                .all(|a| a.neighbor.index() > v.index())
        })
        .count()
}

fn run(
    g: &WeightedGraph,
    algo: &LeaderBfs,
) -> (
    Vec<congest::primitives::leader_bfs::LeaderBfsOutput>,
    u64,
    u64,
) {
    let mut net = Network::new(g, NetworkConfig::default()).expect("valid topology");
    let out = net
        .run("leader_bfs", algo, vec![(); g.node_count()])
        .expect("election succeeds");
    (out.outputs, out.metrics.rounds, out.metrics.messages)
}

/// Checks parity + budgets on one adversarial instance; returns
/// (staged msgs, legacy msgs) for reporting.
fn check_instance(name: &str, g: &WeightedGraph, min_minima: usize) -> (u64, u64) {
    let minima = local_minima(g);
    assert!(
        minima >= min_minima,
        "{name}: permutation produced only {minima} local minima"
    );
    let (staged, staged_rounds, staged_msgs) = run(g, &LeaderBfs::new());
    let (legacy, legacy_rounds, legacy_msgs) = run(g, &LeaderBfs::legacy());
    assert_eq!(staged, legacy, "{name}: outputs must agree bit for bit");
    // The winner is the minimum identifier and depths form a BFS tree.
    let root = staged
        .iter()
        .position(|o| o.tree.is_root())
        .expect("a root exists");
    assert_eq!(staged[root].leader, NodeId::from_index(root));
    assert!(staged.iter().all(|o| o.leader == NodeId::from_index(root)));
    let dist = graphs::traversal::bfs(g, NodeId::from_index(root)).dist;
    for (v, o) in staged.iter().enumerate() {
        assert_eq!(o.tree.depth, dist[v], "{name}: node {v} depth");
    }

    let d = *dist.iter().max().expect("nonempty") as u64;
    let m2 = 2 * g.edge_count() as u64;
    let log_d = 64 - d.max(1).leading_zeros() as u64;
    // O(m log D) probes + O(n) acks/done — the front bound, with a
    // constant ≤ 2 (measured ≈ 1.1 on the torus, ≈ 0.5 on the ER
    // instance, where D and hence log D is tiny).
    assert!(
        staged_msgs <= 2 * m2 * (log_d + 2),
        "{name}: staged {staged_msgs} msgs vs 2m(log D + 2) = {}",
        2 * m2 * (log_d + 2)
    );
    // The legacy flood pays the boot flood plus a re-flood per prefix
    // minimum; adversarial layouts shrink the staged win from the
    // row-major 8×+ to the candidacy margin, but never erase it
    // (measured ≥ 1.25× on both families; gated at 1.11×).
    assert!(
        staged_msgs * 10 <= legacy_msgs * 9,
        "{name}: staged {staged_msgs} vs legacy {legacy_msgs}"
    );
    // Rounds stay in the O(D) envelope, and with the eccentricity-seeded
    // first radius the constant over the unthrottled flood is small
    // (measured ≤ 1.2×; it was ~1.35× with r0 = 1).
    assert!(
        staged_rounds <= 6 * d + 30,
        "{name}: {staged_rounds} rounds on D = {d}"
    );
    assert!(
        4 * staged_rounds <= 5 * legacy_rounds + 20,
        "{name}: staged {staged_rounds} rounds vs legacy {legacy_rounds}"
    );
    assert!(
        legacy_rounds <= 3 * d + 10,
        "{name}: legacy took {legacy_rounds} rounds on D = {d}"
    );
    (staged_msgs, legacy_msgs)
}

/// Torus24x24 with uniformly permuted identifiers: ~n/5 local minima
/// instead of one — the layout the doubling schedule exists for.
#[test]
fn permuted_torus24x24_validates_the_log_d_front_bound() {
    let g = generators::torus2d(24, 24).unwrap();
    for seed in [1u64, 42, 1337] {
        let pg = permute_ids(&g, seed);
        // A uniform permutation yields ≈ n/(Δ+1) = 115 expected minima.
        let (staged, legacy) = check_instance("torus24x24", &pg, 80);
        // The row-major torus saw 8.4×; adversarial layouts still win,
        // just less lopsidedly.
        assert!(
            staged < legacy,
            "seed {seed}: staged {staged} vs legacy {legacy}"
        );
    }
}

/// A connected Erdős–Rényi graph (small diameter, many minima after
/// permutation): the opposite regime from the torus.
#[test]
fn permuted_erdos_renyi_stays_parity_and_budgeted() {
    let mut rng = StdRng::seed_from_u64(99);
    let g = generators::erdos_renyi_connected(400, 0.02, &mut rng).unwrap();
    for seed in [7u64, 21] {
        let pg = permute_ids(&g, seed);
        check_instance("er400", &pg, 30);
    }
}
