//! End-to-end validation of the Chrome-trace exporter and the
//! transport profiler on a real (small, lossy) session: the JSON
//! parses under the strict in-tree parser, every duration slice is a
//! balanced `B`/`E` pair, the per-stem slice durations reproduce the
//! ledger's wall-clock accounting exactly, and the cost-center profile
//! attributes the faulty executor's wall time to named centers.

use congest::obs::{export_chrome_trace, json};
use congest::primitives::leader_bfs::LeaderBfs;
use congest::primitives::GroupedSum;
use congest::sim::FaultPlan;
use congest::{ExecutorKind, Network, NetworkConfig, ObsHandle, TreeInfo};
use graphs::generators;
use std::collections::BTreeMap;

/// Runs the election + aggregation session over a lossy 4×4 torus with
/// a sink attached; returns the handle and the final ledger.
fn run_lossy_session() -> (ObsHandle, congest::MetricsLedger) {
    let g = generators::torus2d(4, 4).expect("valid torus");
    let n = g.node_count();
    let plan = FaultPlan::with_drop(80, 0xBEEF).delayed(2).duplicated(40);
    let obs = ObsHandle::new();
    let cfg = NetworkConfig::default()
        .with_executor(ExecutorKind::Faulty(plan))
        .with_obs(obs.clone());
    let mut net = Network::new(&g, cfg).expect("valid topology");
    let bfs = net
        .run("leader_bfs", &LeaderBfs::new(), vec![(); n])
        .expect("bfs succeeds");
    let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = bfs
        .outputs
        .iter()
        .enumerate()
        .map(|(v, o)| (o.tree.clone(), vec![(v as u64 % 5, 1 + v as u64)]))
        .collect();
    net.run("grouped_sum", &GroupedSum::new(), inputs)
        .expect("grouped sum succeeds");
    (obs, net.ledger().clone())
}

#[test]
fn chrome_trace_parses_balances_and_matches_the_ledger() {
    let (obs, ledger) = run_lossy_session();
    let trace = export_chrome_trace(obs.sink());
    let root = json::parse(&trace).expect("exporter output is strict JSON");
    let events = root
        .get("traceEvents")
        .and_then(json::Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every duration slice is a balanced, properly nested B/E pair per
    // (pid, tid), and per-tid slice durations reproduce the ledger's
    // per-stem wall accounting.
    let mut open: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
    let mut stem_ms: BTreeMap<String, f64> = BTreeMap::new();
    let mut tid_stem: BTreeMap<u64, String> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(json::Value::as_str).expect("ph");
        let tid = e.get("tid").and_then(json::Value::as_f64).unwrap_or(0.0) as u64;
        match ph {
            "M" => {
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(json::Value::as_str)
                    .expect("thread_name metadata has args.name");
                tid_stem.insert(tid, name.to_string());
            }
            "B" => {
                let name = e.get("name").and_then(json::Value::as_str).expect("name");
                let ts = e.get("ts").and_then(json::Value::as_f64).expect("ts");
                open.entry(tid).or_default().push((name.to_string(), ts));
            }
            "E" => {
                let ts = e.get("ts").and_then(json::Value::as_f64).expect("ts");
                let (name, begin) = open
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .expect("E closes an open B on its tid");
                assert!(ts >= begin, "slices close forward in time");
                let stem = name.split('.').next().unwrap_or(&name).to_string();
                *stem_ms.entry(stem).or_default() += (ts - begin) / 1000.0;
            }
            "i" => {}
            other => panic!("unexpected phase type {other:?}"),
        }
    }
    assert!(
        open.values().all(Vec::is_empty),
        "every B slice is closed: {open:?}"
    );

    for (stem, ms) in &stem_ms {
        let ledger_ms = ledger.wall_ms_of_stem(stem);
        assert!(
            (ms - ledger_ms).abs() < 1e-6,
            "stem {stem}: trace says {ms} ms, ledger says {ledger_ms} ms"
        );
    }
    assert!(stem_ms.contains_key("leader_bfs") && stem_ms.contains_key("grouped_sum"));
    // The phase tracks got their thread names.
    let named: Vec<&String> = tid_stem.values().collect();
    assert!(
        named.iter().any(|n| n.as_str() == "leader_bfs"),
        "{named:?}"
    );
}

#[test]
fn the_parallel_sweep_reports_worker_utilization() {
    let g = generators::torus2d(12, 12).expect("valid torus");
    let n = g.node_count();
    let obs = ObsHandle::new();
    let cfg = NetworkConfig {
        // Force the threaded path: the default threshold (1024 nodes)
        // keeps instances this small inline.
        parallel_inline_threshold: 0,
        ..NetworkConfig::default()
    }
    .with_executor(ExecutorKind::Parallel { threads: 3 })
    .with_obs(obs.clone());
    let mut net = Network::new(&g, cfg).expect("valid topology");
    net.run("leader_bfs", &LeaderBfs::new(), vec![(); n])
        .expect("bfs succeeds");

    let profile = obs.sink().profile();
    assert_eq!(profile.workers.len(), 3, "one stat row per worker");
    let sweeps = profile.workers[0].sweeps;
    assert!(sweeps > 0, "the threaded path ran");
    assert!(
        profile.workers.iter().all(|w| w.sweeps == sweeps),
        "every worker joins every threaded sweep: {:?}",
        profile.workers
    );
    // Chunk claiming is racy across workers, but collectively each
    // threaded sweep's domain is claimed exactly once — and late
    // sweeps (few live nodes) drop back to inline, so the total is
    // bounded by sweeps × n without reaching it.
    let nodes: u64 = profile.workers.iter().map(|w| w.nodes).sum();
    assert!(nodes > 0 && nodes <= sweeps * n as u64);
    // Worker numbers are host-schedule-dependent by design: they must
    // never leak into the deterministic virtual stream.
    assert!(!obs.sink().virtual_stream().contains("worker"));
}

#[test]
fn the_profiler_attributes_the_faulty_executors_wall_time() {
    let (obs, _) = run_lossy_session();
    let profile = obs.sink().profile();
    assert!(profile.total_ns > 0, "the wrapped run was timed");
    // The contractual bound is >= 0.9, asserted by the release-mode
    // `trace_export` gate in CI where the process is alone on the
    // host. Under the debug test harness other tests (some spawning
    // threads) run concurrently, and scheduler preemption between
    // spans lands in the unattributed gap — so this keeps headroom.
    assert!(
        profile.coverage() >= 0.75,
        "cost centers must attribute the bulk of the wall time, got {:.3}",
        profile.coverage()
    );
    // A lossy plan retransmits; the nested center must have seen it.
    assert!(profile.center_ns(congest::obs::CostCenter::Retransmit) > 0);
    assert!(profile.center_ns(congest::obs::CostCenter::Execute) > 0);
    // The faulty executor is single-threaded: no worker stats.
    assert!(profile.workers.is_empty());
}
