//! Detector-convergence properties, randomized: for arbitrary fail-stop
//! schedules on small random trees, tori, and cliques, the timeout
//! census ([`FailureDetector`] under `SuspicionPolicy::Continue`)
//! converges to **exactly** the ground truth — every completed node's
//! suspect set is precisely its crashed neighbors, crashed nodes
//! produce ignorable zombie reports, and no live node is ever falsely
//! suspected (the plans are lossless, so the only silent channels are
//! the dead ones; lossy-plan suspicion accuracy is covered by the
//! recovery suites, where transient suspicions are allowed and
//! rehabilitated).
//!
//! Crash rounds are drawn from `0..10`, far below the detector's idle
//! span (≥ `suspect_after()` ≥ 56 rounds), so every scheduled crash
//! actually fires mid-phase; at least one node always survives.

use congest::primitives::failure_detector::{FailureDetector, FdReport};
use congest::sim::{CrashEvent, FaultPlan};
use congest::{MetricsLedger, Network, NetworkConfig};
use graphs::{generators, NodeId, WeightedGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One graph from the three stress families (the same construction as
/// the executor-parity and sim-determinism suites).
fn make_graph(family: u8, seed: u64, size: usize) -> WeightedGraph {
    match family % 3 {
        0 => {
            let n = size.max(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let edges: Vec<(u32, u32, u64)> = (1..n)
                .map(|i| {
                    let parent = rng.gen_range(0..i) as u32;
                    (parent, i as u32, 1 + (seed + i as u64) % 7)
                })
                .collect();
            WeightedGraph::from_edges(n, edges).expect("valid tree")
        }
        1 => {
            let side = 3 + size % 4;
            generators::torus2d(side, side).expect("valid torus")
        }
        _ => generators::complete(3 + size % 6, 1 + seed % 5).expect("valid clique"),
    }
}

/// An arbitrary fail-stop schedule: each node except a guaranteed
/// survivor crashes independently with probability ~1/3, at a round in
/// `0..10`. No rejoins — the census diagnoses permanent deaths.
fn make_schedule(n: usize, seed: u64) -> Vec<CrashEvent> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let survivor = rng.gen_range(0..n);
    let mut schedule = Vec::new();
    for v in 0..n {
        let doomed = rng.gen_range(0..3u32) == 0;
        let at_round = rng.gen_range(0..10u64);
        if v != survivor && doomed {
            schedule.push(CrashEvent {
                node: v as u32,
                at_round,
                rejoin: None,
            });
        }
    }
    schedule
}

/// Runs the census phase and returns (reports, ledger).
fn census(g: &WeightedGraph, plan: FaultPlan) -> (Vec<FdReport>, MetricsLedger) {
    let det = FailureDetector::for_plan(&plan);
    let cfg = NetworkConfig::default().with_fault_plan(plan);
    let mut net = Network::new(g, cfg).expect("valid topology");
    let out = net
        .run("census", &det, vec![(); g.node_count()])
        .expect("the census completes under Continue");
    (out.outputs, net.ledger().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The census equals the ground truth, exactly: completed nodes
    /// suspect precisely their dead neighbors, zombies are marked, and
    /// the false-suspicion meter stays at zero.
    #[test]
    fn census_converges_to_the_exact_crash_set(
        family in 0u8..3,
        seed in 0u64..5000,
        size in 6usize..28,
    ) {
        let g = make_graph(family, seed, size);
        let n = g.node_count();
        let schedule = make_schedule(n, seed);
        let dead: Vec<bool> = {
            let mut d = vec![false; n];
            for c in &schedule {
                d[c.node as usize] = true;
            }
            d
        };
        let plan = FaultPlan::lossless()
            .with_crashes(schedule.clone())
            .continue_on_suspicion();
        // Unreachable crash so detection stays armed on the (valid)
        // empty-schedule draws too.
        let plan = if schedule.is_empty() {
            plan.with_crash(0, 1 << 40)
        } else {
            plan
        };
        let (reports, ledger) = census(&g, plan.clone());

        for (v, r) in reports.iter().enumerate() {
            if dead[v] {
                prop_assert!(!r.completed, "node {v} crashed but completed its census");
                continue;
            }
            prop_assert!(r.completed, "live node {v} failed to complete");
            let mut expect: Vec<NodeId> = g
                .neighbors(NodeId::from_index(v))
                .iter()
                .filter(|a| dead[a.neighbor.index()])
                .map(|a| a.neighbor)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(
                &r.suspects, &expect,
                "node {}: suspected {:?}, dead neighbors {:?}", v, &r.suspects, &expect
            );
        }
        prop_assert_eq!(
            ledger.total_false_suspicions(), 0,
            "a live node was suspected under a lossless plan"
        );

        // Same plan, byte-identical census — detection is deterministic.
        let (again, ledger2) = census(&g, plan);
        prop_assert_eq!(&reports, &again);
        prop_assert_eq!(ledger.phases(), ledger2.phases());
    }
}
