//! Detector-convergence properties, randomized: for arbitrary fail-stop
//! schedules on small random trees, tori, and cliques, the timeout
//! census ([`FailureDetector`] under `SuspicionPolicy::Continue`)
//! converges to **exactly** the ground truth — every completed node's
//! suspect set is precisely its crashed neighbors, crashed nodes
//! produce ignorable zombie reports, and no live node is ever falsely
//! suspected (the plans are lossless, so the only silent channels are
//! the dead ones; lossy-plan suspicion accuracy is covered by the
//! recovery suites, where transient suspicions are allowed and
//! rehabilitated).
//!
//! Crash rounds are drawn from `0..10`, far below the detector's idle
//! span (≥ `suspect_after()` ≥ 56 rounds), so every scheduled crash
//! actually fires mid-phase; at least one node always survives.
//!
//! Three further adversary properties ride on the same harness:
//! census-under-crash (a node dying *mid-census* still converges — the
//! rebased second pass reports the enlarged dead set exactly),
//! partition-heal parity (a partition window that heals before the
//! suspicion threshold is invisible: outputs and payload metrics are
//! bit-identical to the partition-free run), and corruption parity
//! (checksummed bit-flips are discarded and retransmitted, again
//! bit-identically).

use congest::algorithm::{Algorithm, FinishResult, Outbox, Step};
use congest::primitives::failure_detector::{FailureDetector, FdReport};
use congest::sim::{CrashEvent, FaultPlan};
use congest::{MetricsLedger, Network, NetworkConfig, NodeCtx, Port};
use graphs::{generators, NodeId, WeightedGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One graph from the three stress families (the same construction as
/// the executor-parity and sim-determinism suites).
fn make_graph(family: u8, seed: u64, size: usize) -> WeightedGraph {
    match family % 3 {
        0 => {
            let n = size.max(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let edges: Vec<(u32, u32, u64)> = (1..n)
                .map(|i| {
                    let parent = rng.gen_range(0..i) as u32;
                    (parent, i as u32, 1 + (seed + i as u64) % 7)
                })
                .collect();
            WeightedGraph::from_edges(n, edges).expect("valid tree")
        }
        1 => {
            let side = 3 + size % 4;
            generators::torus2d(side, side).expect("valid torus")
        }
        _ => generators::complete(3 + size % 6, 1 + seed % 5).expect("valid clique"),
    }
}

/// An arbitrary fail-stop schedule: each node except a guaranteed
/// survivor crashes independently with probability ~1/3, at a round in
/// `0..10`. No rejoins — the census diagnoses permanent deaths.
fn make_schedule(n: usize, seed: u64) -> Vec<CrashEvent> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let survivor = rng.gen_range(0..n);
    let mut schedule = Vec::new();
    for v in 0..n {
        let doomed = rng.gen_range(0..3u32) == 0;
        let at_round = rng.gen_range(0..10u64);
        if v != survivor && doomed {
            schedule.push(CrashEvent {
                node: v as u32,
                at_round,
                rejoin: None,
            });
        }
    }
    schedule
}

/// Runs the census phase and returns (reports, ledger).
fn census(g: &WeightedGraph, plan: FaultPlan) -> (Vec<FdReport>, MetricsLedger) {
    let det = FailureDetector::for_plan(&plan);
    let cfg = NetworkConfig::default().with_fault_plan(plan);
    let mut net = Network::new(g, cfg).expect("valid topology");
    let out = net
        .run("census", &det, vec![(); g.node_count()])
        .expect("the census completes under Continue");
    (out.outputs, net.ledger().clone())
}

/// A minimal payload-bearing phase for the parity properties: flood the
/// global minimum input (each node re-announces whenever its running
/// minimum drops), halting after `ttl` rounds. With `ttl ≥ n` every
/// node converges to the global minimum on any connected graph.
struct MinFlood {
    ttl: u64,
}

impl Algorithm for MinFlood {
    type Input = u64;
    type State = u64;
    type Msg = u64;
    type Output = u64;

    fn boot(&self, ctx: &NodeCtx<'_>, input: u64) -> (u64, Outbox<u64>) {
        let mut o = Outbox::new();
        o.send_all(ctx.ports(), input);
        (input, o)
    }

    fn round(&self, s: &mut u64, ctx: &NodeCtx<'_>, inbox: &[(Port, u64)]) -> Step<u64> {
        let before = *s;
        for (_, m) in inbox {
            *s = (*s).min(*m);
        }
        if ctx.round >= self.ttl {
            return Step::halt();
        }
        let mut o = Outbox::new();
        if *s < before {
            o.send_all(ctx.ports(), *s);
        }
        Step::Continue(o)
    }

    fn finish(&self, s: u64, _ctx: &NodeCtx<'_>) -> FinishResult<u64> {
        Ok(s)
    }
}

/// Runs [`MinFlood`] under `plan` and returns (outputs, ledger).
fn flood(g: &WeightedGraph, plan: FaultPlan) -> (Vec<u64>, MetricsLedger) {
    let n = g.node_count();
    let inputs: Vec<u64> = (0..n as u64).map(|v| (v << 8) | 1).collect();
    let cfg = NetworkConfig::default().with_fault_plan(plan);
    let mut net = Network::new(g, cfg).expect("valid topology");
    let out = net
        .run("heal_parity", &MinFlood { ttl: n as u64 }, inputs)
        .expect("no abort: the adversary heals before the suspicion threshold");
    (out.outputs, net.ledger().clone())
}

/// The undirected edge list of `g`, as `(lo, hi)` pairs.
fn edge_list(g: &WeightedGraph) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for v in 0..g.node_count() {
        for adj in g.neighbors(NodeId::from_index(v)) {
            let u = adj.neighbor.index();
            if u > v {
                edges.push((v as u32, u as u32));
            }
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The census equals the ground truth, exactly: completed nodes
    /// suspect precisely their dead neighbors, zombies are marked, and
    /// the false-suspicion meter stays at zero.
    #[test]
    fn census_converges_to_the_exact_crash_set(
        family in 0u8..3,
        seed in 0u64..5000,
        size in 6usize..28,
    ) {
        let g = make_graph(family, seed, size);
        let n = g.node_count();
        let schedule = make_schedule(n, seed);
        let dead: Vec<bool> = {
            let mut d = vec![false; n];
            for c in &schedule {
                d[c.node as usize] = true;
            }
            d
        };
        let plan = FaultPlan::lossless()
            .with_crashes(schedule.clone())
            .continue_on_suspicion();
        // Unreachable crash so detection stays armed on the (valid)
        // empty-schedule draws too.
        let plan = if schedule.is_empty() {
            plan.with_crash(0, 1 << 40)
        } else {
            plan
        };
        let (reports, ledger) = census(&g, plan.clone());

        for (v, r) in reports.iter().enumerate() {
            if dead[v] {
                prop_assert!(!r.completed, "node {v} crashed but completed its census");
                continue;
            }
            prop_assert!(r.completed, "live node {v} failed to complete");
            let mut expect: Vec<NodeId> = g
                .neighbors(NodeId::from_index(v))
                .iter()
                .filter(|a| dead[a.neighbor.index()])
                .map(|a| a.neighbor)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(
                &r.suspects, &expect,
                "node {}: suspected {:?}, dead neighbors {:?}", v, &r.suspects, &expect
            );
        }
        prop_assert_eq!(
            ledger.total_false_suspicions(), 0,
            "a live node was suspected under a lossless plan"
        );

        // Same plan, byte-identical census — detection is deterministic.
        let (again, ledger2) = census(&g, plan);
        prop_assert_eq!(&reports, &again);
        prop_assert_eq!(ledger.phases(), ledger2.phases());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Census-under-crash: one node is dead from boot and a second dies
    /// *mid-census* (its crash round falls inside the census span). The
    /// first pass never falsely suspects anyone and every completed
    /// neighbor of the mid-census victim reports it; a second pass on
    /// the rebased plan — exactly what the recovery driver's fixpoint
    /// loop runs — converges to the enlarged dead set precisely. The
    /// whole mid-census pass is byte-identical on rerun.
    #[test]
    fn census_reconverges_after_a_mid_census_death(
        family in 0u8..3,
        seed in 0u64..5000,
        size in 6usize..28,
        at in 2u64..20,
    ) {
        let g = make_graph(family, seed, size);
        let n = g.node_count();
        let a = (seed as usize) % n;
        let b = (a + 1 + (seed as usize / 7) % (n - 1)) % n;
        prop_assert!(a != b, "the offset construction keeps the victims distinct");
        let dead = |v: usize| v == a || v == b;
        let plan = FaultPlan::lossless()
            .with_crash(a as u32, 0)
            .with_crash(b as u32, at)
            .continue_on_suspicion();

        let (first, ledger1) = census(&g, plan.clone());
        prop_assert!(!first[a].completed, "boot-dead node {a} is a zombie");
        prop_assert!(!first[b].completed, "mid-census victim {b} is a zombie");
        for (v, r) in first.iter().enumerate() {
            if dead(v) {
                continue;
            }
            prop_assert!(r.completed, "live node {v} failed to complete");
            for s in &r.suspects {
                prop_assert!(
                    dead(s.index()),
                    "node {} falsely suspects live node {}", v, s.index()
                );
            }
        }
        for adj in g.neighbors(NodeId::from_index(b)) {
            let v = adj.neighbor.index();
            if !dead(v) {
                prop_assert!(
                    first[v].suspects.contains(&NodeId::from_index(b)),
                    "live neighbor {v} of the mid-census victim missed it"
                );
            }
        }
        prop_assert_eq!(ledger1.total_false_suspicions(), 0);

        // Second pass on the rebased plan (the fixpoint iteration):
        // both deaths are now at round 0, so the detector converges to
        // the enlarged set exactly — suspects == dead neighbors.
        let consumed = ledger1.total_rounds();
        let (second, ledger2) = census(&g, plan.clone().rebased(consumed));
        for (v, r) in second.iter().enumerate() {
            if dead(v) {
                prop_assert!(!r.completed);
                continue;
            }
            prop_assert!(r.completed, "live node {v} failed the second pass");
            let mut expect: Vec<NodeId> = g
                .neighbors(NodeId::from_index(v))
                .iter()
                .filter(|x| dead(x.neighbor.index()))
                .map(|x| x.neighbor)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(&r.suspects, &expect, "node {} second-pass census", v);
        }
        prop_assert_eq!(ledger2.total_false_suspicions(), 0);

        // Byte-identical rerun of the mid-census pass.
        let (again, lagain) = census(&g, plan);
        prop_assert_eq!(&first, &again);
        prop_assert_eq!(ledger1.phases(), lagain.phases());
    }

    /// Partition-heal parity: a partition window over an arbitrary edge
    /// subset that heals before the suspicion threshold (`heal_at` ≪
    /// `suspect_after() == 40` lossless ticks) never aborts the phase
    /// and is *invisible* at the virtual layer — outputs and payload
    /// metrics are bit-identical to the partition-free run; only the
    /// `sim.partitioned` meter betrays that frames were silenced.
    #[test]
    fn partition_healing_before_the_threshold_is_invisible(
        family in 0u8..3,
        seed in 0u64..5000,
        size in 6usize..28,
        heal_at in 1u64..25,
    ) {
        let g = make_graph(family, seed, size);
        let edges = edge_list(&g);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
        let mut cut: Vec<(u32, u32)> = edges
            .iter()
            .copied()
            .filter(|_| rng.gen_range(0..3u32) == 0)
            .collect();
        if cut.is_empty() {
            cut.push(edges[0]);
        }

        let (base_out, base_ledger) = flood(&g, FaultPlan::lossless());
        let global_min = (0..g.node_count() as u64).map(|v| (v << 8) | 1).min();
        prop_assert!(base_out.iter().all(|&o| Some(o) == global_min));

        // Window opens at round 0 (boot traffic guarantees silenced
        // frames) and heals `heal_at` ticks later — under the 40-tick
        // suspicion threshold, so the default Abort policy never fires.
        let plan = FaultPlan::lossless().with_partition(cut, 0, heal_at);
        let (part_out, part_ledger) = flood(&g, plan);
        prop_assert_eq!(&part_out, &base_out, "outputs diverged under a healed partition");
        prop_assert!(
            part_ledger.total_partitioned() > 0,
            "the window never intersected boot traffic"
        );
        prop_assert_eq!(part_ledger.total_false_suspicions(), 0);
        let (pa, pb) = (part_ledger.phases(), base_ledger.phases());
        prop_assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(pb) {
            prop_assert_eq!(
                (x.rounds, x.messages, x.bits, x.max_edge_load_bits),
                (y.rounds, y.messages, y.bits, y.max_edge_load_bits),
                "payload metrics diverged under a healed partition"
            );
        }
    }

    /// Corruption parity: seeded bit-flips that still decode are caught
    /// by the per-phase frame checksum, discarded, and repaired by
    /// retransmission — outputs and payload metrics stay bit-identical
    /// to the clean run, and the `sim.corrupted` meter counts the
    /// discards.
    #[test]
    fn corrupted_frames_are_discarded_and_repaired_invisibly(
        family in 0u8..3,
        seed in 0u64..5000,
        size in 6usize..28,
    ) {
        let g = make_graph(family, seed, size);
        let (base_out, base_ledger) = flood(&g, FaultPlan::lossless());
        let (cor_out, cor_ledger) = flood(&g, FaultPlan::lossless().corrupted(600));
        prop_assert_eq!(&cor_out, &base_out, "outputs diverged under corruption");
        prop_assert!(
            cor_ledger.total_corrupted() > 0,
            "a 600‰ adversary corrupted nothing"
        );
        let (pa, pb) = (cor_ledger.phases(), base_ledger.phases());
        prop_assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(pb) {
            prop_assert_eq!(
                (x.rounds, x.messages, x.bits, x.max_edge_load_bits),
                (y.rounds, y.messages, y.bits, y.max_edge_load_bits),
                "payload metrics diverged under corruption"
            );
        }
    }
}
