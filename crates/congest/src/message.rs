//! The [`Message`] trait and bit-size accounting helpers.
//!
//! The CONGEST model limits messages to `O(log n)` bits, so every message
//! type must report its size. The helpers here implement the standard
//! accounting: node/edge identifiers cost `⌈log₂ n⌉` bits, a value `x`
//! costs `⌈log₂(x + 1)⌉` bits (at least one), and enum discriminants cost
//! [`TAG_BITS`].

/// Bits charged for an enum discriminant (message kind tag). Algorithms in
/// this workspace use at most 16 message kinds per phase.
pub const TAG_BITS: usize = 4;

/// A CONGEST message: cloneable, debuggable, with a declared bit size.
///
/// Messages must be [`Send`]: the parallel round executor moves them
/// between worker threads through the slot arena (the sender's worker
/// writes a slot, the destination's worker consumes it next round).
pub trait Message: Clone + Send + std::fmt::Debug {
    /// The size of this message in bits, charged against the per-edge
    /// bandwidth budget.
    fn bit_len(&self) -> usize;
}

/// Bits needed to name one of `n` distinct things (`⌈log₂ n⌉`, minimum 1).
pub fn id_bits(n: usize) -> usize {
    let n = n.max(2);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Bits needed to transmit the value `x` (`⌈log₂(x + 1)⌉`, minimum 1).
pub fn value_bits(x: u64) -> usize {
    ((64 - x.leading_zeros()) as usize).max(1)
}

/// The unit message (used by pure-synchronisation rounds).
impl Message for () {
    fn bit_len(&self) -> usize {
        1
    }
}

/// A raw `u64` payload charged by magnitude.
impl Message for u64 {
    fn bit_len(&self) -> usize {
        value_bits(*self)
    }
}

/// A raw `u32` payload charged by magnitude.
impl Message for u32 {
    fn bit_len(&self) -> usize {
        value_bits(*self as u64)
    }
}

/// A boolean flag.
impl Message for bool {
    fn bit_len(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_matches_log2() {
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
        // Degenerate inputs still cost a bit.
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(1), 1);
    }

    #[test]
    fn value_bits_matches_magnitude() {
        assert_eq!(value_bits(0), 1);
        assert_eq!(value_bits(1), 1);
        assert_eq!(value_bits(2), 2);
        assert_eq!(value_bits(255), 8);
        assert_eq!(value_bits(256), 9);
        assert_eq!(value_bits(u64::MAX), 64);
    }

    #[test]
    fn primitive_messages_have_sizes() {
        assert_eq!(().bit_len(), 1);
        assert_eq!(true.bit_len(), 1);
        assert_eq!(7u64.bit_len(), 3);
        assert_eq!(7u32.bit_len(), 3);
    }
}
