//! A deterministic synchronous **CONGEST**-model network simulator.
//!
//! The CONGEST model ([Peleg 2000]) is a synchronous message-passing network:
//! `n` nodes with unique IDs, one per processor, communicate over the edges
//! of a graph. Execution proceeds in rounds; in each round every node may
//! send **one message of `O(log n)` bits** to each of its neighbors. The
//! complexity measure is the number of rounds.
//!
//! This crate simulates that model faithfully:
//!
//! * node code (an [`Algorithm`]) sees only its own state, its local
//!   [`NodeCtx`] (id, `n`, incident edges and weights), and its inbox —
//!   locality is enforced by construction;
//! * every message type implements [`Message::bit_len`]; the engine enforces
//!   the per-edge, per-direction, per-round bandwidth `B = β·⌈log₂ n⌉`
//!   (strict mode errors, lax mode counts violations);
//! * rounds, messages, bits, and the worst per-edge load are metered per
//!   phase in a [`MetricsLedger`], which is what the experiment suite
//!   reports.
//!
//! Algorithms are composed out of *phases*: each phase is one `Algorithm`
//! run to completion by [`Network::run`], and per-node outputs of one phase
//! are handed to the next phase as per-node inputs (modelling persistent
//! local memory). The [`primitives`] module supplies the standard building
//! blocks (leader election + BFS tree with echo termination, convergecast,
//! broadcast, pipelined upcast/downcast, grouped aggregation, per-edge list
//! exchange) that the paper's algorithm is assembled from.
//!
//! # Example: weighted-degree sum via convergecast
//!
//! ```
//! use congest::{Network, NetworkConfig};
//! use congest::primitives::{leader_bfs::LeaderBfs, convergecast::{Convergecast, SumU64}};
//!
//! # fn main() -> Result<(), congest::CongestError> {
//! let g = graphs::generators::cycle(8).expect("valid cycle");
//! let mut net = Network::new(&g, NetworkConfig::default())?;
//! // Phase 0: elect a leader and build its BFS tree.
//! let bfs = net.run("leader_bfs", &LeaderBfs::new(), vec![(); 8])?;
//! // Phase 1: sum every node's weighted degree up the tree.
//! let inputs = bfs
//!     .outputs
//!     .iter()
//!     .map(|o| (o.tree.clone(), SumU64(2))) // each cycle node has degree 2
//!     .collect();
//! let sums = net.run("degree_sum", &Convergecast::new(), inputs)?;
//! let at_root = sums.outputs.iter().flatten().next().expect("root output");
//! assert_eq!(at_root.0, 16);
//! # Ok(())
//! # }
//! ```

// `deny`, not `forbid`: the executor's slot arena and per-node cells opt
// back in with module-scoped `#![allow(unsafe_code)]` and a documented
// disjointness discipline (see `executor::cells`). Everything else in the
// crate remains statically unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod config;
mod engine;
pub mod error;
pub mod executor;
pub mod message;
pub mod metrics;
pub mod node;
pub mod obs;
pub mod phase;
pub mod primitives;
pub mod sim;

pub use algorithm::{Algorithm, FinishResult, Outbox, ProtocolViolation, Step};
pub use config::NetworkConfig;
pub use engine::{Network, RunOutcome};
pub use error::CongestError;
pub use executor::{ExecutorKind, ParallelExecutor, RoundExecutor, SerialExecutor};
pub use message::{id_bits, value_bits, Message};
pub use metrics::{MetricsLedger, PhaseGroup, PhaseMetrics, SimPhaseStats};
pub use node::{NeighborInfo, NodeCtx, Port, TreeInfo};
pub use obs::{ObsHandle, ObsReport, ObsSink, PhaseSummary};
pub use sim::{CrashEvent, FaultPlan, FaultyExecutor, PartitionEvent, SuspicionPolicy};
