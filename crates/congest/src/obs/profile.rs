//! The in-process profiler: tick-loop cost centers of the faulty
//! executor and per-worker chunk utilization of the parallel executor.
//!
//! The replay-exact paths (`sim/`, `dist/`) are forbidden from naming
//! wall-clock types (the `determinism` lint), so all timing flows
//! through the opaque [`CcToken`] and the free functions here:
//! [`cc_begin`] captures a timestamp only when a sink is attached, and
//! the matching `cc_end*` call attributes the elapsed nanoseconds to a
//! [`CostCenter`]. With no sink attached every call is a branch on a
//! `None` — the zero-cost-when-disabled half of the obs contract.
//!
//! Profile numbers are **host measurements**: they are excluded from
//! the deterministic virtual-event stream and exist to answer "where
//! does the wall time go" (the transport-sharding and worker-pool
//! ROADMAP items), not to be replayed.

use super::ObsSink;
use std::time::Instant;

/// A named slice of the faulty executor's tick loop (plus the shared
/// boot/finish sweeps). Together the centers cover the loop wall-to-wall;
/// `trace_export` asserts the attributed share stays ≥ 90%.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CostCenter {
    /// The boot sweep: every node's `boot` plus first-frame scheduling.
    Boot,
    /// Arrival processing: draining the tick's calendar slot, checksum
    /// verification, and the seq/cumulative-ack window bookkeeping of
    /// [`crate::sim::FaultyExecutor`]'s stop-and-wait channels.
    AckBookkeeping,
    /// Stepping the nodes whose round inputs are complete (the
    /// algorithm's own `round` code under the synchronizer).
    Execute,
    /// The per-tick scan over all directed channels deciding what each
    /// one transmits (excluding the retransmission sends, split out
    /// below).
    ChannelScan,
    /// Timeout-driven payload retransmissions — the slice of
    /// [`CostCenter::ChannelScan`] spent re-sending.
    Retransmit,
    /// Keepalive traffic on otherwise-silent channels (failure-detector
    /// liveness gossip).
    SafetyGossip,
    /// The failure detector's silence scan and suspicion bookkeeping.
    Detector,
    /// The finish sweep: per-node `finish` and output collection.
    Finish,
    /// Everything else the loop does per tick: partition-window
    /// scheduling, error wind-down, completion checks.
    Bookkeeping,
}

impl CostCenter {
    /// Every center, in reporting order.
    pub const ALL: [CostCenter; 9] = [
        CostCenter::Boot,
        CostCenter::AckBookkeeping,
        CostCenter::Execute,
        CostCenter::ChannelScan,
        CostCenter::Retransmit,
        CostCenter::SafetyGossip,
        CostCenter::Detector,
        CostCenter::Finish,
        CostCenter::Bookkeeping,
    ];

    /// The center's stable snake_case report label.
    pub fn label(self) -> &'static str {
        match self {
            CostCenter::Boot => "boot",
            CostCenter::AckBookkeeping => "ack_bookkeeping",
            CostCenter::Execute => "execute",
            CostCenter::ChannelScan => "channel_scan",
            CostCenter::Retransmit => "retransmit",
            CostCenter::SafetyGossip => "safety_gossip",
            CostCenter::Detector => "detector",
            CostCenter::Finish => "finish",
            CostCenter::Bookkeeping => "bookkeeping",
        }
    }

    fn index(self) -> usize {
        CostCenter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every center is listed in ALL")
    }
}

/// One parallel-executor worker's lifetime totals (accumulated across
/// every sweep the phase ran). Chunk claiming is an atomic-cursor race,
/// so these numbers are honest host measurements — per-worker splits
/// vary run to run even though the merged results never do.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Sweeps this worker participated in.
    pub sweeps: u64,
    /// Chunks claimed from the sweep cursors.
    pub chunks: u64,
    /// Domain positions (nodes) executed.
    pub nodes: u64,
    /// Nanoseconds spent inside sweep loops (claim + run, not spawn).
    pub busy_ns: u64,
}

/// The aggregated profile of one sink: cost-center nanoseconds, the
/// total span they are measured against, and per-worker utilization.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    centers: [u64; CostCenter::ALL.len()],
    /// Total nanoseconds of the measured executor spans (the
    /// denominator of [`Profile::coverage`]).
    pub total_ns: u64,
    /// Per-worker utilization of the parallel executor, indexed by
    /// worker (empty unless a parallel phase ran under this sink).
    pub workers: Vec<WorkerStat>,
}

impl Profile {
    /// Nanoseconds attributed to `center`.
    pub fn center_ns(&self, center: CostCenter) -> u64 {
        self.centers[center.index()]
    }

    /// Nanoseconds attributed to any named center.
    pub fn attributed_ns(&self) -> u64 {
        self.centers.iter().sum()
    }

    /// The attributed share of the measured total, in `0.0..=1.0`
    /// (1.0 when nothing was measured). The acceptance bar for the
    /// faulty executor is ≥ 0.9.
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            return 1.0;
        }
        (self.attributed_ns() as f64 / self.total_ns as f64).min(1.0)
    }

    pub(crate) fn add(&mut self, center: CostCenter, ns: u64) {
        self.centers[center.index()] += ns;
    }

    pub(crate) fn note_worker(&mut self, worker: usize, chunks: u64, nodes: u64, busy_ns: u64) {
        if self.workers.len() <= worker {
            self.workers.resize(worker + 1, WorkerStat::default());
        }
        let w = &mut self.workers[worker];
        w.sweeps += 1;
        w.chunks += chunks;
        w.nodes += nodes;
        w.busy_ns += busy_ns;
    }
}

/// An opaque in-flight timing span: a timestamp when a sink is
/// attached, nothing otherwise. Obtained from [`cc_begin`] /
/// [`total_begin`] / [`worker_begin`] and consumed by the matching
/// `*_end` call. Deliberately opaque so replay-exact code never names
/// a clock type.
#[derive(Copy, Clone, Debug)]
pub struct CcToken(Option<Instant>);

impl CcToken {
    fn elapsed_ns(self) -> u64 {
        self.0
            .map(|t| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }
}

/// Opens a cost-center span (no-op without a sink).
pub fn cc_begin(obs: Option<&ObsSink>) -> CcToken {
    CcToken(obs.map(|_| Instant::now()))
}

/// Closes `token`, attributing its span to `center`; returns the span
/// in nanoseconds (0 without a sink).
pub fn cc_end(obs: Option<&ObsSink>, token: CcToken, center: CostCenter) -> u64 {
    let ns = token.elapsed_ns();
    if let Some(sink) = obs {
        if ns > 0 {
            sink.add_cc(center, ns);
        }
    }
    ns
}

/// Closes `token`, attributing its span **minus** `minus_ns` to
/// `center` — for spans whose interior was already attributed elsewhere
/// (the retransmission slice inside the channel scan). Returns the full
/// span in nanoseconds.
pub fn cc_end_split(
    obs: Option<&ObsSink>,
    token: CcToken,
    center: CostCenter,
    minus_ns: u64,
) -> u64 {
    let ns = token.elapsed_ns();
    if let Some(sink) = obs {
        let own = ns.saturating_sub(minus_ns);
        if own > 0 {
            sink.add_cc(center, own);
        }
    }
    ns
}

/// Opens the whole-run span the centers are measured against.
pub fn total_begin(obs: Option<&ObsSink>) -> CcToken {
    cc_begin(obs)
}

/// Closes the whole-run span opened by [`total_begin`].
pub fn total_end(obs: Option<&ObsSink>, token: CcToken) {
    let ns = token.elapsed_ns();
    if let Some(sink) = obs {
        if ns > 0 {
            sink.add_total(ns);
        }
    }
}

/// Opens one worker's sweep span (parallel executor).
pub fn worker_begin(obs: Option<&ObsSink>) -> CcToken {
    cc_begin(obs)
}

/// Closes a worker sweep span, crediting `worker` with the chunks and
/// nodes it processed.
pub fn worker_end(obs: Option<&ObsSink>, token: CcToken, worker: usize, chunks: u64, nodes: u64) {
    let ns = token.elapsed_ns();
    if let Some(sink) = obs {
        sink.note_worker(worker, chunks, nodes, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_ordered_like_all() {
        let mut seen = std::collections::BTreeSet::new();
        for c in CostCenter::ALL {
            assert!(seen.insert(c.label()), "duplicate label {c:?}");
        }
        assert_eq!(CostCenter::Boot.index(), 0);
        assert_eq!(CostCenter::Bookkeeping.index(), CostCenter::ALL.len() - 1);
    }

    #[test]
    fn empty_profile_has_full_coverage() {
        let p = Profile::default();
        assert_eq!(p.attributed_ns(), 0);
        assert_eq!(p.coverage(), 1.0);
    }

    #[test]
    fn coverage_is_the_attributed_share() {
        let mut p = Profile {
            total_ns: 1000,
            ..Profile::default()
        };
        p.add(CostCenter::ChannelScan, 600);
        p.add(CostCenter::Retransmit, 300);
        assert_eq!(p.center_ns(CostCenter::ChannelScan), 600);
        assert_eq!(p.attributed_ns(), 900);
        assert!((p.coverage() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn disabled_tokens_cost_nothing_and_measure_nothing() {
        let t = cc_begin(None);
        assert_eq!(cc_end(None, t, CostCenter::Execute), 0);
        assert_eq!(cc_end_split(None, t, CostCenter::ChannelScan, 5), 0);
        total_end(None, total_begin(None));
        worker_end(None, worker_begin(None), 3, 1, 1);
    }

    #[test]
    fn worker_stats_accumulate_by_index() {
        let mut p = Profile::default();
        p.note_worker(2, 3, 40, 100);
        p.note_worker(2, 1, 10, 50);
        p.note_worker(0, 2, 20, 30);
        assert_eq!(p.workers.len(), 3);
        assert_eq!(
            p.workers[2],
            WorkerStat {
                sweeps: 2,
                chunks: 4,
                nodes: 50,
                busy_ns: 150
            }
        );
        assert_eq!(p.workers[1], WorkerStat::default());
        assert_eq!(p.workers[0].nodes, 20);
    }
}
