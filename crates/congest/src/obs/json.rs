//! A minimal JSON reader for validating exported traces.
//!
//! The workspace is offline (no serde_json); the exporters hand-write
//! their JSON and this module is the independent check that what they
//! wrote actually parses — used by the exporter tests and the
//! `trace_export` gate. It is a strict recursive-descent parser over
//! the JSON grammar (objects, arrays, strings with the standard
//! escapes, f64 numbers, booleans, null); it is *not* a general-purpose
//! deserializer.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are kept in a [`BTreeMap`]
/// (deterministic iteration; duplicate keys keep the last value, as
/// most real readers do).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses `src` as one JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with a byte offset) of the
/// first syntax error; trailing non-whitespace after the document is an
/// error too.
pub fn parse(src: &str) -> Result<Value, String> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected {lit:?} at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("malformed number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Unpaired surrogates degrade to the replacement
                        // character — the exporters never emit them.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
            }
            Some(&c) if c < 0x20 => return Err(format!("raw control byte at {}", *pos)),
            Some(&c) if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            Some(_) => {
                // Copy one multi-byte UTF-8 scalar verbatim, validating
                // only its own (≤ 4-byte) window — validating the whole
                // remaining input here would make string parsing
                // quadratic in the document size.
                let end = (*pos + 4).min(b.len());
                let ch = match std::str::from_utf8(&b[*pos..end]) {
                    Ok(s) => s.chars().next(),
                    // A valid scalar truncated by the window still
                    // decodes from the prefix before the error offset.
                    Err(e) if e.valid_up_to() > 0 => {
                        std::str::from_utf8(&b[*pos..*pos + e.valid_up_to()])
                            .expect("valid prefix")
                            .chars()
                            .next()
                    }
                    Err(_) => None,
                };
                let ch = ch.ok_or_else(|| format!("invalid utf-8 in string at {}", *pos))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included) — the writer-side helper the exporters share.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_trace_shaped_document() {
        let src = r#"{"traceEvents":[{"name":"mstA.l0.cd","ph":"B","pid":1,"tid":2,"ts":12.5},
            {"name":"mstA.l0.cd","ph":"E","pid":1,"tid":2,"ts":99}],
            "displayTimeUnit":"ms","meta":{"dropped":0,"ok":true,"none":null}}"#;
        let v = parse(src).expect("parses");
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("B"));
        assert_eq!(events[0].get("ts").and_then(Value::as_f64), Some(12.5));
        assert_eq!(v.get("meta").unwrap().get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("meta").unwrap().get("none"), Some(&Value::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f→";
        let doc = format!("[\"{}\"]", escape(nasty));
        let v = parse(&doc).expect("escaped string parses");
        assert_eq!(v.as_arr().unwrap()[0].as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "[1 2]",
            "tru",
            "\"unterminated",
            "1e",
            "[]x",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn numbers_parse_with_signs_and_exponents() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("0").unwrap().as_f64(), Some(0.0));
    }
}
