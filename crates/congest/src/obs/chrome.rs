//! Chrome trace-event JSON export (the format `chrome://tracing` and
//! Perfetto load).
//!
//! Layout: one track (tid) per phase *stem* in first-appearance order,
//! carrying a balanced `"B"`/`"E"` duration pair per phase whose span
//! is the phase's measured wall time — so the per-stem duration sums
//! equal [`crate::MetricsLedger::wall_ms_of_stem`] by construction.
//! Two dedicated tracks carry instants: `transport` (tid 1000) for the
//! frame lifecycle and `recovery` (tid 1001) for stage markers. An
//! instant's timestamp is its physical tick mapped linearly into the
//! owning phase's wall-clock window — virtual placement is exact,
//! wall-clock placement is an interpolation.
//!
//! Ring overwrites are never silent: the `otherData.droppedEvents`
//! field carries the overwrite count.

use super::event::{EventKind, NONE};
use super::json::escape;
use super::{ObsReport, ObsSink};
use std::fmt::Write as _;

/// The tid of the transport-instant track.
const TID_TRANSPORT: u32 = 1000;
/// The tid of the recovery/stage-instant track.
const TID_RECOVERY: u32 = 1001;
/// Phase-stem tracks start here (tid 0/1 read oddly in viewers).
const TID_STEM_BASE: u32 = 2;

/// Exports everything `sink` recorded as a Chrome trace-event JSON
/// document (timestamps in microseconds, as the format requires).
pub fn export_chrome_trace(sink: &ObsSink) -> String {
    let report = sink.snapshot();
    render(&report)
}

fn render(r: &ObsReport) -> String {
    // Stem → tid, in order of first appearance among the phases (every
    // track-bearing event references a phase record, so this table is
    // complete up front).
    let mut stems: Vec<&str> = Vec::new();
    for p in &r.phases {
        let s = crate::phase::stem_of(&p.name);
        if !stems.contains(&s) {
            stems.push(s);
        }
    }
    let stem_tid = |name: &str| -> u32 {
        let stem = crate::phase::stem_of(name);
        TID_STEM_BASE + stems.iter().position(|s| *s == stem).unwrap_or(0) as u32
    };

    // Wall-clock windows (µs): phase i spans begin[i]..begin[i]+dur[i],
    // laid end to end in execution order.
    let mut begin_us = Vec::with_capacity(r.phases.len());
    let mut cursor = 0.0f64;
    for p in &r.phases {
        begin_us.push(cursor);
        cursor += p.wall_ms * 1000.0;
    }
    let window = |phase: u32, tick: u64| -> f64 {
        let Some(p) = r.phases.get(phase as usize) else {
            return 0.0;
        };
        let dur = p.wall_ms * 1000.0;
        let frac = tick as f64 / p.ticks.max(1) as f64;
        begin_us[phase as usize] + dur * frac.min(1.0)
    };

    let mut ev = Vec::<String>::new();

    // Phase duration pairs, one B/E per record — balanced by
    // construction, durations exactly the ledger's wall times.
    for (i, p) in r.phases.iter().enumerate() {
        let tid = stem_tid(&p.name);
        let b = begin_us[i];
        let e = b + p.wall_ms * 1000.0;
        let name = escape(&p.name);
        ev.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{b:.3},\
             \"args\":{{\"rounds\":{},\"ticks\":{}}}}}",
            p.rounds, p.ticks
        ));
        ev.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{e:.3}}}"
        ));
    }

    let mut saw_transport = false;
    let mut saw_recovery = false;
    for e in &r.events {
        match e.kind {
            EventKind::PhaseBegin | EventKind::PhaseEnd => {} // covered by the pairs above
            EventKind::RoundEnd => {
                let Some(p) = r.phases.get(e.phase as usize) else {
                    continue;
                };
                let tid = stem_tid(&p.name);
                let ts = window(e.phase, e.tick);
                ev.push(format!(
                    "{{\"name\":\"round_end\",\"cat\":\"round\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{ts:.3},\"args\":{{\"round\":{},\"tick\":{}}}}}",
                    e.round, e.tick
                ));
            }
            EventKind::Stage => {
                saw_recovery = true;
                let ts = window(e.phase, e.tick);
                let name = escape(r.label_of(e).unwrap_or("stage"));
                ev.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"recovery\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\
                     \"tid\":{TID_RECOVERY},\"ts\":{ts:.3},\"args\":{{\"value\":{}}}}}",
                    e.round
                ));
            }
            kind => {
                saw_transport = true;
                let ts = window(e.phase, e.tick);
                let name = escape(kind.wire_name());
                let opt = |v: u32| -> String {
                    if v == NONE {
                        "null".to_string()
                    } else {
                        v.to_string()
                    }
                };
                ev.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"transport\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                     \"tid\":{TID_TRANSPORT},\"ts\":{ts:.3},\
                     \"args\":{{\"a\":{},\"b\":{},\"round\":{},\"tick\":{}}}}}",
                    opt(e.a),
                    opt(e.b),
                    e.round,
                    e.tick
                ));
            }
        }
    }

    // Track-name metadata (ph "M"), emitted first so viewers label
    // every track they are about to see.
    let mut meta = Vec::<String>::new();
    for (i, stem) in stems.iter().enumerate() {
        meta.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            TID_STEM_BASE + i as u32,
            escape(stem)
        ));
    }
    if saw_transport {
        meta.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{TID_TRANSPORT},\
             \"args\":{{\"name\":\"transport\"}}}}"
        ));
    }
    if saw_recovery {
        meta.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{TID_RECOVERY},\
             \"args\":{{\"name\":\"recovery\"}}}}"
        ));
    }

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    for (i, line) in meta.iter().chain(ev.iter()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(line);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",");
    let _ = write!(
        out,
        "\"otherData\":{{\"droppedEvents\":{},\"retainedEvents\":{}}}}}",
        r.dropped,
        r.events.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::super::json::{parse, Value};
    use super::super::{EventKind, ObsHandle, NONE};
    use super::*;

    fn feed() -> ObsHandle {
        let h = ObsHandle::new();
        h.phase_begin("leader_bfs", 0);
        h.phase_end(10, 10, 2.0);
        h.phase_begin("mstA.l0.cd", 10);
        h.record(EventKind::FrameSend, 0, 1, 1, 3);
        h.record(EventKind::FrameDrop, 1, 0, 1, 4);
        h.phase_end(5, 20, 1.0);
        h.phase_begin("mstA.l1.cd", 15);
        h.emit("recover.checkpoint", 2);
        h.phase_end(5, 20, 3.0);
        h
    }

    #[test]
    fn export_parses_and_pairs_balance() {
        let h = feed();
        let doc = parse(&export_chrome_trace(&h)).expect("exported JSON parses");
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        let phs = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some(p))
                .count()
        };
        assert_eq!(phs("B"), 3);
        assert_eq!(phs("E"), 3);
        assert_eq!(phs("i"), 3, "two transport instants + one stage");
        assert!(phs("M") >= 2, "stem tracks are named");
        assert_eq!(
            doc.get("otherData").unwrap().get("droppedEvents"),
            Some(&Value::Num(0.0))
        );
    }

    #[test]
    fn stem_durations_sum_to_the_recorded_walls() {
        let h = feed();
        let doc = parse(&export_chrome_trace(&h)).expect("parses");
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        // Sum E.ts - B.ts per tid; mstA's two phases share one track.
        let mut per_tid: std::collections::BTreeMap<u64, f64> = Default::default();
        let mut open: std::collections::BTreeMap<u64, f64> = Default::default();
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
            if ph != "B" && ph != "E" {
                continue;
            }
            let tid = e.get("tid").and_then(Value::as_f64).unwrap() as u64;
            let ts = e.get("ts").and_then(Value::as_f64).unwrap();
            if ph == "B" {
                open.insert(tid, ts);
            } else {
                let b = open.remove(&tid).expect("E pairs with an open B");
                *per_tid.entry(tid).or_default() += ts - b;
            }
        }
        assert!(open.is_empty(), "every B is closed");
        let sums: Vec<f64> = per_tid.values().copied().collect();
        assert!((sums[0] - 2000.0).abs() < 1e-6, "leader_bfs = 2 ms");
        assert!((sums[1] - 4000.0).abs() < 1e-6, "mstA = 1 + 3 ms");
    }

    #[test]
    fn instants_land_inside_their_phase_window() {
        let h = feed();
        let doc = parse(&export_chrome_trace(&h)).expect("parses");
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        for e in events {
            if e.get("cat").and_then(Value::as_str) != Some("transport") {
                continue;
            }
            let ts = e.get("ts").and_then(Value::as_f64).unwrap();
            // mstA.l0.cd spans 2000..3000 µs.
            assert!((2000.0..=3000.0).contains(&ts), "ts = {ts}");
        }
    }

    #[test]
    fn out_of_phase_events_fall_back_to_time_zero() {
        let h = ObsHandle::new();
        h.record(EventKind::Crash, 3, NONE, 0, 0);
        let doc = parse(&export_chrome_trace(&h)).expect("parses");
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        let crash = events
            .iter()
            .find(|e| e.get("cat").and_then(Value::as_str) == Some("transport"))
            .expect("crash instant exported");
        assert_eq!(crash.get("ts").and_then(Value::as_f64), Some(0.0));
        assert_eq!(crash.get("args").unwrap().get("b"), Some(&Value::Null));
    }
}
