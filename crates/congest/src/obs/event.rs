//! The structured event model: event kinds, the packed per-event
//! record, and the wire names each kind serializes under.
//!
//! Events are deliberately flat and `Copy`: two `u32` participant
//! slots, a virtual round, a physical tick, and two interned-string
//! indices (the owning phase and, for [`EventKind::Stage`] events, the
//! emitted stage name). Everything a determinism test compares lives
//! here — wall-clock never does (it rides in
//! [`PhaseSummary`](super::PhaseSummary) records instead).

/// Sentinel for "no value" in the packed `u32` fields of [`Event`]
/// (no owning phase, no interned label, no participant node).
pub const NONE: u32 = u32::MAX;

/// What one recorded event was.
///
/// The frame-lifecycle kinds (`Frame*`, `Keepalive`, `Suspect`,
/// `Clear`, `Crash`, `Partition*`) are emitted only by the
/// fault-injecting executor ([`crate::sim::FaultyExecutor`]); the
/// phase/round kinds by every executor; [`EventKind::Stage`] by
/// explicit [`crate::Network::obs_emit`] calls (the recovery driver's
/// checkpoint/resume/census markers).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A phase started (`a`/`b` unused; `round` = the session's virtual
    /// rounds consumed before this phase).
    PhaseBegin,
    /// A phase completed (`round` = its virtual rounds, `tick` = its
    /// physical ticks).
    PhaseEnd,
    /// The first node reached virtual round `round` (`tick` = the
    /// physical tick under the faulty executor, else the round itself).
    RoundEnd,
    /// A data frame was put on the wire from node `a` to node `b`
    /// (first transmission of its payload).
    FrameSend,
    /// A timeout-driven retransmission of a pending payload, `a` → `b`.
    FrameRetransmit,
    /// The adversary dropped the frame `a` → `b`.
    FrameDrop,
    /// The adversary duplicated the frame `a` → `b`.
    FrameDup,
    /// The receiver `b` rejected a frame from `a` whose checksum did
    /// not cover the adversary's bit-flip.
    FrameCorrupt,
    /// Node `a` consumed an acknowledgement from node `b`.
    FrameAck,
    /// Node `a` sent a keepalive to node `b` (failure-detector liveness
    /// traffic on an otherwise silent channel).
    Keepalive,
    /// Node `a` began suspecting node `b` of having crashed.
    Suspect,
    /// Node `a` rehabilitated node `b` (a frame arrived from a
    /// suspect — the suspicion was false).
    Clear,
    /// Node `a` crashed (adversary schedule).
    Crash,
    /// A partition window opened, silencing the directed channel
    /// `a` → `b`.
    PartitionOpen,
    /// The partition window over `a` → `b` healed.
    PartitionHeal,
    /// An explicit stage marker from [`crate::Network::obs_emit`]:
    /// `label` names it, `round` carries its value.
    Stage,
}

impl EventKind {
    /// Every kind, in wire order (the order `virtual_stream` documents).
    pub const ALL: [EventKind; 16] = [
        EventKind::PhaseBegin,
        EventKind::PhaseEnd,
        EventKind::RoundEnd,
        EventKind::FrameSend,
        EventKind::FrameRetransmit,
        EventKind::FrameDrop,
        EventKind::FrameDup,
        EventKind::FrameCorrupt,
        EventKind::FrameAck,
        EventKind::Keepalive,
        EventKind::Suspect,
        EventKind::Clear,
        EventKind::Crash,
        EventKind::PartitionOpen,
        EventKind::PartitionHeal,
        EventKind::Stage,
    ];

    /// The kind's wire name. Transport-lifecycle kinds are dotted
    /// `transport.*` names under the registered `transport` stem (a
    /// unit test pins every dotted name here to
    /// [`crate::phase::is_registered`]); the phase/round/stage kinds
    /// are bare grammar-valid segments.
    pub fn wire_name(self) -> &'static str {
        match self {
            EventKind::PhaseBegin => "phase_begin",
            EventKind::PhaseEnd => "phase_end",
            EventKind::RoundEnd => "round_end",
            EventKind::FrameSend => "transport.send",
            EventKind::FrameRetransmit => "transport.retransmit",
            EventKind::FrameDrop => "transport.drop",
            EventKind::FrameDup => "transport.dup",
            EventKind::FrameCorrupt => "transport.corrupt",
            EventKind::FrameAck => "transport.ack",
            EventKind::Keepalive => "transport.keepalive",
            EventKind::Suspect => "transport.suspect",
            EventKind::Clear => "transport.clear",
            EventKind::Crash => "transport.crash",
            EventKind::PartitionOpen => "transport.part_open",
            EventKind::PartitionHeal => "transport.part_heal",
            EventKind::Stage => "stage",
        }
    }

    /// Is this a frame-lifecycle / failure-detector kind (rendered on
    /// the dedicated transport track of the Chrome exporter)?
    pub fn is_transport(self) -> bool {
        !matches!(
            self,
            EventKind::PhaseBegin | EventKind::PhaseEnd | EventKind::RoundEnd | EventKind::Stage
        )
    }
}

/// One recorded event. All fields are virtual (schedule- and
/// host-independent): a fixed seed reproduces the exact event sequence
/// byte for byte — see `ObsSink::virtual_stream`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Index of the owning phase record (into the sink's phase list),
    /// or [`NONE`] outside any phase.
    pub phase: u32,
    /// Interned stage-name index ([`EventKind::Stage`] only, else
    /// [`NONE`]).
    pub label: u32,
    /// Primary participant node (see the [`EventKind`] docs), or
    /// [`NONE`].
    pub a: u32,
    /// Secondary participant node (the peer), or [`NONE`].
    pub b: u32,
    /// Virtual round — for [`EventKind::Stage`], the emitted value.
    pub round: u64,
    /// Physical tick of the faulty executor's synchronizer (equal to
    /// `round` under fault-free executors).
    pub tick: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every dotted wire name must resolve against the phase registry
    /// (so transport events aggregate under a registered stem), and
    /// every bare one must at least parse under the grammar.
    #[test]
    fn wire_names_resolve_against_the_phase_registry() {
        for kind in EventKind::ALL {
            let name = kind.wire_name();
            assert!(
                crate::phase::is_valid_name(name),
                "{name} must parse under the phase-name grammar"
            );
            if name.contains('.') {
                assert!(
                    crate::phase::is_registered(name),
                    "{name} must carry a registered stem"
                );
            }
            assert_eq!(name.contains('.'), kind.is_transport());
        }
    }

    #[test]
    fn wire_names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in EventKind::ALL {
            assert!(seen.insert(kind.wire_name()), "duplicate {kind:?}");
        }
        assert_eq!(seen.len(), EventKind::ALL.len());
    }
}
