//! `congest::obs` — structured event tracing and profiling.
//!
//! The observability layer of the simulator: a per-session,
//! ring-buffered **event sink** ([`ObsSink`], shared via the cheap
//! clonable [`ObsHandle`]) that the engine and executors feed with
//! structured events — phase begin/end, round boundaries, and (under
//! [`crate::sim::FaultyExecutor`]) the full frame lifecycle: send,
//! drop, duplicate, corrupt, retransmit, ack, keepalive, suspicion,
//! crash, partition windows, and the recovery driver's
//! checkpoint/resume stage markers. Attach a sink with
//! [`crate::NetworkConfig::with_obs`]; read it back with
//! [`ObsSink::snapshot`], [`ObsSink::virtual_stream`],
//! [`ObsSink::profile`], or [`export_chrome_trace`].
//!
//! Two contracts hold by construction and are pinned by tests:
//!
//! * **Zero-cost when disabled.** Without a handle in the config, every
//!   hook is a branch on a `None` — no allocation, no clock reads, no
//!   locking. An obs-disabled run's [`crate::MetricsLedger`] and
//!   outputs are byte-identical to a build without the subsystem.
//! * **Deterministic when enabled.** The *virtual* event stream —
//!   everything except wall-clock and profile fields — is a pure
//!   function of the seed, plan, and inputs: byte-identical across
//!   reruns ([`ObsSink::virtual_stream`] is the comparable artifact).
//!   Host timings live only in [`PhaseSummary::wall_ms`] and the
//!   [`Profile`], which the stream never includes.
//!
//! This module also owns the session's single tracing switch: the
//! `CONGEST_OBS` environment variable (with `CONGEST_TRACE` kept as a
//! compatible alias) turns on the per-phase stderr summary lines that
//! used to be an ad-hoc path in the engine.

mod chrome;
mod event;
pub mod json;
mod profile;

pub use chrome::export_chrome_trace;
pub use event::{Event, EventKind, NONE};
pub use profile::{
    cc_begin, cc_end, cc_end_split, total_begin, total_end, worker_begin, worker_end, CcToken,
    CostCenter, Profile, WorkerStat,
};

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// Default event-ring capacity: enough for every event of the bench
/// instances, while bounding a chaos run on a large graph to a few MiB.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A cheap, clonable handle to a shared [`ObsSink`]. The handle is what
/// rides inside [`crate::NetworkConfig`] (several networks of one
/// session — e.g. the recovery driver's census networks — share one
/// sink); equality is sink *identity*, so configs stay `PartialEq`.
#[derive(Clone, Debug, Default)]
pub struct ObsHandle(Arc<ObsSink>);

impl ObsHandle {
    /// A fresh sink with the [`DEFAULT_CAPACITY`] event ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh sink whose event ring holds `capacity` events (older
    /// events are overwritten first; the overwrite count is reported).
    pub fn with_capacity(capacity: usize) -> Self {
        ObsHandle(Arc::new(ObsSink::with_capacity(capacity)))
    }

    /// The shared sink.
    pub fn sink(&self) -> &ObsSink {
        &self.0
    }
}

impl PartialEq for ObsHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl std::ops::Deref for ObsHandle {
    type Target = ObsSink;
    fn deref(&self) -> &ObsSink {
        &self.0
    }
}

/// One completed (or still-open) phase as the sink saw it. `wall_ms`
/// is the only host-dependent field and is excluded from
/// [`ObsSink::virtual_stream`].
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSummary {
    /// The phase name as passed to [`crate::Network::run`].
    pub name: String,
    /// Virtual rounds the phase consumed (0 while open or errored).
    pub rounds: u64,
    /// Physical ticks the phase consumed (= `rounds` under fault-free
    /// executors).
    pub ticks: u64,
    /// Host wall-clock, milliseconds (0.0 while open or errored).
    pub wall_ms: f64,
}

/// Everything a sink recorded, snapshotted at one instant: interned
/// names, phase records, the retained event ring, the overwrite count,
/// and the profile.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// The interned name table ([`Event::label`] indexes into it).
    pub names: Vec<String>,
    /// Phase records in execution order ([`Event::phase`] indexes into
    /// it).
    pub phases: Vec<PhaseSummary>,
    /// The retained events, oldest first.
    pub events: Vec<Event>,
    /// Events overwritten because the ring was full — never silently:
    /// every exporter surfaces this count.
    pub dropped: u64,
    /// The host-measured profile (cost centers + worker utilization).
    pub profile: Profile,
}

impl ObsReport {
    /// The owning phase's name of `e`, if any.
    pub fn phase_name_of(&self, e: &Event) -> Option<&str> {
        self.phases.get(e.phase as usize).map(|p| p.name.as_str())
    }

    /// The interned label of `e` (its stage name), if any.
    pub fn label_of(&self, e: &Event) -> Option<&str> {
        self.names.get(e.label as usize).map(String::as_str)
    }
}

#[derive(Debug, Default)]
struct Inner {
    names: Vec<String>,
    name_idx: BTreeMap<String, u32>,
    phases: Vec<PhaseRec>,
    /// Index of the open phase in `phases`, or `NONE`.
    current: u32,
    events: VecDeque<Event>,
    dropped: u64,
    profile: Profile,
}

#[derive(Debug)]
struct PhaseRec {
    name: u32,
    rounds: u64,
    ticks: u64,
    wall_ms: f64,
}

/// The shared event sink. All mutation goes through `&self` (interior
/// mutability), so executors and scoped workers feed one sink through
/// shared references; single-threaded recording order is deterministic,
/// and the only concurrently-recorded data (worker utilization) lives
/// in the host-only [`Profile`].
#[derive(Debug)]
pub struct ObsSink {
    cap: usize,
    inner: Mutex<Inner>,
}

impl Default for ObsSink {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ObsSink {
    fn with_capacity(capacity: usize) -> Self {
        ObsSink {
            cap: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A worker panic cannot corrupt Inner (no invariants span
        // pushes), so recording survives poisoning.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(inner: &mut Inner, cap: usize, e: Event) {
        if inner.events.len() == cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(e);
    }

    fn intern(inner: &mut Inner, name: &str) -> u32 {
        if let Some(&i) = inner.name_idx.get(name) {
            return i;
        }
        let i = inner.names.len() as u32;
        inner.names.push(name.to_string());
        inner.name_idx.insert(name.to_string(), i);
        i
    }

    pub(crate) fn phase_begin(&self, name: &str, base_round: u64) {
        let mut inner = self.lock();
        let name = Self::intern(&mut inner, name);
        let idx = inner.phases.len() as u32;
        inner.phases.push(PhaseRec {
            name,
            rounds: 0,
            ticks: 0,
            wall_ms: 0.0,
        });
        inner.current = idx;
        let e = Event {
            kind: EventKind::PhaseBegin,
            phase: idx,
            label: NONE,
            a: NONE,
            b: NONE,
            round: base_round,
            tick: 0,
        };
        Self::push(&mut inner, self.cap, e);
    }

    pub(crate) fn phase_end(&self, rounds: u64, ticks: u64, wall_ms: f64) {
        let mut inner = self.lock();
        let idx = inner.current;
        let Some(rec) = inner.phases.get_mut(idx as usize) else {
            return; // No open phase (end without begin) — ignore.
        };
        rec.rounds = rounds;
        rec.ticks = ticks;
        rec.wall_ms = wall_ms;
        inner.current = NONE;
        let e = Event {
            kind: EventKind::PhaseEnd,
            phase: idx,
            label: NONE,
            a: NONE,
            b: NONE,
            round: rounds,
            tick: ticks,
        };
        Self::push(&mut inner, self.cap, e);
    }

    /// Records an explicit stage marker (see
    /// [`crate::Network::obs_emit`]): `name` must be grammar-valid with
    /// a registered stem (the `congest_lint` contract for pipeline call
    /// sites), `value` is free-form (a count, an epoch, a tree index).
    pub fn emit(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        let label = Self::intern(&mut inner, name);
        let e = Event {
            kind: EventKind::Stage,
            phase: inner.current,
            label,
            a: NONE,
            b: NONE,
            round: value,
            tick: 0,
        };
        Self::push(&mut inner, self.cap, e);
    }

    pub(crate) fn record(&self, kind: EventKind, a: u32, b: u32, round: u64, tick: u64) {
        let mut inner = self.lock();
        let e = Event {
            kind,
            phase: inner.current,
            label: NONE,
            a,
            b,
            round,
            tick,
        };
        Self::push(&mut inner, self.cap, e);
    }

    pub(crate) fn round_end(&self, round: u64, tick: u64) {
        self.record(EventKind::RoundEnd, NONE, NONE, round, tick);
    }

    pub(crate) fn add_cc(&self, center: CostCenter, ns: u64) {
        self.lock().profile.add(center, ns);
    }

    pub(crate) fn add_total(&self, ns: u64) {
        self.lock().profile.total_ns += ns;
    }

    pub(crate) fn note_worker(&self, worker: usize, chunks: u64, nodes: u64, busy_ns: u64) {
        self.lock()
            .profile
            .note_worker(worker, chunks, nodes, busy_ns);
    }

    /// Snapshots everything recorded so far.
    pub fn snapshot(&self) -> ObsReport {
        let inner = self.lock();
        ObsReport {
            names: inner.names.clone(),
            phases: inner
                .phases
                .iter()
                .map(|p| PhaseSummary {
                    name: inner.names[p.name as usize].clone(),
                    rounds: p.rounds,
                    ticks: p.ticks,
                    wall_ms: p.wall_ms,
                })
                .collect(),
            events: inner.events.iter().copied().collect(),
            dropped: inner.dropped,
            profile: inner.profile.clone(),
        }
    }

    /// The host-measured profile recorded so far.
    pub fn profile(&self) -> Profile {
        self.lock().profile.clone()
    }

    /// Serializes the **virtual** event stream: phase records (without
    /// wall-clock) followed by every retained event, one line each.
    /// This is the determinism contract's comparable artifact — with a
    /// fixed seed and plan, reruns produce byte-identical streams.
    pub fn virtual_stream(&self) -> String {
        use std::fmt::Write as _;
        let r = self.snapshot();
        let mut out = String::new();
        out.push_str("obs-stream v1\n");
        let _ = writeln!(out, "dropped={}", r.dropped);
        for (i, p) in r.phases.iter().enumerate() {
            let _ = writeln!(
                out,
                "phase[{i}] {} rounds={} ticks={}",
                p.name, p.rounds, p.ticks
            );
        }
        let opt = |v: u32| -> String {
            if v == NONE {
                "-".to_string()
            } else {
                v.to_string()
            }
        };
        for e in &r.events {
            let label = r.label_of(e).unwrap_or("-");
            let _ = writeln!(
                out,
                "event {} phase={} label={} a={} b={} round={} tick={}",
                e.kind.wire_name(),
                opt(e.phase),
                label,
                opt(e.a),
                opt(e.b),
                e.round,
                e.tick
            );
        }
        out
    }

    /// Clears recorded events, phases, and the profile (the sink can be
    /// reused for another run).
    pub fn clear(&self) {
        let mut inner = self.lock();
        *inner = Inner::default();
    }
}

/// Whether the stderr phase-trace lines are enabled: the `CONGEST_OBS`
/// environment variable, or its pre-obs alias `CONGEST_TRACE`
/// (checked once per process).
pub fn stderr_trace_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var_os("CONGEST_OBS").is_some() || std::env::var_os("CONGEST_TRACE").is_some()
    })
}

/// Prints the per-phase stderr summary line when
/// [`stderr_trace_enabled`] — the single tracing switch the engine
/// calls after every phase (format unchanged from the pre-obs
/// `CONGEST_TRACE` path).
pub(crate) fn trace_phase_line(name: &str, metrics: &crate::metrics::PhaseMetrics, wall_ms: f64) {
    if stderr_trace_enabled() {
        eprintln!(
            "congest-trace: {name} rounds={} msgs={} bits={} wall_ms={wall_ms:.2}",
            metrics.rounds, metrics.messages, metrics.bits,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_compare_by_identity() {
        let a = ObsHandle::new();
        let b = a.clone();
        let c = ObsHandle::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn phases_and_events_land_in_order() {
        let h = ObsHandle::new();
        h.phase_begin("mstA.l0.cd", 7);
        h.record(EventKind::FrameSend, 1, 2, 3, 17);
        h.emit("recover.checkpoint", 5);
        h.phase_end(4, 20, 1.5);
        let r = h.snapshot();
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].name, "mstA.l0.cd");
        assert_eq!(r.phases[0].rounds, 4);
        assert_eq!(r.phases[0].ticks, 20);
        assert!(r.phases[0].wall_ms > 0.0);
        let kinds: Vec<EventKind> = r.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                EventKind::PhaseBegin,
                EventKind::FrameSend,
                EventKind::Stage,
                EventKind::PhaseEnd
            ]
        );
        assert_eq!(r.phase_name_of(&r.events[1]), Some("mstA.l0.cd"));
        assert_eq!(r.label_of(&r.events[2]), Some("recover.checkpoint"));
        assert_eq!(r.events[2].round, 5, "stage value rides in `round`");
        assert_eq!(r.events[1].phase, 0);
        assert_eq!(r.events[1].tick, 17);
    }

    #[test]
    fn the_ring_overwrites_oldest_and_counts_drops() {
        let h = ObsHandle::with_capacity(3);
        h.phase_begin("s3", 0);
        for i in 0..5 {
            h.record(EventKind::FrameSend, i, i + 1, 0, i as u64);
        }
        let r = h.snapshot();
        assert_eq!(r.events.len(), 3);
        assert_eq!(r.dropped, 3, "phase_begin + two sends overwritten");
        assert_eq!(r.events[0].a, 2, "oldest retained is send #2");
    }

    #[test]
    fn virtual_stream_is_stable_and_wall_free() {
        let build = || {
            let h = ObsHandle::new();
            h.phase_begin("side.flood", 0);
            h.record(EventKind::FrameDrop, 4, 9, 2, 11);
            h.phase_end(3, 12, 123.456); // differing wall must not show
            h.virtual_stream()
        };
        let a = build();
        let h = ObsHandle::new();
        h.phase_begin("side.flood", 0);
        h.record(EventKind::FrameDrop, 4, 9, 2, 11);
        h.phase_end(3, 12, 0.001);
        let b = h.virtual_stream();
        assert_eq!(a, b, "wall-clock leaked into the virtual stream");
        assert!(a.contains("phase[0] side.flood rounds=3 ticks=12"));
        assert!(a.contains("event transport.drop phase=0 label=- a=4 b=9 round=2 tick=11"));
        assert!(!a.contains("123.456"));
    }

    #[test]
    fn clear_resets_everything() {
        let h = ObsHandle::new();
        h.phase_begin("s3", 0);
        h.record(EventKind::Crash, 7, NONE, 1, 2);
        h.add_cc(CostCenter::Execute, 10);
        h.clear();
        let r = h.snapshot();
        assert!(r.phases.is_empty() && r.events.is_empty());
        assert_eq!(r.profile.attributed_ns(), 0);
    }
}
