//! Network configuration: bandwidth budget, enforcement policy, the
//! round executor, and the optional observability sink.

use crate::executor::ExecutorKind;
use crate::obs::ObsHandle;

/// Configuration of a simulated CONGEST network.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkConfig {
    /// Bandwidth multiplier `β`: each directed edge carries at most
    /// `β·⌈log₂ n⌉` bits per round. The model says `O(log n)`; β makes the
    /// constant explicit and sweepable.
    pub bandwidth_factor: usize,
    /// Strict mode: bandwidth violations, double sends, and messages to
    /// halted nodes are hard errors. Lax mode records them in the metrics
    /// and proceeds (useful for exploratory experiments only).
    pub strict: bool,
    /// Safety valve: a phase running longer than this many rounds is an
    /// error (`0` = derive a generous default from `n` and `m`).
    pub max_rounds: u64,
    /// Which round executor drives the phases. Outputs, round counts, and
    /// metrics are identical across executors; only wall time differs.
    pub executor: ExecutorKind,
    /// Adaptive fallback of the parallel executor: a sweep whose domain
    /// (live nodes + touched halted nodes) is smaller than this many
    /// nodes runs inline on the calling thread instead of spawning
    /// workers — per-sweep thread costs dwarf the per-node work at small
    /// scale (`bench_smoke`'s `clique_pair32` ran ~7× slower parallel
    /// than serial before this fallback). Results are identical either
    /// way (the sweep code is shared); only wall time differs. `0`
    /// disables the fallback; the serial executor ignores this knob.
    pub parallel_inline_threshold: usize,
    /// The observability sink this network records into (`None` — the
    /// default — disables tracing entirely: no events, no clock reads,
    /// no locking; ledger and outputs are byte-identical either way).
    /// Several networks may share one handle — the recovery driver's
    /// census networks do. Handle equality is sink identity.
    pub obs: Option<ObsHandle>,
}

impl Default for NetworkConfig {
    /// β = 8 (room for one tag + two ids + one value per message),
    /// strict enforcement, auto round cap, serial executor, inline
    /// fallback below 1024-node sweeps.
    fn default() -> Self {
        NetworkConfig {
            bandwidth_factor: 8,
            strict: true,
            max_rounds: 0,
            executor: ExecutorKind::Serial,
            parallel_inline_threshold: 1024,
            obs: None,
        }
    }
}

impl NetworkConfig {
    /// Strict config with a custom bandwidth factor.
    pub fn with_bandwidth_factor(factor: usize) -> Self {
        NetworkConfig {
            bandwidth_factor: factor,
            ..Self::default()
        }
    }

    /// This config with the given round executor.
    pub fn with_executor(self, executor: ExecutorKind) -> Self {
        NetworkConfig { executor, ..self }
    }

    /// This config driven by the fault-injecting executor under `plan`
    /// (shorthand for `with_executor(ExecutorKind::Faulty(plan))`).
    pub fn with_fault_plan(self, plan: crate::sim::FaultPlan) -> Self {
        self.with_executor(ExecutorKind::Faulty(plan))
    }

    /// This config recording into `handle`'s shared sink (see
    /// [`crate::obs`]).
    pub fn with_obs(self, handle: ObsHandle) -> Self {
        NetworkConfig {
            obs: Some(handle),
            ..self
        }
    }

    /// The per-edge budget in bits for an `n`-node network:
    /// `β·max(⌈log₂ n⌉, 8)`.
    ///
    /// The word-size floor of 8 bits keeps the budget meaningful on the tiny
    /// graphs used in tests — the model assumes weights are `poly(n)`, so a
    /// "word" never shrinks below a byte here; for `n ≥ 256` the floor is
    /// inactive and the budget is exactly `β⌈log₂ n⌉`.
    pub fn bandwidth_bits(&self, n: usize) -> usize {
        self.bandwidth_factor * crate::message::id_bits(n).max(8)
    }

    /// The effective round cap for a network with `n` nodes.
    pub fn effective_max_rounds(&self, n: usize) -> u64 {
        if self.max_rounds > 0 {
            self.max_rounds
        } else {
            // Generous: quadratic-ish in n, enough for every phase in this
            // workspace with huge slack, small enough to catch livelock.
            let n = n.max(2) as u64;
            (n + 16) * (n + 16)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_scales_with_n() {
        let c = NetworkConfig::default();
        assert_eq!(c.bandwidth_bits(1024), 8 * 10);
        assert_eq!(c.bandwidth_bits(1025), 8 * 11);
        assert!(c.strict);
    }

    #[test]
    fn inline_threshold_default() {
        // The adaptive-fallback knob ships enabled: small sweeps run
        // inline even under the parallel executor.
        assert_eq!(NetworkConfig::default().parallel_inline_threshold, 1024);
    }

    #[test]
    fn explicit_round_cap_wins() {
        let c = NetworkConfig {
            max_rounds: 77,
            ..Default::default()
        };
        assert_eq!(c.effective_max_rounds(1000), 77);
        let d = NetworkConfig::default();
        assert!(d.effective_max_rounds(10) >= 100);
    }
}
