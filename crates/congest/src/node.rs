//! Per-node local views: ports, neighbor info, node context, and the
//! tree-structure handle shared by the tree primitives.

use graphs::{EdgeId, NodeId, Weight};

/// A node's local name for one of its incident edges: the index into its
/// adjacency list (`0..degree`). Messages are addressed to ports, matching
/// the standard port-numbering formulation of message passing.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Port(pub u32);

impl Port {
    /// The port index as `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What a node knows about one incident edge: the neighbor's identifier and
/// the edge weight. (Nodes know incident edge weights per the paper's model
/// statement; neighbor identifiers are learnable in one round and assumed
/// known, as is standard.)
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NeighborInfo {
    /// The neighbor's node identifier.
    pub id: NodeId,
    /// The weight of the connecting edge.
    pub weight: Weight,
    /// The global edge identifier (used only for deterministic tie-breaking,
    /// as an `O(log n)`-bit name both endpoints agree on).
    pub edge: EdgeId,
}

/// The local context handed to node code each round.
///
/// Contains exactly what a CONGEST node may know a priori: its own id, `n`,
/// the bandwidth budget, the current round number (synchronous model), and
/// its incident edges.
#[derive(Clone, Debug)]
pub struct NodeCtx<'a> {
    /// This node's identifier.
    pub node: NodeId,
    /// Number of nodes in the network (globally known, standard assumption).
    pub n: usize,
    /// Per-edge, per-direction, per-round bandwidth in bits.
    pub bandwidth_bits: usize,
    /// Current round (1-based during [`crate::Algorithm::round`]; 0 in
    /// `boot`). All nodes see the same value — the model is synchronous.
    pub round: u64,
    pub(crate) neighbors: &'a [NeighborInfo],
    /// Per-port suspicion flags of the faulty executor's failure
    /// detector (empty — nobody suspected — under fault-free executors
    /// and crash-free plans). Indexed like the adjacency list.
    pub(crate) suspected: &'a [bool],
}

impl NodeCtx<'_> {
    /// Number of incident edges.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The neighbor reachable through `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    pub fn neighbor(&self, port: Port) -> &NeighborInfo {
        &self.neighbors[port.index()]
    }

    /// All ports in increasing order.
    pub fn ports(&self) -> impl Iterator<Item = Port> + '_ {
        (0..self.neighbors.len() as u32).map(Port)
    }

    /// All `(port, neighbor)` pairs.
    pub fn neighbors(&self) -> impl Iterator<Item = (Port, &NeighborInfo)> + '_ {
        self.neighbors
            .iter()
            .enumerate()
            .map(|(i, ni)| (Port(i as u32), ni))
    }

    /// Looks up the port leading to the neighbor with identifier `id`.
    pub fn port_of(&self, id: NodeId) -> Option<Port> {
        self.neighbors
            .iter()
            .position(|ni| ni.id == id)
            .map(|i| Port(i as u32))
    }

    /// The node's weighted degree `δ(v)`.
    pub fn weighted_degree(&self) -> Weight {
        self.neighbors.iter().map(|ni| ni.weight).sum()
    }

    /// Does this node currently suspect the peer behind `port` of
    /// having crashed? Driven by the faulty executor's timeout-based
    /// failure detector (`docs/sim.md`); always `false` under the
    /// fault-free executors and under crash-free plans. Suspicion is
    /// *eventually accurate*, not instant: a crashed peer is suspected
    /// only after [`crate::sim::FaultPlan::suspect_after`] silent ticks,
    /// and a live peer wrongly suspected is rehabilitated by its next
    /// arriving frame.
    pub fn suspects(&self, port: Port) -> bool {
        self.suspected.get(port.index()).copied().unwrap_or(false)
    }

    /// All currently suspected ports, in increasing order.
    pub fn suspected_ports(&self) -> impl Iterator<Item = Port> + '_ {
        self.suspected
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| Port(i as u32))
    }

    /// The node identifiers of all currently suspected neighbors.
    pub fn suspected_ids(&self) -> Vec<NodeId> {
        self.suspected_ports()
            .map(|p| self.neighbor(p).id)
            .collect()
    }
}

/// A node's local handle on a rooted tree (or forest): which port leads to
/// the parent and which ports lead to children. This is the lingua franca of
/// the tree primitives — [`crate::primitives::leader_bfs::LeaderBfs`]
/// produces one for the global BFS tree, the MST orientation phase produces
/// one per fragment.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TreeInfo {
    /// Port to the parent; `None` at a root.
    pub parent: Option<Port>,
    /// Ports to the children, sorted.
    pub children: Vec<Port>,
    /// Depth of this node (roots have depth 0).
    pub depth: u32,
}

impl TreeInfo {
    /// Returns `true` if this node is a root (no parent).
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// Returns `true` if this node is a leaf (no children).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_info_flags() {
        let root = TreeInfo {
            parent: None,
            children: vec![Port(0)],
            depth: 0,
        };
        assert!(root.is_root());
        assert!(!root.is_leaf());
        let leaf = TreeInfo {
            parent: Some(Port(1)),
            children: vec![],
            depth: 3,
        };
        assert!(!leaf.is_root());
        assert!(leaf.is_leaf());
        let default = TreeInfo::default();
        assert!(default.is_root() && default.is_leaf());
    }

    #[test]
    fn port_display() {
        assert_eq!(Port(3).to_string(), "p3");
        assert_eq!(Port(3).index(), 3);
    }
}
