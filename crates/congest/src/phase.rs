//! The central phase-name registry and grammar.
//!
//! Every phase executed by [`crate::Network::run`] is identified by a
//! name recorded in the [`crate::MetricsLedger`], and the whole
//! accounting layer — `grouped_by_stem`, the `messages_matching` budget
//! gates, the bench rows — keys on the **stem**: the name up to the
//! first `'.'`. Two conventions therefore carry real weight:
//!
//! 1. **Grammar** — a phase name is `stem(.sub)*`, each segment
//!    `[A-Za-z][A-Za-z0-9_]*` (see [`is_valid_name`]). A name outside
//!    the grammar would silently fall out of the stem aggregation.
//! 2. **Registry** — the stems the min-cut pipeline (and the CI gates
//!    built on it) may emit are enumerated in [`REGISTERED_STEMS`]. A
//!    stem that drifts (a typo in a `format!`, a renamed phase that the
//!    `message_gate`/`chaos_gate` budget literals no longer match)
//!    breaks the accounting without breaking any test — unless it is
//!    caught, which is the job of the `congest_lint` binary in
//!    `crates/analysis`: it extracts every phase string literal in the
//!    pipeline and the gates and checks it against this module.
//!
//! [`crate::Network::run`] additionally `debug_assert!`s the grammar at
//! runtime (registry membership is *not* asserted there: unit tests and
//! downstream experiments are free to invent ad-hoc phase names, as
//! long as they parse).

/// Longest accepted phase name (generous; the longest real name today
/// is `recover.e1.mstA.l12.hook`-sized).
pub const MAX_NAME_LEN: usize = 96;

/// Longest accepted segment between dots.
pub const MAX_SEGMENT_LEN: usize = 32;

/// The phase stems the min-cut pipeline emits, in pipeline order. This
/// is the single source of truth the static lint checks phase literals
/// against — adding a new pipeline phase means registering its stem
/// here (and nowhere else).
pub const REGISTERED_STEMS: &[&str] = &[
    // Election + static-memory bootstrap.
    "leader_bfs",
    "init",
    // MST phase A (capped fragment growth) and phase B (Borůvka over
    // the BFS tree), with their per-level/per-iteration sub-phases.
    // Phase A's sub-phases differ by mode: legacy emits
    // `.l{level}.{exch,cand,dec,hook}`, the optimized protocol fuses
    // cand/dec into `.l{level}.cd` (see `docs/mst.md`).
    "mstA",
    "mstB",
    // Tree orientation (reroot at the fragment leader).
    "orient",
    // The 1-respecting stage s2a–s5g and the per-edge exchange s3.
    "s2a",
    "s2b",
    "s2c",
    "s3",
    "s4a",
    "s4b",
    "s5",
    "s5b",
    "s5c",
    "s5d",
    "s5e",
    "s5f",
    "s5g",
    // Cut-side flood + broadcast.
    "side",
    // The self-healing driver's per-epoch prefix: aborted attempts are
    // re-ledgered under `recover.e{epoch}.…`, and checkpointed resumes
    // emit `recover.e{epoch}.resume.*` validation phases.
    "recover",
    // The recovery driver's census machinery: per-epoch failure-detector
    // passes (`census.e{epoch}.r{pass}`, iterated to a fixpoint when a
    // node can die mid-census) and the rejoin handshake
    // (`census.e{epoch}.join`).
    "census",
    // The observability layer's frame-lifecycle events
    // (`transport.send`, `transport.drop`, … — see
    // `congest::obs::EventKind::wire_name`). Not a pipeline phase, but
    // event names share the phase grammar and registry so the static
    // lint catches typo'd obs events exactly like typo'd phases.
    "transport",
];

/// Is `segment` one grammar segment: `[A-Za-z][A-Za-z0-9_]*`, at most
/// [`MAX_SEGMENT_LEN`] bytes?
fn is_valid_segment(segment: &str) -> bool {
    if segment.is_empty() || segment.len() > MAX_SEGMENT_LEN {
        return false;
    }
    let mut chars = segment.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic())
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Does `name` parse under the phase-name grammar `stem(.sub)*`?
pub fn is_valid_name(name: &str) -> bool {
    !name.is_empty() && name.len() <= MAX_NAME_LEN && name.split('.').all(is_valid_segment)
}

/// The stem of `name`: everything before the first `'.'` (the whole
/// name when there is no dot). This is the exact aggregation key of
/// [`crate::MetricsLedger::grouped_by_stem`].
pub fn stem_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Does `name` parse under the grammar *and* carry a stem registered in
/// [`REGISTERED_STEMS`]? This is the property the static lint enforces
/// for every phase literal in the pipeline and the CI gates.
pub fn is_registered(name: &str) -> bool {
    is_valid_name(name) && REGISTERED_STEMS.contains(&stem_of(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_accepts_the_pipeline_shapes() {
        for name in [
            "leader_bfs",
            "init.deg",
            "mstA.l12.exch",
            "mstA.l4.cd",
            "mstB.i3.merge",
            "s2c.up",
            "s5e.delta",
            "side.flood",
            "recover.e2.mstA.l0.hook",
            "recover.e1.resume.bfs",
            "census.e1.r1",
            "census.e2.join",
            "transport.retransmit",
        ] {
            assert!(is_valid_name(name), "{name} must parse");
            assert!(is_registered(name), "{name} must be registered");
        }
    }

    #[test]
    fn grammar_rejects_malformed_names() {
        for name in [
            "",
            ".",
            "a.",
            ".a",
            "a..b",
            "1abc",
            "mstA.0cand",
            "has space",
            "has-dash",
            "ünïcode",
        ] {
            assert!(!is_valid_name(name), "{name:?} must be rejected");
        }
        let long_segment = "x".repeat(MAX_SEGMENT_LEN + 1);
        assert!(!is_valid_name(&long_segment));
        let long_name = ["seg"; 40].join(".");
        assert!(long_name.len() > MAX_NAME_LEN && !is_valid_name(&long_name));
    }

    #[test]
    fn registry_gates_the_stem_not_the_subs() {
        assert!(is_registered("mstA"));
        assert!(is_registered("mstA.anything.goes_here"));
        assert!(!is_registered("mst_a"), "typo'd stem must not register");
        assert!(!is_registered("mstAx.l0"), "stem match is exact");
        assert!(!is_registered("drum"), "ad-hoc test names are unregistered");
        assert!(
            !is_registered("recover .e1"),
            "registry implies grammar too"
        );
    }

    #[test]
    fn stems_are_themselves_grammar_valid_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for stem in REGISTERED_STEMS {
            assert!(is_valid_name(stem), "registered stem {stem} must parse");
            assert!(!stem.contains('.'), "stems are single segments");
            assert!(seen.insert(*stem), "duplicate registered stem {stem}");
        }
    }

    #[test]
    fn stem_of_matches_the_ledger_aggregation_key() {
        assert_eq!(stem_of("mstA.l3.cand"), "mstA");
        assert_eq!(stem_of("leader_bfs"), "leader_bfs");
        assert_eq!(stem_of(""), "");
    }
}
