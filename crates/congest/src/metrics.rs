//! Round/message/bit metering, per phase and per session.

/// Metrics of one phase (one [`crate::Network::run`] call).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PhaseMetrics {
    /// Phase name (as passed to `run`).
    pub name: String,
    /// Rounds consumed.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered.
    pub bits: u64,
    /// The largest single-message size observed (bits).
    pub max_message_bits: usize,
    /// The largest **cumulative** load placed on a single (edge,
    /// direction) across the whole phase (bits): the congestion measure.
    /// Per round the two coincide with `max_message_bits` (one message
    /// per directed edge per round), but a phase that keeps streaming
    /// over one edge accumulates load here that no single message shows.
    pub max_edge_load_bits: usize,
    /// Bandwidth violations observed (always 0 in strict mode — strict runs
    /// fail fast instead).
    pub violations: u64,
}

/// Accumulated metrics of a session: one entry per executed phase.
#[derive(Clone, Debug, Default)]
pub struct MetricsLedger {
    phases: Vec<PhaseMetrics>,
}

impl MetricsLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finished phase.
    pub fn push(&mut self, m: PhaseMetrics) {
        self.phases.push(m);
    }

    /// All recorded phases in execution order.
    pub fn phases(&self) -> &[PhaseMetrics] {
        &self.phases
    }

    /// Total rounds across phases — the headline complexity measure.
    pub fn total_rounds(&self) -> u64 {
        self.phases.iter().map(|p| p.rounds).sum()
    }

    /// Total messages across phases.
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|p| p.messages).sum()
    }

    /// Total bits across phases.
    pub fn total_bits(&self) -> u64 {
        self.phases.iter().map(|p| p.bits).sum()
    }

    /// The largest message observed in any phase.
    pub fn max_message_bits(&self) -> usize {
        self.phases
            .iter()
            .map(|p| p.max_message_bits)
            .max()
            .unwrap_or(0)
    }

    /// The heaviest cumulative (edge, direction) load in any phase.
    pub fn max_edge_load_bits(&self) -> usize {
        self.phases
            .iter()
            .map(|p| p.max_edge_load_bits)
            .max()
            .unwrap_or(0)
    }

    /// Total violations (lax mode only).
    pub fn total_violations(&self) -> u64 {
        self.phases.iter().map(|p| p.violations).sum()
    }

    /// Sums the rounds of phases whose name contains `needle` — used by the
    /// experiment harness to group repeated phases (e.g. every packing
    /// iteration's MST).
    pub fn rounds_matching(&self, needle: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.rounds)
            .sum()
    }

    /// Sums the messages of phases whose name contains `needle` — the
    /// per-phase traffic accessor the message-volume accounting (bench
    /// rows, CI budget gate) is built on.
    pub fn messages_matching(&self, needle: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.messages)
            .sum()
    }

    /// Sums the delivered bits of phases whose name contains `needle`.
    pub fn bits_matching(&self, needle: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.bits)
            .sum()
    }

    /// Aggregates the recorded phases by label *stem* — the phase name up
    /// to the first `'.'` (`"mstA.l3.cand"` → `"mstA"`, `"leader_bfs"` →
    /// `"leader_bfs"`) — in order of first appearance. This is the
    /// breakdown `bench_smoke` emits per instance and the quickest answer
    /// to "where does the traffic go".
    pub fn grouped_by_stem(&self) -> Vec<(String, PhaseGroup)> {
        let mut order: Vec<String> = Vec::new();
        let mut groups: std::collections::BTreeMap<&str, PhaseGroup> =
            std::collections::BTreeMap::new();
        for p in &self.phases {
            let stem = p.name.split('.').next().unwrap_or(&p.name);
            let g = groups.entry(stem).or_insert_with(|| {
                order.push(stem.to_string());
                PhaseGroup::default()
            });
            g.phases += 1;
            g.rounds += p.rounds;
            g.messages += p.messages;
            g.bits += p.bits;
        }
        order
            .into_iter()
            .map(|stem| {
                let g = groups[stem.as_str()].clone();
                (stem, g)
            })
            .collect()
    }

    /// Clears all recorded phases.
    pub fn reset(&mut self) {
        self.phases.clear();
    }
}

/// Totals of one phase-label stem (see [`MetricsLedger::grouped_by_stem`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseGroup {
    /// Phases aggregated under this stem.
    pub phases: usize,
    /// Rounds consumed by the stem.
    pub rounds: u64,
    /// Messages delivered by the stem.
    pub messages: u64,
    /// Bits delivered by the stem.
    pub bits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str, rounds: u64, messages: u64, bits: u64) -> PhaseMetrics {
        PhaseMetrics {
            name: name.to_string(),
            rounds,
            messages,
            bits,
            max_message_bits: bits as usize,
            max_edge_load_bits: bits as usize,
            violations: 0,
        }
    }

    #[test]
    fn ledger_totals() {
        let mut l = MetricsLedger::new();
        l.push(phase("a", 10, 100, 1000));
        l.push(phase("b", 5, 50, 500));
        l.push(phase("a2", 1, 2, 3));
        assert_eq!(l.total_rounds(), 16);
        assert_eq!(l.total_messages(), 152);
        assert_eq!(l.total_bits(), 1503);
        assert_eq!(l.max_message_bits(), 1000);
        assert_eq!(l.rounds_matching("a"), 11);
        assert_eq!(l.messages_matching("a"), 102);
        assert_eq!(l.bits_matching("b"), 500);
        assert_eq!(l.phases().len(), 3);
        l.reset();
        assert_eq!(l.total_rounds(), 0);
    }

    #[test]
    fn grouping_by_stem_preserves_first_appearance_order() {
        let mut l = MetricsLedger::new();
        l.push(phase("leader_bfs", 10, 100, 1000));
        l.push(phase("mstA.l0.exch", 1, 20, 200));
        l.push(phase("mstA.l0.cand", 2, 30, 300));
        l.push(phase("s4a", 4, 5, 50));
        l.push(phase("mstA.l1.exch", 1, 10, 100));
        let groups = l.grouped_by_stem();
        assert_eq!(
            groups.iter().map(|(s, _)| s.as_str()).collect::<Vec<_>>(),
            ["leader_bfs", "mstA", "s4a"]
        );
        let msta = &groups[1].1;
        assert_eq!(
            msta,
            &PhaseGroup {
                phases: 3,
                rounds: 4,
                messages: 60,
                bits: 600,
            }
        );
    }
}
