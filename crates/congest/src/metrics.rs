//! Round/message/bit metering, per phase and per session.

/// Metrics of one phase (one [`crate::Network::run`] call).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PhaseMetrics {
    /// Phase name (as passed to `run`).
    pub name: String,
    /// Rounds consumed.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered.
    pub bits: u64,
    /// The largest single-message size observed (bits).
    pub max_message_bits: usize,
    /// The largest **cumulative** load placed on a single (edge,
    /// direction) across the whole phase (bits): the congestion measure.
    /// Per round the two coincide with `max_message_bits` (one message
    /// per directed edge per round), but a phase that keeps streaming
    /// over one edge accumulates load here that no single message shows.
    pub max_edge_load_bits: usize,
    /// Bandwidth violations observed (always 0 in strict mode — strict runs
    /// fail fast instead).
    pub violations: u64,
    /// Transport-layer counters of the faulty executor's α-synchronizer
    /// (all zero under the fault-free executors).
    pub sim: SimPhaseStats,
}

impl PhaseMetrics {
    /// The physical ticks this phase consumed: its synchronizer ticks
    /// under the faulty executor, one tick per round otherwise. This is
    /// the tick extent the obs layer stamps phase records with (and the
    /// per-phase term of [`MetricsLedger::total_phys_rounds`]).
    pub fn ticks(&self) -> u64 {
        self.sim.phys_rounds.max(self.rounds)
    }
}

/// What the α-synchronizer of [`crate::sim::FaultyExecutor`] did under
/// the hood of one phase: the physical network ticks it spent, the
/// frames it moved, and the faults the adversary injected. The
/// algorithm-level fields of [`PhaseMetrics`] (rounds, messages, bits,
/// edge loads) stay *payload-level* — identical to a fault-free run of
/// the same phase — so these counters are pure overhead accounting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct SimPhaseStats {
    /// Physical network ticks consumed (`0` under fault-free executors;
    /// always ≥ `rounds` under the faulty one — the ratio is the
    /// synchronizer's round-overhead factor).
    pub phys_rounds: u64,
    /// Payload-carrying frame transmissions, retransmissions included.
    pub data_frames: u64,
    /// Pure control frames (acks and safe-round announcements).
    pub ctrl_frames: u64,
    /// Timeout-driven payload retransmissions (transmissions beyond a
    /// payload's first that the resend timer scheduled). Opportunistic
    /// piggybacks of a pending payload on ack frames count in
    /// `data_frames` but not here — a lossless run reports zero.
    pub retransmitted: u64,
    /// Frames the adversary dropped.
    pub dropped: u64,
    /// Frames the adversary duplicated.
    pub duplicated: u64,
    /// Crash suspicions raised by the failure detector (a channel silent
    /// for the plan's full suspicion window). Always 0 under crash-free
    /// plans — the detector only arms when the plan schedules crashes.
    pub suspicions: u64,
    /// Suspicions whose target was in fact alive at the time (ground
    /// truth from the crash schedule). The detector is *eventually
    /// accurate*, not perfect: these are revoked when the suspect's next
    /// frame arrives, but they are counted here.
    pub false_suspicions: u64,
    /// Frames silenced by an active partition window (sent into a cut
    /// edge while the window was open). Always 0 under partition-free
    /// plans.
    pub partitioned: u64,
    /// Frames the receiver rejected because the per-phase transport
    /// checksum did not cover the adversary's bit-flip. Rejected frames
    /// earn no ack and no keepalive credit; retransmission repairs the
    /// loss. Always 0 under corruption-free plans.
    pub corrupted: u64,
}

impl SimPhaseStats {
    /// Folds `other` into `self` (all fields sum).
    pub(crate) fn absorb(&mut self, other: &SimPhaseStats) {
        self.phys_rounds += other.phys_rounds;
        self.data_frames += other.data_frames;
        self.ctrl_frames += other.ctrl_frames;
        self.retransmitted += other.retransmitted;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.suspicions += other.suspicions;
        self.false_suspicions += other.false_suspicions;
        self.partitioned += other.partitioned;
        self.corrupted += other.corrupted;
    }
}

/// Accumulated metrics of a session: one entry per executed phase.
///
/// Wall-clock timings ride in a *parallel* vector rather than inside
/// [`PhaseMetrics`]: phase metrics derive `Eq` and the parity suites
/// compare them byte-for-byte across executors, which host timings would
/// break. The ledger itself is deliberately not `PartialEq`.
#[derive(Clone, Debug, Default)]
pub struct MetricsLedger {
    phases: Vec<PhaseMetrics>,
    /// Host wall-clock per phase, milliseconds (`walls.len() == phases.len()`;
    /// `0.0` for phases recorded without a timing).
    walls: Vec<f64>,
}

impl MetricsLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finished phase (no wall-clock attribution).
    pub fn push(&mut self, m: PhaseMetrics) {
        self.phases.push(m);
        self.walls.push(0.0);
    }

    /// Records a finished phase together with its host wall-clock cost in
    /// milliseconds. The timing lives outside [`PhaseMetrics`] so the
    /// replay-exact payload metrics stay host-independent.
    pub fn push_timed(&mut self, m: PhaseMetrics, wall_ms: f64) {
        self.phases.push(m);
        self.walls.push(wall_ms);
    }

    /// All recorded phases in execution order.
    pub fn phases(&self) -> &[PhaseMetrics] {
        &self.phases
    }

    /// Total rounds across phases — the headline complexity measure.
    pub fn total_rounds(&self) -> u64 {
        self.phases.iter().map(|p| p.rounds).sum()
    }

    /// Total messages across phases.
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|p| p.messages).sum()
    }

    /// Total bits across phases.
    pub fn total_bits(&self) -> u64 {
        self.phases.iter().map(|p| p.bits).sum()
    }

    /// The largest message observed in any phase.
    pub fn max_message_bits(&self) -> usize {
        self.phases
            .iter()
            .map(|p| p.max_message_bits)
            .max()
            .unwrap_or(0)
    }

    /// The heaviest cumulative (edge, direction) load in any phase.
    pub fn max_edge_load_bits(&self) -> usize {
        self.phases
            .iter()
            .map(|p| p.max_edge_load_bits)
            .max()
            .unwrap_or(0)
    }

    /// Total violations (lax mode only).
    pub fn total_violations(&self) -> u64 {
        self.phases.iter().map(|p| p.violations).sum()
    }

    /// Sums the rounds of phases whose name contains `needle` — used by the
    /// experiment harness to group repeated phases (e.g. every packing
    /// iteration's MST).
    pub fn rounds_matching(&self, needle: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.rounds)
            .sum()
    }

    /// Sums the messages of phases whose name contains `needle` — the
    /// per-phase traffic accessor the message-volume accounting (bench
    /// rows, CI budget gate) is built on.
    pub fn messages_matching(&self, needle: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.messages)
            .sum()
    }

    /// Sums the delivered bits of phases whose name contains `needle`.
    pub fn bits_matching(&self, needle: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.bits)
            .sum()
    }

    /// Counts the phases whose name contains `needle` — the cardinality
    /// companion of [`MetricsLedger::messages_matching`] and
    /// [`MetricsLedger::bits_matching`] (how many `mstA.*` phases ran,
    /// not just what they cost).
    pub fn phases_matching(&self, needle: &str) -> usize {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .count()
    }

    /// Total physical network ticks across phases: a phase simulated by
    /// the faulty executor contributes its transport ticks
    /// (`sim.phys_rounds`), a fault-free phase contributes its `rounds`
    /// (one tick per round). Dividing by [`MetricsLedger::total_rounds`]
    /// yields the session's synchronizer round-overhead factor.
    pub fn total_phys_rounds(&self) -> u64 {
        self.phases.iter().map(PhaseMetrics::ticks).sum()
    }

    /// The session's synchronizer round-overhead factor:
    /// `total_phys_rounds / total_rounds` (1.0 for fault-free sessions
    /// and empty ledgers).
    pub fn sim_overhead_factor(&self) -> f64 {
        let rounds = self.total_rounds();
        if rounds == 0 {
            return 1.0;
        }
        self.total_phys_rounds() as f64 / rounds as f64
    }

    /// Total frames the adversary dropped across phases.
    pub fn total_dropped(&self) -> u64 {
        self.phases.iter().map(|p| p.sim.dropped).sum()
    }

    /// Total payload retransmissions across phases.
    pub fn total_retransmitted(&self) -> u64 {
        self.phases.iter().map(|p| p.sim.retransmitted).sum()
    }

    /// Total frames the adversary duplicated across phases.
    pub fn total_duplicated(&self) -> u64 {
        self.phases.iter().map(|p| p.sim.duplicated).sum()
    }

    /// Total crash suspicions the failure detector raised across phases.
    pub fn total_suspicions(&self) -> u64 {
        self.phases.iter().map(|p| p.sim.suspicions).sum()
    }

    /// Total *false* suspicions (live nodes wrongly suspected, later
    /// rehabilitated) across phases.
    pub fn total_false_suspicions(&self) -> u64 {
        self.phases.iter().map(|p| p.sim.false_suspicions).sum()
    }

    /// Total frames silenced by partition windows across phases.
    pub fn total_partitioned(&self) -> u64 {
        self.phases.iter().map(|p| p.sim.partitioned).sum()
    }

    /// Total frames rejected by the transport checksum across phases.
    pub fn total_corrupted(&self) -> u64 {
        self.phases.iter().map(|p| p.sim.corrupted).sum()
    }

    /// Aggregates the recorded phases by label *stem* — the phase name up
    /// to the first `'.'` (`"mstA.l3.cand"` → `"mstA"`, `"leader_bfs"` →
    /// `"leader_bfs"`) — in order of first appearance. This is the
    /// breakdown `bench_smoke` emits per instance and the quickest answer
    /// to "where does the traffic go".
    pub fn grouped_by_stem(&self) -> Vec<(String, PhaseGroup)> {
        let mut order: Vec<String> = Vec::new();
        let mut groups: std::collections::BTreeMap<&str, PhaseGroup> =
            std::collections::BTreeMap::new();
        for p in &self.phases {
            let stem = p.name.split('.').next().unwrap_or(&p.name);
            let g = groups.entry(stem).or_insert_with(|| {
                order.push(stem.to_string());
                PhaseGroup::default()
            });
            g.phases += 1;
            g.rounds += p.rounds;
            g.messages += p.messages;
            g.bits += p.bits;
            g.sim.absorb(&p.sim);
        }
        order
            .into_iter()
            .map(|stem| {
                let g = groups[stem.as_str()].clone();
                (stem, g)
            })
            .collect()
    }

    /// Total host wall-clock across phases, milliseconds.
    pub fn total_wall_ms(&self) -> f64 {
        self.walls.iter().sum()
    }

    /// Sums the wall-clock milliseconds of the phases whose name *stem*
    /// (up to the first `'.'`) equals `stem` — aligned with the groups of
    /// [`MetricsLedger::grouped_by_stem`], which carry no timings of
    /// their own because [`PhaseGroup`] derives `Eq`.
    pub fn wall_ms_of_stem(&self, stem: &str) -> f64 {
        self.phases
            .iter()
            .zip(&self.walls)
            .filter(|(p, _)| p.name.split('.').next().unwrap_or(&p.name) == stem)
            .map(|(_, w)| *w)
            .sum()
    }

    /// Clears all recorded phases.
    pub fn reset(&mut self) {
        self.phases.clear();
        self.walls.clear();
    }
}

/// Totals of one phase-label stem (see [`MetricsLedger::grouped_by_stem`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseGroup {
    /// Phases aggregated under this stem.
    pub phases: usize,
    /// Rounds consumed by the stem.
    pub rounds: u64,
    /// Messages delivered by the stem.
    pub messages: u64,
    /// Bits delivered by the stem.
    pub bits: u64,
    /// Summed transport-layer (faulty-executor) counters of the stem —
    /// all zero when the stem ran under a fault-free executor.
    pub sim: SimPhaseStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str, rounds: u64, messages: u64, bits: u64) -> PhaseMetrics {
        PhaseMetrics {
            name: name.to_string(),
            rounds,
            messages,
            bits,
            max_message_bits: bits as usize,
            max_edge_load_bits: bits as usize,
            violations: 0,
            sim: SimPhaseStats::default(),
        }
    }

    #[test]
    fn ledger_totals() {
        let mut l = MetricsLedger::new();
        l.push(phase("a", 10, 100, 1000));
        l.push(phase("b", 5, 50, 500));
        l.push(phase("a2", 1, 2, 3));
        assert_eq!(l.total_rounds(), 16);
        assert_eq!(l.total_messages(), 152);
        assert_eq!(l.total_bits(), 1503);
        assert_eq!(l.max_message_bits(), 1000);
        assert_eq!(l.rounds_matching("a"), 11);
        assert_eq!(l.messages_matching("a"), 102);
        assert_eq!(l.bits_matching("b"), 500);
        assert_eq!(l.phases().len(), 3);
        l.reset();
        assert_eq!(l.total_rounds(), 0);
    }

    #[test]
    fn grouping_by_stem_preserves_first_appearance_order() {
        let mut l = MetricsLedger::new();
        l.push(phase("leader_bfs", 10, 100, 1000));
        l.push(phase("mstA.l0.exch", 1, 20, 200));
        l.push(phase("mstA.l0.cand", 2, 30, 300));
        l.push(phase("s4a", 4, 5, 50));
        l.push(phase("mstA.l1.exch", 1, 10, 100));
        let groups = l.grouped_by_stem();
        assert_eq!(
            groups.iter().map(|(s, _)| s.as_str()).collect::<Vec<_>>(),
            ["leader_bfs", "mstA", "s4a"]
        );
        let msta = &groups[1].1;
        assert_eq!(
            msta,
            &PhaseGroup {
                phases: 3,
                rounds: 4,
                messages: 60,
                bits: 600,
                sim: SimPhaseStats::default(),
            }
        );
    }

    #[test]
    fn phases_matching_counts_names() {
        let mut l = MetricsLedger::new();
        l.push(phase("mstA.l0.cand", 1, 1, 1));
        l.push(phase("mstA.l1.cand", 1, 1, 1));
        l.push(phase("s4a", 1, 1, 1));
        assert_eq!(l.phases_matching("mstA"), 2);
        assert_eq!(l.phases_matching("cand"), 2);
        assert_eq!(l.phases_matching("s4a"), 1);
        assert_eq!(l.phases_matching("nope"), 0);
    }

    #[test]
    fn sim_counters_aggregate_in_stems_and_totals() {
        let mut faulty = phase("mstA.l0.exch", 10, 5, 50);
        faulty.sim = SimPhaseStats {
            phys_rounds: 40,
            data_frames: 9,
            ctrl_frames: 20,
            retransmitted: 4,
            dropped: 3,
            duplicated: 1,
            suspicions: 2,
            false_suspicions: 1,
            partitioned: 6,
            corrupted: 2,
        };
        let mut l = MetricsLedger::new();
        l.push(faulty);
        l.push(phase("mstA.l1.exch", 10, 5, 50)); // fault-free: sim zeros
        l.push(phase("s4a", 6, 2, 20));
        let groups = l.grouped_by_stem();
        let msta = &groups[0].1;
        assert_eq!(msta.sim.phys_rounds, 40);
        assert_eq!(msta.sim.dropped, 3);
        assert_eq!(msta.sim.retransmitted, 4);
        assert_eq!(groups[1].1.sim, SimPhaseStats::default());
        // Fault-free phases contribute one tick per round to the
        // physical total; the simulated one its measured ticks.
        assert_eq!(l.total_phys_rounds(), 40 + 10 + 6);
        assert_eq!(l.total_dropped(), 3);
        assert_eq!(l.total_duplicated(), 1);
        assert_eq!(l.total_retransmitted(), 4);
        assert_eq!(l.total_suspicions(), 2);
        assert_eq!(l.total_false_suspicions(), 1);
        assert_eq!(l.total_partitioned(), 6);
        assert_eq!(l.total_corrupted(), 2);
        let f = l.sim_overhead_factor();
        assert!((f - 56.0 / 26.0).abs() < 1e-9, "factor = {f}");
        assert_eq!(MetricsLedger::new().sim_overhead_factor(), 1.0);
    }
}
