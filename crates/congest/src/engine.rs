//! The synchronous round engine.

use crate::algorithm::{Algorithm, Step};
use crate::config::NetworkConfig;
use crate::error::CongestError;
use crate::message::Message;
use crate::metrics::{MetricsLedger, PhaseMetrics};
use crate::node::{NeighborInfo, NodeCtx, Port};
use graphs::{NodeId, WeightedGraph};

/// The result of running one phase.
#[derive(Clone, Debug)]
pub struct RunOutcome<O> {
    /// Per-node outputs, indexed by node.
    pub outputs: Vec<O>,
    /// This phase's metrics (also appended to the session ledger).
    pub metrics: PhaseMetrics,
}

/// A simulated CONGEST network over a fixed graph.
///
/// Holds the topology, the configuration, and the session metrics ledger.
/// Phases are executed with [`Network::run`]; per-node outputs of one phase
/// become per-node inputs of the next.
pub struct Network<'g> {
    graph: &'g WeightedGraph,
    config: NetworkConfig,
    ledger: MetricsLedger,
    /// `neighbors[v]` — the local view of node `v` (adjacency order).
    neighbors: Vec<Vec<NeighborInfo>>,
    /// `routing[v][p]` = (destination node, destination port) of `v`'s port `p`.
    routing: Vec<Vec<(u32, u32)>>,
    bandwidth_bits: usize,
}

impl<'g> Network<'g> {
    /// Builds a network over `graph` with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::AsymmetricAdjacency`] when the graph's
    /// adjacency is not symmetric (a malformed topology — ports could not
    /// be routed back).
    pub fn new(graph: &'g WeightedGraph, config: NetworkConfig) -> Result<Self, CongestError> {
        let n = graph.node_count();
        let mut neighbors: Vec<Vec<NeighborInfo>> = Vec::with_capacity(n);
        for v in graph.nodes() {
            neighbors.push(
                graph
                    .neighbors(v)
                    .iter()
                    .map(|a| NeighborInfo {
                        id: a.neighbor,
                        weight: a.weight,
                        edge: a.edge,
                    })
                    .collect(),
            );
        }
        // Port-level routing: v's port p leads to u; find u's port back to v.
        let mut routing: Vec<Vec<(u32, u32)>> = Vec::with_capacity(n);
        for v in graph.nodes() {
            let mut row = Vec::with_capacity(neighbors[v.index()].len());
            for ni in &neighbors[v.index()] {
                let u = ni.id;
                let back = neighbors[u.index()].iter().position(|b| b.id == v).ok_or(
                    CongestError::AsymmetricAdjacency {
                        node: v,
                        neighbor: u,
                    },
                )?;
                row.push((u.raw(), back as u32));
            }
            routing.push(row);
        }
        let bandwidth_bits = config.bandwidth_bits(n);
        Ok(Network {
            graph,
            config,
            ledger: MetricsLedger::new(),
            neighbors,
            routing,
            bandwidth_bits,
        })
    }

    /// The underlying graph. The returned reference carries the graph's own
    /// lifetime, so holding it does not borrow the network.
    pub fn graph(&self) -> &'g WeightedGraph {
        self.graph
    }

    /// The configuration in force.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The session metrics ledger.
    pub fn ledger(&self) -> &MetricsLedger {
        &self.ledger
    }

    /// Clears the session metrics ledger.
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
    }

    /// The per-edge, per-direction, per-round budget in bits.
    pub fn bandwidth_bits(&self) -> usize {
        self.bandwidth_bits
    }

    fn ctx(&self, v: usize, round: u64) -> NodeCtx<'_> {
        NodeCtx {
            node: NodeId::from_index(v),
            n: self.graph.node_count(),
            bandwidth_bits: self.bandwidth_bits,
            round,
            neighbors: &self.neighbors[v],
        }
    }

    /// Runs one phase to completion: boots every node with its input,
    /// executes synchronous rounds until every node has halted, and returns
    /// per-node outputs plus metrics.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError`] on wrong input count, invalid or double
    /// sends, bandwidth violations (strict mode), messages to halted nodes
    /// (strict mode), or when the round cap is exceeded.
    pub fn run<A: Algorithm>(
        &mut self,
        name: &str,
        algo: &A,
        inputs: Vec<A::Input>,
    ) -> Result<RunOutcome<A::Output>, CongestError> {
        let n = self.graph.node_count();
        if inputs.len() != n {
            return Err(CongestError::WrongInputCount {
                phase: name.to_string(),
                got: inputs.len(),
                want: n,
            });
        }
        let cap = self.config.effective_max_rounds(n);
        let mut metrics = PhaseMetrics {
            name: name.to_string(),
            ..Default::default()
        };

        let mut states: Vec<Option<A::State>> = Vec::with_capacity(n);
        let mut halted = vec![false; n];
        // Messages in flight, grouped by destination: (dest_port, msg),
        // collected per destination node and sorted by port before delivery.
        let mut inflight: Vec<Vec<(Port, A::Msg)>> = vec![Vec::new(); n];
        let mut live = n;

        // Boot: round 0.
        for (v, input) in inputs.into_iter().enumerate() {
            let ctx = self.ctx(v, 0);
            let (state, outbox) = algo.boot(&ctx, input);
            states.push(Some(state));
            self.route(name, v, outbox.msgs, 0, &mut inflight, &mut metrics)?;
        }

        let mut round: u64 = 0;
        loop {
            let in_flight_count: usize = inflight.iter().map(|q| q.len()).sum();
            if live == 0 {
                if in_flight_count > 0 {
                    // Someone sent to a halted node (everyone is halted).
                    let dest = inflight
                        .iter()
                        .position(|q| !q.is_empty())
                        .expect("non-empty queue exists");
                    if self.config.strict {
                        return Err(CongestError::MessageToHalted {
                            phase: name.to_string(),
                            node: NodeId::from_index(dest),
                            round,
                        });
                    }
                }
                break;
            }
            if in_flight_count == 0 && round > 0 {
                // No messages and nobody halted this instant: nodes may still
                // be counting rounds internally, so keep stepping — but only
                // live nodes exist, so fall through to stepping.
            }
            round += 1;
            if round > cap {
                return Err(CongestError::MaxRoundsExceeded {
                    phase: name.to_string(),
                    cap,
                });
            }

            // Deliver: move inflight into per-node inboxes.
            let mut next_inflight: Vec<Vec<(Port, A::Msg)>> = vec![Vec::new(); n];
            for v in 0..n {
                let mut inbox = std::mem::take(&mut inflight[v]);
                if !inbox.is_empty() && halted[v] {
                    if self.config.strict {
                        return Err(CongestError::MessageToHalted {
                            phase: name.to_string(),
                            node: NodeId::from_index(v),
                            round,
                        });
                    }
                    inbox.clear();
                }
                if halted[v] {
                    continue;
                }
                inbox.sort_by_key(|(p, _)| *p);
                let ctx = self.ctx(v, round);
                let state = states[v].as_mut().expect("live node has state");
                let step = algo.round(state, &ctx, &inbox);
                let outbox = match step {
                    Step::Continue(o) => o,
                    Step::Halt(o) => {
                        halted[v] = true;
                        live -= 1;
                        o
                    }
                };
                self.route(
                    name,
                    v,
                    outbox.msgs,
                    round,
                    &mut next_inflight,
                    &mut metrics,
                )?;
            }
            inflight = next_inflight;
        }
        metrics.rounds = round;
        metrics.max_edge_load_bits = metrics.max_message_bits;

        let outputs: Vec<A::Output> = states
            .into_iter()
            .enumerate()
            .map(|(v, s)| {
                let ctx = self.ctx(v, round);
                algo.finish(s.expect("state present"), &ctx)
                    .map_err(|violation| CongestError::Protocol {
                        phase: name.to_string(),
                        node: NodeId::from_index(v),
                        reason: violation.reason,
                    })
            })
            .collect::<Result<_, _>>()?;
        self.ledger.push(metrics.clone());
        Ok(RunOutcome { outputs, metrics })
    }

    /// Validates and routes one node's outbox into the in-flight queues.
    fn route<M: Message>(
        &self,
        phase: &str,
        v: usize,
        msgs: Vec<(Port, M)>,
        round: u64,
        inflight: &mut [Vec<(Port, M)>],
        metrics: &mut PhaseMetrics,
    ) -> Result<(), CongestError> {
        if msgs.is_empty() {
            return Ok(());
        }
        let degree = self.neighbors[v].len();
        let mut used = vec![false; degree];
        for (port, msg) in msgs {
            if port.index() >= degree {
                return Err(CongestError::InvalidPort {
                    phase: phase.to_string(),
                    node: NodeId::from_index(v),
                    port,
                    degree,
                });
            }
            if used[port.index()] {
                return Err(CongestError::DoubleSend {
                    phase: phase.to_string(),
                    node: NodeId::from_index(v),
                    port,
                    round,
                });
            }
            used[port.index()] = true;
            let bits = msg.bit_len();
            if bits > self.bandwidth_bits {
                if self.config.strict {
                    return Err(CongestError::BandwidthExceeded {
                        phase: phase.to_string(),
                        node: NodeId::from_index(v),
                        port,
                        bits,
                        budget: self.bandwidth_bits,
                        round,
                    });
                }
                metrics.violations += 1;
            }
            metrics.messages += 1;
            metrics.bits += bits as u64;
            metrics.max_message_bits = metrics.max_message_bits.max(bits);
            let (dest, dest_port) = self.routing[v][port.index()];
            inflight[dest as usize].push((Port(dest_port), msg));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{FinishResult, Outbox};

    /// Every node floods its id for `ttl` rounds and records the minimum it
    /// has seen — a toy algorithm exercising the engine paths.
    struct MinFlood {
        ttl: u64,
    }

    struct MinState {
        best: u32,
        changed: bool,
    }

    impl Algorithm for MinFlood {
        type Input = ();
        type State = MinState;
        type Msg = u32;
        type Output = u32;

        fn boot(&self, ctx: &NodeCtx<'_>, _input: ()) -> (MinState, Outbox<u32>) {
            let mut o = Outbox::new();
            o.send_all(ctx.ports(), ctx.node.raw());
            (
                MinState {
                    best: ctx.node.raw(),
                    changed: false,
                },
                o,
            )
        }

        fn round(
            &self,
            state: &mut MinState,
            ctx: &NodeCtx<'_>,
            inbox: &[(Port, u32)],
        ) -> Step<u32> {
            state.changed = false;
            for (_, m) in inbox {
                if *m < state.best {
                    state.best = *m;
                    state.changed = true;
                }
            }
            if ctx.round >= self.ttl {
                return Step::halt();
            }
            let mut o = Outbox::new();
            if state.changed {
                o.send_all(ctx.ports(), state.best);
            }
            Step::Continue(o)
        }

        fn finish(&self, state: MinState, _ctx: &NodeCtx<'_>) -> FinishResult<u32> {
            Ok(state.best)
        }
    }

    #[test]
    fn min_flood_converges_on_path() {
        let g = graphs::generators::path(10).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let out = net
            .run("min_flood", &MinFlood { ttl: 12 }, vec![(); 10])
            .unwrap();
        assert!(out.outputs.iter().all(|&b| b == 0));
        assert_eq!(out.metrics.rounds, 12);
        assert!(out.metrics.messages > 0);
        assert_eq!(net.ledger().total_rounds(), 12);
    }

    /// A message that claims to be enormous.
    #[derive(Clone, Debug)]
    struct FatMsg;
    impl Message for FatMsg {
        fn bit_len(&self) -> usize {
            10_000
        }
    }

    /// An algorithm that sends an over-budget message.
    struct FatSender;
    impl Algorithm for FatSender {
        type Input = ();
        type State = ();
        type Msg = FatMsg;
        type Output = ();

        fn boot(&self, ctx: &NodeCtx<'_>, _i: ()) -> ((), Outbox<FatMsg>) {
            let mut o = Outbox::new();
            if ctx.node.raw() == 0 {
                o.send(Port(0), FatMsg);
            }
            ((), o)
        }

        fn round(&self, _s: &mut (), _c: &NodeCtx<'_>, _i: &[(Port, FatMsg)]) -> Step<FatMsg> {
            Step::halt()
        }

        fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
            Ok(())
        }
    }

    #[test]
    fn strict_mode_rejects_fat_messages() {
        let g = graphs::generators::path(4).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let err = net.run("fat", &FatSender, vec![(); 4]).unwrap_err();
        assert!(matches!(err, CongestError::BandwidthExceeded { .. }));
    }

    #[test]
    fn lax_mode_counts_violations() {
        let g = graphs::generators::path(4).unwrap();
        let cfg = NetworkConfig {
            strict: false,
            ..Default::default()
        };
        let mut net = Network::new(&g, cfg).unwrap();
        let out = net.run("fat", &FatSender, vec![(); 4]).unwrap();
        assert_eq!(out.metrics.violations, 1);
    }

    /// Sends two messages on the same port.
    struct DoubleSender;
    impl Algorithm for DoubleSender {
        type Input = ();
        type State = ();
        type Msg = u32;
        type Output = ();

        fn boot(&self, ctx: &NodeCtx<'_>, _i: ()) -> ((), Outbox<u32>) {
            let mut o = Outbox::new();
            if ctx.node.raw() == 0 {
                o.send(Port(0), 1).send(Port(0), 2);
            }
            ((), o)
        }
        fn round(&self, _s: &mut (), _c: &NodeCtx<'_>, _i: &[(Port, u32)]) -> Step<u32> {
            Step::halt()
        }
        fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
            Ok(())
        }
    }

    #[test]
    fn double_send_is_rejected() {
        let g = graphs::generators::path(3).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let err = net.run("dbl", &DoubleSender, vec![(); 3]).unwrap_err();
        assert!(matches!(err, CongestError::DoubleSend { .. }));
    }

    /// Never halts, never sends — must hit the round cap.
    struct Livelock;
    impl Algorithm for Livelock {
        type Input = ();
        type State = ();
        type Msg = ();
        type Output = ();
        fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<()>) {
            ((), Outbox::new())
        }
        fn round(&self, _s: &mut (), _c: &NodeCtx<'_>, _i: &[(Port, ())]) -> Step<()> {
            Step::idle()
        }
        fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
            Ok(())
        }
    }

    #[test]
    fn livelock_hits_round_cap() {
        let g = graphs::generators::path(3).unwrap();
        let cfg = NetworkConfig {
            max_rounds: 50,
            ..Default::default()
        };
        let mut net = Network::new(&g, cfg).unwrap();
        let err = net.run("livelock", &Livelock, vec![(); 3]).unwrap_err();
        assert!(matches!(
            err,
            CongestError::MaxRoundsExceeded { cap: 50, .. }
        ));
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let g = graphs::generators::path(3).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let err = net.run("wrong", &Livelock, vec![(); 2]).unwrap_err();
        assert!(matches!(err, CongestError::WrongInputCount { .. }));
    }

    /// Node 0 sends to node 1 after node 1 has halted.
    struct LateSender;
    impl Algorithm for LateSender {
        type Input = ();
        type State = ();
        type Msg = u32;
        type Output = ();
        fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<u32>) {
            ((), Outbox::new())
        }
        fn round(&self, _s: &mut (), ctx: &NodeCtx<'_>, _i: &[(Port, u32)]) -> Step<u32> {
            if ctx.node.raw() == 1 {
                return Step::halt(); // halts in round 1
            }
            if ctx.round == 2 && ctx.node.raw() == 0 {
                let mut o = Outbox::new();
                o.send(Port(0), 9); // arrives in round 3, node 1 halted
                return Step::Halt(o);
            }
            if ctx.round >= 3 {
                return Step::halt();
            }
            Step::idle()
        }
        fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
            Ok(())
        }
    }

    #[test]
    fn message_to_halted_is_rejected_in_strict_mode() {
        let g = graphs::generators::path(3).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let err = net.run("late", &LateSender, vec![(); 3]).unwrap_err();
        assert!(matches!(err, CongestError::MessageToHalted { .. }));
    }

    #[test]
    fn asymmetric_adjacency_is_a_typed_error() {
        // Node 0 lists node 1 as a neighbor, but node 1's adjacency is
        // empty — a malformed topology no validated builder produces.
        use graphs::{AdjEntry, EdgeId};
        let g = graphs::WeightedGraph::from_raw_parts(
            2,
            vec![(NodeId::new(0), NodeId::new(1))],
            vec![1],
            vec![0, 1, 1],
            vec![AdjEntry {
                neighbor: NodeId::new(1),
                edge: EdgeId::new(0),
                weight: 1,
            }],
        );
        let err = match Network::new(&g, NetworkConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("asymmetric adjacency must be rejected"),
        };
        assert_eq!(
            err,
            CongestError::AsymmetricAdjacency {
                node: NodeId::new(0),
                neighbor: NodeId::new(1),
            }
        );
        assert!(err.to_string().contains("not vice versa"));
    }

    /// An algorithm whose `finish` reports a protocol violation at node 1.
    struct BadFinisher;
    impl Algorithm for BadFinisher {
        type Input = ();
        type State = ();
        type Msg = ();
        type Output = ();
        fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<()>) {
            ((), Outbox::new())
        }
        fn round(&self, _s: &mut (), _c: &NodeCtx<'_>, _i: &[(Port, ())]) -> Step<()> {
            Step::halt()
        }
        fn finish(&self, _s: (), ctx: &NodeCtx<'_>) -> FinishResult<()> {
            if ctx.node.raw() == 1 {
                Err(crate::algorithm::ProtocolViolation::new("contract broken"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn finish_violations_become_protocol_errors() {
        let g = graphs::generators::path(3).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let err = net.run("bad", &BadFinisher, vec![(); 3]).unwrap_err();
        match err {
            CongestError::Protocol {
                phase,
                node,
                reason,
            } => {
                assert_eq!(phase, "bad");
                assert_eq!(node, NodeId::new(1));
                assert_eq!(reason, "contract broken");
            }
            other => panic!("expected Protocol, got {other:?}"),
        }
    }

    #[test]
    fn routing_is_symmetric() {
        let g = graphs::generators::grid2d(3, 3).unwrap();
        let net = Network::new(&g, NetworkConfig::default()).unwrap();
        for v in 0..9 {
            for (p, (dest, dest_port)) in net.routing[v].iter().enumerate() {
                // Following the reverse port comes back.
                assert_eq!(
                    net.routing[*dest as usize][*dest_port as usize],
                    (v as u32, p as u32)
                );
            }
        }
    }
}
