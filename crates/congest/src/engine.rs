//! The synchronous round engine.
//!
//! [`Network`] owns the topology (adjacency views, port routing, and the
//! CSR slot-arena geometry shared by every phase) and the session metrics
//! ledger; the actual round loop lives behind the
//! [`RoundExecutor`](crate::executor::RoundExecutor) seam and is selected
//! per network by [`NetworkConfig::executor`].

use crate::algorithm::Algorithm;
use crate::config::NetworkConfig;
use crate::error::CongestError;
use crate::executor::{ExecutorKind, ParallelExecutor, PhaseSpec, RoundExecutor, SerialExecutor};
use crate::metrics::{MetricsLedger, PhaseMetrics};
use crate::node::NeighborInfo;
use graphs::WeightedGraph;

/// The result of running one phase.
#[derive(Clone, Debug)]
pub struct RunOutcome<O> {
    /// Per-node outputs, indexed by node.
    pub outputs: Vec<O>,
    /// This phase's metrics (also appended to the session ledger).
    pub metrics: PhaseMetrics,
}

/// A simulated CONGEST network over a fixed graph.
///
/// Holds the topology, the configuration, and the session metrics ledger.
/// Phases are executed with [`Network::run`]; per-node outputs of one phase
/// become per-node inputs of the next.
pub struct Network<'g> {
    graph: &'g WeightedGraph,
    config: NetworkConfig,
    ledger: MetricsLedger,
    /// `neighbors[v]` — the local view of node `v` (adjacency order).
    neighbors: Vec<Vec<NeighborInfo>>,
    /// `routing[v][p]` = (destination node, destination port) of `v`'s port `p`.
    routing: Vec<Vec<(u32, u32)>>,
    /// CSR offsets of the slot arena: node `v`'s inbox slots (one per
    /// port) are `slot_base[v]..slot_base[v + 1]`; the total slot count
    /// (`slot_base[n]`) is the number of directed edges.
    slot_base: Vec<usize>,
    /// `write_slot[slot_base[v] + p]` = the destination slot of the
    /// directed edge leaving `v` through port `p` — precomputed so
    /// routing a message is one indexed store.
    write_slot: Vec<usize>,
    max_degree: usize,
    bandwidth_bits: usize,
}

impl<'g> Network<'g> {
    /// Builds a network over `graph` with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::AsymmetricAdjacency`] when the graph's
    /// adjacency is not symmetric (a malformed topology — ports could not
    /// be routed back).
    pub fn new(graph: &'g WeightedGraph, config: NetworkConfig) -> Result<Self, CongestError> {
        let n = graph.node_count();
        let mut neighbors: Vec<Vec<NeighborInfo>> = Vec::with_capacity(n);
        for v in graph.nodes() {
            neighbors.push(
                graph
                    .neighbors(v)
                    .iter()
                    .map(|a| NeighborInfo {
                        id: a.neighbor,
                        weight: a.weight,
                        edge: a.edge,
                    })
                    .collect(),
            );
        }
        // Port-level routing: v's port p leads to u; find u's port back to v.
        let mut routing: Vec<Vec<(u32, u32)>> = Vec::with_capacity(n);
        for v in graph.nodes() {
            let mut row = Vec::with_capacity(neighbors[v.index()].len());
            for ni in &neighbors[v.index()] {
                let u = ni.id;
                let back = neighbors[u.index()].iter().position(|b| b.id == v).ok_or(
                    CongestError::AsymmetricAdjacency {
                        node: v,
                        neighbor: u,
                    },
                )?;
                row.push((u.raw(), back as u32));
            }
            routing.push(row);
        }
        // Slot-arena geometry: one slot per directed edge, grouped by
        // destination, so a phase preallocates its whole delivery
        // structure once and rounds allocate nothing.
        let mut slot_base = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        slot_base.push(0);
        for row in &neighbors {
            acc += row.len();
            slot_base.push(acc);
        }
        let mut write_slot = vec![0usize; acc];
        for v in 0..n {
            for (p, &(dest, dest_port)) in routing[v].iter().enumerate() {
                write_slot[slot_base[v] + p] = slot_base[dest as usize] + dest_port as usize;
            }
        }
        let max_degree = neighbors.iter().map(Vec::len).max().unwrap_or(0);
        let bandwidth_bits = config.bandwidth_bits(n);
        Ok(Network {
            graph,
            config,
            ledger: MetricsLedger::new(),
            neighbors,
            routing,
            slot_base,
            write_slot,
            max_degree,
            bandwidth_bits,
        })
    }

    /// The underlying graph. The returned reference carries the graph's own
    /// lifetime, so holding it does not borrow the network.
    pub fn graph(&self) -> &'g WeightedGraph {
        self.graph
    }

    /// The configuration in force.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The session metrics ledger.
    pub fn ledger(&self) -> &MetricsLedger {
        &self.ledger
    }

    /// Clears the session metrics ledger.
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
    }

    /// The per-edge, per-direction, per-round budget in bits.
    pub fn bandwidth_bits(&self) -> usize {
        self.bandwidth_bits
    }

    /// The observability sink this network records into, if any.
    pub fn obs(&self) -> Option<&crate::obs::ObsSink> {
        self.config.obs.as_ref().map(|h| h.sink())
    }

    /// Records a stage marker into the attached sink (a no-op without
    /// one): `name` must be grammar-valid with a registered stem — the
    /// same contract phase names carry, enforced at pipeline call sites
    /// by `congest_lint` — and `value` is free-form (an epoch, a tree
    /// count, a checkpoint index). This is how the recovery driver
    /// stamps checkpoint/resume/census progress into the event stream.
    pub fn obs_emit(&self, name: &str, value: u64) {
        debug_assert!(
            crate::phase::is_valid_name(name),
            "obs event name {name:?} violates the stem.sub grammar (see congest::phase)"
        );
        if let Some(sink) = self.obs() {
            sink.emit(name, value);
        }
    }

    /// Runs one phase to completion: boots every node with its input,
    /// executes synchronous rounds until every node has halted, and returns
    /// per-node outputs plus metrics.
    ///
    /// The rounds are driven by the executor named in
    /// [`NetworkConfig::executor`]; outputs and metrics are identical
    /// whichever executor runs them.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError`] on wrong input count, invalid or double
    /// sends, bandwidth violations (strict mode), messages to halted nodes
    /// (strict mode), or when the round cap is exceeded. When several
    /// nodes err in the same round, the lowest-id node's error is
    /// returned, under every executor; the rest of that round still
    /// executes (errors are collected, not short-circuited — that is
    /// what makes error selection schedule-independent).
    pub fn run<A: Algorithm>(
        &mut self,
        name: &str,
        algo: &A,
        inputs: Vec<A::Input>,
    ) -> Result<RunOutcome<A::Output>, CongestError> {
        // Clone the kind out first: `run_with` borrows all of `self`,
        // and `ExecutorKind` is no longer `Copy` (fault plans carry
        // crash schedules).
        let kind = self.config.executor.clone();
        match kind {
            ExecutorKind::Serial => self.run_with(&SerialExecutor, name, algo, inputs),
            ExecutorKind::Parallel { threads } => {
                self.run_with(&ParallelExecutor::with_threads(threads), name, algo, inputs)
            }
            ExecutorKind::Faulty(plan) => {
                self.run_with(&crate::sim::FaultyExecutor::new(plan), name, algo, inputs)
            }
        }
    }

    /// Like [`Network::run`], but drives the phase with an explicit
    /// [`RoundExecutor`] instead of the configured one — the plug-in
    /// point for custom executors (the planned α-synchronizer /
    /// fault-injection layer) without any engine changes.
    ///
    /// # Errors
    ///
    /// As [`Network::run`].
    pub fn run_with<E: RoundExecutor, A: Algorithm>(
        &mut self,
        executor: &E,
        name: &str,
        algo: &A,
        inputs: Vec<A::Input>,
    ) -> Result<RunOutcome<A::Output>, CongestError> {
        debug_assert!(
            crate::phase::is_valid_name(name),
            "phase name {name:?} violates the stem.sub grammar (see congest::phase)"
        );
        let n = self.graph.node_count();
        if inputs.len() != n {
            return Err(CongestError::WrongInputCount {
                phase: name.to_string(),
                got: inputs.len(),
                want: n,
            });
        }
        let base_round = self.ledger.total_rounds();
        let obs = self.obs();
        let spec = PhaseSpec {
            name,
            n,
            neighbors: &self.neighbors,
            routing: &self.routing,
            slot_base: &self.slot_base,
            write_slot: &self.write_slot,
            bandwidth_bits: self.bandwidth_bits,
            strict: self.config.strict,
            cap: self.config.effective_max_rounds(n),
            max_degree: self.max_degree,
            parallel_inline_threshold: self.config.parallel_inline_threshold,
            base_round,
            obs,
        };
        if let Some(sink) = obs {
            sink.phase_begin(name, base_round);
        }
        // Wall-clock lives only in the ledger's side vector, the trace
        // line, and the obs phase records — never inside the
        // `Eq`-compared `PhaseMetrics` or the virtual event stream, so
        // replay parity across executors and reruns is unaffected.
        let t = std::time::Instant::now();
        let (outputs, metrics) = executor.run_phase(&spec, algo, inputs)?;
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        crate::obs::trace_phase_line(name, &metrics, wall_ms);
        if let Some(sink) = obs {
            sink.phase_end(metrics.rounds, metrics.ticks(), wall_ms);
        }
        self.ledger.push_timed(metrics.clone(), wall_ms);
        Ok(RunOutcome { outputs, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{FinishResult, Outbox, Step};
    use crate::message::Message;
    use crate::node::{NodeCtx, Port};
    use graphs::NodeId;

    /// Every node floods its id for `ttl` rounds and records the minimum it
    /// has seen — a toy algorithm exercising the engine paths.
    struct MinFlood {
        ttl: u64,
    }

    struct MinState {
        best: u32,
        changed: bool,
    }

    impl Algorithm for MinFlood {
        type Input = ();
        type State = MinState;
        type Msg = u32;
        type Output = u32;

        fn boot(&self, ctx: &NodeCtx<'_>, _input: ()) -> (MinState, Outbox<u32>) {
            let mut o = Outbox::new();
            o.send_all(ctx.ports(), ctx.node.raw());
            (
                MinState {
                    best: ctx.node.raw(),
                    changed: false,
                },
                o,
            )
        }

        fn round(
            &self,
            state: &mut MinState,
            ctx: &NodeCtx<'_>,
            inbox: &[(Port, u32)],
        ) -> Step<u32> {
            state.changed = false;
            for (_, m) in inbox {
                if *m < state.best {
                    state.best = *m;
                    state.changed = true;
                }
            }
            if ctx.round >= self.ttl {
                return Step::halt();
            }
            let mut o = Outbox::new();
            if state.changed {
                o.send_all(ctx.ports(), state.best);
            }
            Step::Continue(o)
        }

        fn finish(&self, state: MinState, _ctx: &NodeCtx<'_>) -> FinishResult<u32> {
            Ok(state.best)
        }
    }

    #[test]
    fn min_flood_converges_on_path() {
        let g = graphs::generators::path(10).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let out = net
            .run("min_flood", &MinFlood { ttl: 12 }, vec![(); 10])
            .unwrap();
        assert!(out.outputs.iter().all(|&b| b == 0));
        assert_eq!(out.metrics.rounds, 12);
        assert!(out.metrics.messages > 0);
        assert_eq!(net.ledger().total_rounds(), 12);
    }

    /// The parallel executor produces the same outputs and metrics as the
    /// serial one, at every thread count (including more threads than
    /// chunks). The broader randomized suite lives in
    /// `tests/executor_parity.rs`.
    #[test]
    fn parallel_executor_is_bit_identical_to_serial() {
        let g = graphs::generators::grid2d(5, 7).unwrap();
        let n = g.node_count();
        let mut serial = Network::new(&g, NetworkConfig::default()).unwrap();
        let want = serial
            .run("min_flood", &MinFlood { ttl: 15 }, vec![(); n])
            .unwrap();
        for threads in [1usize, 2, 3, 8] {
            // Threshold 0 keeps the 35-node sweeps on the real
            // multi-worker path (the inline fallback is exercised — and
            // trivially bit-identical — everywhere else).
            let cfg = NetworkConfig {
                executor: ExecutorKind::Parallel { threads },
                parallel_inline_threshold: 0,
                ..Default::default()
            };
            let mut par = Network::new(&g, cfg).unwrap();
            let got = par
                .run("min_flood", &MinFlood { ttl: 15 }, vec![(); n])
                .unwrap();
            assert_eq!(got.outputs, want.outputs, "threads = {threads}");
            assert_eq!(got.metrics, want.metrics, "threads = {threads}");
        }
    }

    /// Sends a `ttl`-round drumbeat of 7s (3 bits each) from node 0 to
    /// node 1 — one edge carries cumulative load while no single message
    /// grows.
    struct Drummer {
        ttl: u64,
    }

    impl Algorithm for Drummer {
        type Input = ();
        type State = ();
        type Msg = u32;
        type Output = ();

        fn boot(&self, ctx: &NodeCtx<'_>, _i: ()) -> ((), Outbox<u32>) {
            let mut o = Outbox::new();
            if ctx.node.raw() == 0 {
                o.send(Port(0), 7);
            }
            ((), o)
        }

        fn round(&self, _s: &mut (), ctx: &NodeCtx<'_>, _i: &[(Port, u32)]) -> Step<u32> {
            if ctx.round >= self.ttl {
                return Step::halt();
            }
            let mut o = Outbox::new();
            if ctx.node.raw() == 0 {
                o.send(Port(0), 7);
            }
            Step::Continue(o)
        }

        fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
            Ok(())
        }
    }

    /// `max_edge_load_bits` is the cumulative per-(edge, direction) load
    /// across the phase, not a copy of `max_message_bits`: four 3-bit
    /// messages on one directed edge load it with 12 bits.
    #[test]
    fn max_edge_load_accumulates_across_rounds() {
        let g = graphs::generators::path(2).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        // Boot + rounds 1..3 send; messages sent in round ttl would reach a
        // halted node, so the drumbeat stops one round earlier.
        let out = net.run("drum", &Drummer { ttl: 4 }, vec![(); 2]).unwrap();
        assert_eq!(out.metrics.max_message_bits, 3);
        assert_eq!(out.metrics.messages, 4);
        assert_eq!(out.metrics.max_edge_load_bits, 4 * 3);
        assert_eq!(net.ledger().max_edge_load_bits(), 12);
    }

    /// A message that claims to be enormous.
    #[derive(Clone, Debug)]
    struct FatMsg;
    impl Message for FatMsg {
        fn bit_len(&self) -> usize {
            10_000
        }
    }

    /// An algorithm that sends an over-budget message.
    struct FatSender;
    impl Algorithm for FatSender {
        type Input = ();
        type State = ();
        type Msg = FatMsg;
        type Output = ();

        fn boot(&self, ctx: &NodeCtx<'_>, _i: ()) -> ((), Outbox<FatMsg>) {
            let mut o = Outbox::new();
            if ctx.node.raw() == 0 {
                o.send(Port(0), FatMsg);
            }
            ((), o)
        }

        fn round(&self, _s: &mut (), _c: &NodeCtx<'_>, _i: &[(Port, FatMsg)]) -> Step<FatMsg> {
            Step::halt()
        }

        fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
            Ok(())
        }
    }

    #[test]
    fn strict_mode_rejects_fat_messages() {
        let g = graphs::generators::path(4).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let err = net.run("fat", &FatSender, vec![(); 4]).unwrap_err();
        assert!(matches!(err, CongestError::BandwidthExceeded { .. }));
    }

    #[test]
    fn lax_mode_counts_violations() {
        let g = graphs::generators::path(4).unwrap();
        let cfg = NetworkConfig {
            strict: false,
            ..Default::default()
        };
        let mut net = Network::new(&g, cfg).unwrap();
        let out = net.run("fat", &FatSender, vec![(); 4]).unwrap();
        assert_eq!(out.metrics.violations, 1);
    }

    /// Sends two messages on the same port.
    struct DoubleSender;
    impl Algorithm for DoubleSender {
        type Input = ();
        type State = ();
        type Msg = u32;
        type Output = ();

        fn boot(&self, ctx: &NodeCtx<'_>, _i: ()) -> ((), Outbox<u32>) {
            let mut o = Outbox::new();
            if ctx.node.raw() == 0 {
                o.send(Port(0), 1).send(Port(0), 2);
            }
            ((), o)
        }
        fn round(&self, _s: &mut (), _c: &NodeCtx<'_>, _i: &[(Port, u32)]) -> Step<u32> {
            Step::halt()
        }
        fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
            Ok(())
        }
    }

    #[test]
    fn double_send_is_rejected() {
        let g = graphs::generators::path(3).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let err = net.run("dbl", &DoubleSender, vec![(); 3]).unwrap_err();
        assert!(matches!(err, CongestError::DoubleSend { .. }));
    }

    /// Never halts, never sends — must hit the round cap.
    struct Livelock;
    impl Algorithm for Livelock {
        type Input = ();
        type State = ();
        type Msg = ();
        type Output = ();
        fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<()>) {
            ((), Outbox::new())
        }
        fn round(&self, _s: &mut (), _c: &NodeCtx<'_>, _i: &[(Port, ())]) -> Step<()> {
            Step::idle()
        }
        fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
            Ok(())
        }
    }

    #[test]
    fn livelock_hits_round_cap() {
        let g = graphs::generators::path(3).unwrap();
        let cfg = NetworkConfig {
            max_rounds: 50,
            ..Default::default()
        };
        let mut net = Network::new(&g, cfg).unwrap();
        let err = net.run("livelock", &Livelock, vec![(); 3]).unwrap_err();
        assert!(matches!(
            err,
            CongestError::MaxRoundsExceeded { cap: 50, .. }
        ));
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let g = graphs::generators::path(3).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let err = net.run("wrong", &Livelock, vec![(); 2]).unwrap_err();
        assert!(matches!(err, CongestError::WrongInputCount { .. }));
    }

    /// Node 0 sends to node 1 after node 1 has halted.
    struct LateSender;
    impl Algorithm for LateSender {
        type Input = ();
        type State = ();
        type Msg = u32;
        type Output = ();
        fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<u32>) {
            ((), Outbox::new())
        }
        fn round(&self, _s: &mut (), ctx: &NodeCtx<'_>, _i: &[(Port, u32)]) -> Step<u32> {
            if ctx.node.raw() == 1 {
                return Step::halt(); // halts in round 1
            }
            if ctx.round == 2 && ctx.node.raw() == 0 {
                let mut o = Outbox::new();
                o.send(Port(0), 9); // arrives in round 3, node 1 halted
                return Step::Halt(o);
            }
            if ctx.round >= 3 {
                return Step::halt();
            }
            Step::idle()
        }
        fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
            Ok(())
        }
    }

    #[test]
    fn message_to_halted_is_rejected_in_strict_mode() {
        let g = graphs::generators::path(3).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let err = net.run("late", &LateSender, vec![(); 3]).unwrap_err();
        assert!(matches!(err, CongestError::MessageToHalted { .. }));
    }

    #[test]
    fn asymmetric_adjacency_is_a_typed_error() {
        // Node 0 lists node 1 as a neighbor, but node 1's adjacency is
        // empty — a malformed topology no validated builder produces.
        use graphs::{AdjEntry, EdgeId};
        let g = graphs::WeightedGraph::from_raw_parts(
            2,
            vec![(NodeId::new(0), NodeId::new(1))],
            vec![1],
            vec![0, 1, 1],
            vec![AdjEntry {
                neighbor: NodeId::new(1),
                edge: EdgeId::new(0),
                weight: 1,
            }],
        );
        let err = match Network::new(&g, NetworkConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("asymmetric adjacency must be rejected"),
        };
        assert_eq!(
            err,
            CongestError::AsymmetricAdjacency {
                node: NodeId::new(0),
                neighbor: NodeId::new(1),
            }
        );
        assert!(err.to_string().contains("not vice versa"));
    }

    /// An algorithm whose `finish` reports a protocol violation at node 1.
    struct BadFinisher;
    impl Algorithm for BadFinisher {
        type Input = ();
        type State = ();
        type Msg = ();
        type Output = ();
        fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<()>) {
            ((), Outbox::new())
        }
        fn round(&self, _s: &mut (), _c: &NodeCtx<'_>, _i: &[(Port, ())]) -> Step<()> {
            Step::halt()
        }
        fn finish(&self, _s: (), ctx: &NodeCtx<'_>) -> FinishResult<()> {
            if ctx.node.raw() == 1 {
                Err(crate::algorithm::ProtocolViolation::new("contract broken"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn finish_violations_become_protocol_errors() {
        let g = graphs::generators::path(3).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let err = net.run("bad", &BadFinisher, vec![(); 3]).unwrap_err();
        match err {
            CongestError::Protocol {
                phase,
                node,
                reason,
            } => {
                assert_eq!(phase, "bad");
                assert_eq!(node, NodeId::new(1));
                assert_eq!(reason, "contract broken");
            }
            other => panic!("expected Protocol, got {other:?}"),
        }
    }

    #[test]
    fn routing_is_symmetric() {
        let g = graphs::generators::grid2d(3, 3).unwrap();
        let net = Network::new(&g, NetworkConfig::default()).unwrap();
        for v in 0..9 {
            for (p, (dest, dest_port)) in net.routing[v].iter().enumerate() {
                // Following the reverse port comes back.
                assert_eq!(
                    net.routing[*dest as usize][*dest_port as usize],
                    (v as u32, p as u32)
                );
            }
        }
    }
}
