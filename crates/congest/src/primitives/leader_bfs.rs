//! Leader election fused with BFS-tree construction.
//!
//! Every node floods the smallest identifier it has seen ("probe"); the
//! flood of the global minimum wins. The first port a node hears the
//! eventual leader from becomes its parent (ties broken toward the smallest
//! port), which yields a true BFS tree because the flood advances one hop
//! per round. Termination uses the classic echo: a node acknowledges to its
//! parent once all of its other ports are resolved (each non-parent port is
//! resolved by receiving either the same leader's probe — a crossing, the
//! neighbor is not our child — or an ack — the neighbor is our child). When
//! the root's echo completes, the whole network has joined its tree, and a
//! "done" wave flushed down tree edges halts everyone.
//!
//! Round complexity `O(D)`; every message is `O(log n)` bits.
//!
//! A region that elects a *local* minimum can never complete its echo: the
//! true minimum ignores larger probes and never acknowledges, so its port
//! stays unresolved. Only the global minimum's echo completes — that is the
//! correctness argument for the done wave.

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::message::{value_bits, Message, TAG_BITS};
use crate::node::{NodeCtx, Port, TreeInfo};
use graphs::NodeId;

/// Messages of the leader/BFS phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeaderMsg {
    /// "My current leader is `leader`, at distance `depth` from me."
    Probe {
        /// Leader id being flooded.
        leader: u32,
        /// Sender's distance from that leader.
        depth: u32,
    },
    /// "My subtree has fully joined `leader`'s tree; I am your child."
    Ack {
        /// Leader this ack refers to (stale acks are ignored).
        leader: u32,
    },
    /// "The election is over; halt after forwarding to your children."
    Done {
        /// The elected leader.
        leader: u32,
    },
}

impl Message for LeaderMsg {
    fn bit_len(&self) -> usize {
        match self {
            LeaderMsg::Probe { leader, depth } => {
                TAG_BITS + value_bits(*leader as u64) + value_bits(*depth as u64)
            }
            LeaderMsg::Ack { leader } | LeaderMsg::Done { leader } => {
                TAG_BITS + value_bits(*leader as u64)
            }
        }
    }
}

/// Per-node output: the elected leader and this node's place in its BFS tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaderBfsOutput {
    /// The elected leader (the minimum identifier in the network).
    pub leader: NodeId,
    /// Parent/children/depth in the leader's BFS tree.
    pub tree: TreeInfo,
}

/// The leader-election + BFS-tree phase. See module docs.
#[derive(Clone, Debug, Default)]
pub struct LeaderBfs;

impl LeaderBfs {
    /// Creates the phase object.
    pub fn new() -> Self {
        LeaderBfs
    }
}

/// Node state for [`LeaderBfs`].
#[derive(Debug)]
pub struct LeaderState {
    best: u32,
    depth: u32,
    parent: Option<Port>,
    /// Per-port resolution for the current `best`.
    resolved: Vec<bool>,
    /// Ports that acked us as their parent (our children).
    children: Vec<bool>,
    /// We must send probes for `best` on all non-parent ports next round.
    probe_pending: bool,
    acked: bool,
}

impl LeaderState {
    fn adopt(&mut self, leader: u32, depth: u32, via: Port, degree: usize) {
        self.best = leader;
        self.depth = depth;
        self.parent = Some(via);
        self.resolved = vec![false; degree];
        self.resolved[via.index()] = true;
        self.children = vec![false; degree];
        self.probe_pending = true;
        self.acked = false;
    }

    fn all_resolved(&self) -> bool {
        self.resolved.iter().all(|&r| r)
    }
}

impl Algorithm for LeaderBfs {
    type Input = ();
    type State = LeaderState;
    type Msg = LeaderMsg;
    type Output = LeaderBfsOutput;

    fn boot(&self, ctx: &NodeCtx<'_>, _input: ()) -> (LeaderState, Outbox<LeaderMsg>) {
        let deg = ctx.degree();
        let state = LeaderState {
            best: ctx.node.raw(),
            depth: 0,
            parent: None,
            resolved: vec![false; deg],
            children: vec![false; deg],
            probe_pending: false,
            acked: false,
        };
        let mut out = Outbox::new();
        out.send_all(
            ctx.ports(),
            LeaderMsg::Probe {
                leader: ctx.node.raw(),
                depth: 0,
            },
        );
        (state, out)
    }

    fn round(
        &self,
        s: &mut LeaderState,
        ctx: &NodeCtx<'_>,
        inbox: &[(Port, LeaderMsg)],
    ) -> Step<LeaderMsg> {
        let deg = ctx.degree();
        let mut done: Option<u32> = None;
        // Phase 1: adopt the best probe in this inbox, if it improves.
        let mut best_new: Option<(u32, u32, Port)> = None;
        for (port, msg) in inbox {
            if let LeaderMsg::Probe { leader, depth } = msg {
                if *leader < s.best {
                    let cand = (*leader, *depth, *port);
                    best_new = Some(match best_new {
                        // Prefer the smaller leader; among equal leaders the
                        // smaller depth, then the smaller port.
                        Some(prev) if prev <= cand => prev,
                        _ => cand,
                    });
                }
            }
        }
        if let Some((leader, depth, port)) = best_new {
            s.adopt(leader, depth + 1, port, deg);
        }
        // Phase 2: resolutions for the current leader.
        for (port, msg) in inbox {
            match msg {
                LeaderMsg::Probe { leader, .. } => {
                    if *leader == s.best && Some(*port) != s.parent {
                        s.resolved[port.index()] = true;
                    }
                    // leader > best: ignore (they will adopt us later);
                    // leader < best handled in phase 1 (parent port already
                    // marked resolved by adopt).
                }
                LeaderMsg::Ack { leader } => {
                    if *leader == s.best {
                        s.resolved[port.index()] = true;
                        s.children[port.index()] = true;
                    }
                }
                LeaderMsg::Done { leader } => {
                    debug_assert_eq!(*leader, s.best, "done wave carries the winner");
                    done = Some(*leader);
                }
            }
        }

        let mut out = Outbox::new();
        // Done wave: forward to children and halt.
        if let Some(leader) = done {
            for p in ctx.ports() {
                if s.children[p.index()] {
                    out.send(p, LeaderMsg::Done { leader });
                }
            }
            return Step::Halt(out);
        }
        // Probes for a freshly adopted leader.
        if s.probe_pending {
            s.probe_pending = false;
            for p in ctx.ports() {
                if Some(p) != s.parent {
                    out.send(
                        p,
                        LeaderMsg::Probe {
                            leader: s.best,
                            depth: s.depth,
                        },
                    );
                }
            }
        }
        // Echo: ack the parent once everything else is resolved.
        if s.all_resolved() && !s.acked {
            match s.parent {
                Some(p) => {
                    s.acked = true;
                    out.send(p, LeaderMsg::Ack { leader: s.best });
                }
                None => {
                    // We are the root and our echo completed: we are the
                    // global minimum. Fire the done wave and halt.
                    debug_assert_eq!(s.best, ctx.node.raw());
                    for p in ctx.ports() {
                        if s.children[p.index()] {
                            out.send(p, LeaderMsg::Done { leader: s.best });
                        }
                    }
                    return Step::Halt(out);
                }
            }
        }
        Step::Continue(out)
    }

    fn finish(&self, s: LeaderState, ctx: &NodeCtx<'_>) -> FinishResult<LeaderBfsOutput> {
        let children: Vec<Port> = ctx.ports().filter(|p| s.children[p.index()]).collect();
        Ok(LeaderBfsOutput {
            leader: NodeId::new(s.best),
            tree: TreeInfo {
                parent: s.parent,
                children,
                depth: s.depth,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use graphs::generators;
    use graphs::WeightedGraph;

    fn run_leader(g: &WeightedGraph) -> (Vec<LeaderBfsOutput>, u64) {
        let mut net = Network::new(g, NetworkConfig::default()).unwrap();
        let out = net
            .run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
            .expect("leader election succeeds");
        (out.outputs, out.metrics.rounds)
    }

    fn check_bfs_tree(g: &WeightedGraph, outs: &[LeaderBfsOutput]) {
        let n = g.node_count();
        let dist = graphs::traversal::bfs(g, NodeId::new(0)).dist;
        for (v, o) in outs.iter().enumerate() {
            assert_eq!(o.leader, NodeId::new(0), "node {v} elected {:?}", o.leader);
            assert_eq!(o.tree.depth, dist[v], "node {v} depth");
            if v == 0 {
                assert!(o.tree.is_root());
            } else {
                let p = o.tree.parent.expect("non-root has parent");
                let parent_id = g.neighbors(NodeId::from_index(v))[p.index()].neighbor;
                assert_eq!(dist[parent_id.index()] + 1, dist[v], "BFS parent");
            }
        }
        // Children lists are consistent with parents.
        let mut child_count = 0;
        for (v, o) in outs.iter().enumerate() {
            for &c in &o.tree.children {
                let child_id = g.neighbors(NodeId::from_index(v))[c.index()].neighbor;
                let cp = outs[child_id.index()]
                    .tree
                    .parent
                    .expect("child has parent");
                let back = g.neighbors(child_id)[cp.index()].neighbor;
                assert_eq!(back, NodeId::from_index(v));
                child_count += 1;
            }
        }
        assert_eq!(child_count, n - 1, "tree has n-1 edges");
    }

    #[test]
    fn elects_on_path() {
        let g = generators::path(12).unwrap();
        let (outs, rounds) = run_leader(&g);
        check_bfs_tree(&g, &outs);
        // Path diameter 11; flood + echo + done ≈ 3D.
        assert!(rounds <= 3 * 11 + 6, "rounds = {rounds}");
    }

    #[test]
    fn elects_on_grid_and_torus() {
        for g in [
            generators::grid2d(5, 7).unwrap(),
            generators::torus2d(4, 4).unwrap(),
        ] {
            let (outs, rounds) = run_leader(&g);
            check_bfs_tree(&g, &outs);
            let d = graphs::traversal::exact_diameter(&g) as u64;
            assert!(rounds <= 3 * d + 8, "rounds = {rounds}, D = {d}");
        }
    }

    #[test]
    fn elects_on_random_graphs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [2usize, 3, 10, 50, 120] {
            let g = generators::erdos_renyi_connected(n, 0.08, &mut rng).unwrap();
            let (outs, _) = run_leader(&g);
            check_bfs_tree(&g, &outs);
        }
    }

    #[test]
    fn single_node_network() {
        let g = WeightedGraph::from_edges(1, []).unwrap();
        let (outs, rounds) = run_leader(&g);
        assert_eq!(outs[0].leader, NodeId::new(0));
        assert!(outs[0].tree.is_root());
        assert!(rounds <= 2);
    }

    #[test]
    fn rounds_scale_with_diameter_not_n() {
        // A star has D = 2 regardless of n: rounds must stay constant-ish.
        let g = generators::star(200).unwrap();
        let (_, rounds) = run_leader(&g);
        assert!(rounds <= 12, "rounds = {rounds} on a star");
    }

    #[test]
    fn messages_are_small() {
        let g = generators::grid2d(6, 6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let out = net
            .run("leader_bfs", &LeaderBfs::new(), vec![(); 36])
            .unwrap();
        assert!(out.metrics.max_message_bits <= net.bandwidth_bits());
    }
}
