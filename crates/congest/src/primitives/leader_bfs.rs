//! Leader election fused with BFS-tree construction.
//!
//! [`LeaderBfs`] is a thin compatibility wrapper over the unified
//! election engine in [`crate::primitives::staged_election`]: the same
//! phase name, input, and [`LeaderBfsOutput`] as always, with the
//! **staged** protocol (local-minima candidacy, radius-doubling fronts)
//! as the default and the legacy every-node flood available behind
//! [`LeaderBfs::legacy`] for parity testing and ablation.
//!
//! Protocol sketch (see the staged-election module docs for the full
//! story): candidates flood the smallest identifier they have seen; the
//! flood of the global minimum wins. The first port a node hears the
//! eventual leader from becomes its parent (ties broken toward the
//! smallest port), which yields a true BFS tree because the winning
//! flood advances one hop per released round. Termination uses the
//! classic echo: a node acknowledges to its parent once all of its other
//! ports are resolved, and only the global minimum's echo can complete —
//! a region that elects a *local* minimum can never resolve its ports
//! toward the nodes that know a smaller identifier. The root's completed
//! echo triggers a "done" wave that halts everyone.
//!
//! Round complexity `O(D)` for both protocols (the staged schedule's
//! windows sum geometrically); every message is `O(log n)` bits. The
//! staged protocol cuts *message* volume by an order of magnitude on
//! identifier layouts with few local minima — see `docs/elections.md`
//! for measurements.

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::message::{value_bits, Message, TAG_BITS};
use crate::node::{NodeCtx, Port, TreeInfo};
use crate::primitives::staged_election::{ElectionState, StagedElection};
use graphs::NodeId;

/// Messages of the leader/BFS phase (shared by both protocols).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeaderMsg {
    /// "My current leader is `leader`, at distance `depth` from me."
    Probe {
        /// Leader id being flooded.
        leader: u32,
        /// Sender's distance from that leader.
        depth: u32,
    },
    /// "My subtree has fully joined `leader`'s tree; I am your child."
    Ack {
        /// Leader this ack refers to (stale acks are ignored).
        leader: u32,
    },
    /// "The election is over; halt after forwarding to your children."
    Done {
        /// The elected leader.
        leader: u32,
    },
}

impl Message for LeaderMsg {
    fn bit_len(&self) -> usize {
        match self {
            LeaderMsg::Probe { leader, depth } => {
                TAG_BITS + value_bits(*leader as u64) + value_bits(*depth as u64)
            }
            LeaderMsg::Ack { leader } | LeaderMsg::Done { leader } => {
                TAG_BITS + value_bits(*leader as u64)
            }
        }
    }
}

/// Per-node output: the elected leader and this node's place in its BFS tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaderBfsOutput {
    /// The elected leader (the minimum identifier in the network).
    pub leader: NodeId,
    /// Parent/children/depth in the leader's BFS tree.
    pub tree: TreeInfo,
}

/// Which election protocol a [`LeaderBfs`] phase runs. The two produce
/// bit-identical outputs (leader, parent, depth, children — see the
/// election parity suite); they differ only in message volume and round
/// constants.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Election {
    /// Staged: local-minima candidates, radius-doubling fronts (default).
    #[default]
    Staged,
    /// Legacy: every node floods, fronts unthrottled.
    Legacy,
}

/// The leader-election + BFS-tree phase. See module docs.
#[derive(Copy, Clone, Debug, Default)]
pub struct LeaderBfs {
    inner: StagedElection,
}

impl LeaderBfs {
    /// The default (staged) election.
    pub fn new() -> Self {
        LeaderBfs {
            inner: StagedElection::new(),
        }
    }

    /// The legacy every-node flood election.
    pub fn legacy() -> Self {
        LeaderBfs {
            inner: StagedElection::legacy(),
        }
    }

    /// The phase for a named protocol (config-level selection).
    pub fn with_election(election: Election) -> Self {
        match election {
            Election::Staged => Self::new(),
            Election::Legacy => Self::legacy(),
        }
    }
}

impl Algorithm for LeaderBfs {
    type Input = ();
    type State = ElectionState;
    type Msg = LeaderMsg;
    type Output = LeaderBfsOutput;

    fn boot(&self, ctx: &NodeCtx<'_>, input: ()) -> (ElectionState, Outbox<LeaderMsg>) {
        self.inner.boot(ctx, input)
    }

    fn round(
        &self,
        s: &mut ElectionState,
        ctx: &NodeCtx<'_>,
        inbox: &[(Port, LeaderMsg)],
    ) -> Step<LeaderMsg> {
        self.inner.round(s, ctx, inbox)
    }

    fn finish(&self, s: ElectionState, ctx: &NodeCtx<'_>) -> FinishResult<LeaderBfsOutput> {
        self.inner.finish(s, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use graphs::generators;
    use graphs::WeightedGraph;

    fn run_leader(g: &WeightedGraph, algo: &LeaderBfs) -> (Vec<LeaderBfsOutput>, u64, u64) {
        let mut net = Network::new(g, NetworkConfig::default()).unwrap();
        let out = net
            .run("leader_bfs", algo, vec![(); g.node_count()])
            .expect("leader election succeeds");
        (out.outputs, out.metrics.rounds, out.metrics.messages)
    }

    fn check_bfs_tree(g: &WeightedGraph, outs: &[LeaderBfsOutput]) {
        let n = g.node_count();
        let dist = graphs::traversal::bfs(g, NodeId::new(0)).dist;
        for (v, o) in outs.iter().enumerate() {
            assert_eq!(o.leader, NodeId::new(0), "node {v} elected {:?}", o.leader);
            assert_eq!(o.tree.depth, dist[v], "node {v} depth");
            if v == 0 {
                assert!(o.tree.is_root());
            } else {
                let p = o.tree.parent.expect("non-root has parent");
                let parent_id = g.neighbors(NodeId::from_index(v))[p.index()].neighbor;
                assert_eq!(dist[parent_id.index()] + 1, dist[v], "BFS parent");
            }
        }
        // Children lists are consistent with parents.
        let mut child_count = 0;
        for (v, o) in outs.iter().enumerate() {
            for &c in &o.tree.children {
                let child_id = g.neighbors(NodeId::from_index(v))[c.index()].neighbor;
                let cp = outs[child_id.index()]
                    .tree
                    .parent
                    .expect("child has parent");
                let back = g.neighbors(child_id)[cp.index()].neighbor;
                assert_eq!(back, NodeId::from_index(v));
                child_count += 1;
            }
        }
        assert_eq!(child_count, n - 1, "tree has n-1 edges");
    }

    /// Both protocols on every test topology: identical outputs, valid
    /// BFS trees.
    fn check_both(g: &WeightedGraph) -> (u64, u64) {
        let (staged, _, staged_msgs) = run_leader(g, &LeaderBfs::new());
        check_bfs_tree(g, &staged);
        let (legacy, _, legacy_msgs) = run_leader(g, &LeaderBfs::legacy());
        assert_eq!(staged, legacy, "protocols must agree bit for bit");
        (staged_msgs, legacy_msgs)
    }

    #[test]
    fn elects_on_path() {
        let g = generators::path(12).unwrap();
        let (outs, rounds, _) = run_leader(&g, &LeaderBfs::new());
        check_bfs_tree(&g, &outs);
        // Path diameter 11; staged: stage windows + echo + done ≈ 6D.
        assert!(rounds <= 6 * 11 + 12, "rounds = {rounds}");
        let (_, legacy_rounds, _) = run_leader(&g, &LeaderBfs::legacy());
        // Legacy: flood + echo + done ≈ 3D.
        assert!(legacy_rounds <= 3 * 11 + 6, "rounds = {legacy_rounds}");
        check_both(&g);
    }

    #[test]
    fn elects_on_grid_and_torus() {
        for g in [
            generators::grid2d(5, 7).unwrap(),
            generators::torus2d(4, 4).unwrap(),
        ] {
            let (outs, rounds, _) = run_leader(&g, &LeaderBfs::new());
            check_bfs_tree(&g, &outs);
            let d = graphs::traversal::exact_diameter(&g) as u64;
            assert!(rounds <= 6 * d + 16, "rounds = {rounds}, D = {d}");
            check_both(&g);
        }
    }

    #[test]
    fn elects_on_random_graphs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [2usize, 3, 10, 50, 120] {
            let g = generators::erdos_renyi_connected(n, 0.08, &mut rng).unwrap();
            check_both(&g);
        }
    }

    #[test]
    fn single_node_network() {
        let g = WeightedGraph::from_edges(1, []).unwrap();
        for algo in [LeaderBfs::new(), LeaderBfs::legacy()] {
            let (outs, rounds, _) = run_leader(&g, &algo);
            assert_eq!(outs[0].leader, NodeId::new(0));
            assert!(outs[0].tree.is_root());
            assert!(rounds <= 2);
        }
    }

    #[test]
    fn rounds_scale_with_diameter_not_n() {
        // A star has D = 2 regardless of n: rounds must stay constant-ish
        // under both protocols (the staged schedule releases radius 2 in
        // its second stage).
        let g = generators::star(200).unwrap();
        let (_, rounds, _) = run_leader(&g, &LeaderBfs::new());
        assert!(rounds <= 12, "rounds = {rounds} on a star");
        let (_, legacy_rounds, _) = run_leader(&g, &LeaderBfs::legacy());
        assert!(legacy_rounds <= 12, "rounds = {legacy_rounds} on a star");
    }

    #[test]
    fn messages_are_small() {
        let g = generators::grid2d(6, 6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let out = net
            .run("leader_bfs", &LeaderBfs::new(), vec![(); 36])
            .unwrap();
        assert!(out.metrics.max_message_bits <= net.bandwidth_bits());
    }

    /// The staged election's whole point: on a row-major torus (one local
    /// minimum) it moves a small multiple of `m` messages while the
    /// legacy flood re-floods every prefix minimum.
    #[test]
    fn staged_cuts_messages_on_torus() {
        let g = generators::torus2d(12, 12).unwrap();
        let (staged_msgs, legacy_msgs) = check_both(&g);
        assert!(
            staged_msgs * 3 <= legacy_msgs,
            "staged {staged_msgs} vs legacy {legacy_msgs}"
        );
        // One wave + echo + done: ≤ ~4 messages per edge direction.
        let m2 = 2 * g.edge_count() as u64;
        assert!(staged_msgs <= 2 * m2, "staged {staged_msgs} on 2m = {m2}");
    }
}
