//! Pipelined upcast: every node's items flow to the root of its tree,
//! one item per edge per round — `O(k + height)` rounds for `k` items.
//!
//! This is the workhorse of the paper's Step 1 (collecting the `O(√n)`
//! inter-fragment edges) and of the root-centralized Borůvka iterations of
//! the MST's second phase.

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::message::Message;
use crate::node::{NodeCtx, Port, TreeInfo};
use crate::primitives::broadcast::StreamMsg;
use std::collections::VecDeque;
use std::marker::PhantomData;

/// The pipelined upcast phase. Input per node: `(TreeInfo, Vec<T>)`; output:
/// `Some(all items of the tree)` at each root, `None` elsewhere. Item order
/// at the root is deterministic but unspecified.
#[derive(Clone, Debug, Default)]
pub struct UpcastItems<T> {
    // `fn() -> T` keeps the marker `Send + Sync` for any `T`: these
    // protocol structs carry no `T` values, and the parallel executor
    // shares them across workers.
    _marker: PhantomData<fn() -> T>,
}

impl<T> UpcastItems<T> {
    /// Creates the phase object.
    pub fn new() -> Self {
        UpcastItems {
            _marker: PhantomData,
        }
    }
}

/// Node state for [`UpcastItems`].
#[derive(Debug)]
pub struct UpState<T> {
    tree: TreeInfo,
    /// Items still to forward to the parent.
    queue: VecDeque<T>,
    /// Children that have not yet sent `End`.
    open_children: usize,
    /// Root only: everything collected.
    collected: Vec<T>,
}

impl<T: Message> Algorithm for UpcastItems<T> {
    type Input = (TreeInfo, Vec<T>);
    type State = UpState<T>;
    type Msg = StreamMsg<T>;
    type Output = Option<Vec<T>>;

    fn boot(
        &self,
        _ctx: &NodeCtx<'_>,
        (tree, items): Self::Input,
    ) -> (UpState<T>, Outbox<StreamMsg<T>>) {
        let open_children = tree.children.len();
        let is_root = tree.is_root();
        let state = UpState {
            tree,
            queue: if is_root {
                VecDeque::new()
            } else {
                items.clone().into()
            },
            open_children,
            collected: if is_root { items } else { Vec::new() },
        };
        (state, Outbox::new())
    }

    fn round(
        &self,
        s: &mut UpState<T>,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Port, StreamMsg<T>)],
    ) -> Step<StreamMsg<T>> {
        let is_root = s.tree.is_root();
        for (_, msg) in inbox {
            match msg {
                StreamMsg::Item(t) => {
                    if is_root {
                        s.collected.push(t.clone());
                    } else {
                        s.queue.push_back(t.clone());
                    }
                }
                StreamMsg::End => s.open_children -= 1,
            }
        }
        match s.tree.parent {
            None => {
                if s.open_children == 0 {
                    Step::halt()
                } else {
                    Step::idle()
                }
            }
            Some(p) => {
                let mut out = Outbox::new();
                if let Some(item) = s.queue.pop_front() {
                    out.send(p, StreamMsg::Item(item));
                    Step::Continue(out)
                } else if s.open_children == 0 {
                    out.send(p, StreamMsg::End);
                    Step::Halt(out)
                } else {
                    Step::idle()
                }
            }
        }
    }

    fn finish(&self, s: UpState<T>, _ctx: &NodeCtx<'_>) -> FinishResult<Option<Vec<T>>> {
        Ok(s.tree.parent.is_none().then_some(s.collected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::primitives::leader_bfs::LeaderBfs;
    use graphs::generators;

    fn bfs_trees(g: &graphs::WeightedGraph, net: &mut Network<'_>) -> Vec<TreeInfo> {
        net.run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
            .unwrap()
            .outputs
            .into_iter()
            .map(|o| o.tree)
            .collect()
    }

    #[test]
    fn collects_everything_at_root() {
        let g = generators::grid2d(5, 5).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        // Each node contributes its id twice.
        let inputs: Vec<(TreeInfo, Vec<u64>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| (t, vec![v as u64, v as u64 + 1000]))
            .collect();
        let out = net.run("upcast", &UpcastItems::new(), inputs).unwrap();
        let mut got = out.outputs[0].clone().expect("root collects");
        got.sort_unstable();
        let mut want: Vec<u64> = (0..25).flat_map(|v| [v, v + 1000]).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(out.outputs[1..].iter().all(|o| o.is_none()));
    }

    #[test]
    fn pipelining_bound_on_path() {
        // Deep path: k items from the far end must pipeline, not serialize.
        let n = 30;
        let g = generators::path(n).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let k = 10;
        let inputs: Vec<(TreeInfo, Vec<u64>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| {
                let items = if v == n - 1 {
                    (0..k as u64).collect()
                } else {
                    vec![]
                };
                (t, items)
            })
            .collect();
        let out = net.run("upcast_path", &UpcastItems::new(), inputs).unwrap();
        assert_eq!(out.outputs[0].as_ref().unwrap().len(), k);
        let rounds = out.metrics.rounds;
        assert!(
            rounds <= (n as u64 - 1) + k as u64 + 3,
            "rounds = {rounds}, expected ≈ depth + k"
        );
    }

    #[test]
    fn empty_inputs_still_terminate() {
        let g = generators::star(12).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<u64>)> = trees.into_iter().map(|t| (t, vec![])).collect();
        let out = net
            .run("upcast_empty", &UpcastItems::new(), inputs)
            .unwrap();
        assert_eq!(out.outputs[0], Some(vec![]));
    }

    #[test]
    fn forest_upcast_collects_per_fragment() {
        let g = generators::path(6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let t = |parent: Option<u32>, children: Vec<u32>, depth: u32| TreeInfo {
            parent: parent.map(Port),
            children: children.into_iter().map(Port).collect(),
            depth,
        };
        let inputs: Vec<(TreeInfo, Vec<u64>)> = vec![
            (t(None, vec![0], 0), vec![1]),
            (t(Some(0), vec![1], 1), vec![2]),
            (t(Some(0), vec![], 2), vec![3]),
            (t(None, vec![1], 0), vec![4]),
            (t(Some(0), vec![1], 1), vec![5]),
            (t(Some(0), vec![], 2), vec![6]),
        ];
        let out = net
            .run("forest_upcast", &UpcastItems::new(), inputs)
            .unwrap();
        let mut a = out.outputs[0].clone().unwrap();
        a.sort_unstable();
        assert_eq!(a, vec![1, 2, 3]);
        let mut b = out.outputs[3].clone().unwrap();
        b.sort_unstable();
        assert_eq!(b, vec![4, 5, 6]);
    }
}
