//! Timeout-based failure detection as a CONGEST phase.
//!
//! [`FailureDetector`] is a deliberately silent algorithm: every node
//! idles for a fixed number of virtual rounds and reports, at `finish`,
//! which neighbors the transport-level detector of
//! [`crate::sim::FaultyExecutor`] currently suspects. It sends **no
//! payloads at all** — virtual rounds advance purely on the
//! α-synchronizer's safety gossip, and in crash mode the executor's
//! keepalives keep every live channel warm — so the only channels that
//! go silent are those whose sender actually crashed.
//!
//! Run it under a crash-scheduling [`crate::sim::FaultPlan`] with
//! [`SuspicionPolicy::Continue`](crate::sim::SuspicionPolicy) (a plan
//! with the default `Abort` policy would end the phase at the first
//! suspicion instead of completing the census). The timing works out as
//! follows: a neighbor of a dead node cannot execute rounds past the
//! dead node's last announced safe round — the α rule holds it in place
//! — so it *cannot* halt before the suspicion window
//! ([`crate::sim::FaultPlan::suspect_after`] physical ticks) elapses and
//! the suspicion both releases it and lands in its report. Nodes with
//! only live neighbors complete their rounds unimpeded and report empty
//! suspect sets. Crashed nodes produce zombie reports with
//! [`FdReport::completed`] `== false` (they executed fewer than the
//! configured rounds), which is how a recovery driver knows to ignore
//! them; the union of `suspects` over completed reports covers every
//! dead node adjacent to a survivor.
//!
//! This is the proposal-timeout idiom of consensus protocols recast as
//! a standalone phase: suspicion is *eventually accurate* (every
//! crashed neighbor is eventually suspected; a live node wrongly
//! suspected is rehabilitated by its next arriving frame), and the
//! per-phase suspicion counters in [`crate::SimPhaseStats`] meter how
//! often each case occurred.

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::node::{NodeCtx, Port};
use crate::sim::FaultPlan;
use graphs::NodeId;

/// The idle heartbeat-census phase. See the module docs.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    /// Virtual rounds every live node idles through before halting.
    rounds: u64,
}

impl FailureDetector {
    /// A detector phase idling for `rounds` virtual rounds (min 1).
    pub fn new(rounds: u64) -> Self {
        FailureDetector {
            rounds: rounds.max(1),
        }
    }

    /// The canonical sizing for `plan`: as many virtual rounds as the
    /// plan's suspicion window has ticks (each virtual round costs at
    /// least one tick, so nodes far from any crash stay live past the
    /// time the first suspicions can fire, and transient false
    /// suspicions get time to be rehabilitated before reports are
    /// taken).
    pub fn for_plan(plan: &FaultPlan) -> Self {
        FailureDetector::new(plan.suspect_after())
    }

    /// The configured number of idle rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// One node's census report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdReport {
    /// The node executed every configured round — it lived through the
    /// whole phase. Zombie reports of crashed nodes have `false` here
    /// and must be ignored.
    pub completed: bool,
    /// Neighbors this node suspected at phase end, ascending.
    pub suspects: Vec<NodeId>,
}

/// Per-node state: the last round actually executed.
#[derive(Clone, Debug, Default)]
pub struct FdState {
    last_round: u64,
}

impl Algorithm for FailureDetector {
    type Input = ();
    type State = FdState;
    type Msg = ();
    type Output = FdReport;

    fn boot(&self, _ctx: &NodeCtx<'_>, _input: ()) -> (FdState, Outbox<()>) {
        (FdState::default(), Outbox::new())
    }

    fn round(&self, s: &mut FdState, ctx: &NodeCtx<'_>, _inbox: &[(Port, ())]) -> Step<()> {
        s.last_round = ctx.round;
        if ctx.round >= self.rounds {
            Step::halt()
        } else {
            Step::idle()
        }
    }

    fn finish(&self, s: FdState, ctx: &NodeCtx<'_>) -> FinishResult<FdReport> {
        Ok(FdReport {
            completed: s.last_round >= self.rounds,
            suspects: ctx.suspected_ids(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::sim::FaultPlan;

    fn census(g: &graphs::WeightedGraph, plan: FaultPlan) -> Vec<FdReport> {
        let det = FailureDetector::for_plan(&plan);
        let cfg = NetworkConfig::default().with_fault_plan(plan);
        let mut net = Network::new(g, cfg).unwrap();
        net.run("detect", &det, vec![(); g.node_count()])
            .expect("the census completes")
            .outputs
    }

    #[test]
    fn crash_free_census_is_all_clear() {
        let g = graphs::generators::grid2d(3, 4).unwrap();
        // An unreachable crash arms detection without killing anyone.
        let reports = census(&g, FaultPlan::lossless().with_crash(0, 1 << 40));
        for r in &reports {
            assert!(r.completed);
            assert!(r.suspects.is_empty());
        }
    }

    #[test]
    fn every_neighbor_of_a_dead_node_reports_it() {
        let g = graphs::generators::grid2d(3, 3).unwrap();
        // Node 4 is the center of the grid: 4 neighbors.
        let plan = FaultPlan::lossless()
            .with_crash(4, 0)
            .continue_on_suspicion();
        let reports = census(&g, plan);
        assert!(!reports[4].completed, "the dead node is a zombie");
        assert!(reports[4].suspects.is_empty(), "zombies report nothing");
        for (v, r) in reports.iter().enumerate() {
            if v == 4 {
                continue;
            }
            assert!(r.completed, "node {v} lives");
            let adjacent = [1usize, 3, 5, 7].contains(&v);
            let sees_dead = r.suspects.contains(&NodeId::new(4));
            assert_eq!(sees_dead, adjacent, "node {v}: suspects {:?}", r.suspects);
            assert_eq!(r.suspects.len(), usize::from(adjacent));
        }
    }

    #[test]
    fn correlated_group_crash_is_fully_covered() {
        let g = graphs::generators::torus2d(4, 4).unwrap();
        let plan = FaultPlan::with_drop(50, 3)
            .delayed(1)
            .with_crash_group(&[5, 6], 0)
            .continue_on_suspicion();
        let reports = census(&g, plan);
        let mut suspected: Vec<u32> = reports
            .iter()
            .filter(|r| r.completed)
            .flat_map(|r| r.suspects.iter().map(|id| id.raw()))
            .collect();
        suspected.sort_unstable();
        suspected.dedup();
        assert_eq!(suspected, vec![5, 6], "exactly the dead, nobody else");
    }
}
