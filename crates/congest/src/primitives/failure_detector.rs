//! Timeout-based failure detection as a CONGEST phase.
//!
//! [`FailureDetector`] is a deliberately silent algorithm: every node
//! idles for a fixed number of virtual rounds and reports, at `finish`,
//! which neighbors the transport-level detector of
//! [`crate::sim::FaultyExecutor`] currently suspects. It sends **no
//! payloads at all** — virtual rounds advance purely on the
//! α-synchronizer's safety gossip, and in crash mode the executor's
//! keepalives keep every live channel warm — so the only channels that
//! go silent are those whose sender actually crashed.
//!
//! Run it under a crash-scheduling [`crate::sim::FaultPlan`] with
//! [`SuspicionPolicy::Continue`](crate::sim::SuspicionPolicy) (a plan
//! with the default `Abort` policy would end the phase at the first
//! suspicion instead of completing the census). The timing works out as
//! follows: a neighbor of a dead node cannot execute rounds past the
//! dead node's last announced safe round — the α rule holds it in place
//! — so it *cannot* halt before the suspicion window
//! ([`crate::sim::FaultPlan::suspect_after`] physical ticks) elapses and
//! the suspicion both releases it and lands in its report. Nodes with
//! only live neighbors complete their rounds unimpeded and report empty
//! suspect sets. Crashed nodes produce zombie reports with
//! [`FdReport::completed`] `== false` (they executed fewer than the
//! configured rounds), which is how a recovery driver knows to ignore
//! them; the union of `suspects` over completed reports covers every
//! dead node adjacent to a survivor.
//!
//! This is the proposal-timeout idiom of consensus protocols recast as
//! a standalone phase: suspicion is *eventually accurate* (every
//! crashed neighbor is eventually suspected; a live node wrongly
//! suspected is rehabilitated by its next arriving frame), and the
//! per-phase suspicion counters in [`crate::SimPhaseStats`] meter how
//! often each case occurred.

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::node::{NodeCtx, Port};
use crate::sim::FaultPlan;
use graphs::NodeId;

/// The idle heartbeat-census phase. See the module docs.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    /// Virtual rounds every live node idles through before halting.
    rounds: u64,
}

impl FailureDetector {
    /// A detector phase idling for `rounds` virtual rounds (min 1).
    pub fn new(rounds: u64) -> Self {
        FailureDetector {
            rounds: rounds.max(1),
        }
    }

    /// The canonical sizing for `plan`: as many virtual rounds as the
    /// plan's suspicion window has ticks (each virtual round costs at
    /// least one tick, so nodes far from any crash stay live past the
    /// time the first suspicions can fire, and transient false
    /// suspicions get time to be rehabilitated before reports are
    /// taken).
    pub fn for_plan(plan: &FaultPlan) -> Self {
        FailureDetector::new(plan.suspect_after())
    }

    /// The configured number of idle rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// One node's census report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdReport {
    /// The node executed every configured round — it lived through the
    /// whole phase. Zombie reports of crashed nodes have `false` here
    /// and must be ignored.
    pub completed: bool,
    /// Neighbors this node suspected at phase end, ascending.
    pub suspects: Vec<NodeId>,
}

/// Per-node state: the last round actually executed.
#[derive(Clone, Debug, Default)]
pub struct FdState {
    last_round: u64,
}

impl Algorithm for FailureDetector {
    type Input = ();
    type State = FdState;
    type Msg = ();
    type Output = FdReport;

    fn boot(&self, _ctx: &NodeCtx<'_>, _input: ()) -> (FdState, Outbox<()>) {
        (FdState::default(), Outbox::new())
    }

    fn round(&self, s: &mut FdState, ctx: &NodeCtx<'_>, _inbox: &[(Port, ())]) -> Step<()> {
        s.last_round = ctx.round;
        if ctx.round >= self.rounds {
            Step::halt()
        } else {
            Step::idle()
        }
    }

    fn finish(&self, s: FdState, ctx: &NodeCtx<'_>) -> FinishResult<FdReport> {
        Ok(FdReport {
            completed: s.last_round >= self.rounds,
            suspects: ctx.suspected_ids(),
        })
    }
}

/// The rejoin handshake: nodes re-admitted at an epoch boundary catch
/// up the session coordinates (epoch tag, leader — packed into one
/// small word by the driver) from any live veteran.
///
/// Veterans boot with `Some(tag)` and announce it on every port once;
/// a rejoiner boots with `None`, adopts the first tag that reaches it,
/// and forwards it once — an adopting flood, so chains of rejoiners
/// catch up in distance-to-nearest-veteran rounds. The driver sizes
/// `rounds` to an eccentricity bound of the re-admitted graph and then
/// asserts every report adopted the same tag: that assertion *is* the
/// re-admission — a rejoiner the flood missed would surface as `None`.
#[derive(Clone, Debug)]
pub struct JoinEcho {
    /// Virtual rounds the handshake floods for (an eccentricity bound
    /// of the graph, plus slack; min 1).
    rounds: u64,
}

impl JoinEcho {
    /// A handshake phase flooding for `rounds` virtual rounds.
    pub fn new(rounds: u64) -> Self {
        JoinEcho {
            rounds: rounds.max(1),
        }
    }
}

/// Per-node handshake state: the session tag held (veterans from boot,
/// rejoiners once adopted) and whether it still needs forwarding.
#[derive(Clone, Debug, Default)]
pub struct JoinState {
    tag: Option<u64>,
    forward: bool,
}

impl Algorithm for JoinEcho {
    type Input = Option<u64>;
    type State = JoinState;
    type Msg = u64;
    type Output = Option<u64>;

    fn boot(&self, ctx: &NodeCtx<'_>, input: Option<u64>) -> (JoinState, Outbox<u64>) {
        let mut o = Outbox::new();
        if let Some(tag) = input {
            o.send_all(ctx.ports(), tag);
        }
        (
            JoinState {
                tag: input,
                forward: false,
            },
            o,
        )
    }

    fn round(&self, s: &mut JoinState, ctx: &NodeCtx<'_>, inbox: &[(Port, u64)]) -> Step<u64> {
        if s.tag.is_none() {
            if let Some((_, tag)) = inbox.first() {
                s.tag = Some(*tag);
                s.forward = true;
            }
        }
        if ctx.round >= self.rounds {
            return Step::halt();
        }
        let mut o = Outbox::new();
        if s.forward {
            s.forward = false;
            o.send_all(ctx.ports(), s.tag.expect("forwarding an adopted tag"));
        }
        Step::Continue(o)
    }

    fn finish(&self, s: JoinState, _ctx: &NodeCtx<'_>) -> FinishResult<Option<u64>> {
        Ok(s.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::sim::FaultPlan;

    fn census(g: &graphs::WeightedGraph, plan: FaultPlan) -> Vec<FdReport> {
        let det = FailureDetector::for_plan(&plan);
        let cfg = NetworkConfig::default().with_fault_plan(plan);
        let mut net = Network::new(g, cfg).unwrap();
        net.run("detect", &det, vec![(); g.node_count()])
            .expect("the census completes")
            .outputs
    }

    #[test]
    fn crash_free_census_is_all_clear() {
        let g = graphs::generators::grid2d(3, 4).unwrap();
        // An unreachable crash arms detection without killing anyone.
        let reports = census(&g, FaultPlan::lossless().with_crash(0, 1 << 40));
        for r in &reports {
            assert!(r.completed);
            assert!(r.suspects.is_empty());
        }
    }

    #[test]
    fn every_neighbor_of_a_dead_node_reports_it() {
        let g = graphs::generators::grid2d(3, 3).unwrap();
        // Node 4 is the center of the grid: 4 neighbors.
        let plan = FaultPlan::lossless()
            .with_crash(4, 0)
            .continue_on_suspicion();
        let reports = census(&g, plan);
        assert!(!reports[4].completed, "the dead node is a zombie");
        assert!(reports[4].suspects.is_empty(), "zombies report nothing");
        for (v, r) in reports.iter().enumerate() {
            if v == 4 {
                continue;
            }
            assert!(r.completed, "node {v} lives");
            let adjacent = [1usize, 3, 5, 7].contains(&v);
            let sees_dead = r.suspects.contains(&NodeId::new(4));
            assert_eq!(sees_dead, adjacent, "node {v}: suspects {:?}", r.suspects);
            assert_eq!(r.suspects.len(), usize::from(adjacent));
        }
    }

    #[test]
    fn correlated_group_crash_is_fully_covered() {
        let g = graphs::generators::torus2d(4, 4).unwrap();
        let plan = FaultPlan::with_drop(50, 3)
            .delayed(1)
            .with_crash_group(&[5, 6], 0)
            .continue_on_suspicion();
        let reports = census(&g, plan);
        let mut suspected: Vec<u32> = reports
            .iter()
            .filter(|r| r.completed)
            .flat_map(|r| r.suspects.iter().map(|id| id.raw()))
            .collect();
        suspected.sort_unstable();
        suspected.dedup();
        assert_eq!(suspected, vec![5, 6], "exactly the dead, nobody else");
    }

    #[test]
    fn join_echo_floods_the_tag_to_every_rejoiner() {
        // A path: veteran at one end, a chain of four rejoiners after
        // it — the worst case for the adopting flood.
        let g = graphs::generators::path(5).unwrap();
        let inputs: Vec<Option<u64>> = vec![Some(42), None, None, None, None];
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let out = net
            .run("join_smoke", &JoinEcho::new(6), inputs)
            .expect("handshake completes");
        assert!(out.outputs.iter().all(|t| *t == Some(42)));
        // An undersized flood misses the far end — the driver-side
        // assertion that catches a sizing bug instead of hiding it.
        let inputs: Vec<Option<u64>> = vec![Some(42), None, None, None, None];
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let out = net
            .run("join_smoke", &JoinEcho::new(2), inputs)
            .expect("handshake completes");
        assert_eq!(out.outputs[4], None, "tag cannot cross 4 hops in 2 rounds");
    }
}
