//! Neighbor exchange: one-round swap of a value with every neighbor, its
//! delta variant (only *changed* values are announced), and pipelined
//! per-edge list exchange (`O(k)` rounds for lists of length `k`).
//!
//! The list exchange is the communication pattern of the paper's Step 5:
//! the endpoints of every graph edge exchange their `O(√n)` ancestor lists
//! through that edge, all edges in parallel. The delta exchange is the
//! echo-suppression discipline of the repeated label exchanges (fragment
//! ids in `mstA.*`, components in `mstB.*`): a node whose label did not
//! change since its last announcement stays silent, and receivers keep
//! their stored per-port view — identical information flow at a fraction
//! of the messages once the labels start converging.

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::message::Message;
use crate::node::{NodeCtx, Port};
use crate::primitives::broadcast::StreamMsg;
use std::marker::PhantomData;

/// One-round exchange: every node sends one value to every neighbor and
/// collects what its neighbors sent. Rounds: 2 (send + receive).
#[derive(Clone, Debug, Default)]
pub struct NeighborExchange<T> {
    // `fn() -> T` keeps the marker `Send + Sync` for any `T`: these
    // protocol structs carry no `T` values, and the parallel executor
    // shares them across workers.
    _marker: PhantomData<fn() -> T>,
}

impl<T> NeighborExchange<T> {
    /// Creates the phase object.
    pub fn new() -> Self {
        NeighborExchange {
            _marker: PhantomData,
        }
    }
}

/// Node state for [`NeighborExchange`].
#[derive(Debug)]
pub struct NxState<T> {
    received: Vec<Option<T>>,
}

impl<T: Message> Algorithm for NeighborExchange<T> {
    /// The value this node shows to all neighbors.
    type Input = T;
    type State = NxState<T>;
    type Msg = T;
    /// `output[port] = Some(neighbor's value)` for every port.
    type Output = Vec<Option<T>>;

    fn boot(&self, ctx: &NodeCtx<'_>, value: T) -> (NxState<T>, Outbox<T>) {
        let mut out = Outbox::new();
        out.send_all(ctx.ports(), value);
        (
            NxState {
                received: vec![None; ctx.degree()],
            },
            out,
        )
    }

    fn round(&self, s: &mut NxState<T>, _ctx: &NodeCtx<'_>, inbox: &[(Port, T)]) -> Step<T> {
        for (port, msg) in inbox {
            s.received[port.index()] = Some(msg.clone());
        }
        Step::halt()
    }

    fn finish(&self, s: NxState<T>, _ctx: &NodeCtx<'_>) -> FinishResult<Vec<Option<T>>> {
        Ok(s.received)
    }
}

/// Delta (echo-suppressed) neighbor exchange: a node with input
/// `Some(value)` announces it to every neighbor; a node with `None`
/// stays silent. `output[port]` is `Some(value)` exactly for the ports
/// whose neighbor announced — callers overlay it onto their stored
/// per-port view, which stays correct because *unchanged means
/// unannounced*. Rounds: 1, messages: `Σ degree(announcing nodes)`.
#[derive(Clone, Debug, Default)]
pub struct DeltaExchange<T> {
    // `fn() -> T` keeps the marker `Send + Sync` for any `T`: these
    // protocol structs carry no `T` values, and the parallel executor
    // shares them across workers.
    _marker: PhantomData<fn() -> T>,
}

impl<T> DeltaExchange<T> {
    /// Creates the phase object.
    pub fn new() -> Self {
        DeltaExchange {
            _marker: PhantomData,
        }
    }
}

impl<T: Message> Algorithm for DeltaExchange<T> {
    /// `Some(value)` to announce `value`; `None` to stay silent.
    type Input = Option<T>;
    type State = NxState<T>;
    type Msg = T;
    /// `output[port] = Some(value)` for every announcing neighbor.
    type Output = Vec<Option<T>>;

    fn boot(&self, ctx: &NodeCtx<'_>, value: Option<T>) -> (NxState<T>, Outbox<T>) {
        let mut out = Outbox::new();
        if let Some(value) = value {
            out.send_all(ctx.ports(), value);
        }
        (
            NxState {
                received: vec![None; ctx.degree()],
            },
            out,
        )
    }

    fn round(&self, s: &mut NxState<T>, _ctx: &NodeCtx<'_>, inbox: &[(Port, T)]) -> Step<T> {
        for (port, msg) in inbox {
            s.received[port.index()] = Some(msg.clone());
        }
        Step::halt()
    }

    fn finish(&self, s: NxState<T>, _ctx: &NodeCtx<'_>) -> FinishResult<Vec<Option<T>>> {
        Ok(s.received)
    }
}

/// Per-port delta exchange: the echo-suppression discipline of
/// [`DeltaExchange`], refined from per-node to per-edge. The input is one
/// `Option<T>` *per port*: `Some(value)` announces `value` on exactly that
/// edge, `None` keeps that edge silent. `output[port]` is `Some(value)`
/// exactly for the ports whose neighbor announced on the shared edge.
///
/// This is the wire format of the optimized `mstA.*.exch` label refresh:
/// a relabeled fragment member announces only on its *boundary* ports —
/// neighbors inside the old fragment relabel with it and reconstruct the
/// new view locally, so those edges carry nothing. Rounds: 1, messages:
/// `Σ |Some entries|`.
#[derive(Clone, Debug, Default)]
pub struct PortDeltaExchange<T> {
    // `fn() -> T` keeps the marker `Send + Sync` for any `T`: these
    // protocol structs carry no `T` values, and the parallel executor
    // shares them across workers.
    _marker: PhantomData<fn() -> T>,
}

impl<T> PortDeltaExchange<T> {
    /// Creates the phase object.
    pub fn new() -> Self {
        PortDeltaExchange {
            _marker: PhantomData,
        }
    }
}

impl<T: Message> Algorithm for PortDeltaExchange<T> {
    /// One entry per port: `Some(value)` announces on that edge only.
    type Input = Vec<Option<T>>;
    type State = NxState<T>;
    type Msg = T;
    /// `output[port] = Some(value)` for every port whose neighbor announced.
    type Output = Vec<Option<T>>;

    fn boot(&self, ctx: &NodeCtx<'_>, per_port: Vec<Option<T>>) -> (NxState<T>, Outbox<T>) {
        assert_eq!(per_port.len(), ctx.degree(), "one entry per port required");
        let mut out = Outbox::new();
        for (p, value) in ctx.ports().zip(per_port) {
            if let Some(value) = value {
                out.send(p, value);
            }
        }
        (
            NxState {
                received: vec![None; ctx.degree()],
            },
            out,
        )
    }

    fn round(&self, s: &mut NxState<T>, _ctx: &NodeCtx<'_>, inbox: &[(Port, T)]) -> Step<T> {
        for (port, msg) in inbox {
            s.received[port.index()] = Some(msg.clone());
        }
        Step::halt()
    }

    fn finish(&self, s: NxState<T>, _ctx: &NodeCtx<'_>) -> FinishResult<Vec<Option<T>>> {
        Ok(s.received)
    }
}

/// Pipelined per-edge list exchange: node `v` sends `input[p]` item by item
/// through port `p` (ending with a marker) while collecting the symmetric
/// stream from the other side. All edges proceed in parallel; rounds =
/// `max_list_len + 2`.
#[derive(Clone, Debug, Default)]
pub struct EdgeListExchange<T> {
    // `fn() -> T` keeps the marker `Send + Sync` for any `T`: these
    // protocol structs carry no `T` values, and the parallel executor
    // shares them across workers.
    _marker: PhantomData<fn() -> T>,
}

impl<T> EdgeListExchange<T> {
    /// Creates the phase object.
    pub fn new() -> Self {
        EdgeListExchange {
            _marker: PhantomData,
        }
    }
}

/// Node state for [`EdgeListExchange`].
#[derive(Debug)]
pub struct ElxState<T> {
    /// Remaining items to send per port (reversed: pop from the back).
    to_send: Vec<Vec<T>>,
    /// Received items per port.
    received: Vec<Vec<T>>,
    /// Ports whose peer has finished sending.
    peer_done: Vec<bool>,
    /// Ports on which we have sent our end marker.
    end_sent: Vec<bool>,
}

impl<T: Message> Algorithm for EdgeListExchange<T> {
    /// Per-port send lists; `input.len()` must equal the degree.
    type Input = Vec<Vec<T>>;
    type State = ElxState<T>;
    type Msg = StreamMsg<T>;
    /// Per-port received lists.
    type Output = Vec<Vec<T>>;

    fn boot(&self, ctx: &NodeCtx<'_>, input: Self::Input) -> (ElxState<T>, Outbox<StreamMsg<T>>) {
        assert_eq!(input.len(), ctx.degree(), "one send list per port required");
        let deg = ctx.degree();
        let mut to_send: Vec<Vec<T>> = input
            .into_iter()
            .map(|mut l| {
                l.reverse();
                l
            })
            .collect();
        let mut end_sent = vec![false; deg];
        let mut out = Outbox::new();
        for p in ctx.ports() {
            match to_send[p.index()].pop() {
                Some(item) => {
                    out.send(p, StreamMsg::Item(item));
                }
                None => {
                    out.send(p, StreamMsg::End);
                    end_sent[p.index()] = true;
                }
            }
        }
        (
            ElxState {
                to_send,
                received: vec![Vec::new(); deg],
                peer_done: vec![false; deg],
                end_sent,
            },
            out,
        )
    }

    fn round(
        &self,
        s: &mut ElxState<T>,
        ctx: &NodeCtx<'_>,
        inbox: &[(Port, StreamMsg<T>)],
    ) -> Step<StreamMsg<T>> {
        for (port, msg) in inbox {
            match msg {
                StreamMsg::Item(t) => s.received[port.index()].push(t.clone()),
                StreamMsg::End => s.peer_done[port.index()] = true,
            }
        }
        let mut out = Outbox::new();
        for p in ctx.ports() {
            if s.end_sent[p.index()] {
                continue;
            }
            match s.to_send[p.index()].pop() {
                Some(item) => {
                    out.send(p, StreamMsg::Item(item));
                }
                None => {
                    out.send(p, StreamMsg::End);
                    s.end_sent[p.index()] = true;
                }
            }
        }
        let all_sent = s.end_sent.iter().all(|&b| b);
        let all_recv = s.peer_done.iter().all(|&b| b);
        if all_sent && all_recv && out.is_empty() {
            Step::halt()
        } else if all_sent && all_recv {
            // Final end markers still going out this round.
            Step::Continue(out)
        } else {
            Step::Continue(out)
        }
    }

    fn finish(&self, s: ElxState<T>, _ctx: &NodeCtx<'_>) -> FinishResult<Vec<Vec<T>>> {
        Ok(s.received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use graphs::generators;

    #[test]
    fn neighbor_exchange_swaps_ids() {
        let g = generators::cycle(6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let inputs: Vec<u64> = (0..6).map(|v| v * 11).collect();
        let out = net.run("nx", &NeighborExchange::new(), inputs).unwrap();
        for v in 0..6usize {
            for (p, got) in out.outputs[v].iter().enumerate() {
                let neighbor = g.neighbors(graphs::NodeId::from_index(v))[p].neighbor;
                assert_eq!(*got, Some(neighbor.raw() as u64 * 11));
            }
        }
        assert_eq!(out.metrics.rounds, 1);
    }

    #[test]
    fn delta_exchange_only_announcers_are_heard() {
        let g = generators::cycle(6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        // Only even nodes announce.
        let inputs: Vec<Option<u64>> = (0..6u64)
            .map(|v| v.is_multiple_of(2).then_some(v * 7))
            .collect();
        let out = net.run("dx", &DeltaExchange::new(), inputs).unwrap();
        for v in 0..6usize {
            for (p, got) in out.outputs[v].iter().enumerate() {
                let u = g.neighbors(graphs::NodeId::from_index(v))[p].neighbor;
                let want = u.raw().is_multiple_of(2).then_some(u.raw() as u64 * 7);
                assert_eq!(*got, want, "node {v} port {p}");
            }
        }
        // 3 announcers × degree 2 = 6 messages, half the full exchange.
        assert_eq!(out.metrics.messages, 6);
        assert_eq!(out.metrics.rounds, 1);
    }

    #[test]
    fn delta_exchange_all_silent_is_free() {
        let g = generators::path(5).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let out = net
            .run("dx0", &DeltaExchange::<u64>::new(), vec![None; 5])
            .unwrap();
        assert!(out.outputs.iter().all(|o| o.iter().all(Option::is_none)));
        assert_eq!(out.metrics.messages, 0);
    }

    #[test]
    fn port_delta_exchange_is_per_edge() {
        let g = generators::cycle(6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        // Node v announces v*13 only on its port 0 edge.
        let inputs: Vec<Vec<Option<u64>>> = (0..6u64).map(|v| vec![Some(v * 13), None]).collect();
        let out = net.run("pdx", &PortDeltaExchange::new(), inputs).unwrap();
        let mut total = 0usize;
        for v in 0..6usize {
            for (p, got) in out.outputs[v].iter().enumerate() {
                let u = g.neighbors(graphs::NodeId::from_index(v))[p].neighbor;
                // We hear u iff u's port toward us is u's port 0.
                let u_port_to_v = g
                    .neighbors(u)
                    .iter()
                    .position(|e| e.neighbor.index() == v)
                    .unwrap();
                let want = (u_port_to_v == 0).then_some(u.raw() as u64 * 13);
                assert_eq!(*got, want, "node {v} port {p}");
                total += got.is_some() as usize;
            }
        }
        // One edge-message per node.
        assert_eq!(total, 6);
        assert_eq!(out.metrics.messages, 6);
        assert_eq!(out.metrics.rounds, 1);
    }

    #[test]
    fn port_delta_exchange_all_silent_is_free() {
        let g = generators::path(5).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let inputs: Vec<Vec<Option<u64>>> = (0..5usize)
            .map(|v| vec![None; g.degree(graphs::NodeId::from_index(v))])
            .collect();
        let out = net.run("pdx0", &PortDeltaExchange::new(), inputs).unwrap();
        assert!(out.outputs.iter().all(|o| o.iter().all(Option::is_none)));
        assert_eq!(out.metrics.messages, 0);
    }

    #[test]
    fn list_exchange_swaps_lists() {
        let g = generators::grid2d(3, 3).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        // Node v sends to each port the list [v, v, v] of varying length v % 3 + 1.
        let inputs: Vec<Vec<Vec<u64>>> = (0..9usize)
            .map(|v| {
                let deg = g.degree(graphs::NodeId::from_index(v));
                (0..deg).map(|_| vec![v as u64; v % 3 + 1]).collect()
            })
            .collect();
        let out = net.run("elx", &EdgeListExchange::new(), inputs).unwrap();
        for v in 0..9usize {
            for (p, got) in out.outputs[v].iter().enumerate() {
                let u = g.neighbors(graphs::NodeId::from_index(v))[p].neighbor;
                assert_eq!(got, &vec![u.raw() as u64; u.index() % 3 + 1]);
            }
        }
        // max list length 3 → constant rounds.
        assert!(out.metrics.rounds <= 5);
    }

    #[test]
    fn list_exchange_with_empty_lists() {
        let g = generators::path(4).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let inputs: Vec<Vec<Vec<u64>>> = (0..4usize)
            .map(|v| vec![Vec::new(); g.degree(graphs::NodeId::from_index(v))])
            .collect();
        let out = net
            .run("elx_empty", &EdgeListExchange::new(), inputs)
            .unwrap();
        assert!(out
            .outputs
            .iter()
            .all(|per_port| per_port.iter().all(|l| l.is_empty())));
        assert!(out.metrics.rounds <= 2);
    }

    #[test]
    fn list_exchange_pipelines() {
        // Two nodes, one edge, long lists: rounds ≈ k.
        let g = generators::path(2).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let k = 50u64;
        let inputs = vec![
            vec![(0..k).collect::<Vec<u64>>()],
            vec![(100..100 + k).collect::<Vec<u64>>()],
        ];
        let out = net
            .run("elx_long", &EdgeListExchange::new(), inputs)
            .unwrap();
        assert_eq!(out.outputs[0][0], (100..100 + k).collect::<Vec<u64>>());
        assert_eq!(out.outputs[1][0], (0..k).collect::<Vec<u64>>());
        assert!(out.metrics.rounds <= k + 3);
    }
}
