//! Pipelined grouped sums: every node holds `(key, value)` pairs; the root
//! ends up with the per-key totals of its tree. Streams travel in sorted key
//! order and are merge-summed on the way up, so `k` distinct keys cost
//! `O(k + height)` rounds — this is exactly how the paper counts, per
//! merging node `v`, the `⟨v⟩` messages of Step 5 "by pipelining".

use crate::algorithm::{Algorithm, Outbox, Step};
use crate::message::{value_bits, Message, TAG_BITS};
use crate::node::{NodeCtx, Port, TreeInfo};
use crate::primitives::broadcast::StreamMsg;
use std::collections::VecDeque;

/// One `(key, partial sum)` pair in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyedSum {
    /// Group key.
    pub key: u32,
    /// Partial sum for that key.
    pub value: u64,
}

impl Message for KeyedSum {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.key as u64) + value_bits(self.value)
    }
}

/// The grouped-sum phase. Input per node: `(TreeInfo, Vec<(key, value)>)`
/// (any order, duplicates allowed); output: `Some(sorted per-key totals)` at
/// each root, `None` elsewhere.
#[derive(Clone, Debug, Default)]
pub struct GroupedSum;

impl GroupedSum {
    /// Creates the phase object.
    pub fn new() -> Self {
        GroupedSum
    }
}

/// One incoming stream (a child's, or our own input).
#[derive(Debug, Default)]
struct Stream {
    buf: VecDeque<KeyedSum>,
    ended: bool,
}

impl Stream {
    /// Front key if buffered.
    fn front_key(&self) -> Option<u32> {
        self.buf.front().map(|p| p.key)
    }

    /// Ready = we can safely decide the minimum: buffered or finished.
    fn ready(&self) -> bool {
        self.ended || !self.buf.is_empty()
    }
}

/// Node state for [`GroupedSum`].
#[derive(Debug)]
pub struct GsState {
    tree: TreeInfo,
    /// Index 0 = own input; 1.. = children in `tree.children` order.
    streams: Vec<Stream>,
    /// Port → stream slot.
    slot_of_port: Vec<usize>,
    /// Root only: accumulated output.
    out: Vec<(u32, u64)>,
    end_sent: bool,
}

impl GsState {
    /// If every stream is ready and some key is buffered, pops and sums the
    /// minimal key across all streams.
    fn try_pop_min(&mut self) -> Option<KeyedSum> {
        if !self.streams.iter().all(Stream::ready) {
            return None;
        }
        let k = self.streams.iter().filter_map(Stream::front_key).min()?;
        let mut total = 0u64;
        for s in &mut self.streams {
            while s.front_key() == Some(k) {
                total += s.buf.pop_front().expect("front exists").value;
            }
        }
        Some(KeyedSum {
            key: k,
            value: total,
        })
    }

    fn exhausted(&self) -> bool {
        self.streams.iter().all(|s| s.ended && s.buf.is_empty())
    }
}

impl Algorithm for GroupedSum {
    type Input = (TreeInfo, Vec<(u32, u64)>);
    type State = GsState;
    type Msg = StreamMsg<KeyedSum>;
    type Output = Option<Vec<(u32, u64)>>;

    fn boot(
        &self,
        ctx: &NodeCtx<'_>,
        (tree, mut items): Self::Input,
    ) -> (GsState, Outbox<Self::Msg>) {
        // Sort + merge duplicates in the node's own contribution.
        items.sort_unstable_by_key(|&(k, _)| k);
        let mut own = VecDeque::with_capacity(items.len());
        for (k, v) in items {
            match own.back_mut() {
                Some(KeyedSum { key, value }) if *key == k => *value += v,
                _ => own.push_back(KeyedSum { key: k, value: v }),
            }
        }
        let mut streams = Vec::with_capacity(1 + tree.children.len());
        streams.push(Stream {
            buf: own,
            ended: true, // our own input is complete from the start
        });
        let mut slot_of_port = vec![usize::MAX; ctx.degree()];
        for (i, &c) in tree.children.iter().enumerate() {
            slot_of_port[c.index()] = 1 + i;
            streams.push(Stream::default());
        }
        (
            GsState {
                tree,
                streams,
                slot_of_port,
                out: Vec::new(),
                end_sent: false,
            },
            Outbox::new(),
        )
    }

    fn round(
        &self,
        s: &mut GsState,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Port, StreamMsg<KeyedSum>)],
    ) -> Step<Self::Msg> {
        for (port, msg) in inbox {
            let slot = s.slot_of_port[port.index()];
            debug_assert_ne!(slot, usize::MAX, "messages only arrive from children");
            match msg {
                StreamMsg::Item(p) => s.streams[slot].buf.push_back(p.clone()),
                StreamMsg::End => s.streams[slot].ended = true,
            }
        }
        match s.tree.parent {
            None => {
                // Root: drain everything that is decided.
                while let Some(p) = s.try_pop_min() {
                    s.out.push((p.key, p.value));
                }
                if s.exhausted() {
                    Step::halt()
                } else {
                    Step::idle()
                }
            }
            Some(parent) => {
                let mut out = Outbox::new();
                if let Some(p) = s.try_pop_min() {
                    out.send(parent, StreamMsg::Item(p));
                    Step::Continue(out)
                } else if s.exhausted() && !s.end_sent {
                    s.end_sent = true;
                    out.send(parent, StreamMsg::End);
                    Step::Halt(out)
                } else {
                    Step::idle()
                }
            }
        }
    }

    fn finish(&self, s: GsState, _ctx: &NodeCtx<'_>) -> Self::Output {
        s.tree.parent.is_none().then_some(s.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::primitives::leader_bfs::LeaderBfs;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bfs_trees(g: &graphs::WeightedGraph, net: &mut Network<'_>) -> Vec<TreeInfo> {
        net.run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
            .unwrap()
            .outputs
            .into_iter()
            .map(|o| o.tree)
            .collect()
    }

    fn naive_grouped(inputs: &[Vec<(u32, u64)>]) -> Vec<(u32, u64)> {
        let mut m = std::collections::BTreeMap::new();
        for l in inputs {
            for &(k, v) in l {
                *m.entry(k).or_insert(0u64) += v;
            }
        }
        m.into_iter().collect()
    }

    #[test]
    fn grouped_sums_match_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [3usize, 10, 40] {
            let g = generators::erdos_renyi_connected(n, 0.2, &mut rng).unwrap();
            let mut net = Network::new(&g, NetworkConfig::default());
            let trees = bfs_trees(&g, &mut net);
            let lists: Vec<Vec<(u32, u64)>> = (0..n)
                .map(|_| {
                    (0..rng.gen_range(0..6))
                        .map(|_| (rng.gen_range(0..8u32), rng.gen_range(1..100u64)))
                        .collect()
                })
                .collect();
            let want = naive_grouped(&lists);
            let inputs: Vec<(TreeInfo, Vec<(u32, u64)>)> =
                trees.into_iter().zip(lists.iter().cloned()).collect();
            let out = net.run("grouped", &GroupedSum::new(), inputs).unwrap();
            let got = out.outputs[0].clone().expect("root output");
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn pipelining_bound_with_many_keys() {
        // Deep path, many keys at the far end: rounds ≈ k + depth.
        let n = 25;
        let k = 30u32;
        let g = generators::path(n).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default());
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<(u32, u64)>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| {
                let items = if v == n - 1 {
                    (0..k).map(|i| (i, 1u64)).collect()
                } else {
                    vec![]
                };
                (t, items)
            })
            .collect();
        let out = net.run("grouped_path", &GroupedSum::new(), inputs).unwrap();
        assert_eq!(out.outputs[0].as_ref().unwrap().len(), k as usize);
        assert!(
            out.metrics.rounds <= (n as u64 - 1) + k as u64 + 4,
            "rounds = {}",
            out.metrics.rounds
        );
    }

    #[test]
    fn overlapping_keys_merge_along_the_way() {
        // Star: every leaf contributes to the same two keys.
        let n = 10;
        let g = generators::star(n).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default());
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<(u32, u64)>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| (t, vec![(1, v as u64), (2, 1u64)]))
            .collect();
        let out = net.run("grouped_star", &GroupedSum::new(), inputs).unwrap();
        let got = out.outputs[0].clone().unwrap();
        assert_eq!(got, vec![(1, (0..10).sum::<u64>()), (2, 10)]);
    }

    #[test]
    fn empty_everywhere() {
        let g = generators::cycle(5).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default());
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<(u32, u64)>)> =
            trees.into_iter().map(|t| (t, vec![])).collect();
        let out = net
            .run("grouped_empty", &GroupedSum::new(), inputs)
            .unwrap();
        assert_eq!(out.outputs[0], Some(vec![]));
    }
}
