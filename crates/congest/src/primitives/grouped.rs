//! Pipelined grouped sums: every node holds `(key, value)` pairs; the root
//! ends up with the per-key totals of its tree. Streams travel in sorted key
//! order and are merge-summed on the way up, so `k` distinct keys cost
//! `O(k + height)` rounds — this is exactly how the paper counts, per
//! merging node `v`, the `⟨v⟩` messages of Step 5 "by pipelining".
//!
//! The stream protocol itself (buffers, readiness, `End` accounting, the
//! one-item-per-round budget) lives in [`crate::primitives::merge`]; this
//! module only supplies the sum monoid and the root-side output handling.

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::message::{value_bits, Message, TAG_BITS};
use crate::node::{NodeCtx, Port, TreeInfo};
use crate::primitives::broadcast::StreamMsg;
use crate::primitives::merge::{KeyedMonoid, KeyedStreamReduce};

/// One `(key, partial sum)` pair in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyedSum {
    /// Group key. Full `u64` range: wide enough for packed id pairs
    /// (`lo·n + hi`), which cost `2⌈log₂ n⌉` bits on the wire.
    pub key: u64,
    /// Partial sum for that key.
    pub value: u64,
}

impl Message for KeyedSum {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.key) + value_bits(self.value)
    }
}

/// The sum monoid over [`KeyedSum`]: equal keys add their values
/// (associative and commutative, as [`KeyedMonoid`] requires).
#[derive(Clone, Debug, Default)]
pub struct SumMonoid;

impl KeyedMonoid for SumMonoid {
    type Item = KeyedSum;

    fn key(item: &KeyedSum) -> u64 {
        item.key
    }

    fn combine(a: KeyedSum, b: KeyedSum) -> KeyedSum {
        KeyedSum {
            key: a.key,
            value: a.value + b.value,
        }
    }
}

/// The grouped-sum phase. Input per node: `(TreeInfo, Vec<(key, value)>)`
/// (any order, duplicates allowed); output: `Some(sorted per-key totals)` at
/// each root, `None` elsewhere.
#[derive(Clone, Debug, Default)]
pub struct GroupedSum;

impl GroupedSum {
    /// Creates the phase object.
    pub fn new() -> Self {
        GroupedSum
    }
}

/// Node state for [`GroupedSum`]: the shared reducer core plus the root's
/// accumulated output.
#[derive(Debug)]
pub struct GsState {
    core: KeyedStreamReduce<SumMonoid>,
    is_root: bool,
    /// Root only: accumulated output.
    out: Vec<(u64, u64)>,
}

impl Algorithm for GroupedSum {
    type Input = (TreeInfo, Vec<(u64, u64)>);
    type State = GsState;
    type Msg = StreamMsg<KeyedSum>;
    type Output = Option<Vec<(u64, u64)>>;

    fn boot(&self, ctx: &NodeCtx<'_>, (tree, items): Self::Input) -> (GsState, Outbox<Self::Msg>) {
        let own = items
            .into_iter()
            .map(|(key, value)| KeyedSum { key, value })
            .collect();
        (
            GsState {
                is_root: tree.is_root(),
                core: KeyedStreamReduce::new(ctx, &tree, own),
                out: Vec::new(),
            },
            Outbox::new(),
        )
    }

    fn round(
        &self,
        s: &mut GsState,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Port, StreamMsg<KeyedSum>)],
    ) -> Step<Self::Msg> {
        s.core.absorb(inbox);
        let out = &mut s.out;
        s.core.relay_round(|p| out.push((p.key, p.value)))
    }

    fn finish(&self, s: GsState, _ctx: &NodeCtx<'_>) -> FinishResult<Self::Output> {
        Ok(s.is_root.then_some(s.out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::primitives::leader_bfs::LeaderBfs;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bfs_trees(g: &graphs::WeightedGraph, net: &mut Network<'_>) -> Vec<TreeInfo> {
        net.run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
            .unwrap()
            .outputs
            .into_iter()
            .map(|o| o.tree)
            .collect()
    }

    fn naive_grouped(inputs: &[Vec<(u64, u64)>]) -> Vec<(u64, u64)> {
        let mut m = std::collections::BTreeMap::new();
        for l in inputs {
            for &(k, v) in l {
                *m.entry(k).or_insert(0u64) += v;
            }
        }
        m.into_iter().collect()
    }

    #[test]
    fn grouped_sums_match_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [3usize, 10, 40] {
            let g = generators::erdos_renyi_connected(n, 0.2, &mut rng).unwrap();
            let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
            let trees = bfs_trees(&g, &mut net);
            let lists: Vec<Vec<(u64, u64)>> = (0..n)
                .map(|_| {
                    (0..rng.gen_range(0..6))
                        .map(|_| (rng.gen_range(0..8u64), rng.gen_range(1..100u64)))
                        .collect()
                })
                .collect();
            let want = naive_grouped(&lists);
            let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> =
                trees.into_iter().zip(lists.iter().cloned()).collect();
            let out = net.run("grouped", &GroupedSum::new(), inputs).unwrap();
            let got = out.outputs[0].clone().expect("root output");
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn pipelining_bound_with_many_keys() {
        // Deep path, many keys at the far end: rounds ≈ k + depth.
        let n = 25;
        let k = 30u64;
        let g = generators::path(n).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| {
                let items = if v == n - 1 {
                    (0..k).map(|i| (i, 1u64)).collect()
                } else {
                    vec![]
                };
                (t, items)
            })
            .collect();
        let out = net.run("grouped_path", &GroupedSum::new(), inputs).unwrap();
        assert_eq!(out.outputs[0].as_ref().unwrap().len(), k as usize);
        assert!(
            out.metrics.rounds <= (n as u64 - 1) + k + 4,
            "rounds = {}",
            out.metrics.rounds
        );
    }

    #[test]
    fn overlapping_keys_merge_along_the_way() {
        // Star: every leaf contributes to the same two keys.
        let n = 10;
        let g = generators::star(n).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| (t, vec![(1, v as u64), (2, 1u64)]))
            .collect();
        let out = net.run("grouped_star", &GroupedSum::new(), inputs).unwrap();
        let got = out.outputs[0].clone().unwrap();
        assert_eq!(got, vec![(1, (0..10).sum::<u64>()), (2, 10)]);
    }

    #[test]
    fn empty_everywhere() {
        let g = generators::cycle(5).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> =
            trees.into_iter().map(|t| (t, vec![])).collect();
        let out = net
            .run("grouped_empty", &GroupedSum::new(), inputs)
            .unwrap();
        assert_eq!(out.outputs[0], Some(vec![]));
    }

    #[test]
    fn keys_beyond_u32_survive_the_trip() {
        // Keys above 2³² — the whole point of the u64 widening.
        let g = generators::star(4).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let big = (1u64 << 40) + 17;
        let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = trees
            .into_iter()
            .map(|t| (t, vec![(big, 3), (1, 1)]))
            .collect();
        let out = net.run("grouped_u64", &GroupedSum::new(), inputs).unwrap();
        assert_eq!(out.outputs[0], Some(vec![(1, 4), (big, 12)]));
    }
}
