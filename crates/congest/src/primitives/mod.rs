//! Standard CONGEST building blocks.
//!
//! * [`leader_bfs`] — minimum-id leader election fused with BFS-tree
//!   construction and echo-based termination: `O(D)` rounds. A thin
//!   wrapper over [`staged_election`], which owns the protocol engine.
//! * [`staged_election`] — the unified election engine: legacy flood and
//!   the message-frugal staged election (local-minima candidacy +
//!   radius-doubling fronts) as two knob settings of one protocol.
//! * [`convergecast`] — aggregate one value per node up a tree/forest
//!   (`O(height)` rounds).
//! * [`broadcast`] — one item, or a pipelined stream of `k` items, from each
//!   root down its tree (`O(k + height)` rounds).
//! * [`upcast`] — pipelined collection of all items at the root
//!   (`O(k + height)` rounds).
//! * [`merge`] — the shared pipelined sorted-stream merge core
//!   ([`merge::KeyedStreamReduce`]): `u64` keys, monoid reduction, one
//!   protocol implementation behind all three grouped primitives.
//! * [`grouped`] — pipelined grouped sums keyed by `u64`, merged in sorted
//!   key order on the way up (`O(k + height)` rounds).
//! * [`grouped_min`] — pipelined grouped argmin under the same pipelining
//!   bound (the Borůvka-over-BFS aggregation of the distributed MST).
//! * [`exchange`] — one-round neighbor exchange (full, delta — only
//!   changed values are announced — and per-port delta: only *selected
//!   edges* carry the announcement), and pipelined per-edge list exchange
//!   (`O(k)` rounds).
//! * [`failure_detector`] — the idle heartbeat census: under a
//!   crash-scheduling fault plan, every live node reports which
//!   neighbors the transport's timeout detector suspects (the recovery
//!   driver's view of who died).
//!
//! All tree primitives take a [`crate::TreeInfo`] per node and work on
//! *forests*: a "root" is any node with `parent == None`, and disjoint trees
//! run concurrently without interference (their edges are disjoint). That is
//! exactly how the paper runs its intra-fragment steps in parallel across
//! fragments.

pub mod broadcast;
pub mod convergecast;
pub mod exchange;
pub mod failure_detector;
pub mod grouped;
pub mod grouped_min;
pub mod leader_bfs;
pub mod merge;
pub mod staged_election;
pub mod subtree;
pub mod upcast;

pub use broadcast::{Broadcast, BroadcastItems};
pub use convergecast::{Aggregate, Convergecast, MaxU64, MinU64, SumU64};
pub use exchange::DeltaExchange;
pub use exchange::{EdgeListExchange, NeighborExchange, PortDeltaExchange};
pub use failure_detector::{FailureDetector, FdReport, JoinEcho};
pub use grouped::{GroupedSum, KeyedSum, SumMonoid};
pub use grouped_min::{BestMonoid, GroupedBest, KeyedItem, KeyedMin};
pub use leader_bfs::{Election, LeaderBfs, LeaderBfsOutput};
pub use merge::{KeyedMonoid, KeyedStreamReduce};
pub use staged_election::{Candidacy, Schedule, StagedElection};
pub use subtree::{KeyedSubtreeSum, SubtreeSums};
pub use upcast::UpcastItems;
