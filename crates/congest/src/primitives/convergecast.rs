//! Convergecast: aggregate one value per node toward the root(s) of a
//! tree/forest under a commutative, associative combine.
//!
//! Rounds: `height + 1`. Works on forests — every root gets the aggregate of
//! its own tree, so running one convergecast per fragment in parallel is the
//! same single phase.

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::message::{value_bits, Message, TAG_BITS};
use crate::node::{NodeCtx, Port, TreeInfo};
use std::marker::PhantomData;

/// A value that can be aggregated up a tree. (`Send` because aggregates
/// ride in messages, which the parallel executor moves across workers.)
pub trait Aggregate: Clone + Send + std::fmt::Debug {
    /// Commutative, associative combination.
    fn combine(&self, other: &Self) -> Self;
    /// Transmission size in bits.
    fn bits(&self) -> usize;
}

/// Sum of `u64` values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SumU64(pub u64);

impl Aggregate for SumU64 {
    fn combine(&self, other: &Self) -> Self {
        SumU64(self.0 + other.0)
    }
    fn bits(&self) -> usize {
        value_bits(self.0)
    }
}

/// Minimum of `u64` values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinU64(pub u64);

impl Aggregate for MinU64 {
    fn combine(&self, other: &Self) -> Self {
        MinU64(self.0.min(other.0))
    }
    fn bits(&self) -> usize {
        value_bits(self.0)
    }
}

/// Maximum of `u64` values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaxU64(pub u64);

impl Aggregate for MaxU64 {
    fn combine(&self, other: &Self) -> Self {
        MaxU64(self.0.max(other.0))
    }
    fn bits(&self) -> usize {
        value_bits(self.0)
    }
}

/// Pairs aggregate componentwise — handy for (value, argmin-id) reductions.
impl<A: Aggregate, B: Aggregate> Aggregate for (A, B) {
    fn combine(&self, other: &Self) -> Self {
        (self.0.combine(&other.0), self.1.combine(&other.1))
    }
    fn bits(&self) -> usize {
        self.0.bits() + self.1.bits()
    }
}

/// Minimum of `(u64, u64)` pairs under lexicographic order — the standard
/// "(value, tie-break id)" argmin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinPair(pub u64, pub u64);

impl Aggregate for MinPair {
    fn combine(&self, other: &Self) -> Self {
        if (self.0, self.1) <= (other.0, other.1) {
            *self
        } else {
            *other
        }
    }
    fn bits(&self) -> usize {
        value_bits(self.0) + value_bits(self.1)
    }
}

/// Message wrapper for an aggregate.
#[derive(Clone, Debug)]
pub struct AggMsg<T>(pub T);

impl<T: Aggregate> Message for AggMsg<T> {
    fn bit_len(&self) -> usize {
        TAG_BITS + self.0.bits()
    }
}

/// The convergecast phase. Input per node: `(TreeInfo, T)`; output: `Some`
/// of the tree-wide aggregate at each root, `None` elsewhere.
#[derive(Clone, Debug, Default)]
pub struct Convergecast<T> {
    // `fn() -> T` keeps the marker `Send + Sync` for any `T`: these
    // protocol structs carry no `T` values, and the parallel executor
    // shares them across workers.
    _marker: PhantomData<fn() -> T>,
}

impl<T> Convergecast<T> {
    /// Creates the phase object.
    pub fn new() -> Self {
        Convergecast {
            _marker: PhantomData,
        }
    }
}

/// Node state for [`Convergecast`].
#[derive(Debug)]
pub struct CcState<T> {
    tree: TreeInfo,
    acc: T,
    waiting: usize,
    sent: bool,
}

impl<T: Aggregate> Algorithm for Convergecast<T> {
    type Input = (TreeInfo, T);
    type State = CcState<T>;
    type Msg = AggMsg<T>;
    type Output = Option<T>;

    fn boot(
        &self,
        _ctx: &NodeCtx<'_>,
        (tree, value): (TreeInfo, T),
    ) -> (CcState<T>, Outbox<AggMsg<T>>) {
        let waiting = tree.children.len();
        let state = CcState {
            tree,
            acc: value,
            waiting,
            sent: false,
        };
        (state, Outbox::new())
    }

    fn round(
        &self,
        s: &mut CcState<T>,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Port, AggMsg<T>)],
    ) -> Step<AggMsg<T>> {
        for (_, AggMsg(v)) in inbox {
            s.acc = s.acc.combine(v);
            s.waiting -= 1;
        }
        if s.waiting == 0 && !s.sent {
            s.sent = true;
            match s.tree.parent {
                Some(p) => {
                    let mut o = Outbox::new();
                    o.send(p, AggMsg(s.acc.clone()));
                    Step::Halt(o)
                }
                None => Step::halt(),
            }
        } else {
            Step::idle()
        }
    }

    fn finish(&self, s: CcState<T>, _ctx: &NodeCtx<'_>) -> FinishResult<Option<T>> {
        Ok(s.tree.parent.is_none().then_some(s.acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::primitives::leader_bfs::LeaderBfs;
    use graphs::generators;

    fn bfs_trees(g: &graphs::WeightedGraph, net: &mut Network<'_>) -> Vec<TreeInfo> {
        net.run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
            .unwrap()
            .outputs
            .into_iter()
            .map(|o| o.tree)
            .collect()
    }

    #[test]
    fn sums_node_ids_on_grid() {
        let g = generators::grid2d(4, 5).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, SumU64)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| (t, SumU64(v as u64)))
            .collect();
        let out = net.run("sum", &Convergecast::new(), inputs).unwrap();
        let root_val = out.outputs[0].expect("node 0 is the BFS root");
        assert_eq!(root_val.0, (0..20).sum::<u64>());
        assert!(out.outputs[1..].iter().all(|o| o.is_none()));
        // Rounds bounded by height + slack.
        assert!(out.metrics.rounds <= 4 + 5 + 2);
    }

    #[test]
    fn min_and_max() {
        let g = generators::cycle(9).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, (MinU64, MaxU64))> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| (t, (MinU64((v as u64 + 3) * 7 % 11), MaxU64(v as u64))))
            .collect();
        let expect_min = (0..9u64).map(|v| (v + 3) * 7 % 11).min().unwrap();
        let out = net.run("minmax", &Convergecast::new(), inputs).unwrap();
        let (mn, mx) = out.outputs[0].expect("root output");
        assert_eq!(mn.0, expect_min);
        assert_eq!(mx.0, 8);
    }

    #[test]
    fn min_pair_argmin() {
        assert_eq!(MinPair(5, 2).combine(&MinPair(5, 1)), MinPair(5, 1));
        assert_eq!(MinPair(4, 9).combine(&MinPair(5, 1)), MinPair(4, 9));
    }

    #[test]
    fn forest_convergecast_aggregates_per_fragment() {
        // A path 0-1-2-3-4-5 manually split into two fragments:
        // {0,1,2} rooted at 0, {3,4,5} rooted at 3.
        let g = generators::path(6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        // Ports on a path: node 0 has port0 -> 1; nodes 1..4 have port0 -> left, port1 -> right; node 5 port0 -> 4.
        let t = |parent: Option<u32>, children: Vec<u32>, depth: u32| TreeInfo {
            parent: parent.map(Port),
            children: children.into_iter().map(Port).collect(),
            depth,
        };
        let inputs: Vec<(TreeInfo, SumU64)> = vec![
            (t(None, vec![0], 0), SumU64(1)),
            (t(Some(0), vec![1], 1), SumU64(2)),
            (t(Some(0), vec![], 2), SumU64(4)),
            (t(None, vec![1], 0), SumU64(8)),
            (t(Some(0), vec![1], 1), SumU64(16)),
            (t(Some(0), vec![], 2), SumU64(32)),
        ];
        let out = net.run("forest_sum", &Convergecast::new(), inputs).unwrap();
        assert_eq!(out.outputs[0], Some(SumU64(7)));
        assert_eq!(out.outputs[3], Some(SumU64(56)));
        for v in [1, 2, 4, 5] {
            assert_eq!(out.outputs[v], None);
        }
    }
}
