//! The staged minimum-id election: one protocol engine behind both the
//! legacy flood election and the message-frugal staged election.
//!
//! # The protocol family
//!
//! Both elections are instances of a single *throttled-front* protocol.
//! Every **candidate** starts a probe flood of its own identifier; every
//! node adopts the smallest identifier it has seen ("best"), remembers
//! the first port it heard that identifier from (its parent — ties broken
//! toward the smallest port among equal-depth arrivals), and forwards the
//! probe on its other ports. Termination is the classic echo: a node
//! acknowledges its parent once every other port is *resolved* (a
//! crossing probe for the same best, or a child's ack), and only the
//! global minimum — the one candidate no probe can beat — ever completes
//! its echo, at which point a `Done` wave down its tree halts everyone.
//!
//! Two orthogonal knobs turn the naive flood into the staged election:
//!
//! * **[`Candidacy`]** — who floods at all. `All` is the legacy protocol:
//!   every node announces itself, so regions of locally-small identifiers
//!   are flooded over and over as smaller waves sweep through.
//!   `LocalMinima` admits only nodes smaller than all their neighbors
//!   (neighbor identifiers are part of a node's a-priori local knowledge,
//!   see [`crate::node::NeighborInfo`]); every non-candidate's first
//!   announcement is thereby suppressed, which alone removes the
//!   `Θ(n·deg)` boot flood and — on identifier layouts with few local
//!   minima — collapses the election to a single wave.
//! * **[`Schedule`]** — how fast a probe front may advance.
//!   `Immediate` lets every adoption re-flood in the same round (legacy).
//!   `Doubling` gates a probe at distance `d` from its candidate until
//!   the globally known round schedule allows radius `> d`: stage `k`
//!   permits radius `R_k = r0·2^k` and lasts `R_k + 2` rounds, so a
//!   front alternately advances one annulus and pauses. A candidate that
//!   is not the minimum in its current ball is overrun by a smaller
//!   front while paused, so the number of live fronts — and with it the
//!   re-flood traffic — collapses geometrically with the stage index
//!   instead of every local minimum flooding the whole graph.
//!
//! # Message and round bounds
//!
//! With `Candidacy::All` and `Schedule::Immediate` the engine reproduces
//! the legacy election bit for bit: same messages, same rounds, same
//! outputs. With the staged knobs, each node re-floods once per candidate
//! front that reaches it; fronts that reach a node are pairwise
//! separated by the doubling radii, so a node sees `O(log D)` fronts in
//! the worst case and `O(1)` on identifier layouts with isolated local
//! minima — total messages `O(m)` on such layouts versus the legacy
//! `Θ(m · prefix-minima)`. Rounds stay `O(D)`: the schedule's stage
//! windows sum geometrically, so the winning front reaches radius `D`
//! within `O(D + log D)` rounds, and the echo and done waves add `2D`.
//!
//! # Output parity
//!
//! The elected leader, each node's parent port, its depth, and its
//! children are **identical** under every knob combination: the winning
//! wave advances one hop per round whenever its front is released, all
//! nodes at depth `d − 1` forward in the same round (the schedule is a
//! function of the globally synchronized round number only), so a node
//! at depth `d` hears the winner simultaneously from *all* its
//! depth-`d − 1` neighbors and picks the smallest port — exactly the
//! legacy tie-break. The parity suite (`tests/election_parity.rs`)
//! asserts this on random trees, tori, and cliques under both round
//! executors.

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::node::{NodeCtx, Port, TreeInfo};
use crate::primitives::leader_bfs::{LeaderBfsOutput, LeaderMsg};
use graphs::NodeId;

/// Who announces itself as a leader candidate.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Candidacy {
    /// Every node floods its identifier (the legacy protocol).
    All,
    /// Only nodes smaller than all their neighbors flood. Sound because
    /// a non-minimal node can never win, and its neighbors' identifiers
    /// are local knowledge; complete because the global minimum is
    /// always a local minimum.
    #[default]
    LocalMinima,
}

/// When a node's pending probe is allowed to advance (module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Fronts advance every round — the legacy protocol.
    Immediate,
    /// Radius-doubling stages: stage `k` (of length `r0·2^k + 2` rounds)
    /// releases probes up to `r0·2^k` hops from their candidate.
    Doubling {
        /// Radius of stage 0 (≥ 1; the pre-eccentricity staged election
        /// used 1).
        r0: u32,
    },
    /// [`Schedule::Doubling`] with the first radius seeded from the
    /// network's a-priori depth estimate, `r0 = ⌈log₂ n⌉` (see
    /// [`Schedule::ecc_r0`]): sparse graphs — where the doubling
    /// schedule's early pauses used to cost a ~1.4× round constant over
    /// the legacy flood — skip straight past the radii their diameter
    /// provably exceeds, while the message throttling of the later
    /// stages is untouched. Resolved against `n` (every node knows `n`,
    /// so the schedule stays a globally agreed function of the round
    /// number) at [`Schedule::resolve`]. This is the default.
    #[default]
    EccSeeded,
}

impl Schedule {
    /// The eccentricity-seeded first radius for an `n`-node network:
    /// `⌈log₂ n⌉`. Rationale: a radius-`r0` ball a probe must cover
    /// before its first pause holds at most `Δ^{r0}` nodes, so on any
    /// graph whose depth is below `log₂ n` the ball argument is moot
    /// (stage 0 already spans the graph and the schedule degenerates to
    /// the legacy front), while on bounded-degree graphs — where
    /// `D ≥ log_Δ n = Θ(log n)` — the seed is a certified diameter
    /// lower bound and the skipped stages were pure pause overhead. An
    /// explicit wire probe of the real eccentricity would cost `Ω(m)`
    /// messages — more than the whole staged election moves on
    /// few-minima layouts — so the seed deliberately stays a-priori.
    pub fn ecc_r0(n: usize) -> u32 {
        crate::message::id_bits(n.max(2)) as u32
    }

    /// Resolves [`Schedule::EccSeeded`] against the network size; the
    /// other variants pass through unchanged.
    pub fn resolve(self, n: usize) -> Schedule {
        match self {
            Schedule::EccSeeded => Schedule::Doubling {
                r0: Self::ecc_r0(n),
            },
            other => other,
        }
    }

    /// The probe radius the schedule permits in `round`: a node at depth
    /// `d` may forward iff `d < radius_at(round)`.
    /// [`Schedule::EccSeeded`] must be [`Schedule::resolve`]d first —
    /// unresolved it is read as `r0 = 1`.
    pub fn radius_at(self, round: u64) -> u64 {
        match self {
            Schedule::Immediate => u64::MAX,
            Schedule::EccSeeded => Schedule::Doubling { r0: 1 }.radius_at(round),
            Schedule::Doubling { r0 } => {
                let r0 = u64::from(r0.max(1));
                // Stage k spans [T_k, T_{k+1}) with T_{k+1} = T_k + R_k + 2
                // and R_k = r0 << k; walk the (≤ 64) stages.
                let mut start = 0u64;
                let mut radius = r0;
                loop {
                    let window = radius.saturating_add(2);
                    let next = start.saturating_add(window);
                    if round < next || next == u64::MAX {
                        return radius;
                    }
                    start = next;
                    radius = radius.saturating_mul(2);
                }
            }
        }
    }
}

/// The unified election engine. [`crate::primitives::leader_bfs::LeaderBfs`]
/// is the thin compatibility wrapper most callers use; this type exposes
/// the knobs directly.
#[derive(Copy, Clone, Debug, Default)]
pub struct StagedElection {
    /// Who floods.
    pub candidacy: Candidacy,
    /// How fronts are throttled.
    pub schedule: Schedule,
}

impl StagedElection {
    /// The staged election: local-minima candidates, doubling fronts.
    pub fn new() -> Self {
        Self::default()
    }

    /// The legacy flood election: every node floods, fronts unthrottled.
    /// Bit-identical (messages, rounds, outputs) to the pre-staged
    /// `LeaderBfs` implementation.
    pub fn legacy() -> Self {
        StagedElection {
            candidacy: Candidacy::All,
            schedule: Schedule::Immediate,
        }
    }
}

/// Node state for [`StagedElection`].
#[derive(Debug)]
pub struct ElectionState {
    /// Smallest identifier seen (the current tree's candidate).
    best: u32,
    depth: u32,
    parent: Option<Port>,
    /// Per-port resolution for the current `best`.
    resolved: Vec<bool>,
    /// Ports that acked us as their parent (our children).
    children: Vec<bool>,
    /// Probes for `best` not yet sent (awaiting the schedule's release).
    probe_pending: bool,
    acked: bool,
}

impl ElectionState {
    fn adopt(&mut self, leader: u32, depth: u32, via: Port, degree: usize) {
        self.best = leader;
        self.depth = depth;
        self.parent = Some(via);
        self.resolved.clear();
        self.resolved.resize(degree, false);
        self.resolved[via.index()] = true;
        self.children.clear();
        self.children.resize(degree, false);
        self.probe_pending = true;
        self.acked = false;
    }

    fn all_resolved(&self) -> bool {
        self.resolved.iter().all(|&r| r)
    }

    /// Queues probes for `best` on all non-parent ports.
    fn flood(&self, ctx: &NodeCtx<'_>, out: &mut Outbox<LeaderMsg>) {
        for p in ctx.ports() {
            if Some(p) != self.parent {
                out.send(
                    p,
                    LeaderMsg::Probe {
                        leader: self.best,
                        depth: self.depth,
                    },
                );
            }
        }
    }
}

impl Algorithm for StagedElection {
    type Input = ();
    type State = ElectionState;
    type Msg = LeaderMsg;
    type Output = LeaderBfsOutput;

    fn boot(&self, ctx: &NodeCtx<'_>, _input: ()) -> (ElectionState, Outbox<LeaderMsg>) {
        let deg = ctx.degree();
        let me = ctx.node.raw();
        let candidate = match self.candidacy {
            Candidacy::All => true,
            Candidacy::LocalMinima => ctx.neighbors().all(|(_, ni)| ni.id.raw() > me),
        };
        let mut state = ElectionState {
            best: me,
            depth: 0,
            parent: None,
            resolved: vec![false; deg],
            children: vec![false; deg],
            probe_pending: candidate,
            acked: false,
        };
        let mut out = Outbox::new();
        // Boot counts as round 0; R_0 ≥ 1 > 0, so a candidate's own
        // probe is never gated.
        if state.probe_pending {
            state.probe_pending = false;
            state.flood(ctx, &mut out);
        }
        (state, out)
    }

    fn round(
        &self,
        s: &mut ElectionState,
        ctx: &NodeCtx<'_>,
        inbox: &[(Port, LeaderMsg)],
    ) -> Step<LeaderMsg> {
        let deg = ctx.degree();
        let mut done: Option<u32> = None;
        // Phase 1: adopt the best probe in this inbox, if it improves.
        let mut best_new: Option<(u32, u32, Port)> = None;
        for (port, msg) in inbox {
            if let LeaderMsg::Probe { leader, depth } = msg {
                if *leader < s.best {
                    let cand = (*leader, *depth, *port);
                    best_new = Some(match best_new {
                        // Prefer the smaller leader; among equal leaders the
                        // smaller depth, then the smaller port.
                        Some(prev) if prev <= cand => prev,
                        _ => cand,
                    });
                }
            }
        }
        if let Some((leader, depth, port)) = best_new {
            s.adopt(leader, depth + 1, port, deg);
        }
        // Phase 2: resolutions for the current leader.
        for (port, msg) in inbox {
            match msg {
                LeaderMsg::Probe { leader, .. } => {
                    if *leader == s.best && Some(*port) != s.parent {
                        s.resolved[port.index()] = true;
                    }
                    // leader > best: ignore (our wave overruns theirs);
                    // leader < best handled in phase 1 (parent port already
                    // marked resolved by adopt).
                }
                LeaderMsg::Ack { leader } => {
                    if *leader == s.best {
                        s.resolved[port.index()] = true;
                        s.children[port.index()] = true;
                    }
                }
                LeaderMsg::Done { leader } => {
                    debug_assert_eq!(*leader, s.best, "done wave carries the winner");
                    done = Some(*leader);
                }
            }
        }

        let mut out = Outbox::new();
        // Done wave: forward to children and halt.
        if let Some(leader) = done {
            for p in ctx.ports() {
                if s.children[p.index()] {
                    out.send(p, LeaderMsg::Done { leader });
                }
            }
            return Step::Halt(out);
        }
        // Pending probes fire once the schedule releases this depth. Under
        // `Schedule::Immediate` that is the adoption round itself (the
        // legacy behavior); under `Doubling` a front pauses at each stage
        // radius and resumes — on all non-parent ports, so the crossing
        // probes the neighbors' echoes wait for are never skipped — when
        // the next stage begins. `resolve` pins `EccSeeded` to `n`, which
        // every node knows, so the schedule stays globally agreed.
        if s.probe_pending && u64::from(s.depth) < self.schedule.resolve(ctx.n).radius_at(ctx.round)
        {
            s.probe_pending = false;
            s.flood(ctx, &mut out);
        }
        // Echo: ack the parent once everything else is resolved.
        if s.all_resolved() && !s.acked && !s.probe_pending {
            match s.parent {
                Some(p) => {
                    s.acked = true;
                    out.send(p, LeaderMsg::Ack { leader: s.best });
                }
                None => {
                    // We are the root and our echo completed: we are the
                    // global minimum (no other candidate's echo can ever
                    // complete — any foreign tree has an unresolvable port
                    // toward the region that knows a smaller id). Fire the
                    // done wave and halt.
                    debug_assert_eq!(s.best, ctx.node.raw());
                    for p in ctx.ports() {
                        if s.children[p.index()] {
                            out.send(p, LeaderMsg::Done { leader: s.best });
                        }
                    }
                    return Step::Halt(out);
                }
            }
        }
        Step::Continue(out)
    }

    fn finish(&self, s: ElectionState, ctx: &NodeCtx<'_>) -> FinishResult<LeaderBfsOutput> {
        let children: Vec<Port> = ctx.ports().filter(|p| s.children[p.index()]).collect();
        Ok(LeaderBfsOutput {
            leader: NodeId::new(s.best),
            tree: TreeInfo {
                parent: s.parent,
                children,
                depth: s.depth,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_schedule_never_gates() {
        assert_eq!(Schedule::Immediate.radius_at(0), u64::MAX);
        assert_eq!(Schedule::Immediate.radius_at(1 << 40), u64::MAX);
    }

    #[test]
    fn doubling_schedule_windows() {
        let s = Schedule::Doubling { r0: 1 };
        // Stage 0: rounds 0..3 (R = 1, window 3).
        for r in 0..3 {
            assert_eq!(s.radius_at(r), 1, "round {r}");
        }
        // Stage 1: rounds 3..7 (R = 2, window 4).
        for r in 3..7 {
            assert_eq!(s.radius_at(r), 2, "round {r}");
        }
        // Stage 2: rounds 7..13 (R = 4, window 6).
        for r in 7..13 {
            assert_eq!(s.radius_at(r), 4, "round {r}");
        }
        assert_eq!(s.radius_at(13), 8);
    }

    #[test]
    fn ecc_seed_resolves_against_n() {
        assert_eq!(Schedule::ecc_r0(576), 10);
        assert_eq!(Schedule::ecc_r0(2), 1);
        assert_eq!(Schedule::ecc_r0(0), 1);
        assert_eq!(
            Schedule::EccSeeded.resolve(576),
            Schedule::Doubling { r0: 10 }
        );
        assert_eq!(Schedule::Immediate.resolve(576), Schedule::Immediate);
        assert_eq!(
            Schedule::Doubling { r0: 3 }.resolve(576),
            Schedule::Doubling { r0: 3 }
        );
        // Unresolved EccSeeded degrades to the conservative r0 = 1.
        assert_eq!(
            Schedule::EccSeeded.radius_at(0),
            Schedule::Doubling { r0: 1 }.radius_at(0)
        );
        assert_eq!(Schedule::default(), Schedule::EccSeeded);
    }

    /// The whole point of the eccentricity seed: on a torus the early
    /// pause stages disappear (fewer rounds), while the probe fronts —
    /// and with them the message count — are untouched on a
    /// single-minimum identifier layout. Outputs stay bit-identical
    /// across all three protocols (the parity suites widen this to
    /// random graphs and executors).
    #[test]
    fn ecc_seed_cuts_rounds_not_parity_on_tori() {
        use crate::config::NetworkConfig;
        use crate::engine::Network;
        let g = graphs::generators::torus2d(12, 12).unwrap();
        let run = |schedule: Schedule| {
            let algo = StagedElection {
                candidacy: Candidacy::LocalMinima,
                schedule,
            };
            let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
            let out = net.run("leader_bfs", &algo, vec![(); 144]).unwrap();
            (out.outputs, out.metrics.rounds, out.metrics.messages)
        };
        let (ecc_out, ecc_rounds, ecc_msgs) = run(Schedule::EccSeeded);
        let (r1_out, r1_rounds, r1_msgs) = run(Schedule::Doubling { r0: 1 });
        let (legacy_out, legacy_rounds, _) = run(Schedule::Immediate); // candidacy still LocalMinima
        assert_eq!(ecc_out, r1_out);
        assert_eq!(ecc_out, legacy_out);
        assert_eq!(
            ecc_msgs, r1_msgs,
            "one candidate: schedule moves no extra probes"
        );
        assert!(
            ecc_rounds < r1_rounds,
            "ecc {ecc_rounds} rounds vs r0=1 {r1_rounds}"
        );
        assert!(ecc_rounds >= legacy_rounds, "still a staged schedule");
        // The residual constant over the unthrottled front is small.
        assert!(
            (ecc_rounds as f64) < 1.25 * legacy_rounds as f64,
            "ecc {ecc_rounds} vs legacy {legacy_rounds}"
        );
    }

    #[test]
    fn doubling_schedule_scales_with_r0_and_saturates() {
        let s = Schedule::Doubling { r0: 4 };
        assert_eq!(s.radius_at(0), 4);
        assert_eq!(s.radius_at(6), 8);
        // A zero r0 is clamped to 1 (radius 0 would gate forever).
        assert_eq!(Schedule::Doubling { r0: 0 }.radius_at(0), 1);
        // Enormous rounds terminate (saturating walk) with a huge radius.
        assert!(Schedule::Doubling { r0: 1 }.radius_at(u64::MAX - 1) > 1 << 60);
    }

    #[test]
    fn radius_release_round_grows_linearly() {
        // The round at which radius R is first allowed must be O(R): the
        // stage windows sum to R_k + 2k + const, which is what keeps the
        // staged election inside the O(D) round envelope.
        let s = Schedule::Doubling { r0: 1 };
        for k in 0..20u32 {
            let radius = 1u64 << k;
            let release = (0..u64::MAX)
                .find(|&r| s.radius_at(r) > radius)
                .expect("released");
            assert!(
                release <= 2 * radius + 2 * u64::from(k) + 3,
                "radius {radius} released only at round {release}"
            );
        }
    }
}
