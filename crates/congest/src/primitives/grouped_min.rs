//! Pipelined grouped **argmin**: every node holds keyed items; each root
//! ends up with the best item per key over its tree. Streams travel in
//! sorted key order and are merge-reduced on the way up, so `k` distinct
//! keys cost `O(k + height)` rounds — the same pipelining argument as
//! [`crate::primitives::grouped::GroupedSum`].
//!
//! This is the aggregation pattern of the Borůvka-over-BFS-tree phase of
//! the distributed MST: every node proposes its minimum-key outgoing edge
//! per fragment, and the leader receives, for each fragment, the global
//! minimum proposal.
//!
//! The stream protocol lives in [`crate::primitives::merge`]; this module
//! supplies the argmin monoid (keep the preferable item of an equal-key
//! pair) and the root-side output handling.

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::message::{value_bits, Message, TAG_BITS};
use crate::node::{NodeCtx, Port, TreeInfo};
use crate::primitives::broadcast::StreamMsg;
use crate::primitives::merge::{KeyedMonoid, KeyedStreamReduce};
use std::marker::PhantomData;

/// An item with a group key and a total preference order within the key.
pub trait KeyedItem: Message {
    /// The group key.
    fn key(&self) -> u64;

    /// Returns `true` if `self` is strictly preferable to `other`
    /// (callers must ensure a strict total order within each key — the
    /// argmin monoid is only commutative under a strict order, see
    /// [`KeyedMonoid`]).
    fn better_than(&self, other: &Self) -> bool;
}

/// A ready-made keyed item: minimum `value` wins, ties broken by `tag`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyedMin {
    /// Group key.
    pub key: u64,
    /// Value to minimise.
    pub value: u64,
    /// Deterministic tie-break (e.g. an edge id).
    pub tag: u64,
}

impl Message for KeyedMin {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.key) + value_bits(self.value) + value_bits(self.tag)
    }
}

impl KeyedItem for KeyedMin {
    fn key(&self) -> u64 {
        self.key
    }
    fn better_than(&self, other: &Self) -> bool {
        (self.value, self.tag) < (other.value, other.tag)
    }
}

/// The argmin monoid over any [`KeyedItem`]: of two equal-key items, keep
/// the preferable one (`better_than` ties broken toward the left operand,
/// which is unobservable under a strict total order).
#[derive(Clone, Debug, Default)]
pub struct BestMonoid<T>(PhantomData<T>);

impl<T: KeyedItem> KeyedMonoid for BestMonoid<T> {
    type Item = T;

    fn key(item: &T) -> u64 {
        item.key()
    }

    fn combine(a: T, b: T) -> T {
        if b.better_than(&a) {
            b
        } else {
            a
        }
    }
}

/// The grouped-argmin phase. Input per node: `(TreeInfo, Vec<T>)` (any
/// order, duplicate keys allowed); output: `Some(best item per key, sorted
/// by key)` at each root, `None` elsewhere.
#[derive(Clone, Debug, Default)]
pub struct GroupedBest<T> {
    // `fn() -> T` keeps the marker `Send + Sync` for any `T`: these
    // protocol structs carry no `T` values, and the parallel executor
    // shares them across workers.
    _marker: PhantomData<fn() -> T>,
}

impl<T> GroupedBest<T> {
    /// Creates the phase object.
    pub fn new() -> Self {
        GroupedBest {
            _marker: PhantomData,
        }
    }
}

/// Node state for [`GroupedBest`]: the shared reducer core plus the
/// root's accumulated output.
#[derive(Debug)]
pub struct GbState<T: KeyedItem> {
    core: KeyedStreamReduce<BestMonoid<T>>,
    is_root: bool,
    /// Root only: accumulated output.
    out: Vec<T>,
}

impl<T: KeyedItem> Algorithm for GroupedBest<T> {
    type Input = (TreeInfo, Vec<T>);
    type State = GbState<T>;
    type Msg = StreamMsg<T>;
    type Output = Option<Vec<T>>;

    fn boot(
        &self,
        ctx: &NodeCtx<'_>,
        (tree, items): Self::Input,
    ) -> (GbState<T>, Outbox<Self::Msg>) {
        (
            GbState {
                is_root: tree.is_root(),
                core: KeyedStreamReduce::new(ctx, &tree, items),
                out: Vec::new(),
            },
            Outbox::new(),
        )
    }

    fn round(
        &self,
        s: &mut GbState<T>,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Port, StreamMsg<T>)],
    ) -> Step<Self::Msg> {
        s.core.absorb(inbox);
        let out = &mut s.out;
        s.core.relay_round(|item| out.push(item))
    }

    fn finish(&self, s: GbState<T>, _ctx: &NodeCtx<'_>) -> FinishResult<Self::Output> {
        Ok(s.is_root.then_some(s.out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::primitives::leader_bfs::LeaderBfs;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bfs_trees(g: &graphs::WeightedGraph, net: &mut Network<'_>) -> Vec<TreeInfo> {
        net.run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
            .unwrap()
            .outputs
            .into_iter()
            .map(|o| o.tree)
            .collect()
    }

    fn naive_best(lists: &[Vec<KeyedMin>]) -> Vec<KeyedMin> {
        let mut best: std::collections::BTreeMap<u64, KeyedMin> = std::collections::BTreeMap::new();
        for l in lists {
            for item in l {
                match best.get(&item.key) {
                    Some(b) if !item.better_than(b) => {}
                    _ => {
                        best.insert(item.key, item.clone());
                    }
                }
            }
        }
        best.into_values().collect()
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [4usize, 12, 40] {
            let g = generators::erdos_renyi_connected(n, 0.2, &mut rng).unwrap();
            let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
            let trees = bfs_trees(&g, &mut net);
            let lists: Vec<Vec<KeyedMin>> = (0..n)
                .map(|v| {
                    (0..rng.gen_range(0usize..5))
                        .map(|i| KeyedMin {
                            key: rng.gen_range(0u64..6),
                            value: rng.gen_range(1u64..100),
                            tag: (v * 10 + i) as u64,
                        })
                        .collect()
                })
                .collect();
            let want = naive_best(&lists);
            let inputs: Vec<(TreeInfo, Vec<KeyedMin>)> =
                trees.into_iter().zip(lists.iter().cloned()).collect();
            let out = net
                .run("grouped_best", &GroupedBest::new(), inputs)
                .unwrap();
            let got = out.outputs[0].clone().expect("root output");
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn pipelines_many_keys_on_a_path() {
        let n = 20;
        let k = 25u64;
        let g = generators::path(n).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<KeyedMin>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| {
                let items = if v == n - 1 {
                    (0..k)
                        .map(|key| KeyedMin {
                            key,
                            value: key + 1,
                            tag: 0,
                        })
                        .collect()
                } else {
                    vec![]
                };
                (t, items)
            })
            .collect();
        let out = net.run("gb_path", &GroupedBest::new(), inputs).unwrap();
        assert_eq!(out.outputs[0].as_ref().unwrap().len(), k as usize);
        assert!(
            out.metrics.rounds <= (n as u64 - 1) + k + 4,
            "rounds = {} (pipelining bound)",
            out.metrics.rounds
        );
    }

    #[test]
    fn duplicate_keys_reduce_to_the_minimum_with_tag_tiebreak() {
        let g = generators::star(6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<KeyedMin>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| {
                (
                    t,
                    vec![KeyedMin {
                        key: 1,
                        value: 5,
                        tag: v as u64,
                    }],
                )
            })
            .collect();
        let out = net.run("gb_dup", &GroupedBest::new(), inputs).unwrap();
        let got = out.outputs[0].clone().unwrap();
        assert_eq!(
            got,
            vec![KeyedMin {
                key: 1,
                value: 5,
                tag: 0
            }]
        );
    }

    #[test]
    fn empty_inputs_terminate() {
        let g = generators::cycle(7).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<KeyedMin>)> =
            trees.into_iter().map(|t| (t, vec![])).collect();
        let out = net.run("gb_empty", &GroupedBest::new(), inputs).unwrap();
        assert_eq!(out.outputs[0], Some(vec![]));
    }
}
