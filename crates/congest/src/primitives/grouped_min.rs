//! Pipelined grouped **argmin**: every node holds keyed items; each root
//! ends up with the best item per key over its tree. Streams travel in
//! sorted key order and are merge-reduced on the way up, so `k` distinct
//! keys cost `O(k + height)` rounds — the same pipelining argument as
//! [`crate::primitives::grouped::GroupedSum`].
//!
//! This is the aggregation pattern of the Borůvka-over-BFS-tree phase of
//! the distributed MST: every node proposes its minimum-key outgoing edge
//! per fragment, and the leader receives, for each fragment, the global
//! minimum proposal.

use crate::algorithm::{Algorithm, Outbox, Step};
use crate::message::{value_bits, Message, TAG_BITS};
use crate::node::{NodeCtx, Port, TreeInfo};
use crate::primitives::broadcast::StreamMsg;
use std::collections::VecDeque;
use std::marker::PhantomData;

/// An item with a group key and a total preference order within the key.
pub trait KeyedItem: Message {
    /// The group key.
    fn key(&self) -> u32;

    /// Returns `true` if `self` is strictly preferable to `other`
    /// (callers must ensure a strict total order within each key for
    /// deterministic results).
    fn better_than(&self, other: &Self) -> bool;
}

/// A ready-made keyed item: minimum `value` wins, ties broken by `tag`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyedMin {
    /// Group key.
    pub key: u32,
    /// Value to minimise.
    pub value: u64,
    /// Deterministic tie-break (e.g. an edge id).
    pub tag: u64,
}

impl Message for KeyedMin {
    fn bit_len(&self) -> usize {
        TAG_BITS + value_bits(self.key as u64) + value_bits(self.value) + value_bits(self.tag)
    }
}

impl KeyedItem for KeyedMin {
    fn key(&self) -> u32 {
        self.key
    }
    fn better_than(&self, other: &Self) -> bool {
        (self.value, self.tag) < (other.value, other.tag)
    }
}

/// The grouped-argmin phase. Input per node: `(TreeInfo, Vec<T>)` (any
/// order, duplicate keys allowed); output: `Some(best item per key, sorted
/// by key)` at each root, `None` elsewhere.
#[derive(Clone, Debug, Default)]
pub struct GroupedBest<T> {
    _marker: PhantomData<T>,
}

impl<T> GroupedBest<T> {
    /// Creates the phase object.
    pub fn new() -> Self {
        GroupedBest {
            _marker: PhantomData,
        }
    }
}

/// One incoming stream (a child's, or the node's own input).
#[derive(Debug)]
struct Stream<T> {
    buf: VecDeque<T>,
    ended: bool,
}

impl<T> Default for Stream<T> {
    fn default() -> Self {
        Stream {
            buf: VecDeque::new(),
            ended: false,
        }
    }
}

impl<T: KeyedItem> Stream<T> {
    fn front_key(&self) -> Option<u32> {
        self.buf.front().map(KeyedItem::key)
    }
    fn ready(&self) -> bool {
        self.ended || !self.buf.is_empty()
    }
}

/// Node state for [`GroupedBest`].
#[derive(Debug)]
pub struct GbState<T> {
    tree: TreeInfo,
    /// Slot 0 = own input; 1.. = children in `tree.children` order.
    streams: Vec<Stream<T>>,
    /// Port → stream slot.
    slot_of_port: Vec<usize>,
    /// Root only: accumulated output.
    out: Vec<T>,
    end_sent: bool,
}

impl<T: KeyedItem> GbState<T> {
    /// If every stream is ready and some key is buffered, pops the
    /// minimal key from all streams and reduces to the best item.
    fn try_pop_min(&mut self) -> Option<T> {
        if !self.streams.iter().all(Stream::ready) {
            return None;
        }
        let k = self.streams.iter().filter_map(Stream::front_key).min()?;
        let mut best: Option<T> = None;
        for s in &mut self.streams {
            while s.front_key() == Some(k) {
                let item = s.buf.pop_front().expect("front exists");
                best = match best {
                    Some(b) if !item.better_than(&b) => Some(b),
                    _ => Some(item),
                };
            }
        }
        best
    }

    fn exhausted(&self) -> bool {
        self.streams.iter().all(|s| s.ended && s.buf.is_empty())
    }
}

impl<T: KeyedItem> Algorithm for GroupedBest<T> {
    type Input = (TreeInfo, Vec<T>);
    type State = GbState<T>;
    type Msg = StreamMsg<T>;
    type Output = Option<Vec<T>>;

    fn boot(
        &self,
        ctx: &NodeCtx<'_>,
        (tree, mut items): Self::Input,
    ) -> (GbState<T>, Outbox<Self::Msg>) {
        // Sort + reduce duplicates in the node's own contribution.
        items.sort_by(|a, b| {
            a.key().cmp(&b.key()).then_with(|| {
                if a.better_than(b) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            })
        });
        let mut own: VecDeque<T> = VecDeque::with_capacity(items.len());
        for item in items {
            match own.back() {
                Some(last) if last.key() == item.key() => {} // worse duplicate
                _ => own.push_back(item),
            }
        }
        let mut streams = Vec::with_capacity(1 + tree.children.len());
        streams.push(Stream {
            buf: own,
            ended: true, // the node's own input is complete from the start
        });
        let mut slot_of_port = vec![usize::MAX; ctx.degree()];
        for (i, &c) in tree.children.iter().enumerate() {
            slot_of_port[c.index()] = 1 + i;
            streams.push(Stream::default());
        }
        (
            GbState {
                tree,
                streams,
                slot_of_port,
                out: Vec::new(),
                end_sent: false,
            },
            Outbox::new(),
        )
    }

    fn round(
        &self,
        s: &mut GbState<T>,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Port, StreamMsg<T>)],
    ) -> Step<Self::Msg> {
        for (port, msg) in inbox {
            let slot = s.slot_of_port[port.index()];
            debug_assert_ne!(slot, usize::MAX, "messages only arrive from children");
            match msg {
                StreamMsg::Item(p) => s.streams[slot].buf.push_back(p.clone()),
                StreamMsg::End => s.streams[slot].ended = true,
            }
        }
        match s.tree.parent {
            None => {
                while let Some(p) = s.try_pop_min() {
                    s.out.push(p);
                }
                if s.exhausted() {
                    Step::halt()
                } else {
                    Step::idle()
                }
            }
            Some(parent) => {
                let mut out = Outbox::new();
                if let Some(p) = s.try_pop_min() {
                    out.send(parent, StreamMsg::Item(p));
                    Step::Continue(out)
                } else if s.exhausted() && !s.end_sent {
                    s.end_sent = true;
                    out.send(parent, StreamMsg::End);
                    Step::Halt(out)
                } else {
                    Step::idle()
                }
            }
        }
    }

    fn finish(&self, s: GbState<T>, _ctx: &NodeCtx<'_>) -> Self::Output {
        s.tree.parent.is_none().then_some(s.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::primitives::leader_bfs::LeaderBfs;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bfs_trees(g: &graphs::WeightedGraph, net: &mut Network<'_>) -> Vec<TreeInfo> {
        net.run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
            .unwrap()
            .outputs
            .into_iter()
            .map(|o| o.tree)
            .collect()
    }

    fn naive_best(lists: &[Vec<KeyedMin>]) -> Vec<KeyedMin> {
        let mut best: std::collections::BTreeMap<u32, KeyedMin> = std::collections::BTreeMap::new();
        for l in lists {
            for item in l {
                match best.get(&item.key) {
                    Some(b) if !item.better_than(b) => {}
                    _ => {
                        best.insert(item.key, item.clone());
                    }
                }
            }
        }
        best.into_values().collect()
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [4usize, 12, 40] {
            let g = generators::erdos_renyi_connected(n, 0.2, &mut rng).unwrap();
            let mut net = Network::new(&g, NetworkConfig::default());
            let trees = bfs_trees(&g, &mut net);
            let lists: Vec<Vec<KeyedMin>> = (0..n)
                .map(|v| {
                    (0..rng.gen_range(0usize..5))
                        .map(|i| KeyedMin {
                            key: rng.gen_range(0u32..6),
                            value: rng.gen_range(1u64..100),
                            tag: (v * 10 + i) as u64,
                        })
                        .collect()
                })
                .collect();
            let want = naive_best(&lists);
            let inputs: Vec<(TreeInfo, Vec<KeyedMin>)> =
                trees.into_iter().zip(lists.iter().cloned()).collect();
            let out = net
                .run("grouped_best", &GroupedBest::new(), inputs)
                .unwrap();
            let got = out.outputs[0].clone().expect("root output");
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn pipelines_many_keys_on_a_path() {
        let n = 20;
        let k = 25u32;
        let g = generators::path(n).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default());
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<KeyedMin>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| {
                let items = if v == n - 1 {
                    (0..k)
                        .map(|key| KeyedMin {
                            key,
                            value: key as u64 + 1,
                            tag: 0,
                        })
                        .collect()
                } else {
                    vec![]
                };
                (t, items)
            })
            .collect();
        let out = net.run("gb_path", &GroupedBest::new(), inputs).unwrap();
        assert_eq!(out.outputs[0].as_ref().unwrap().len(), k as usize);
        assert!(
            out.metrics.rounds <= (n as u64 - 1) + k as u64 + 4,
            "rounds = {} (pipelining bound)",
            out.metrics.rounds
        );
    }

    #[test]
    fn duplicate_keys_reduce_to_the_minimum_with_tag_tiebreak() {
        let g = generators::star(6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default());
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<KeyedMin>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| {
                (
                    t,
                    vec![KeyedMin {
                        key: 1,
                        value: 5,
                        tag: v as u64,
                    }],
                )
            })
            .collect();
        let out = net.run("gb_dup", &GroupedBest::new(), inputs).unwrap();
        let got = out.outputs[0].clone().unwrap();
        assert_eq!(
            got,
            vec![KeyedMin {
                key: 1,
                value: 5,
                tag: 0
            }]
        );
    }

    #[test]
    fn empty_inputs_terminate() {
        let g = generators::cycle(7).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default());
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Vec<KeyedMin>)> =
            trees.into_iter().map(|t| (t, vec![])).collect();
        let out = net.run("gb_empty", &GroupedBest::new(), inputs).unwrap();
        assert_eq!(out.outputs[0], Some(vec![]));
    }
}
