//! Broadcast down a tree/forest: a single item, or a pipelined stream of
//! `k` items in `O(k + height)` rounds.

use crate::algorithm::{Algorithm, FinishResult, Outbox, ProtocolViolation, Step};
use crate::message::{Message, TAG_BITS};
use crate::node::{NodeCtx, Port, TreeInfo};
use std::collections::VecDeque;
use std::marker::PhantomData;

/// Single-item broadcast: each root's item reaches every node of its tree.
/// Rounds: `height + 1`.
#[derive(Clone, Debug, Default)]
pub struct Broadcast<T> {
    // `fn() -> T` keeps the marker `Send + Sync` for any `T`: these
    // protocol structs carry no `T` values, and the parallel executor
    // shares them across workers.
    _marker: PhantomData<fn() -> T>,
}

impl<T> Broadcast<T> {
    /// Creates the phase object.
    pub fn new() -> Self {
        Broadcast {
            _marker: PhantomData,
        }
    }
}

/// Node state for [`Broadcast`].
#[derive(Debug)]
pub struct BcState<T> {
    tree: TreeInfo,
    item: Option<T>,
}

impl<T: Message> Algorithm for Broadcast<T> {
    /// `(TreeInfo, Some(item))` at roots, `(TreeInfo, None)` elsewhere.
    type Input = (TreeInfo, Option<T>);
    type State = BcState<T>;
    type Msg = T;
    type Output = T;

    fn boot(&self, _ctx: &NodeCtx<'_>, (tree, item): Self::Input) -> (BcState<T>, Outbox<T>) {
        let mut out = Outbox::new();
        if let Some(it) = &item {
            debug_assert!(tree.is_root(), "only roots may hold the initial item");
            out.send_all(tree.children.iter().copied(), it.clone());
        }
        (BcState { tree, item }, out)
    }

    fn round(&self, s: &mut BcState<T>, _ctx: &NodeCtx<'_>, inbox: &[(Port, T)]) -> Step<T> {
        if s.item.is_some() {
            // Root: sent at boot; done.
            return Step::halt();
        }
        if let Some((_, item)) = inbox.first() {
            s.item = Some(item.clone());
            let mut out = Outbox::new();
            out.send_all(s.tree.children.iter().copied(), item.clone());
            return Step::Halt(out);
        }
        Step::idle()
    }

    fn finish(&self, s: BcState<T>, _ctx: &NodeCtx<'_>) -> FinishResult<T> {
        // A protocol violation (inconsistent forest input), not a panic:
        // the engine reports it as a typed `CongestError::Protocol`.
        s.item.ok_or_else(|| {
            ProtocolViolation::new("never received the broadcast (is the forest consistent?)")
        })
    }
}

/// Messages of the pipelined stream primitives: a data item or the
/// end-of-stream marker.
#[derive(Clone, Debug)]
pub enum StreamMsg<T> {
    /// One data item.
    Item(T),
    /// No more items will follow on this edge.
    End,
}

impl<T: Message> Message for StreamMsg<T> {
    fn bit_len(&self) -> usize {
        match self {
            StreamMsg::Item(t) => TAG_BITS + t.bit_len(),
            StreamMsg::End => TAG_BITS,
        }
    }
}

/// Pipelined multi-item broadcast: each root's item list reaches every node
/// of its tree, in order, one item per edge per round. Rounds:
/// `k + height + 1`.
#[derive(Clone, Debug, Default)]
pub struct BroadcastItems<T> {
    // `fn() -> T` keeps the marker `Send + Sync` for any `T`: these
    // protocol structs carry no `T` values, and the parallel executor
    // shares them across workers.
    _marker: PhantomData<fn() -> T>,
}

impl<T> BroadcastItems<T> {
    /// Creates the phase object.
    pub fn new() -> Self {
        BroadcastItems {
            _marker: PhantomData,
        }
    }
}

/// Node state for [`BroadcastItems`].
#[derive(Debug)]
pub struct BciState<T> {
    tree: TreeInfo,
    /// Items still to be sent downstream (roots: the input list).
    queue: VecDeque<T>,
    /// Everything seen (output).
    received: Vec<T>,
    /// The upstream marked end (roots: true from the start).
    upstream_done: bool,
}

impl<T: Message> Algorithm for BroadcastItems<T> {
    /// Roots: the item list; non-roots must pass an empty list.
    type Input = (TreeInfo, Vec<T>);
    type State = BciState<T>;
    type Msg = StreamMsg<T>;
    type Output = Vec<T>;

    fn boot(
        &self,
        _ctx: &NodeCtx<'_>,
        (tree, items): Self::Input,
    ) -> (BciState<T>, Outbox<StreamMsg<T>>) {
        let is_root = tree.is_root();
        debug_assert!(is_root || items.is_empty(), "only roots may hold items");
        let state = BciState {
            tree,
            received: items.clone(),
            queue: items.into(),
            upstream_done: is_root,
        };
        (state, Outbox::new())
    }

    fn round(
        &self,
        s: &mut BciState<T>,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Port, StreamMsg<T>)],
    ) -> Step<StreamMsg<T>> {
        for (_, msg) in inbox {
            match msg {
                StreamMsg::Item(t) => {
                    s.received.push(t.clone());
                    s.queue.push_back(t.clone());
                }
                StreamMsg::End => s.upstream_done = true,
            }
        }
        let mut out = Outbox::new();
        if let Some(item) = s.queue.pop_front() {
            out.send_all(s.tree.children.iter().copied(), StreamMsg::Item(item));
            Step::Continue(out)
        } else if s.upstream_done {
            out.send_all(s.tree.children.iter().copied(), StreamMsg::End);
            Step::Halt(out)
        } else {
            Step::idle()
        }
    }

    fn finish(&self, s: BciState<T>, _ctx: &NodeCtx<'_>) -> FinishResult<Vec<T>> {
        Ok(s.received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::primitives::leader_bfs::LeaderBfs;
    use graphs::generators;

    fn bfs_trees(g: &graphs::WeightedGraph, net: &mut Network<'_>) -> Vec<TreeInfo> {
        net.run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
            .unwrap()
            .outputs
            .into_iter()
            .map(|o| o.tree)
            .collect()
    }

    #[test]
    fn single_broadcast_reaches_everyone() {
        let g = generators::grid2d(4, 4).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let inputs: Vec<(TreeInfo, Option<u64>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| (t, (v == 0).then_some(42u64)))
            .collect();
        let out = net.run("bcast", &Broadcast::new(), inputs).unwrap();
        assert!(out.outputs.iter().all(|&x| x == 42));
        assert!(out.metrics.rounds <= 6 + 2);
    }

    #[test]
    fn pipelined_broadcast_delivers_all_items_in_order() {
        let g = generators::path(10).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let trees = bfs_trees(&g, &mut net);
        let items: Vec<u64> = (100..120).collect();
        let inputs: Vec<(TreeInfo, Vec<u64>)> = trees
            .into_iter()
            .enumerate()
            .map(|(v, t)| (t, if v == 0 { items.clone() } else { vec![] }))
            .collect();
        let out = net
            .run("bcast_items", &BroadcastItems::new(), inputs)
            .unwrap();
        for o in &out.outputs {
            assert_eq!(o, &items);
        }
        // Pipelining: k + depth + slack, NOT k * depth.
        assert!(
            out.metrics.rounds <= 20 + 9 + 3,
            "rounds = {}",
            out.metrics.rounds
        );
    }

    #[test]
    fn missing_broadcast_is_a_violation_not_a_panic() {
        // A node that never received the item reports a protocol
        // violation from `finish` instead of aborting the process.
        let state: BcState<u64> = BcState {
            tree: TreeInfo {
                parent: Some(crate::node::Port(0)),
                children: vec![],
                depth: 1,
            },
            item: None,
        };
        let neighbors = [crate::node::NeighborInfo {
            id: graphs::NodeId::new(1),
            weight: 1,
            edge: graphs::EdgeId::new(0),
        }];
        let ctx = crate::node::NodeCtx {
            node: graphs::NodeId::new(0),
            n: 2,
            bandwidth_bits: 64,
            round: 1,
            neighbors: &neighbors,
            suspected: &[],
        };
        let err = Broadcast::<u64>::new().finish(state, &ctx).unwrap_err();
        assert!(err.reason.contains("never received"));
    }

    #[test]
    fn forest_broadcast_stays_within_fragments() {
        // Path of 6 split into {0,1,2} rooted at 0 and {3,4,5} rooted at 3.
        let g = generators::path(6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let t = |parent: Option<u32>, children: Vec<u32>, depth: u32| TreeInfo {
            parent: parent.map(Port),
            children: children.into_iter().map(Port).collect(),
            depth,
        };
        let inputs: Vec<(TreeInfo, Vec<u64>)> = vec![
            (t(None, vec![0], 0), vec![7, 8]),
            (t(Some(0), vec![1], 1), vec![]),
            (t(Some(0), vec![], 2), vec![]),
            (t(None, vec![1], 0), vec![9]),
            (t(Some(0), vec![1], 1), vec![]),
            (t(Some(0), vec![], 2), vec![]),
        ];
        let out = net
            .run("forest_bcast", &BroadcastItems::new(), inputs)
            .unwrap();
        assert_eq!(out.outputs[2], vec![7, 8]);
        assert_eq!(out.outputs[5], vec![9]);
        assert_eq!(out.outputs[4], vec![9]);
    }
}
