//! Subtree aggregation with **per-node** outputs.
//!
//! * [`SubtreeSums`] — every node learns the sum of the input values over
//!   its own subtree (`O(height)` rounds). The distributed counterpart of
//!   `trees::subtree::subtree_sums`, used by the paper's Step 3
//!   (`Σ_{u ∈ Fᵢ ∩ v↓} δ(u)`).
//! * [`KeyedSubtreeSum`] — every node holds `(key, value)` tokens where
//!   keys name **ancestors** (or the node itself) in the same tree; streams
//!   merge upward in sorted key order and each node extracts the total for
//!   its own key as the streams pass. `O(k + height)` rounds. This is the
//!   paper's Step 5 type-(ii) counting: "every node `u` has to send the
//!   number of messages `⟨v⟩` to its parent, for all `v` that is an
//!   ancestor of `u` in the same fragment … by pipelining".
//!
//! The stream protocol of [`KeyedSubtreeSum`] lives in
//! [`crate::primitives::merge`]; this module adds the per-node
//! interception (claim the batches keyed by the node's own id before
//! relaying the rest).

use crate::algorithm::{Algorithm, FinishResult, Outbox, Step};
use crate::node::{NodeCtx, Port, TreeInfo};
use crate::primitives::broadcast::StreamMsg;
use crate::primitives::grouped::{KeyedSum, SumMonoid};
use crate::primitives::merge::KeyedStreamReduce;

/// Per-node subtree sums over a tree/forest. Input: `(TreeInfo, u64)`;
/// output at **every** node: the sum over its subtree.
#[derive(Clone, Debug, Default)]
pub struct SubtreeSums;

impl SubtreeSums {
    /// Creates the phase object.
    pub fn new() -> Self {
        SubtreeSums
    }
}

/// Node state for [`SubtreeSums`].
#[derive(Debug)]
pub struct SsState {
    tree: TreeInfo,
    acc: u64,
    waiting: usize,
    sent: bool,
}

impl Algorithm for SubtreeSums {
    type Input = (TreeInfo, u64);
    type State = SsState;
    type Msg = u64;
    type Output = u64;

    fn boot(&self, _ctx: &NodeCtx<'_>, (tree, value): Self::Input) -> (SsState, Outbox<u64>) {
        let waiting = tree.children.len();
        (
            SsState {
                tree,
                acc: value,
                waiting,
                sent: false,
            },
            Outbox::new(),
        )
    }

    fn round(&self, s: &mut SsState, _ctx: &NodeCtx<'_>, inbox: &[(Port, u64)]) -> Step<u64> {
        for (_, v) in inbox {
            s.acc += v;
            s.waiting -= 1;
        }
        if s.waiting == 0 && !s.sent {
            s.sent = true;
            match s.tree.parent {
                Some(p) => {
                    let mut o = Outbox::new();
                    o.send(p, s.acc);
                    Step::Halt(o)
                }
                None => Step::halt(),
            }
        } else {
            Step::idle()
        }
    }

    fn finish(&self, s: SsState, _ctx: &NodeCtx<'_>) -> FinishResult<u64> {
        Ok(s.acc)
    }
}

/// Keyed subtree sums with per-node extraction (see module docs).
///
/// Input: `(TreeInfo, tokens)` where every token's key is the **id of an
/// ancestor in the same tree** (or the node's own id). Output at every
/// node: the total of tokens keyed by *its own id* within its subtree.
/// Tokens keyed by nodes outside the subtree's ancestor chain would be
/// forwarded to the root and dropped there (a debug assertion catches
/// misuse).
#[derive(Clone, Debug, Default)]
pub struct KeyedSubtreeSum;

impl KeyedSubtreeSum {
    /// Creates the phase object.
    pub fn new() -> Self {
        KeyedSubtreeSum
    }
}

/// Node state for [`KeyedSubtreeSum`]: the shared reducer core plus the
/// node's own running total.
#[derive(Debug)]
pub struct KsState {
    core: KeyedStreamReduce<SumMonoid>,
    is_root: bool,
    my_total: u64,
}

impl Algorithm for KeyedSubtreeSum {
    type Input = (TreeInfo, Vec<(u64, u64)>);
    type State = KsState;
    type Msg = StreamMsg<KeyedSum>;
    type Output = u64;

    fn boot(&self, ctx: &NodeCtx<'_>, (tree, items): Self::Input) -> (KsState, Outbox<Self::Msg>) {
        let own = items
            .into_iter()
            .map(|(key, value)| KeyedSum { key, value })
            .collect();
        (
            KsState {
                is_root: tree.is_root(),
                core: KeyedStreamReduce::new(ctx, &tree, own),
                my_total: 0,
            },
            Outbox::new(),
        )
    }

    fn round(
        &self,
        s: &mut KsState,
        ctx: &NodeCtx<'_>,
        inbox: &[(Port, StreamMsg<KeyedSum>)],
    ) -> Step<Self::Msg> {
        s.core.absorb(inbox);
        let me = ctx.node.raw() as u64;
        // Claim every decided batch for our own key before relaying one
        // batch upward; our key never travels further.
        while s.core.peek_key() == Some(me) {
            let p = s.core.pop_min().expect("peeked key is decided");
            s.my_total += p.value;
        }
        let my_total = &mut s.my_total;
        let is_root = s.is_root;
        s.core.relay_round(|p| {
            // Only the root's sink is ever invoked: it drains and drops
            // foreign keys (which should not exist when used per
            // contract) while batches for its own id were claimed above
            // or land here between foreign drains.
            debug_assert!(is_root);
            debug_assert_eq!(
                p.key, me,
                "token keyed by {} reached the root {} — key was not an ancestor",
                p.key, me
            );
            if p.key == me {
                *my_total += p.value;
            }
        })
    }

    fn finish(&self, s: KsState, _ctx: &NodeCtx<'_>) -> FinishResult<u64> {
        Ok(s.my_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::primitives::leader_bfs::LeaderBfs;
    use graphs::generators;
    use graphs::NodeId;

    fn bfs_outputs(
        g: &graphs::WeightedGraph,
        net: &mut Network<'_>,
    ) -> Vec<crate::primitives::leader_bfs::LeaderBfsOutput> {
        net.run("leader_bfs", &LeaderBfs::new(), vec![(); g.node_count()])
            .unwrap()
            .outputs
    }

    #[test]
    fn subtree_sums_match_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let g = generators::erdos_renyi_connected(50, 0.08, &mut rng).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let outs = bfs_outputs(&g, &mut net);
        let vals: Vec<u64> = (0..50).map(|_| rng.gen_range(0..100)).collect();
        let inputs: Vec<(TreeInfo, u64)> = outs
            .iter()
            .zip(vals.iter())
            .map(|(o, &v)| (o.tree.clone(), v))
            .collect();
        let got = net.run("ss", &SubtreeSums::new(), inputs).unwrap().outputs;
        // Sequential oracle over the same tree.
        let parent_ids: Vec<Option<NodeId>> = outs
            .iter()
            .enumerate()
            .map(|(v, o)| {
                o.tree
                    .parent
                    .map(|p| g.neighbors(NodeId::from_index(v))[p.index()].neighbor)
            })
            .collect();
        let rt = trees::RootedTree::from_parents(NodeId::new(0), &parent_ids).unwrap();
        let want = trees::subtree::subtree_sums(&rt, &vals);
        assert_eq!(got, want);
    }

    #[test]
    fn keyed_sums_deliver_to_each_ancestor() {
        // Path 0-1-2-3-4 rooted at 0: tokens keyed by various ancestors.
        let g = generators::path(5).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let outs = bfs_outputs(&g, &mut net);
        // Node 4 holds tokens for ancestors 0, 2 and itself; node 3 for 1;
        // node 2 for 2 (itself); node 1 for 0.
        let tokens: Vec<Vec<(u64, u64)>> = vec![
            vec![],
            vec![(0, 5)],
            vec![(2, 7)],
            vec![(1, 11)],
            vec![(0, 1), (2, 2), (4, 3)],
        ];
        let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = outs
            .iter()
            .zip(tokens.iter())
            .map(|(o, t)| (o.tree.clone(), t.clone()))
            .collect();
        let got = net
            .run("ks", &KeyedSubtreeSum::new(), inputs)
            .unwrap()
            .outputs;
        assert_eq!(got, vec![6, 11, 9, 0, 3]);
    }

    #[test]
    fn keyed_sums_on_random_trees_match_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let g = generators::erdos_renyi_connected(40, 0.1, &mut rng).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let outs = bfs_outputs(&g, &mut net);
        let parent_ids: Vec<Option<NodeId>> = outs
            .iter()
            .enumerate()
            .map(|(v, o)| {
                o.tree
                    .parent
                    .map(|p| g.neighbors(NodeId::from_index(v))[p.index()].neighbor)
            })
            .collect();
        let rt = trees::RootedTree::from_parents(NodeId::new(0), &parent_ids).unwrap();
        // Tokens: every node emits a token for each of up to 3 random
        // ancestors (including itself).
        let mut tokens: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 40];
        let mut want = vec![0u64; 40];
        for v in 0..40u32 {
            let ancs: Vec<NodeId> = rt.ancestors(NodeId::new(v)).collect();
            for _ in 0..rng.gen_range(0..4) {
                let a = ancs[rng.gen_range(0..ancs.len())];
                let w = rng.gen_range(1..50u64);
                tokens[v as usize].push((a.raw() as u64, w));
                want[a.index()] += w;
            }
        }
        let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = outs
            .iter()
            .zip(tokens.iter())
            .map(|(o, t)| (o.tree.clone(), t.clone()))
            .collect();
        let got = net
            .run("ks_rand", &KeyedSubtreeSum::new(), inputs)
            .unwrap()
            .outputs;
        assert_eq!(got, want);
    }

    #[test]
    fn forest_variant_works_per_fragment() {
        // Path of 6 split into {0,1,2} and {3,4,5}.
        let g = generators::path(6).unwrap();
        let mut net = Network::new(&g, NetworkConfig::default()).unwrap();
        let t = |parent: Option<u32>, children: Vec<u32>, depth: u32| TreeInfo {
            parent: parent.map(Port),
            children: children.into_iter().map(Port).collect(),
            depth,
        };
        let trees = vec![
            t(None, vec![0], 0),
            t(Some(0), vec![1], 1),
            t(Some(0), vec![], 2),
            t(None, vec![1], 0),
            t(Some(0), vec![1], 1),
            t(Some(0), vec![], 2),
        ];
        let tokens: Vec<Vec<(u64, u64)>> = vec![
            vec![(0, 1)],
            vec![(0, 2)],
            vec![(1, 4), (0, 8)],
            vec![(3, 16)],
            vec![(3, 32)],
            vec![(4, 64), (5, 128)],
        ];
        let inputs: Vec<(TreeInfo, Vec<(u64, u64)>)> = trees.into_iter().zip(tokens).collect();
        let got = net
            .run("ks_forest", &KeyedSubtreeSum::new(), inputs)
            .unwrap()
            .outputs;
        assert_eq!(got, vec![11, 4, 0, 48, 64, 128]);
    }
}
