//! The shared pipelined sorted-stream merge core.
//!
//! [`GroupedSum`](crate::primitives::GroupedSum),
//! [`GroupedBest`](crate::primitives::GroupedBest), and
//! [`KeyedSubtreeSum`](crate::primitives::KeyedSubtreeSum) are all the same
//! protocol: every node merges its children's sorted keyed streams with its
//! own pre-sorted input, reduces equal-key runs, and relays the result
//! upward one item per round. This module owns that protocol **once** —
//! the child-stream buffers, the readiness rule, the end-of-stream
//! accounting, and the per-round emission budget — so a protocol fix lands
//! in one place. The three public primitives are thin monoid
//! instantiations over [`KeyedStreamReduce`].
//!
//! # The monoid contract
//!
//! A [`KeyedMonoid`] names an item type, a `u64` grouping key, and a
//! `combine` operation. `combine` must be **associative** and
//! **commutative** on items of equal key: the core reduces an equal-key
//! run in whatever order the streams deliver it, and different tree shapes
//! reduce the same multiset in different orders. (For argmin-style monoids
//! this means the preference order must be a *strict total* order — ties
//! would make the result shape-dependent.) Under that contract the root's
//! output is independent of the tree and equals the sequential fold of all
//! inputs, which is what the per-protocol oracle tests assert.
//!
//! # Invariants owned here
//!
//! * **Sorted streams** — the node's own input is sorted and pre-reduced
//!   at [`KeyedStreamReduce::new`]; each child's stream arrives sorted
//!   because the child ran the same protocol. Merging sorted streams and
//!   emitting the minimum key keeps the outgoing stream sorted.
//! * **Readiness** — a key may only be emitted when *every* stream is
//!   ready (has a buffered item or has ended); otherwise a smaller key
//!   could still arrive and break the sorted-output invariant.
//! * **`End` accounting** — each child sends exactly one
//!   [`StreamMsg::End`] after its last item; the node sends its own `End`
//!   exactly once, after all streams are exhausted.
//! * **Emission budget** — a non-root relays at most **one** item per
//!   round, so a phase never puts more than one `StreamMsg` on an edge
//!   per round and the per-message bound is the per-round bound.
//!
//! # Bit-budget math
//!
//! With bandwidth `β·⌈log₂ n⌉` bits per edge per round (β = 8 by
//! default), one `StreamMsg::Item` must fit in that budget. An item costs
//! `TAG_BITS` (enum discriminants) plus its key and payload bits, where a
//! key costs `⌈log₂(key + 1)⌉` bits. Keys are `u64` end-to-end: the
//! widest key in the workspace is the driver's case-2 attachment-pair
//! packing `lo·n + hi < n²`, i.e. at most `2⌈log₂ n⌉` key bits — within
//! the default budget for every `n` (this is what lifts the old
//! `n ≤ 65535` cap of the `u32` packing), leaving `(β − 2)⌈log₂ n⌉ −
//! O(1)` bits for the payload, enough for `poly(n)` values.

use crate::algorithm::{Outbox, Step};
use crate::message::Message;
use crate::node::{NodeCtx, Port, TreeInfo};
use crate::primitives::broadcast::StreamMsg;
use std::collections::VecDeque;

/// The reduction contract of [`KeyedStreamReduce`]: a keyed item type
/// whose equal-key items form a commutative semigroup under `combine`
/// (see the module docs for why commutativity and associativity are
/// required, and the bit-budget section for what an item may cost).
pub trait KeyedMonoid {
    /// The stream item carried on the wire.
    type Item: Message;

    /// The `u64` grouping key of an item. Streams travel in increasing
    /// key order.
    fn key(item: &Self::Item) -> u64;

    /// Reduces two items of the same key into one. Must be associative
    /// and commutative for equal keys.
    fn combine(a: Self::Item, b: Self::Item) -> Self::Item;
}

/// One incoming stream: a child's, or the node's own input.
#[derive(Debug)]
struct Stream<T> {
    buf: VecDeque<T>,
    ended: bool,
}

impl<T> Stream<T> {
    /// Ready = the stream cannot later produce a smaller key than its
    /// front: something is buffered, or it has ended.
    fn ready(&self) -> bool {
        self.ended || !self.buf.is_empty()
    }
}

/// The pipelined keyed-stream reducer: merges the node's own sorted input
/// with its children's sorted streams, reducing equal keys via
/// [`KeyedMonoid::combine`], and relays the merged stream to the parent
/// one item per round ([`KeyedStreamReduce::relay_round`]).
///
/// This is per-node *state*, not an [`crate::Algorithm`]: the thin
/// protocol wrappers ([`crate::primitives::GroupedSum`] and friends)
/// embed it and differ only in what they do with decided batches.
#[derive(Debug)]
pub struct KeyedStreamReduce<M: KeyedMonoid> {
    /// Port to the parent (`None` at a root).
    parent: Option<Port>,
    /// Slot 0 = the node's own input; 1.. = children in tree order.
    streams: Vec<Stream<M::Item>>,
    /// Port index → stream slot (`usize::MAX` for non-child ports).
    slot_of_port: Vec<usize>,
    /// The node's own `End` has been relayed.
    end_sent: bool,
}

impl<M: KeyedMonoid> KeyedStreamReduce<M> {
    /// Builds the reducer for one node: sorts and pre-reduces `own`
    /// (arbitrary order, duplicate keys allowed) and opens one stream per
    /// child of `tree`. `ctx` supplies the node's degree for the port
    /// map.
    pub fn new(ctx: &NodeCtx<'_>, tree: &TreeInfo, mut own: Vec<M::Item>) -> Self {
        own.sort_unstable_by_key(M::key);
        let mut merged: VecDeque<M::Item> = VecDeque::with_capacity(own.len());
        for item in own {
            match merged.back_mut() {
                Some(last) if M::key(last) == M::key(&item) => {
                    let prev = merged.pop_back().expect("back exists");
                    merged.push_back(M::combine(prev, item));
                }
                _ => merged.push_back(item),
            }
        }
        let mut streams = Vec::with_capacity(1 + tree.children.len());
        streams.push(Stream {
            buf: merged,
            ended: true, // the node's own input is complete from the start
        });
        let mut slot_of_port = vec![usize::MAX; ctx.degree()];
        for (i, &c) in tree.children.iter().enumerate() {
            slot_of_port[c.index()] = 1 + i;
            streams.push(Stream {
                buf: VecDeque::new(),
                ended: false,
            });
        }
        KeyedStreamReduce {
            parent: tree.parent,
            streams,
            slot_of_port,
            end_sent: false,
        }
    }

    /// Feeds one round's inbox into the stream buffers. Items append to
    /// the sender's stream; `End` closes it. Messages may only arrive
    /// from child ports.
    pub fn absorb(&mut self, inbox: &[(Port, StreamMsg<M::Item>)]) {
        for (port, msg) in inbox {
            let slot = self.slot_of_port[port.index()];
            debug_assert_ne!(slot, usize::MAX, "messages only arrive from children");
            match msg {
                StreamMsg::Item(p) => self.streams[slot].buf.push_back(p.clone()),
                StreamMsg::End => self.streams[slot].ended = true,
            }
        }
    }

    /// The next key that could be emitted: the minimum buffered key, but
    /// only once every stream is ready (otherwise a smaller key could
    /// still arrive).
    pub fn peek_key(&self) -> Option<u64> {
        if !self.streams.iter().all(Stream::ready) {
            return None;
        }
        self.streams
            .iter()
            .filter_map(|s| s.buf.front().map(M::key))
            .min()
    }

    /// If a key is decided ([`KeyedStreamReduce::peek_key`]), pops its
    /// whole equal-key run from every stream and reduces it to one item.
    pub fn pop_min(&mut self) -> Option<M::Item> {
        let k = self.peek_key()?;
        let mut acc: Option<M::Item> = None;
        for s in &mut self.streams {
            while s.buf.front().map(M::key) == Some(k) {
                let item = s.buf.pop_front().expect("front exists");
                acc = Some(match acc {
                    Some(a) => M::combine(a, item),
                    None => item,
                });
            }
        }
        acc
    }

    /// All streams ended and drained.
    pub fn exhausted(&self) -> bool {
        self.streams.iter().all(|s| s.ended && s.buf.is_empty())
    }

    /// The shared per-round emission step.
    ///
    /// * **Root** (no parent): drains every decided batch into `sink`,
    ///   halting once all streams are exhausted.
    /// * **Non-root**: relays at most one decided batch to the parent
    ///   (the per-round emission budget — one `StreamMsg` per edge per
    ///   round), or the node's single `End` once exhausted; `sink` is
    ///   not called.
    ///
    /// Call [`KeyedStreamReduce::absorb`] (and any protocol-specific
    /// interception, e.g. claiming own-key batches) before this.
    pub fn relay_round<F: FnMut(M::Item)>(&mut self, mut sink: F) -> Step<StreamMsg<M::Item>> {
        match self.parent {
            None => {
                while let Some(item) = self.pop_min() {
                    sink(item);
                }
                if self.exhausted() {
                    Step::halt()
                } else {
                    Step::idle()
                }
            }
            Some(parent) => {
                let mut out = Outbox::new();
                if let Some(item) = self.pop_min() {
                    out.send(parent, StreamMsg::Item(item));
                    Step::Continue(out)
                } else if self.exhausted() && !self.end_sent {
                    self.end_sent = true;
                    out.send(parent, StreamMsg::End);
                    Step::Halt(out)
                } else {
                    Step::idle()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NeighborInfo;
    use crate::primitives::grouped::{KeyedSum, SumMonoid};
    use graphs::{EdgeId, NodeId};

    fn ctx_with_degree(neighbors: &[NeighborInfo]) -> NodeCtx<'_> {
        NodeCtx {
            node: NodeId::new(0),
            n: 8,
            bandwidth_bits: 64,
            round: 1,
            neighbors,
            suspected: &[],
        }
    }

    fn nbrs(degree: usize) -> Vec<NeighborInfo> {
        (0..degree)
            .map(|i| NeighborInfo {
                id: NodeId::new(i as u32 + 1),
                weight: 1,
                edge: EdgeId::new(i as u32),
            })
            .collect()
    }

    fn item(key: u64, value: u64) -> StreamMsg<KeyedSum> {
        StreamMsg::Item(KeyedSum { key, value })
    }

    /// Readiness gating: nothing is decided while a child stream is
    /// silent, even when another child already ended — and `End`s
    /// arriving in any order across streams unblock correctly.
    #[test]
    fn out_of_order_ends_do_not_unblock_early() {
        let neighbors = nbrs(3);
        let ctx = ctx_with_degree(&neighbors);
        let tree = TreeInfo {
            parent: None,
            children: vec![Port(0), Port(1), Port(2)],
            depth: 0,
        };
        let mut core: KeyedStreamReduce<SumMonoid> =
            KeyedStreamReduce::new(&ctx, &tree, vec![KeyedSum { key: 5, value: 1 }]);
        // Child 1 ends before sending anything; child 2 sends an item.
        core.absorb(&[(Port(1), StreamMsg::End), (Port(2), item(5, 2))]);
        // Child 0 is still silent: no key is decided.
        assert_eq!(core.peek_key(), None);
        assert!(core.pop_min().is_none());
        // Child 0's item arrives later, with a *smaller* key — exactly
        // what popping early would have mis-ordered.
        core.absorb(&[(Port(0), item(3, 7))]);
        assert_eq!(core.peek_key(), Some(3));
        let first = core.pop_min().expect("key 3 decided");
        assert_eq!((first.key, first.value), (3, 7));
        // Key 5 is not decided until child 0 and child 2 end too.
        assert_eq!(core.peek_key(), None);
        core.absorb(&[(Port(0), StreamMsg::End), (Port(2), StreamMsg::End)]);
        let second = core.pop_min().expect("key 5 decided");
        assert_eq!((second.key, second.value), (5, 3));
        assert!(core.exhausted());
    }

    /// The node's own duplicate keys are pre-reduced at construction.
    #[test]
    fn own_input_is_sorted_and_reduced() {
        let neighbors = nbrs(0);
        let ctx = ctx_with_degree(&neighbors);
        let mut core: KeyedStreamReduce<SumMonoid> = KeyedStreamReduce::new(
            &ctx,
            &TreeInfo::default(),
            vec![
                KeyedSum { key: 9, value: 1 },
                KeyedSum { key: 2, value: 2 },
                KeyedSum { key: 9, value: 4 },
            ],
        );
        let a = core.pop_min().unwrap();
        assert_eq!((a.key, a.value), (2, 2));
        let b = core.pop_min().unwrap();
        assert_eq!((b.key, b.value), (9, 5));
        assert!(core.pop_min().is_none() && core.exhausted());
    }

    /// A childless root with empty input halts immediately; a non-root
    /// sends exactly one `End` and halts.
    #[test]
    fn empty_streams_terminate_with_one_end() {
        let neighbors = nbrs(1);
        let ctx = ctx_with_degree(&neighbors);
        let mut root: KeyedStreamReduce<SumMonoid> =
            KeyedStreamReduce::new(&ctx, &TreeInfo::default(), vec![]);
        assert!(matches!(root.relay_round(|_| ()), Step::Halt(o) if o.is_empty()));
        let leaf_tree = TreeInfo {
            parent: Some(Port(0)),
            children: vec![],
            depth: 1,
        };
        let mut leaf: KeyedStreamReduce<SumMonoid> =
            KeyedStreamReduce::new(&ctx, &leaf_tree, vec![]);
        match leaf.relay_round(|_| ()) {
            Step::Halt(o) => assert_eq!(o.len(), 1), // the End marker
            Step::Continue(_) => panic!("leaf must halt after its End"),
        }
    }

    /// Non-roots emit at most one item per round (the emission budget).
    #[test]
    fn non_root_relays_one_item_per_round() {
        let neighbors = nbrs(1);
        let ctx = ctx_with_degree(&neighbors);
        let tree = TreeInfo {
            parent: Some(Port(0)),
            children: vec![],
            depth: 1,
        };
        let mut core: KeyedStreamReduce<SumMonoid> = KeyedStreamReduce::new(
            &ctx,
            &tree,
            (0..4).map(|k| KeyedSum { key: k, value: 1 }).collect(),
        );
        for _ in 0..4 {
            match core.relay_round(|_| ()) {
                Step::Continue(o) => assert_eq!(o.len(), 1),
                Step::Halt(_) => panic!("items remain"),
            }
        }
        assert!(matches!(core.relay_round(|_| ()), Step::Halt(o) if o.len() == 1));
    }
}
