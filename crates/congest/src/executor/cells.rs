//! Interior-mutability primitives for the round executors.
//!
//! This is the **only** module in the crate that uses `unsafe` (the crate
//! root is `#![deny(unsafe_code)]`, and this module plus
//! [`super::sweep`] opt back in). Everything here is `pub(crate)` and
//! sound only under the executors' disjointness discipline:
//!
//! * **Node cells** (`SyncCells<NodeCell<_>>`, and the boot-input cells):
//!   node `v` is processed by exactly one worker per sweep — workers claim
//!   *disjoint* contiguous chunks from a monotone atomic cursor — so
//!   `get_mut(v)` is exclusive for the duration of the sweep.
//! * **Message slots** (`SlotArena::slot_mut`): a slot names one directed
//!   edge `(u → v)`, grouped CSR-style by destination. Within one round a
//!   slot is written only through `write_slot` of its unique sender `u`
//!   (the engine's `DoubleSend` rule: at most one message per (edge,
//!   direction) per round) and never read, because reads go to the *other*
//!   arena of the double buffer; in the next round it is read/cleared only
//!   by the unique worker that owns destination `v`.
//! * **Cross-round ordering**: the serial executor is single-threaded; the
//!   parallel executor joins all workers (`std::thread::scope`) between
//!   sweeps, which establishes happens-before between a round's writes and
//!   the next round's reads.
//!
//! Per-destination pending counts are genuinely contended (many senders,
//! one destination) and therefore atomic, not `UnsafeCell`.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
#[cfg(debug_assertions)]
use std::sync::atomic::AtomicU64;
use std::sync::atomic::{AtomicU32, Ordering};

/// A slice of values individually mutable through a shared reference,
/// provided callers access disjoint indices (see the module docs).
///
/// Debug builds carry a per-cell **exclusivity tag**: before a
/// contract-bearing access, the executor stamps the cell with the
/// current sweep epoch via [`SyncCells::claim`]. Two claims of the same
/// cell in the same epoch mean two workers believed they owned it — the
/// exact discipline violation the `unsafe` here relies on never
/// happening — and abort loudly instead of racing silently. Release
/// builds compile the tags away entirely.
pub(crate) struct SyncCells<T> {
    cells: Vec<UnsafeCell<T>>,
    /// Last claim epoch per cell (`u64::MAX` = never claimed; real
    /// epochs are sweep numbers, bounded by the round cap).
    #[cfg(debug_assertions)]
    claims: Vec<AtomicU64>,
}

// SAFETY: `SyncCells` hands out `&mut T` across threads only via the
// `unsafe` accessor below, whose contract requires exclusive per-index
// access; sending the `T`s themselves between threads requires `T: Send`.
unsafe impl<T: Send> Sync for SyncCells<T> {}

impl<T> SyncCells<T> {
    /// Wraps `values` into individually-mutable cells.
    pub(crate) fn new(values: Vec<T>) -> Self {
        #[cfg(debug_assertions)]
        let claims = (0..values.len())
            .map(|_| AtomicU64::new(u64::MAX))
            .collect();
        SyncCells {
            cells: values.into_iter().map(UnsafeCell::new).collect(),
            #[cfg(debug_assertions)]
            claims,
        }
    }

    /// Stamps cell `i` as claimed for `epoch` (debug builds only),
    /// asserting no other claim of the same cell happened in the same
    /// epoch. Executors call this at every contract-bearing access —
    /// node-cell chunks with the sweep number, slot writes with the
    /// writing round, slot takes with the reading round — so a broken
    /// disjointness discipline fails an assertion instead of racing.
    /// The atomic swap makes even two *racing* claimants observe each
    /// other: at least one sees the other's epoch.
    #[inline]
    pub(crate) fn claim(&self, i: usize, epoch: u64) {
        #[cfg(debug_assertions)]
        {
            let prev = self.claims[i].swap(epoch, Ordering::Relaxed);
            assert_ne!(
                prev, epoch,
                "executor exclusivity violation: cell {i} claimed twice in epoch {epoch}"
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = (i, epoch);
    }

    /// Exclusive access to cell `i` through a shared reference.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no other reference (shared or
    /// exclusive) to cell `i` exists for the lifetime of the returned
    /// borrow — in the executors, that index `i` lies in a chunk claimed
    /// by the calling worker (node cells), or that the caller is the
    /// unique sender/receiver of the directed edge `i` names (slots).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.cells[i].get()
    }

    /// Shared iteration when the caller holds `&mut self` (no concurrent
    /// workers exist) — used for end-of-phase reductions.
    pub(crate) fn iter_exclusive(&mut self) -> impl Iterator<Item = &T> {
        self.cells.iter_mut().map(|c| &*c.get_mut())
    }

    /// Reads cell `i` when the caller holds `&mut self` (between sweeps,
    /// when no workers exist) — used for the live-list maintenance.
    pub(crate) fn get_exclusive(&mut self, i: usize) -> &T {
        self.cells[i].get_mut()
    }

    /// Unwraps the values (end of phase, single-threaded).
    pub(crate) fn into_inner(self) -> Vec<T> {
        self.cells.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

/// One half of the double-buffered message arena: a fixed slot per
/// directed edge (CSR by destination: node `v`'s inbox occupies slots
/// `slot_base[v]..slot_base[v + 1]`, one per port) plus a per-destination
/// atomic count of occupied slots, so halted and idle nodes are checked
/// in `O(1)` instead of scanning their slot range.
pub(crate) struct SlotArena<M> {
    slots: SyncCells<Option<M>>,
    pending: Vec<AtomicU32>,
}

impl<M> SlotArena<M> {
    /// An empty arena with `total_slots` message slots over `n` nodes.
    pub(crate) fn new(total_slots: usize, n: usize) -> Self {
        SlotArena {
            slots: SyncCells::new((0..total_slots).map(|_| None).collect()),
            pending: (0..n).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Exclusive access to one message slot.
    ///
    /// # Safety
    ///
    /// Same contract as [`SyncCells::get_mut`]: the caller must be the
    /// slot's unique writer this round (its sender, via `write_slot`) or
    /// its unique reader (the worker owning the destination node).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slot_mut(&self, slot: usize) -> &mut Option<M> {
        self.slots.get_mut(slot)
    }

    /// Debug-only exclusivity stamp for `slot` (see [`SyncCells::claim`]).
    /// Writers claim with the writing round, readers with the reading
    /// round; since one arena of the double buffer is written in round
    /// `r` and drained in round `r + 1`, every disciplined access of a
    /// slot carries a distinct epoch, and a same-epoch collision is
    /// precisely a double-write or double-take race.
    #[inline]
    pub(crate) fn claim_slot(&self, slot: usize, epoch: u64) {
        self.slots.claim(slot, epoch);
    }

    /// Occupied-slot count of node `v`'s inbox (relaxed: ordering is
    /// provided by the inter-sweep join barrier).
    pub(crate) fn pending(&self, v: usize) -> u32 {
        self.pending[v].load(Ordering::Relaxed)
    }

    /// Notes one more occupied slot in `v`'s inbox (called by senders)
    /// and returns the previous count, so exactly one sender — the one
    /// that flipped 0 → 1 — registers `v` in the round's touched set.
    pub(crate) fn add_pending(&self, v: usize) -> u32 {
        self.pending[v].fetch_add(1, Ordering::Relaxed)
    }

    /// Clears `v`'s occupied-slot count after its inbox was consumed.
    pub(crate) fn reset_pending(&self, v: usize) {
        self.pending[v].store(0, Ordering::Relaxed);
    }

    /// Index of the first node with a non-empty inbox (error reporting
    /// for undeliverable messages once every node has halted).
    pub(crate) fn first_pending(&self) -> Option<usize> {
        self.pending
            .iter()
            .position(|p| p.load(Ordering::Relaxed) > 0)
    }
}
