//! Round executors: *how* a phase's rounds are driven over the nodes.
//!
//! [`crate::Network::run`] owns *what* a phase is (boot → synchronous
//! rounds → finish, with bandwidth/protocol enforcement and metering);
//! a [`RoundExecutor`] owns *how* each sweep over the nodes is scheduled.
//! Two interchangeable implementations ship today, selected by
//! [`ExecutorKind`] in [`crate::NetworkConfig`]:
//!
//! * [`SerialExecutor`] — one inline pass per round (the default);
//! * [`ParallelExecutor`] — `std::thread::scope` workers claiming
//!   contiguous node chunks from an atomic cursor.
//!
//! Both run the identical per-node code over the identical slot-arena
//! delivery structures (see [`sweep`]), so outputs, round counts, and
//! every [`PhaseMetrics`] field are **bit-identical** across executors —
//! the executor parity suite asserts this on trees, tori, cliques, and
//! the full min-cut pipeline.
//!
//! This trait is also the crate's extension seam:
//! [`crate::Network::run_with`] accepts any `RoundExecutor`. The
//! α-synchronizer / fault-injection layer
//! ([`crate::sim::FaultyExecutor`], selected by [`ExecutorKind::Faulty`])
//! is exactly such an implementation: a from-scratch simulation loop
//! that perturbs *delivery timing* rather than sweep scheduling, and
//! therefore shares the geometry of [`PhaseSpec`] but none of the sweep
//! machinery. (External crates can wrap and delegate to the shipped
//! executors; implementing a from-scratch executor requires this
//! module's `pub(crate)` internals by design.)

pub(crate) mod cells;
pub mod protocol;
pub(crate) mod sweep;

use crate::algorithm::Algorithm;
use crate::error::CongestError;
use crate::metrics::PhaseMetrics;
use crate::node::{NeighborInfo, NodeCtx};
use graphs::NodeId;
use sweep::{execute_sweep, Domain, ExecMode, PhaseState, Sweep, SweepStats};

/// Which round executor a [`crate::Network`] uses. (Not `Copy`: a
/// [`crate::sim::FaultPlan`] carries a crash schedule.)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum ExecutorKind {
    /// The single-threaded executor (deterministic, zero thread overhead).
    #[default]
    Serial,
    /// The deterministic parallel executor.
    Parallel {
        /// Worker threads; `0` means `std::thread::available_parallelism`.
        threads: usize,
    },
    /// The fault-injecting executor: the α-synchronizer of
    /// [`crate::sim::FaultyExecutor`] over the seeded adversary described
    /// by the plan. Outputs stay bit-identical to [`ExecutorKind::Serial`];
    /// the transport overhead is metered in
    /// [`crate::metrics::SimPhaseStats`].
    Faulty(crate::sim::FaultPlan),
}

impl ExecutorKind {
    /// The parallel executor sized to the machine.
    pub fn parallel() -> Self {
        ExecutorKind::Parallel { threads: 0 }
    }

    /// The faulty executor under the lossless default plan (pure
    /// synchronizer overhead, no injected faults).
    pub fn faulty() -> Self {
        ExecutorKind::Faulty(crate::sim::FaultPlan::default())
    }

    /// The worker count this kind resolves to (≥ 1).
    pub fn effective_threads(&self) -> usize {
        match self {
            ExecutorKind::Serial | ExecutorKind::Faulty(_) => 1,
            ExecutorKind::Parallel { threads: 0 } => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            ExecutorKind::Parallel { threads } => *threads,
        }
    }
}

/// The read-only geometry and policy of one phase run, borrowed from the
/// [`crate::Network`]: adjacency views, port routing, the CSR slot-arena
/// layout, and the enforcement knobs. Executors receive it by reference;
/// it is `Sync` (all shared, immutable data), which is what lets the
/// parallel executor hand it to scoped workers.
pub struct PhaseSpec<'a> {
    pub(crate) name: &'a str,
    pub(crate) n: usize,
    pub(crate) neighbors: &'a [Vec<NeighborInfo>],
    pub(crate) routing: &'a [Vec<(u32, u32)>],
    /// CSR offsets: node `v`'s inbox slots (= its ports, = its outgoing
    /// directed edges) are `slot_base[v]..slot_base[v + 1]`.
    pub(crate) slot_base: &'a [usize],
    /// `write_slot[slot_base[v] + p]` = the global slot of the directed
    /// edge leaving `v` through port `p` (i.e. the reverse-port slot in
    /// the destination's inbox range).
    pub(crate) write_slot: &'a [usize],
    pub(crate) bandwidth_bits: usize,
    pub(crate) strict: bool,
    pub(crate) cap: u64,
    pub(crate) max_degree: usize,
    /// See [`crate::NetworkConfig::parallel_inline_threshold`].
    pub(crate) parallel_inline_threshold: usize,
    /// The session's virtual rounds consumed before this phase
    /// (`ledger.total_rounds()` at phase start) — the offset that maps
    /// the *global* rounds of a [`crate::sim::CrashEvent`] schedule to
    /// this phase's local rounds. Fault-free executors ignore it.
    pub(crate) base_round: u64,
    /// The observability sink of [`crate::NetworkConfig::obs`], if any
    /// (`None` = tracing fully disabled; executors must not allocate,
    /// lock, or read clocks on that path).
    pub(crate) obs: Option<&'a crate::obs::ObsSink>,
}

impl PhaseSpec<'_> {
    /// The local context of node `v` at `round` (no suspicions: the
    /// fault-free executors never suspect anyone; the faulty executor
    /// swaps in its live suspicion view).
    pub(crate) fn ctx(&self, v: usize, round: u64) -> NodeCtx<'_> {
        NodeCtx {
            node: NodeId::from_index(v),
            n: self.n,
            bandwidth_bits: self.bandwidth_bits,
            round,
            neighbors: &self.neighbors[v],
            suspected: &[],
        }
    }
}

/// Drives one phase to completion over a [`PhaseSpec`]. See the module
/// docs for the contract: implementations must preserve the synchronous
/// semantics (a round's sends are the next round's inboxes) and produce
/// schedule-independent outputs and metrics.
pub trait RoundExecutor {
    /// Runs boot, all rounds, and finish; returns per-node outputs and
    /// the phase metrics.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError`] exactly as [`crate::Network::run`]
    /// documents: invalid/double sends, bandwidth violations and messages
    /// to halted nodes (strict mode), round-cap overruns, and protocol
    /// violations from `finish`.
    fn run_phase<A: Algorithm>(
        &self,
        spec: &PhaseSpec<'_>,
        algo: &A,
        inputs: Vec<A::Input>,
    ) -> Result<(Vec<A::Output>, PhaseMetrics), CongestError>;
}

/// The single-threaded executor: one inline sweep per round.
#[derive(Copy, Clone, Debug, Default)]
pub struct SerialExecutor;

impl RoundExecutor for SerialExecutor {
    fn run_phase<A: Algorithm>(
        &self,
        spec: &PhaseSpec<'_>,
        algo: &A,
        inputs: Vec<A::Input>,
    ) -> Result<(Vec<A::Output>, PhaseMetrics), CongestError> {
        drive_phase(spec, algo, inputs, &ExecMode::Serial)
    }
}

/// The deterministic parallel executor: scoped worker threads claim
/// contiguous node chunks from an atomic cursor each sweep. Results are
/// bit-identical to [`SerialExecutor`] regardless of the thread count.
#[derive(Copy, Clone, Debug)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor with `threads` workers (`0` = machine parallelism).
    pub fn with_threads(threads: usize) -> Self {
        ParallelExecutor { threads }
    }

    /// The resolved worker count (≥ 1).
    pub fn threads(&self) -> usize {
        ExecutorKind::Parallel {
            threads: self.threads,
        }
        .effective_threads()
    }
}

impl RoundExecutor for ParallelExecutor {
    fn run_phase<A: Algorithm>(
        &self,
        spec: &PhaseSpec<'_>,
        algo: &A,
        inputs: Vec<A::Input>,
    ) -> Result<(Vec<A::Output>, PhaseMetrics), CongestError> {
        let threads = self.threads().max(1);
        // Several chunks per worker for load balance, but never so small
        // that cursor traffic dominates a sweep.
        let chunk = (spec.n / (threads * 4)).max(32);
        drive_phase(
            spec,
            algo,
            inputs,
            &ExecMode::Parallel {
                threads,
                chunk,
                inline_below: spec.parallel_inline_threshold,
            },
        )
    }
}

/// The shared phase driver: boot sweep, round sweeps until every node
/// halts, then finish — with the live/in-flight bookkeeping and error
/// selection that both executors share.
fn drive_phase<A: Algorithm>(
    spec: &PhaseSpec<'_>,
    algo: &A,
    inputs: Vec<A::Input>,
    mode: &ExecMode,
) -> Result<(Vec<A::Output>, PhaseMetrics), CongestError> {
    let n = spec.n;
    let mut ps = PhaseState::new(spec, algo);
    let mut metrics = PhaseMetrics {
        name: spec.name.to_string(),
        ..Default::default()
    };
    let mut live = n;
    // Messages routed but not yet consumed — maintained incrementally
    // from the sweep stats instead of scanning queues every round.
    let mut in_flight = 0usize;

    let input_cells = cells::SyncCells::new(inputs.into_iter().map(Some).collect());
    let boot = execute_sweep(
        &ps,
        &Sweep::Boot {
            inputs: &input_cells,
            write: &ps.arenas[0],
        },
        &Domain::All(n),
        mode,
    );
    let mut touched = absorb(&mut metrics, &mut live, &mut in_flight, boot)?;

    // Round sweeps cover the live nodes plus any halted node whose inbox
    // went non-empty — not all `n` — so long pipelined tails where most
    // of the network has halted cost only the nodes still working. The
    // live list is compacted lazily (when ≥ ¼ of it is stale) to keep
    // its maintenance amortized.
    let mut live_list: Vec<u32> = (0..n as u32).collect();
    let mut stale_halts = 0usize;
    let mut round: u64 = 0;
    loop {
        if live == 0 {
            if in_flight > 0 && spec.strict {
                // Someone sent to a halted node (everyone is halted).
                let dest = ps.arenas[(round % 2) as usize]
                    .first_pending()
                    .expect("in-flight messages occupy a slot");
                return Err(CongestError::MessageToHalted {
                    phase: spec.name.to_string(),
                    node: NodeId::from_index(dest),
                    round,
                });
            }
            break;
        }
        round += 1;
        if round > spec.cap {
            return Err(CongestError::MaxRoundsExceeded {
                phase: spec.name.to_string(),
                cap: spec.cap,
            });
        }
        // Between sweeps no workers exist, so halted flags are stable:
        // split last round's touched destinations into the halted ones
        // (their own sweep segment) — live ones are already in the list.
        let halted_touched: Vec<u32> = touched
            .iter()
            .copied()
            .filter(|&v| ps.nodes.get_exclusive(v as usize).halted)
            .collect();
        let read = &ps.arenas[((round - 1) % 2) as usize];
        let write = &ps.arenas[(round % 2) as usize];
        let stats = execute_sweep(
            &ps,
            &Sweep::Round { round, read, write },
            &Domain::Lists {
                live: &live_list,
                halted: &halted_touched,
            },
            mode,
        );
        let halts = stats.halts;
        touched = absorb(&mut metrics, &mut live, &mut in_flight, stats)?;
        if let Some(sink) = spec.obs {
            // Fault-free executors: one physical tick per round.
            sink.round_end(round, round);
        }
        stale_halts += halts;
        if stale_halts * 4 >= live_list.len() {
            live_list.retain(|&v| !ps.nodes.get_exclusive(v as usize).halted);
            stale_halts = 0;
        }
    }
    metrics.rounds = round;
    metrics.max_edge_load_bits = ps.max_edge_load_bits();

    let mut outputs = Vec::with_capacity(n);
    for (v, cell) in ps.nodes.into_inner().into_iter().enumerate() {
        let ctx = spec.ctx(v, round);
        let out = algo
            .finish(cell.state.expect("state present"), &ctx)
            .map_err(|violation| CongestError::Protocol {
                phase: spec.name.to_string(),
                node: NodeId::from_index(v),
                reason: violation.reason,
            })?;
        outputs.push(out);
    }
    Ok((outputs, metrics))
}

/// Folds one sweep's stats into the phase accounting, returning the
/// sweep's touched destinations — or surfaces its earliest (lowest-node)
/// error.
fn absorb(
    metrics: &mut PhaseMetrics,
    live: &mut usize,
    in_flight: &mut usize,
    stats: SweepStats,
) -> Result<Vec<u32>, CongestError> {
    if let Some((_, e)) = stats.err {
        return Err(e);
    }
    metrics.messages += stats.messages;
    metrics.bits += stats.bits;
    metrics.max_message_bits = metrics.max_message_bits.max(stats.max_message_bits);
    metrics.violations += stats.violations;
    *live -= stats.halts;
    *in_flight += stats.messages as usize;
    *in_flight -= stats.delivered;
    Ok(stats.touched)
}

/// Unit tests for the executor core, deliberately tiny: this module is
/// the target of the nightly Miri CI job (`cargo miri test -p congest
/// --lib executor`), where every test runs under the interpreter at
/// ~100× cost — so the instances here are the smallest ones that still
/// force the parallel executor to actually spawn workers.
#[cfg(test)]
mod tests {
    use super::cells::SyncCells;
    use super::*;
    use crate::algorithm::{FinishResult, Outbox, Step};
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::node::Port;

    /// Rounds of all-port gossip before halting.
    const GOSSIP_ROUNDS: u64 = 3;

    /// Every node sends `id + round` on every port each round and sums
    /// what it hears — enough traffic to exercise every slot of the
    /// arena every round.
    struct Gossip;

    impl Algorithm for Gossip {
        type Input = ();
        type State = u64;
        type Msg = u64;
        type Output = u64;

        fn boot(&self, ctx: &NodeCtx<'_>, _input: ()) -> (u64, Outbox<u64>) {
            let mut o = Outbox::new();
            o.send_all(
                (0..ctx.neighbors.len() as u32).map(Port),
                ctx.node.index() as u64,
            );
            (0, o)
        }

        fn round(&self, state: &mut u64, ctx: &NodeCtx<'_>, inbox: &[(Port, u64)]) -> Step<u64> {
            for (_, m) in inbox {
                *state += m;
            }
            if ctx.round >= GOSSIP_ROUNDS {
                return Step::halt();
            }
            let mut o = Outbox::new();
            o.send_all(
                (0..ctx.neighbors.len() as u32).map(Port),
                ctx.node.index() as u64 + ctx.round,
            );
            Step::Continue(o)
        }

        fn finish(&self, state: u64, _ctx: &NodeCtx<'_>) -> FinishResult<u64> {
            Ok(state)
        }
    }

    fn gossip_under(kind: ExecutorKind) -> (Vec<u64>, crate::metrics::PhaseMetrics) {
        // 40 nodes: just above the minimum chunk size (32), so the
        // parallel executor genuinely splits the domain across workers.
        let n = 40;
        let g = graphs::generators::cycle(n).expect("valid cycle");
        let cfg = NetworkConfig {
            executor: kind,
            parallel_inline_threshold: 0,
            ..NetworkConfig::default()
        };
        let mut net = Network::new(&g, cfg).expect("valid network");
        let out = net
            .run("gossip", &Gossip, vec![(); n])
            .expect("gossip phase runs clean");
        let metrics = net.ledger().phases().last().expect("metered").clone();
        (out.outputs, metrics)
    }

    #[test]
    fn parallel_sweeps_are_bit_identical_to_serial() {
        let (serial_out, serial_m) = gossip_under(ExecutorKind::Serial);
        let (par_out, par_m) = gossip_under(ExecutorKind::Parallel { threads: 2 });
        assert_eq!(serial_out, par_out, "outputs must not depend on schedule");
        assert_eq!(serial_m.rounds, par_m.rounds);
        assert_eq!(serial_m.messages, par_m.messages);
        assert_eq!(serial_m.bits, par_m.bits);
        assert_eq!(serial_m.max_edge_load_bits, par_m.max_edge_load_bits);
        // Sanity: the phase actually did work under both executors.
        assert_eq!(serial_m.rounds, GOSSIP_ROUNDS);
        assert!(serial_m.messages > 0);
    }

    #[test]
    fn exclusivity_claims_accept_disjoint_epochs() {
        let cells = SyncCells::new(vec![0u8; 4]);
        // Same cell across epochs and different cells within an epoch
        // are both fine — only a same-(cell, epoch) collision is a race.
        cells.claim(1, 0);
        cells.claim(2, 0);
        cells.claim(1, 1);
        cells.claim(1, 2);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "claims are debug-only")]
    #[should_panic(expected = "exclusivity violation")]
    fn exclusivity_claims_catch_same_epoch_reclaim() {
        let cells = SyncCells::new(vec![0u8; 4]);
        cells.claim(3, 7);
        cells.claim(3, 7);
    }
}
