//! The executors' shared-memory protocol, extracted behind a step-wise
//! seam so the *same* logic is (a) executed by the real sweep drivers in
//! [`super::sweep`] and (b) exhaustively model-checked by the
//! interleaving checker in `crates/analysis`.
//!
//! The parallel executor's soundness rests on three mechanisms:
//!
//! 1. **Chunk claiming** — workers partition a sweep's node domain by
//!    `fetch_add` on a shared monotone cursor ([`ChunkClaimer`]). The
//!    claimed ranges are disjoint and cover the domain, which is what
//!    makes per-node cell access exclusive.
//! 2. **Slot sends** — a directed edge's message slot is written by its
//!    unique sender through the check-occupied → account → write
//!    sequence ([`SendSm`]). Slot occupancy *is* the engine's
//!    `DoubleSend` check.
//! 3. **Inbox drains** — a destination's slot range is consumed by the
//!    unique worker that owns the destination ([`DrainSm`]), in the
//!    *next* round, on the other half of the double buffer.
//!
//! Every state machine here performs **exactly one shared-memory
//! operation per `step` call**. The real executors drive the machines
//! to completion inline (compiling down to the straight-line code they
//! replaced); the model checker interleaves `step` calls of several
//! simulated workers under a deterministic scheduler, which explores
//! every ordering of the underlying shared-memory operations. That
//! granularity — one op per step — is the seam's whole contract: if a
//! protocol change adds a shared access, it must appear as its own
//! step, or the model checker is exploring a coarser protocol than the
//! one that ships.
//!
//! Nothing in this module is `unsafe` and nothing here touches the real
//! arenas: the shared memory is abstracted behind [`ClaimCursor`] and
//! [`SlotMem`], implemented over atomics/`UnsafeCell` by the executor
//! ([`super::sweep`]) and over instrumented plain vectors by the model.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The shared monotone cursor workers claim node chunks from.
pub trait ClaimCursor {
    /// Atomically adds `delta` and returns the previous value.
    fn fetch_add(&self, delta: usize) -> usize;
}

impl ClaimCursor for AtomicUsize {
    fn fetch_add(&self, delta: usize) -> usize {
        // Relaxed is enough: the cursor orders nothing but itself — the
        // inter-sweep join barrier provides all cross-data ordering.
        AtomicUsize::fetch_add(self, delta, Ordering::Relaxed)
    }
}

/// The chunk-claiming discipline: `chunk`-sized contiguous ranges of a
/// `len`-element domain, claimed off a shared cursor. Under **any**
/// interleaving the claimed ranges are pairwise disjoint and their
/// union is `0..len` — the model checker asserts exactly that.
#[derive(Copy, Clone, Debug)]
pub struct ChunkClaimer {
    /// Nodes per claim (≥ 1).
    pub chunk: usize,
    /// Domain length.
    pub len: usize,
}

impl ChunkClaimer {
    /// One claim: a single `fetch_add` on the cursor. Returns the
    /// claimed range, or `None` once the domain is exhausted (the
    /// worker's signal to stop).
    #[inline]
    pub fn claim(&self, cursor: &impl ClaimCursor) -> Option<Range<usize>> {
        let lo = cursor.fetch_add(self.chunk);
        if lo >= self.len {
            None
        } else {
            Some(lo..(lo + self.chunk).min(self.len))
        }
    }
}

/// The slot arena's shared-memory surface, as the protocol sees it: one
/// message slot per directed edge (CSR by destination), a per-destination
/// pending count, and the cumulative per-edge load accumulators.
///
/// The executor implements this over the real
/// [`super::cells::SlotArena`]/[`super::cells::SyncCells`] pair (where
/// `slot_write`/`slot_take`/`edge_load_add` are the contract-bearing
/// exclusive accesses); the model checker implements it over plain
/// vectors with an operation journal.
pub trait SlotMem {
    /// What a slot holds (the algorithm's message type; a small token in
    /// the model).
    type Payload;

    /// Is `slot` occupied? (The sender-side `DoubleSend` check.)
    fn slot_occupied(&self, slot: usize) -> bool;
    /// Writes `slot`, which the protocol guarantees it observed empty.
    fn slot_write(&self, slot: usize, payload: Self::Payload);
    /// Consumes `slot` (receiver side), returning its payload if any.
    fn slot_take(&self, slot: usize) -> Option<Self::Payload>;
    /// Adds `bits` to the cumulative load of the directed edge `slot`.
    fn edge_load_add(&self, slot: usize, bits: u64);
    /// Reads destination `dest`'s pending (occupied-slot) count.
    fn pending_read(&self, dest: usize) -> u32;
    /// Bumps `dest`'s pending count, returning the previous value (the
    /// sender that sees `0` nominates `dest` for the touched set).
    fn pending_fetch_add(&self, dest: usize) -> u32;
    /// Clears `dest`'s pending count after its inbox was consumed.
    fn pending_reset(&self, dest: usize);
}

/// What one [`SendSm::step`] call observed or did.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SendStep {
    /// The occupancy check ran. `occupied == true` is the `DoubleSend`
    /// condition: the caller must abandon the machine without writing.
    Checked {
        /// Was the slot already occupied?
        occupied: bool,
    },
    /// The edge-load accumulator was bumped.
    Loaded,
    /// The destination's pending count was bumped.
    Counted,
    /// The payload was written into the slot; the machine is finished.
    Done {
        /// Did this send flip the destination's inbox from empty to
        /// non-empty (i.e. must the destination enter the touched set)?
        first_into_dest: bool,
    },
}

/// One message send over the slot protocol, as a step-wise state
/// machine: check-occupied → add edge load → bump pending → write. The
/// caller runs its local validation (bandwidth, metering) between the
/// check and the remaining steps; a machine abandoned after
/// [`SendStep::Checked`] has touched nothing but the (read-only)
/// occupancy check.
#[derive(Debug)]
pub struct SendSm {
    /// The global slot of the directed edge being written.
    pub slot: usize,
    /// The destination node (pending-count index).
    pub dest: usize,
    /// The payload size in bits (edge-load accounting).
    pub bits: u64,
    pc: u8,
    first: bool,
}

impl SendSm {
    /// A machine for one send of `bits` bits into `slot`, destined for
    /// node `dest`.
    pub fn new(slot: usize, dest: usize, bits: u64) -> Self {
        SendSm {
            slot,
            dest,
            bits,
            pc: 0,
            first: false,
        }
    }

    /// Performs the machine's next shared-memory operation. `payload`
    /// must hold the message by the final step (it is consumed by the
    /// slot write; earlier steps ignore it).
    ///
    /// # Panics
    ///
    /// Panics if stepped past [`SendStep::Done`] or after an abandoned
    /// occupancy check would have required it (caller bug), or if
    /// `payload` is empty at the write step.
    #[inline]
    pub fn step<M: SlotMem>(&mut self, mem: &M, payload: &mut Option<M::Payload>) -> SendStep {
        match self.pc {
            0 => {
                self.pc = 1;
                SendStep::Checked {
                    occupied: mem.slot_occupied(self.slot),
                }
            }
            1 => {
                mem.edge_load_add(self.slot, self.bits);
                self.pc = 2;
                SendStep::Loaded
            }
            2 => {
                self.first = mem.pending_fetch_add(self.dest) == 0;
                self.pc = 3;
                SendStep::Counted
            }
            3 => {
                mem.slot_write(
                    self.slot,
                    payload.take().expect("payload present at the write step"),
                );
                self.pc = 4;
                SendStep::Done {
                    first_into_dest: self.first,
                }
            }
            _ => panic!("SendSm stepped past Done"),
        }
    }

    /// Drives the machine to completion after a passed occupancy check
    /// (the executors' inline path). Returns `first_into_dest`.
    #[inline]
    pub fn complete<M: SlotMem>(&mut self, mem: &M, payload: M::Payload) -> bool {
        let mut payload = Some(payload);
        loop {
            if let SendStep::Done { first_into_dest } = self.step(mem, &mut payload) {
                return first_into_dest;
            }
        }
    }
}

/// What one [`DrainSm::step`] call did.
#[derive(Debug)]
pub enum DrainStep<P> {
    /// One slot of the inbox range was consumed.
    Took {
        /// The port (slot offset inside the destination's range).
        port: u32,
        /// The payload, if the slot was occupied.
        payload: Option<P>,
    },
    /// The destination's pending count was cleared; the machine is
    /// finished.
    Reset,
}

/// One inbox drain over the slot protocol: consume every slot of the
/// destination's CSR range, then clear its pending count. Run by the
/// unique worker owning the destination, on the *read* half of the
/// double buffer.
#[derive(Debug)]
pub struct DrainSm {
    dest: usize,
    base: usize,
    next: usize,
    end: usize,
    reset_done: bool,
}

impl DrainSm {
    /// A machine draining destination `dest`, whose inbox occupies
    /// slots `base..end`.
    pub fn new(dest: usize, base: usize, end: usize) -> Self {
        DrainSm {
            dest,
            base,
            next: base,
            end,
            reset_done: false,
        }
    }

    /// Performs the next shared-memory operation (one slot take, or the
    /// final pending reset); `None` once finished.
    #[inline]
    pub fn step<M: SlotMem>(&mut self, mem: &M) -> Option<DrainStep<M::Payload>> {
        if self.next < self.end {
            let slot = self.next;
            self.next += 1;
            Some(DrainStep::Took {
                port: (slot - self.base) as u32,
                payload: mem.slot_take(slot),
            })
        } else if !self.reset_done {
            self.reset_done = true;
            mem.pending_reset(self.dest);
            Some(DrainStep::Reset)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::{Cell, RefCell};

    /// A single-threaded in-memory `SlotMem` for protocol unit tests.
    struct VecMem {
        slots: RefCell<Vec<Option<u32>>>,
        pending: RefCell<Vec<u32>>,
        load: RefCell<Vec<u64>>,
        ops: RefCell<Vec<&'static str>>,
    }

    impl VecMem {
        fn new(slots: usize, dests: usize) -> Self {
            VecMem {
                slots: RefCell::new(vec![None; slots]),
                pending: RefCell::new(vec![0; dests]),
                load: RefCell::new(vec![0; slots]),
                ops: RefCell::new(Vec::new()),
            }
        }
    }

    impl SlotMem for VecMem {
        type Payload = u32;
        fn slot_occupied(&self, slot: usize) -> bool {
            self.ops.borrow_mut().push("check");
            self.slots.borrow()[slot].is_some()
        }
        fn slot_write(&self, slot: usize, payload: u32) {
            self.ops.borrow_mut().push("write");
            self.slots.borrow_mut()[slot] = Some(payload);
        }
        fn slot_take(&self, slot: usize) -> Option<u32> {
            self.ops.borrow_mut().push("take");
            self.slots.borrow_mut()[slot].take()
        }
        fn edge_load_add(&self, slot: usize, bits: u64) {
            self.ops.borrow_mut().push("load");
            self.load.borrow_mut()[slot] += bits;
        }
        fn pending_read(&self, dest: usize) -> u32 {
            self.pending.borrow()[dest]
        }
        fn pending_fetch_add(&self, dest: usize) -> u32 {
            self.ops.borrow_mut().push("pending");
            let mut p = self.pending.borrow_mut();
            let prev = p[dest];
            p[dest] += 1;
            prev
        }
        fn pending_reset(&self, dest: usize) {
            self.ops.borrow_mut().push("reset");
            self.pending.borrow_mut()[dest] = 0;
        }
    }

    struct CellCursor(Cell<usize>);
    impl ClaimCursor for CellCursor {
        fn fetch_add(&self, delta: usize) -> usize {
            let prev = self.0.get();
            self.0.set(prev + delta);
            prev
        }
    }

    #[test]
    fn executor_chunk_claims_partition_the_domain() {
        let claimer = ChunkClaimer { chunk: 3, len: 8 };
        let cursor = CellCursor(Cell::new(0));
        let mut covered = [false; 8];
        while let Some(r) = claimer.claim(&cursor) {
            for i in r {
                assert!(!covered[i], "index {i} claimed twice");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "claims must cover the domain");
        assert!(
            claimer.claim(&cursor).is_none(),
            "exhausted stays exhausted"
        );
    }

    #[test]
    fn executor_send_performs_ops_in_contract_order() {
        let mem = VecMem::new(4, 2);
        let mut sm = SendSm::new(2, 1, 7);
        assert_eq!(
            sm.step(&mem, &mut None),
            SendStep::Checked { occupied: false }
        );
        let first = sm.complete(&mem, 99);
        assert!(first, "first message into dest 1");
        assert_eq!(
            *mem.ops.borrow(),
            ["check", "load", "pending", "write"],
            "one shared op per step, in the documented order"
        );
        assert_eq!(mem.slots.borrow()[2], Some(99));
        assert_eq!(mem.load.borrow()[2], 7);
        assert_eq!(mem.pending.borrow()[1], 1);

        // A second send into the same slot sees it occupied and — per
        // contract — abandons without any further shared access.
        let before = mem.ops.borrow().len();
        let mut dup = SendSm::new(2, 1, 7);
        assert_eq!(
            dup.step(&mem, &mut None),
            SendStep::Checked { occupied: true }
        );
        assert_eq!(mem.ops.borrow().len(), before + 1, "check only");
    }

    #[test]
    fn executor_drain_consumes_the_range_then_resets() {
        let mem = VecMem::new(4, 2);
        mem.slots.borrow_mut()[1] = Some(10);
        mem.slots.borrow_mut()[2] = Some(20);
        *mem.pending.borrow_mut() = vec![0, 2];
        let mut got = Vec::new();
        let mut drain = DrainSm::new(1, 1, 3);
        while let Some(step) = drain.step(&mem) {
            if let DrainStep::Took {
                port,
                payload: Some(p),
            } = step
            {
                got.push((port, p));
            }
        }
        assert_eq!(got, [(0, 10), (1, 20)]);
        assert_eq!(mem.pending.borrow()[1], 0, "pending cleared");
        assert!(mem.slots.borrow().iter().all(Option::is_none));
        assert!(drain.step(&mem).is_none(), "finished machines stay done");
    }
}
