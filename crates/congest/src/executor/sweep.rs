//! The shared per-round node sweep: boot/round execution over a chunk of
//! nodes, slot-arena routing, and the serial/parallel sweep drivers.
//!
//! Both executors run the *same* per-node code on the *same* data
//! structures; they differ only in who runs the chunks. The serial
//! executor sweeps `0..n` inline; the parallel executor spawns scoped
//! workers that claim contiguous chunks from an atomic cursor. Because
//! every per-node effect lands in per-node cells, per-directed-edge slots,
//! or commutatively-merged [`SweepStats`], the two schedules are
//! bit-identical by construction — the parity suite asserts it.

#![allow(unsafe_code)]

use super::cells::{SlotArena, SyncCells};
use super::PhaseSpec;
use crate::algorithm::{Algorithm, Step};
use crate::error::CongestError;
use crate::message::Message;
use crate::node::Port;
use graphs::NodeId;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-node executor state: the algorithm state plus the halted flag.
pub(crate) struct NodeCell<S> {
    pub(crate) state: Option<S>,
    pub(crate) halted: bool,
}

/// Everything a worker touches while sweeping: the phase geometry, the
/// algorithm, per-node cells, the double-buffered slot arenas, and the
/// cumulative per-directed-edge load accumulators.
pub(crate) struct PhaseState<'a, A: Algorithm> {
    pub(crate) spec: &'a PhaseSpec<'a>,
    pub(crate) algo: &'a A,
    pub(crate) nodes: SyncCells<NodeCell<A::State>>,
    pub(crate) arenas: [SlotArena<A::Msg>; 2],
    /// Cumulative bits routed over each directed edge this phase
    /// (slot-indexed; single writer per round — the edge's sender).
    pub(crate) edge_load: SyncCells<u64>,
}

impl<'a, A: Algorithm> PhaseState<'a, A> {
    pub(crate) fn new(spec: &'a PhaseSpec<'a>, algo: &'a A) -> Self {
        let n = spec.n;
        let total = spec.slot_base[n];
        PhaseState {
            spec,
            algo,
            nodes: SyncCells::new(
                (0..n)
                    .map(|_| NodeCell {
                        state: None,
                        halted: false,
                    })
                    .collect(),
            ),
            arenas: [SlotArena::new(total, n), SlotArena::new(total, n)],
            edge_load: SyncCells::new(vec![0; total]),
        }
    }

    /// The phase's `max_edge_load_bits`: the heaviest cumulative load on
    /// any single (edge, direction). Takes `&mut self` — called after the
    /// last sweep, when no workers exist.
    pub(crate) fn max_edge_load_bits(&mut self) -> usize {
        self.edge_load.iter_exclusive().copied().max().unwrap_or(0) as usize
    }
}

/// One sweep over all nodes: the boot sweep or a numbered round.
pub(crate) enum Sweep<'s, A: Algorithm> {
    /// Round 0: take each node's input, `boot` it, route its outbox.
    Boot {
        inputs: &'s SyncCells<Option<A::Input>>,
        write: &'s SlotArena<A::Msg>,
    },
    /// Round `round ≥ 1`: deliver inboxes from `read`, step live nodes,
    /// route outboxes into `write`.
    Round {
        round: u64,
        read: &'s SlotArena<A::Msg>,
        write: &'s SlotArena<A::Msg>,
    },
}

/// What one worker accumulates over its chunks. Every field merges
/// commutatively (sums, maxes, min-node error, set union), so the merged
/// totals are independent of the chunk schedule.
#[derive(Default)]
pub(crate) struct SweepStats {
    pub(crate) messages: u64,
    pub(crate) bits: u64,
    pub(crate) max_message_bits: usize,
    pub(crate) violations: u64,
    /// Nodes that halted during this sweep.
    pub(crate) halts: usize,
    /// Messages consumed from the read arena (delivered or dropped).
    pub(crate) delivered: usize,
    /// Destinations whose inbox went non-empty this sweep (each exactly
    /// once: pushed by the sender that flipped its pending count from 0).
    /// The next round sweeps `live ∪ (touched ∩ halted)` instead of all
    /// `n` nodes, so fully-halted regions cost nothing per round.
    pub(crate) touched: Vec<u32>,
    /// The sweep's error at the smallest node index, if any — exactly the
    /// error the serial schedule would have hit first.
    pub(crate) err: Option<(usize, CongestError)>,
}

impl SweepStats {
    fn record_err(&mut self, node: usize, e: CongestError) {
        match &self.err {
            Some((held, _)) if *held <= node => {}
            _ => self.err = Some((node, e)),
        }
    }

    fn merge(&mut self, other: SweepStats) {
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.violations += other.violations;
        self.halts += other.halts;
        self.delivered += other.delivered;
        self.touched.extend_from_slice(&other.touched);
        if let Some((node, e)) = other.err {
            self.record_err(node, e);
        }
    }
}

/// The node set one sweep covers.
pub(crate) enum Domain<'d> {
    /// Every node `0..n` (the boot sweep).
    All(usize),
    /// Round sweeps: the live nodes (ascending ids; may contain nodes
    /// that halted since the last compaction — they are skipped in O(1))
    /// plus the halted nodes with a non-empty inbox, which only need
    /// their messages-to-halted check. The two segments never make a
    /// worker touch a node cell another worker owns: a stale-halted
    /// node's cell is read (not written) in the live segment, and its
    /// inbox is consumed only in the halted segment.
    Lists { live: &'d [u32], halted: &'d [u32] },
}

impl Domain<'_> {
    pub(crate) fn len(&self) -> usize {
        match self {
            Domain::All(n) => *n,
            Domain::Lists { live, halted } => live.len() + halted.len(),
        }
    }
}

/// How a sweep is scheduled across nodes.
pub(crate) enum ExecMode {
    /// One inline pass over `0..n`.
    Serial,
    /// `threads` scoped workers claiming `chunk`-sized ranges from an
    /// atomic cursor; sweeps smaller than `inline_below` run inline
    /// (see [`crate::NetworkConfig::parallel_inline_threshold`]).
    Parallel {
        threads: usize,
        chunk: usize,
        inline_below: usize,
    },
}

/// Runs one sweep under `mode` and returns the merged stats.
pub(crate) fn execute_sweep<A: Algorithm>(
    ps: &PhaseState<'_, A>,
    sweep: &Sweep<'_, A>,
    domain: &Domain<'_>,
    mode: &ExecMode,
) -> SweepStats {
    let len = domain.len();
    match *mode {
        // A sweep that does not fill at least two chunks has nothing to
        // parallelize, and one below the configured inline threshold is
        // too small for the per-sweep thread costs to pay off: run
        // either inline and skip the thread spawns. Identical results by
        // construction (same per-node code, commutative stats); this is
        // what keeps long pipelined tails — thousands of rounds with a
        // handful of live nodes — and small-`n` phases from paying
        // per-round spawn costs.
        ExecMode::Parallel {
            threads,
            chunk,
            inline_below,
        } if len > chunk && len >= inline_below && threads > 1 => {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut stats = SweepStats::default();
                            let mut scratch = Vec::with_capacity(ps.spec.max_degree);
                            loop {
                                let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                                if lo >= len {
                                    break;
                                }
                                let hi = (lo + chunk).min(len);
                                run_nodes(ps, sweep, domain, lo, hi, &mut scratch, &mut stats);
                            }
                            stats
                        })
                    })
                    .collect();
                let mut merged = SweepStats::default();
                for h in handles {
                    match h.join() {
                        Ok(s) => merged.merge(s),
                        // A panicking algorithm panics the caller, as it
                        // does under the serial executor.
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                merged
            })
        }
        _ => {
            let mut stats = SweepStats::default();
            let mut scratch = Vec::with_capacity(ps.spec.max_degree);
            run_nodes(ps, sweep, domain, 0, len, &mut scratch, &mut stats);
            stats
        }
    }
}

/// Runs one sweep over the domain positions `lo..hi` (a claimed chunk).
///
/// Errors are *recorded*, not early-returned: every domain position is
/// processed so the merged minimum-node error is identical under any
/// chunk schedule (serial included).
///
/// SAFETY discipline: positions `lo..hi` are exclusively owned by this
/// caller for this sweep, so `get_mut` on node cells/inputs resolved
/// from the range is exclusive (the live and halted segments are
/// disjoint node sets except for stale-halted entries, which the live
/// segment only reads); slot writes go through the sender-unique
/// `write_slot` mapping and slot reads through the destination-unique
/// inbox range (see [`super::cells`] for the full argument).
fn run_nodes<A: Algorithm>(
    ps: &PhaseState<'_, A>,
    sweep: &Sweep<'_, A>,
    domain: &Domain<'_>,
    lo: usize,
    hi: usize,
    scratch: &mut Vec<(Port, A::Msg)>,
    stats: &mut SweepStats,
) {
    let spec = ps.spec;
    match sweep {
        Sweep::Boot { inputs, write } => {
            for i in lo..hi {
                let v = match domain {
                    Domain::All(_) => i,
                    Domain::Lists { live, halted } => {
                        if i < live.len() {
                            live[i] as usize
                        } else {
                            halted[i - live.len()] as usize
                        }
                    }
                };
                // SAFETY: `v` is in this worker's claimed chunk.
                let input = unsafe { inputs.get_mut(v) }
                    .take()
                    .expect("exactly one input per node");
                let ctx = spec.ctx(v, 0);
                let (state, outbox) = ps.algo.boot(&ctx, input);
                // SAFETY: as above.
                unsafe { ps.nodes.get_mut(v) }.state = Some(state);
                route_outbox(ps, v, 0, outbox.msgs, write, stats);
            }
        }
        Sweep::Round { round, read, write } => {
            for i in lo..hi {
                let (v, halted_with_inbox) = match domain {
                    Domain::All(_) => (i, false),
                    Domain::Lists { live, halted } => {
                        if i < live.len() {
                            (live[i] as usize, false)
                        } else {
                            (halted[i - live.len()] as usize, true)
                        }
                    }
                };
                if halted_with_inbox {
                    // A halted node whose inbox went non-empty: the
                    // protocol violation check, nothing else.
                    let pending = read.pending(v);
                    if pending > 0 {
                        if spec.strict {
                            stats.record_err(
                                v,
                                CongestError::MessageToHalted {
                                    phase: spec.name.to_string(),
                                    node: NodeId::from_index(v),
                                    round: *round,
                                },
                            );
                            continue;
                        }
                        // Lax mode: drop the inbox.
                        let base = spec.slot_base[v];
                        let end = spec.slot_base[v + 1];
                        for s in base..end {
                            // SAFETY: this worker owns destination `v`.
                            unsafe { read.slot_mut(s) }.take();
                        }
                        read.reset_pending(v);
                        stats.delivered += pending as usize;
                    }
                    continue;
                }
                // SAFETY: `v` is in this worker's claimed chunk; if it is
                // a stale-halted entry its cell is only read here.
                let cell = unsafe { ps.nodes.get_mut(v) };
                if cell.halted {
                    // Stale live-list entry awaiting compaction. Its
                    // inbox, if any, is handled by the halted segment.
                    continue;
                }
                scratch.clear();
                if read.pending(v) > 0 {
                    let base = spec.slot_base[v];
                    let end = spec.slot_base[v + 1];
                    for (p, s) in (base..end).enumerate() {
                        // SAFETY: this worker owns destination `v`.
                        if let Some(m) = unsafe { read.slot_mut(s) }.take() {
                            scratch.push((Port(p as u32), m));
                        }
                    }
                    read.reset_pending(v);
                    stats.delivered += scratch.len();
                }
                let ctx = spec.ctx(v, *round);
                let state = cell.state.as_mut().expect("live node has state");
                let outbox = match ps.algo.round(state, &ctx, scratch) {
                    Step::Continue(o) => o,
                    Step::Halt(o) => {
                        cell.halted = true;
                        stats.halts += 1;
                        o
                    }
                };
                route_outbox(ps, v, *round, outbox.msgs, write, stats);
            }
        }
    }
}

/// Validates and routes one node's outbox into the write arena. The
/// engine's invariants are enforced here: ports must exist, a port may
/// carry at most one message per round (slot occupancy *is* the
/// `DoubleSend` check — the slot belongs to this sender alone), and
/// strict mode rejects over-budget messages.
fn route_outbox<A: Algorithm>(
    ps: &PhaseState<'_, A>,
    v: usize,
    round: u64,
    msgs: Vec<(Port, A::Msg)>,
    write: &SlotArena<A::Msg>,
    stats: &mut SweepStats,
) {
    let spec = ps.spec;
    let degree = spec.neighbors[v].len();
    let base = spec.slot_base[v];
    for (port, msg) in msgs {
        let p = port.index();
        if p >= degree {
            stats.record_err(
                v,
                CongestError::InvalidPort {
                    phase: spec.name.to_string(),
                    node: NodeId::from_index(v),
                    port,
                    degree,
                },
            );
            return;
        }
        let slot = spec.write_slot[base + p];
        // SAFETY: `slot` names the directed edge (v, p); only this sender
        // writes it this round.
        let cell = unsafe { write.slot_mut(slot) };
        if cell.is_some() {
            stats.record_err(
                v,
                CongestError::DoubleSend {
                    phase: spec.name.to_string(),
                    node: NodeId::from_index(v),
                    port,
                    round,
                },
            );
            return;
        }
        let bits = msg.bit_len();
        if bits > spec.bandwidth_bits {
            if spec.strict {
                stats.record_err(
                    v,
                    CongestError::BandwidthExceeded {
                        phase: spec.name.to_string(),
                        node: NodeId::from_index(v),
                        port,
                        bits,
                        budget: spec.bandwidth_bits,
                        round,
                    },
                );
                return;
            }
            stats.violations += 1;
        }
        stats.messages += 1;
        stats.bits += bits as u64;
        stats.max_message_bits = stats.max_message_bits.max(bits);
        // SAFETY: same single-writer argument as the slot itself.
        unsafe {
            *ps.edge_load.get_mut(slot) += bits as u64;
        }
        let (dest, _) = spec.routing[v][p];
        if write.add_pending(dest as usize) == 0 {
            // First message into `dest` this round: nominate it for the
            // next round's touched set.
            stats.touched.push(dest);
        }
        *cell = Some(msg);
    }
}
