//! The shared per-round node sweep: boot/round execution over a chunk of
//! nodes, slot-arena routing, and the serial/parallel sweep drivers.
//!
//! Both executors run the *same* per-node code on the *same* data
//! structures; they differ only in who runs the chunks. The serial
//! executor sweeps `0..n` inline; the parallel executor spawns scoped
//! workers that claim contiguous chunks from an atomic cursor. Because
//! every per-node effect lands in per-node cells, per-directed-edge slots,
//! or commutatively-merged [`SweepStats`], the two schedules are
//! bit-identical by construction — the parity suite asserts it.

#![allow(unsafe_code)]

use super::cells::{SlotArena, SyncCells};
use super::protocol::{ChunkClaimer, DrainSm, DrainStep, SendSm, SendStep, SlotMem};
use super::PhaseSpec;
use crate::algorithm::{Algorithm, Step};
use crate::error::CongestError;
use crate::message::Message;
use crate::node::Port;
use graphs::NodeId;
use std::sync::atomic::AtomicUsize;

/// Per-node executor state: the algorithm state plus the halted flag.
pub(crate) struct NodeCell<S> {
    pub(crate) state: Option<S>,
    pub(crate) halted: bool,
}

/// Everything a worker touches while sweeping: the phase geometry, the
/// algorithm, per-node cells, the double-buffered slot arenas, and the
/// cumulative per-directed-edge load accumulators.
pub(crate) struct PhaseState<'a, A: Algorithm> {
    pub(crate) spec: &'a PhaseSpec<'a>,
    pub(crate) algo: &'a A,
    pub(crate) nodes: SyncCells<NodeCell<A::State>>,
    pub(crate) arenas: [SlotArena<A::Msg>; 2],
    /// Cumulative bits routed over each directed edge this phase
    /// (slot-indexed; single writer per round — the edge's sender).
    pub(crate) edge_load: SyncCells<u64>,
}

impl<'a, A: Algorithm> PhaseState<'a, A> {
    pub(crate) fn new(spec: &'a PhaseSpec<'a>, algo: &'a A) -> Self {
        let n = spec.n;
        let total = spec.slot_base[n];
        PhaseState {
            spec,
            algo,
            nodes: SyncCells::new(
                (0..n)
                    .map(|_| NodeCell {
                        state: None,
                        halted: false,
                    })
                    .collect(),
            ),
            arenas: [SlotArena::new(total, n), SlotArena::new(total, n)],
            edge_load: SyncCells::new(vec![0; total]),
        }
    }

    /// The phase's `max_edge_load_bits`: the heaviest cumulative load on
    /// any single (edge, direction). Takes `&mut self` — called after the
    /// last sweep, when no workers exist.
    pub(crate) fn max_edge_load_bits(&mut self) -> usize {
        self.edge_load.iter_exclusive().copied().max().unwrap_or(0) as usize
    }
}

/// The real executors' [`SlotMem`]: one arena half plus the phase's
/// cumulative edge-load accumulators, stamped with the sweep epoch for
/// the debug-build exclusivity tags. This is the *only* place the slot
/// protocol meets the `unsafe` cells — the protocol state machines in
/// [`super::protocol`] are themselves safe code, shared verbatim with
/// the interleaving model checker in `crates/analysis`.
///
/// Soundness of every `unsafe` block below rests on the callers obeying
/// the protocol discipline of [`super::cells`]: a slot is written only
/// by its unique sender in the writing round (after the occupancy check
/// that doubles as the `DoubleSend` rule), and read only by the unique
/// worker owning its destination in the reading round, on the other
/// half of the double buffer; the inter-sweep join is the
/// happens-before edge between the two. Debug builds additionally
/// *check* the discipline via the epoch claims.
struct ArenaSlotMem<'x, M> {
    arena: &'x SlotArena<M>,
    edge_load: &'x SyncCells<u64>,
    /// The sweep epoch claims are stamped with (boot = 0, else the
    /// round number).
    epoch: u64,
}

impl<M> SlotMem for ArenaSlotMem<'_, M> {
    type Payload = M;

    fn slot_occupied(&self, slot: usize) -> bool {
        // SAFETY: the occupancy check is part of the sender's send
        // sequence, and the sender holds exclusive write access to
        // `slot` for this round (sender-unique `write_slot` mapping);
        // no reader exists because reads go to the other arena of the
        // double buffer. The borrow ends at the `is_some()`.
        unsafe { self.arena.slot_mut(slot) }.is_some()
    }

    fn slot_write(&self, slot: usize, payload: M) {
        self.arena.claim_slot(slot, self.epoch);
        // SAFETY: only `slot`'s unique sender reaches a write — the
        // protocol abandons the send machine when the occupancy check
        // fails — and reads go to the other arena half this round, so
        // this `&mut` is exclusive. (The debug claim above turns any
        // violation of that argument into an assertion failure.)
        *unsafe { self.arena.slot_mut(slot) } = Some(payload);
    }

    fn slot_take(&self, slot: usize) -> Option<M> {
        self.arena.claim_slot(slot, self.epoch);
        // SAFETY: `slot` lies in the inbox range of a destination owned
        // by the calling worker this sweep (disjoint chunk claims), and
        // senders write the other arena half this round, so this `&mut`
        // is exclusive.
        unsafe { self.arena.slot_mut(slot) }.take()
    }

    fn edge_load_add(&self, slot: usize, bits: u64) {
        self.edge_load.claim(slot, self.epoch);
        // SAFETY: the edge-load accumulator of a directed edge is
        // written only by that edge's unique sender (same single-writer
        // argument as the slot itself), at most once per round thanks
        // to the occupancy check.
        *unsafe { self.edge_load.get_mut(slot) } += bits;
    }

    fn pending_read(&self, dest: usize) -> u32 {
        self.arena.pending(dest)
    }

    fn pending_fetch_add(&self, dest: usize) -> u32 {
        self.arena.add_pending(dest)
    }

    fn pending_reset(&self, dest: usize) {
        self.arena.reset_pending(dest);
    }
}

/// One sweep over all nodes: the boot sweep or a numbered round.
pub(crate) enum Sweep<'s, A: Algorithm> {
    /// Round 0: take each node's input, `boot` it, route its outbox.
    Boot {
        inputs: &'s SyncCells<Option<A::Input>>,
        write: &'s SlotArena<A::Msg>,
    },
    /// Round `round ≥ 1`: deliver inboxes from `read`, step live nodes,
    /// route outboxes into `write`.
    Round {
        round: u64,
        read: &'s SlotArena<A::Msg>,
        write: &'s SlotArena<A::Msg>,
    },
}

/// What one worker accumulates over its chunks. Every field merges
/// commutatively (sums, maxes, min-node error, set union), so the merged
/// totals are independent of the chunk schedule.
#[derive(Default)]
pub(crate) struct SweepStats {
    pub(crate) messages: u64,
    pub(crate) bits: u64,
    pub(crate) max_message_bits: usize,
    pub(crate) violations: u64,
    /// Nodes that halted during this sweep.
    pub(crate) halts: usize,
    /// Messages consumed from the read arena (delivered or dropped).
    pub(crate) delivered: usize,
    /// Destinations whose inbox went non-empty this sweep (each exactly
    /// once: pushed by the sender that flipped its pending count from 0).
    /// The next round sweeps `live ∪ (touched ∩ halted)` instead of all
    /// `n` nodes, so fully-halted regions cost nothing per round.
    pub(crate) touched: Vec<u32>,
    /// The sweep's error at the smallest node index, if any — exactly the
    /// error the serial schedule would have hit first.
    pub(crate) err: Option<(usize, CongestError)>,
}

impl SweepStats {
    fn record_err(&mut self, node: usize, e: CongestError) {
        match &self.err {
            Some((held, _)) if *held <= node => {}
            _ => self.err = Some((node, e)),
        }
    }

    fn merge(&mut self, other: SweepStats) {
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.violations += other.violations;
        self.halts += other.halts;
        self.delivered += other.delivered;
        self.touched.extend_from_slice(&other.touched);
        if let Some((node, e)) = other.err {
            self.record_err(node, e);
        }
    }
}

/// The node set one sweep covers.
pub(crate) enum Domain<'d> {
    /// Every node `0..n` (the boot sweep).
    All(usize),
    /// Round sweeps: the live nodes (ascending ids; may contain nodes
    /// that halted since the last compaction — they are skipped in O(1))
    /// plus the halted nodes with a non-empty inbox, which only need
    /// their messages-to-halted check. The two segments never make a
    /// worker touch a node cell another worker owns: a stale-halted
    /// node's cell is read (not written) in the live segment, and its
    /// inbox is consumed only in the halted segment.
    Lists { live: &'d [u32], halted: &'d [u32] },
}

impl Domain<'_> {
    pub(crate) fn len(&self) -> usize {
        match self {
            Domain::All(n) => *n,
            Domain::Lists { live, halted } => live.len() + halted.len(),
        }
    }
}

/// How a sweep is scheduled across nodes.
pub(crate) enum ExecMode {
    /// One inline pass over `0..n`.
    Serial,
    /// `threads` scoped workers claiming `chunk`-sized ranges from an
    /// atomic cursor; sweeps smaller than `inline_below` run inline
    /// (see [`crate::NetworkConfig::parallel_inline_threshold`]).
    Parallel {
        threads: usize,
        chunk: usize,
        inline_below: usize,
    },
}

/// Runs one sweep under `mode` and returns the merged stats.
pub(crate) fn execute_sweep<A: Algorithm>(
    ps: &PhaseState<'_, A>,
    sweep: &Sweep<'_, A>,
    domain: &Domain<'_>,
    mode: &ExecMode,
) -> SweepStats {
    let len = domain.len();
    match *mode {
        // A sweep that does not fill at least two chunks has nothing to
        // parallelize, and one below the configured inline threshold is
        // too small for the per-sweep thread costs to pay off: run
        // either inline and skip the thread spawns. Identical results by
        // construction (same per-node code, commutative stats); this is
        // what keeps long pipelined tails — thousands of rounds with a
        // handful of live nodes — and small-`n` phases from paying
        // per-round spawn costs.
        ExecMode::Parallel {
            threads,
            chunk,
            inline_below,
        } if len > chunk && len >= inline_below && threads > 1 => {
            let claimer = ChunkClaimer { chunk, len };
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let (claimer, cursor) = (&claimer, &cursor);
                let handles: Vec<_> = (0..threads)
                    .map(|widx| {
                        scope.spawn(move || {
                            // Worker utilization is a host measurement:
                            // chunk claiming races by design, so these
                            // numbers go to the obs profile only, never
                            // the deterministic stats or event stream.
                            let obs = ps.spec.obs;
                            let span = crate::obs::worker_begin(obs);
                            let (mut chunks, mut nodes) = (0u64, 0u64);
                            let mut stats = SweepStats::default();
                            let mut scratch = Vec::with_capacity(ps.spec.max_degree);
                            while let Some(range) = claimer.claim(cursor) {
                                chunks += 1;
                                nodes += range.len() as u64;
                                run_nodes(
                                    ps,
                                    sweep,
                                    domain,
                                    range.start,
                                    range.end,
                                    &mut scratch,
                                    &mut stats,
                                );
                            }
                            crate::obs::worker_end(obs, span, widx, chunks, nodes);
                            stats
                        })
                    })
                    .collect();
                let mut merged = SweepStats::default();
                for h in handles {
                    match h.join() {
                        Ok(s) => merged.merge(s),
                        // A panicking algorithm panics the caller, as it
                        // does under the serial executor.
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                merged
            })
        }
        _ => {
            let mut stats = SweepStats::default();
            let mut scratch = Vec::with_capacity(ps.spec.max_degree);
            run_nodes(ps, sweep, domain, 0, len, &mut scratch, &mut stats);
            stats
        }
    }
}

/// Runs one sweep over the domain positions `lo..hi` (a claimed chunk).
///
/// Errors are *recorded*, not early-returned: every domain position is
/// processed so the merged minimum-node error is identical under any
/// chunk schedule (serial included).
///
/// SAFETY discipline: positions `lo..hi` are exclusively owned by this
/// caller for this sweep, so `get_mut` on node cells/inputs resolved
/// from the range is exclusive (the live and halted segments are
/// disjoint node sets except for stale-halted entries, which the live
/// segment only reads); slot writes go through the sender-unique
/// `write_slot` mapping and slot reads through the destination-unique
/// inbox range (see [`super::cells`] for the full argument).
fn run_nodes<A: Algorithm>(
    ps: &PhaseState<'_, A>,
    sweep: &Sweep<'_, A>,
    domain: &Domain<'_>,
    lo: usize,
    hi: usize,
    scratch: &mut Vec<(Port, A::Msg)>,
    stats: &mut SweepStats,
) {
    let spec = ps.spec;
    match sweep {
        Sweep::Boot { inputs, write } => {
            for i in lo..hi {
                let v = match domain {
                    Domain::All(_) => i,
                    Domain::Lists { live, halted } => {
                        if i < live.len() {
                            live[i] as usize
                        } else {
                            halted[i - live.len()] as usize
                        }
                    }
                };
                inputs.claim(v, 0);
                // SAFETY: `v` is in this worker's claimed chunk — chunks
                // are disjoint (see `ChunkClaimer`), so no other worker
                // touches input or node cell `v` this sweep.
                let input = unsafe { inputs.get_mut(v) }
                    .take()
                    .expect("exactly one input per node");
                let ctx = spec.ctx(v, 0);
                let (state, outbox) = ps.algo.boot(&ctx, input);
                ps.nodes.claim(v, 0);
                // SAFETY: as above.
                unsafe { ps.nodes.get_mut(v) }.state = Some(state);
                route_outbox(ps, v, 0, outbox.msgs, write, stats);
            }
        }
        Sweep::Round { round, read, write } => {
            for i in lo..hi {
                let (v, halted_with_inbox) = match domain {
                    Domain::All(_) => (i, false),
                    Domain::Lists { live, halted } => {
                        if i < live.len() {
                            (live[i] as usize, false)
                        } else {
                            (halted[i - live.len()] as usize, true)
                        }
                    }
                };
                if halted_with_inbox {
                    // A halted node whose inbox went non-empty: the
                    // protocol violation check, nothing else.
                    let pending = read.pending(v);
                    if pending > 0 {
                        if spec.strict {
                            stats.record_err(
                                v,
                                CongestError::MessageToHalted {
                                    phase: spec.name.to_string(),
                                    node: NodeId::from_index(v),
                                    round: *round,
                                },
                            );
                            continue;
                        }
                        // Lax mode: drop the inbox (the drain machine
                        // consumes every slot, then clears pending).
                        let mem = ArenaSlotMem {
                            arena: read,
                            edge_load: &ps.edge_load,
                            epoch: *round,
                        };
                        let mut drain = DrainSm::new(v, spec.slot_base[v], spec.slot_base[v + 1]);
                        while drain.step(&mem).is_some() {}
                        stats.delivered += pending as usize;
                    }
                    continue;
                }
                ps.nodes.claim(v, *round);
                // SAFETY: `v` is in this worker's claimed chunk — chunks
                // are disjoint, so this is the sweep's only borrow of
                // cell `v` (if `v` is a stale-halted entry, the halted
                // segment touches only its inbox, never this cell).
                let cell = unsafe { ps.nodes.get_mut(v) };
                if cell.halted {
                    // Stale live-list entry awaiting compaction. Its
                    // inbox, if any, is handled by the halted segment.
                    continue;
                }
                scratch.clear();
                if read.pending(v) > 0 {
                    let mem = ArenaSlotMem {
                        arena: read,
                        edge_load: &ps.edge_load,
                        epoch: *round,
                    };
                    let mut drain = DrainSm::new(v, spec.slot_base[v], spec.slot_base[v + 1]);
                    while let Some(step) = drain.step(&mem) {
                        if let DrainStep::Took {
                            port,
                            payload: Some(m),
                        } = step
                        {
                            scratch.push((Port(port), m));
                        }
                    }
                    stats.delivered += scratch.len();
                }
                let ctx = spec.ctx(v, *round);
                let state = cell.state.as_mut().expect("live node has state");
                let outbox = match ps.algo.round(state, &ctx, scratch) {
                    Step::Continue(o) => o,
                    Step::Halt(o) => {
                        cell.halted = true;
                        stats.halts += 1;
                        o
                    }
                };
                route_outbox(ps, v, *round, outbox.msgs, write, stats);
            }
        }
    }
}

/// Validates and routes one node's outbox into the write arena. The
/// engine's invariants are enforced here: ports must exist, a port may
/// carry at most one message per round (slot occupancy *is* the
/// `DoubleSend` check — the slot belongs to this sender alone), and
/// strict mode rejects over-budget messages. Each send drives one
/// [`SendSm`] over the arena: the occupancy check first, then — with
/// the bandwidth validation and metering sandwiched in between, exactly
/// where the engine's error precedence demands — the load/pending/write
/// completion.
fn route_outbox<A: Algorithm>(
    ps: &PhaseState<'_, A>,
    v: usize,
    round: u64,
    msgs: Vec<(Port, A::Msg)>,
    write: &SlotArena<A::Msg>,
    stats: &mut SweepStats,
) {
    let spec = ps.spec;
    let degree = spec.neighbors[v].len();
    let base = spec.slot_base[v];
    let mem = ArenaSlotMem {
        arena: write,
        edge_load: &ps.edge_load,
        epoch: round,
    };
    for (port, msg) in msgs {
        let p = port.index();
        if p >= degree {
            stats.record_err(
                v,
                CongestError::InvalidPort {
                    phase: spec.name.to_string(),
                    node: NodeId::from_index(v),
                    port,
                    degree,
                },
            );
            return;
        }
        let slot = spec.write_slot[base + p];
        let (dest, _) = spec.routing[v][p];
        let bits = msg.bit_len();
        let mut sm = SendSm::new(slot, dest as usize, bits as u64);
        if (sm.step(&mem, &mut None)) == (SendStep::Checked { occupied: true }) {
            // The machine is abandoned here having touched nothing:
            // slot occupancy is the DoubleSend condition.
            stats.record_err(
                v,
                CongestError::DoubleSend {
                    phase: spec.name.to_string(),
                    node: NodeId::from_index(v),
                    port,
                    round,
                },
            );
            return;
        }
        if bits > spec.bandwidth_bits {
            if spec.strict {
                stats.record_err(
                    v,
                    CongestError::BandwidthExceeded {
                        phase: spec.name.to_string(),
                        node: NodeId::from_index(v),
                        port,
                        bits,
                        budget: spec.bandwidth_bits,
                        round,
                    },
                );
                return;
            }
            stats.violations += 1;
        }
        stats.messages += 1;
        stats.bits += bits as u64;
        stats.max_message_bits = stats.max_message_bits.max(bits);
        if sm.complete(&mem, msg) {
            // First message into `dest` this round: nominate it for the
            // next round's touched set.
            stats.touched.push(dest);
        }
    }
}
