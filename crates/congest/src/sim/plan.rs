//! The deterministic adversary model: a [`FaultPlan`] describes *which*
//! faults the simulated network injects, and a seeded counter-mode hash
//! decides *where* — so two runs with the same plan perturb the same
//! frames, regardless of wall clock, thread count, or test ordering.
//!
//! Probabilities are stored per mille (integer ‰) rather than as floats:
//! the coin arithmetic is pure integer (`hash % 1000 < p`), which keeps
//! [`FaultPlan`] `Eq + Hash` (it lives inside
//! [`crate::ExecutorKind::Faulty`]) and makes determinism independent of
//! floating-point rounding.
//!
//! Besides the per-frame link faults, a plan carries a **crash
//! schedule**: a list of [`CrashEvent`]s that fail-stop whole nodes at
//! a *global virtual round* (cumulative across the session's phases —
//! see [`crate::metrics::MetricsLedger::total_rounds`]), optionally
//! rejoining later. Crashes are detected by the executor's timeout-based
//! failure detector (suspicion after [`FaultPlan::suspect_after`] silent
//! ticks) and handled per [`SuspicionPolicy`].

/// One fail-stop event in a crash schedule: the node executes every
/// virtual round strictly before `at_round` (globally numbered across
/// the session's phases), delivers every message those rounds sent, and
/// is then silent — it sends nothing, acks nothing, executes nothing.
/// `at_round == 0` means dead from boot.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CrashEvent {
    /// The node that fail-stops.
    pub node: u32,
    /// The first global virtual round the node does **not** execute.
    pub at_round: u64,
    /// Optional global round at which the node comes back. Rejoins take
    /// effect at phase boundaries only: a node whose rejoin round has
    /// passed when a phase starts participates in that phase from boot.
    pub rejoin: Option<u64>,
}

/// One partition window: every frame sent on a listed edge (either
/// direction) is silently discarded from the moment the session's
/// global virtual clock reaches `at_round` until `heal_at` physical
/// ticks later, when the links heal. Unlike a crash, nothing is wrong
/// with the *nodes*: once the window closes, retransmission delivers
/// the parked traffic and any suspicion raised across the cut is
/// revoked by the first post-heal arrival — which is exactly the
/// observable that lets a recovery driver distinguish "partitioned"
/// from "dead".
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PartitionEvent {
    /// The undirected edges the partition silences, as unordered
    /// node-id pairs (both directions of each edge go quiet).
    pub cut_edges: Vec<(u32, u32)>,
    /// The first global virtual round of the outage: the window opens
    /// at the first physical tick of whichever phase reaches this
    /// round on the session clock.
    pub at_round: u64,
    /// How many physical ticks after onset the partition heals. The
    /// window is bounded by the phase that opens it: a phase completes
    /// only after every payload crossed, so a partition still unhealed
    /// at a phase boundary has observationally healed.
    pub heal_at: u64,
}

/// What the faulty executor does when a node first suspects a silent
/// peer (see [`FaultPlan::suspect_after`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum SuspicionPolicy {
    /// Abort the phase with [`crate::CongestError::NodeSuspected`] —
    /// the right policy for algorithms that assume a healthy network
    /// (the min-cut pipeline): a recovery driver catches the typed
    /// error, diagnoses the surviving component, and re-runs there.
    #[default]
    Abort,
    /// Quiesce the suspected channel (pretend the peer is forever safe,
    /// drop any payload parked for it) and keep executing — the policy
    /// the failure-detector phase itself runs under, so it can complete
    /// on the survivors and *report* the suspected set.
    Continue,
}

/// What the adversary is allowed to do to each transmitted frame, and
/// how the α-synchronizer fights back. All knobs are deterministic
/// functions of `seed`; the default plan is lossless (no drops, no
/// duplicates, no delay, no crashes), which isolates the synchronizer's
/// own overhead.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed of every fault coin. Same seed + same plan ⇒ byte-identical
    /// executions (see `sim_determinism`).
    pub seed: u64,
    /// Per-frame drop probability in ‰ (`0..=1000`; `1000` drops every
    /// frame, which exhausts the retransmission budget by design).
    pub drop_per_mille: u16,
    /// Per-frame duplication probability in ‰. A duplicated frame is
    /// delivered twice, each copy with its own delay draw; the receiver
    /// deduplicates by sequence number.
    pub dup_per_mille: u16,
    /// Maximum extra delivery delay in ticks: each surviving frame
    /// arrives `1 + d` ticks after transmission with `d` drawn uniformly
    /// from `0..=max_delay`. Unequal delays reorder frames within the
    /// window.
    pub max_delay: u8,
    /// Retransmission timeout: an unacknowledged payload (or an
    /// unconfirmed safety announcement) is retransmitted every
    /// `resend_after` ticks (≥ 1; `0` is treated as 1).
    pub resend_after: u16,
    /// Per-payload retransmission budget: a payload (or safety value)
    /// transmitted more than this many times without acknowledgement
    /// aborts the phase with
    /// [`crate::CongestError::RetransmitExhausted`]. This is what turns
    /// an adversary with `drop_per_mille = 1000` into a typed error
    /// instead of a livelock.
    pub max_attempts: u32,
    /// The crash schedule: fail-stop events in **global** virtual
    /// rounds. Empty (the default) keeps the transport bit-identical to
    /// the crash-free PR 5 behaviour — no keepalives, no suspicion
    /// machinery, byte-identical ledgers.
    pub crashes: Vec<CrashEvent>,
    /// Crash events of nodes no longer in the current id space: a
    /// [`FaultPlan::remapped`] excision moves rejoin-pending events
    /// here instead of dropping them, so a scheduled transient outage
    /// is not silently promoted to a permanent death. Parked events
    /// keep the node ids of the space the excision map was applied
    /// *from* (only the recovery driver that built the map can
    /// translate them), never arm the executor's crash machinery, and
    /// ride [`FaultPlan::rebased`] like live events — except that a
    /// due rejoin pins at `Some(0)` instead of expiring, so the driver
    /// sees the re-admission. The driver clears an entry when it
    /// re-admits the node.
    pub parked: Vec<CrashEvent>,
    /// The partition schedule: edge-set silencing windows on the same
    /// global virtual clock as `crashes`. Empty by default; like the
    /// crash schedule, a plan without partitions keeps the transport
    /// byte-identical to the partition-free build.
    pub partitions: Vec<PartitionEvent>,
    /// Per-frame corruption probability in ‰: a corrupted frame has one
    /// seeded bit flipped in a checksummed control field. It still
    /// decodes, but the receiver's per-phase checksum rejects it whole
    /// (no ack, no keepalive credit), so the retransmission machinery
    /// repairs the loss. Metered as `corrupted` in the phase stats.
    pub corrupt_per_mille: u16,
    /// Failure-detector patience: a peer is suspected after
    /// `suspect_patience · (resend_after + max_delay + 1)` silent ticks
    /// (see [`FaultPlan::suspect_after`]); `0` is treated as the
    /// default patience. Only meaningful when `crashes` is non-empty.
    pub suspect_patience: u16,
    /// What the executor does on the first suspicion.
    pub on_suspect: SuspicionPolicy,
}

/// Default failure-detector patience (silent keepalive windows before
/// suspicion). Large enough that a false suspicion needs ~this many
/// *consecutive* keepalive losses (probability `p^patience`), small
/// enough that suspicion fires well inside the retransmission budget.
pub const DEFAULT_SUSPECT_PATIENCE: u16 = 8;

impl Default for FaultPlan {
    /// The lossless plan: perfect channels, so the only cost is the
    /// synchronizer's ack/safety traffic and its round dilation.
    fn default() -> Self {
        FaultPlan {
            seed: 0x5EED_CA57,
            drop_per_mille: 0,
            dup_per_mille: 0,
            max_delay: 0,
            resend_after: 4,
            max_attempts: 64,
            crashes: Vec::new(),
            parked: Vec::new(),
            partitions: Vec::new(),
            corrupt_per_mille: 0,
            suspect_patience: DEFAULT_SUSPECT_PATIENCE,
            on_suspect: SuspicionPolicy::Abort,
        }
    }
}

impl FaultPlan {
    /// The lossless plan (alias of [`FaultPlan::default`]).
    pub fn lossless() -> Self {
        Self::default()
    }

    /// A lossy plan: drop probability in ‰ with the given seed, default
    /// duplication (none), delay window 0, and default timers.
    pub fn with_drop(drop_per_mille: u16, seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille,
            ..Self::default()
        }
    }

    /// This plan with the given delay window.
    pub fn delayed(self, max_delay: u8) -> Self {
        FaultPlan { max_delay, ..self }
    }

    /// This plan with the given duplication probability in ‰.
    pub fn duplicated(self, dup_per_mille: u16) -> Self {
        FaultPlan {
            dup_per_mille,
            ..self
        }
    }

    /// This plan with one additional fail-stop: `node` never executes
    /// any global virtual round `≥ at_round`.
    pub fn with_crash(mut self, node: u32, at_round: u64) -> Self {
        self.crashes.push(CrashEvent {
            node,
            at_round,
            rejoin: None,
        });
        self
    }

    /// This plan with a correlated group crash: every listed node
    /// fail-stops at the same global round (a rack loss, not independent
    /// failures).
    pub fn with_crash_group(mut self, nodes: &[u32], at_round: u64) -> Self {
        for &node in nodes {
            self.crashes.push(CrashEvent {
                node,
                at_round,
                rejoin: None,
            });
        }
        self
    }

    /// This plan with the given crash schedule (replacing any existing
    /// one).
    pub fn with_crashes(mut self, crashes: Vec<CrashEvent>) -> Self {
        self.crashes = crashes;
        self
    }

    /// This plan with [`SuspicionPolicy::Continue`] — the setting the
    /// failure-detector phase runs under.
    pub fn continue_on_suspicion(mut self) -> Self {
        self.on_suspect = SuspicionPolicy::Continue;
        self
    }

    /// This plan with one additional partition window: the listed
    /// undirected edges go silent when the session clock reaches
    /// `at_round` and heal `heal_at` physical ticks later.
    pub fn with_partition(
        mut self,
        cut_edges: Vec<(u32, u32)>,
        at_round: u64,
        heal_at: u64,
    ) -> Self {
        self.partitions.push(PartitionEvent {
            cut_edges,
            at_round,
            heal_at,
        });
        self
    }

    /// This plan with the given frame-corruption probability in ‰.
    pub fn corrupted(mut self, corrupt_per_mille: u16) -> Self {
        self.corrupt_per_mille = corrupt_per_mille;
        self
    }

    /// Does this plan schedule any crash at all? `false` guarantees the
    /// executor's transport behaviour is byte-identical to a crash-free
    /// build: keepalives and the suspicion sweep are gated on this.
    /// Parked events are of nodes outside the id space and do not arm
    /// anything.
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// Does this plan schedule any partition window? Arms the failure
    /// detector (a long partition must be *suspectable*, or the
    /// partitioned-vs-dead question could never be asked) but not the
    /// crash schedule.
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// Had any partition window begun by global round `round`? The
    /// recovery driver uses this to blame an abort on a partition when
    /// the census finds nobody actually dead — the signal to retry on
    /// the same participant set instead of certifying (or failing) on
    /// a half-partition that later heals.
    pub fn partition_begun_by(&self, round: u64) -> bool {
        self.partitions.iter().any(|p| p.at_round <= round)
    }

    /// Silent ticks after which a peer is suspected:
    /// `patience · (resend_after + max_delay + 1)`. The bracket is the
    /// worst-case spacing between two keepalive *arrivals* from a live
    /// peer (one keepalive cadence plus the delivery window), so a
    /// false suspicion requires ~`patience` consecutive frame losses —
    /// probability `p^patience`. The value is a pure function of the
    /// plan, so detection timing is replayable.
    pub fn suspect_after(&self) -> u64 {
        let patience = if self.suspect_patience == 0 {
            DEFAULT_SUSPECT_PATIENCE
        } else {
            self.suspect_patience
        };
        u64::from(patience) * (self.timeout() + u64::from(self.max_delay) + 1)
    }

    /// The phase-local round at which `node` fail-stops, for a phase
    /// whose first round is global round `base`: `Some(0)` means dead
    /// from boot, `Some(q)` means the node executes phase rounds `< q`
    /// only, `None` means alive throughout (including events already
    /// expired by a rejoin `≤ base`; mid-phase rejoins wait for the
    /// next phase boundary).
    pub fn crash_round_of(&self, node: u32, base: u64) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|e| e.node == node && e.rejoin.is_none_or(|rj| rj > base))
            .map(|e| e.at_round.saturating_sub(base))
            .min()
    }

    /// This plan shifted `consumed` global rounds into the past — the
    /// recovery driver's clock: crashes that already fired become
    /// dead-from-round-0, future ones move closer, and events whose
    /// rejoin round has passed disappear (the node is alive again).
    /// Parked events shift too, but a due rejoin pins at `Some(0)`
    /// instead of expiring — the node is outside the id space, so only
    /// the driver's re-admission (which clears the entry) can act on
    /// it. Partition windows whose onset is strictly past are dropped:
    /// their tick-bounded outage was served inside the consumed work.
    pub fn rebased(&self, consumed: u64) -> Self {
        let mut p = self.clone();
        p.crashes
            .retain(|e| e.rejoin.is_none_or(|rj| rj > consumed));
        for e in &mut p.crashes {
            e.at_round = e.at_round.saturating_sub(consumed);
            e.rejoin = e.rejoin.map(|rj| rj - consumed);
        }
        for e in &mut p.parked {
            e.at_round = e.at_round.saturating_sub(consumed);
            e.rejoin = e.rejoin.map(|rj| rj.saturating_sub(consumed));
        }
        p.partitions.retain(|w| w.at_round >= consumed);
        for w in &mut p.partitions {
            w.at_round -= consumed;
        }
        p
    }

    /// This plan with crash events renamed through `map`. Events whose
    /// node maps to `None` (excised from the surviving subgraph) are
    /// dropped — unless a rejoin is still pending, in which case the
    /// event is parked (pre-remap id kept) for the recovery driver to
    /// re-admit later; see [`FaultPlan::parked`]. Already-parked events
    /// pass through untouched: they live in an older id space the map
    /// does not speak. Partition endpoints are renamed the same way,
    /// and a cut edge losing an endpoint (or a window losing every
    /// edge) disappears — an excised node's links are gone with it.
    /// Link-fault coins are positional (edge, tick), so they re-seed
    /// naturally on the remapped topology.
    pub fn remapped(&self, mut map: impl FnMut(u32) -> Option<u32>) -> Self {
        let mut p = self.clone();
        p.crashes.clear();
        for e in &self.crashes {
            match map(e.node) {
                Some(node) => p.crashes.push(CrashEvent { node, ..*e }),
                None if e.rejoin.is_some() => p.parked.push(*e),
                None => {}
            }
        }
        p.partitions.clear();
        for w in &self.partitions {
            let cut_edges: Vec<(u32, u32)> = w
                .cut_edges
                .iter()
                .filter_map(|&(a, b)| map(a).zip(map(b)))
                .collect();
            if !cut_edges.is_empty() {
                p.partitions.push(PartitionEvent {
                    cut_edges,
                    at_round: w.at_round,
                    heal_at: w.heal_at,
                });
            }
        }
        p
    }

    /// The effective retransmission timeout (≥ 1 tick).
    pub(crate) fn timeout(&self) -> u64 {
        u64::from(self.resend_after.max(1))
    }

    /// Does the adversary drop the frame sent on directed edge `edge` at
    /// `tick`?
    pub(crate) fn drops(&self, edge: usize, tick: u64) -> bool {
        per_mille(self.coin(edge, tick, SALT_DROP), self.drop_per_mille)
    }

    /// Does the adversary duplicate the frame sent on `edge` at `tick`?
    pub(crate) fn duplicates(&self, edge: usize, tick: u64) -> bool {
        per_mille(self.coin(edge, tick, SALT_DUP), self.dup_per_mille)
    }

    /// The extra delivery delay (in ticks, `0..=max_delay`) of copy
    /// `copy` of the frame sent on `edge` at `tick`.
    pub(crate) fn delay(&self, edge: usize, tick: u64, copy: u64) -> u64 {
        if self.max_delay == 0 {
            return 0;
        }
        self.coin(edge, tick, SALT_DELAY ^ copy.wrapping_mul(MIX_C))
            % (u64::from(self.max_delay) + 1)
    }

    /// Does the adversary corrupt copy `copy` of the frame sent on
    /// `edge` at `tick`? A corrupted frame is delivered with one seeded
    /// bit flipped in a checksummed control field (see
    /// [`FaultPlan::corruption`]); each duplicate copy draws its own
    /// coin, like delays.
    pub(crate) fn corrupts(&self, edge: usize, tick: u64, copy: u64) -> bool {
        per_mille(
            self.coin(edge, tick, SALT_CORRUPT ^ copy.wrapping_mul(MIX_B)),
            self.corrupt_per_mille,
        )
    }

    /// The corruption pattern for a corrupted frame copy: a 64-bit coin
    /// the executor splits into "which control field" and "which bit of
    /// it" to flip.
    pub(crate) fn corruption(&self, edge: usize, tick: u64, copy: u64) -> u64 {
        self.coin(edge, tick, SALT_FLIP ^ copy.wrapping_mul(MIX_B))
    }

    /// One 64-bit coin for (`seed`, `edge`, `tick`, `salt`) — a
    /// splitmix64 finalizer over the mixed key, so nearby keys decohere.
    fn coin(&self, edge: usize, tick: u64, salt: u64) -> u64 {
        let key = self
            .seed
            .wrapping_mul(MIX_A)
            .wrapping_add((edge as u64).wrapping_mul(MIX_B))
            .wrapping_add(tick.wrapping_mul(MIX_C))
            .wrapping_add(salt);
        splitmix64(key)
    }
}

const SALT_DROP: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_DUP: u64 = 0xD1B5_4A32_D192_ED03;
const SALT_DELAY: u64 = 0x8CB9_2BA7_2F3D_8DD7;
const SALT_CORRUPT: u64 = 0xE703_7ED1_A0B4_28DB;
const SALT_FLIP: u64 = 0xBF58_476D_1CE4_E5B9;
const MIX_A: u64 = 0xA24B_AED4_963E_E407;
const MIX_B: u64 = 0x9FB2_1C65_1E98_DF25;
const MIX_C: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// `true` with probability `p`/1000 given a uniform 64-bit coin.
fn per_mille(coin: u64, p: u16) -> bool {
    coin % 1000 < u64::from(p)
}

/// The splitmix64 output mixer (public-domain reference constants).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coins_are_deterministic_per_plan() {
        let a = FaultPlan::with_drop(300, 7);
        let b = FaultPlan::with_drop(300, 7);
        for edge in 0..50 {
            for tick in 0..50 {
                assert_eq!(a.drops(edge, tick), b.drops(edge, tick));
                assert_eq!(a.delay(edge, tick, 0), b.delay(edge, tick, 0));
            }
        }
        let c = FaultPlan::with_drop(300, 8);
        let agree = (0..1000)
            .filter(|&t| a.drops(0, t) == c.drops(0, t))
            .count();
        assert!(agree < 1000, "different seeds must decohere");
    }

    #[test]
    fn drop_rate_tracks_per_mille() {
        let plan = FaultPlan::with_drop(200, 42);
        let drops = (0..10_000).filter(|&t| plan.drops(3, t)).count();
        assert!((1_700..2_300).contains(&drops), "drops = {drops}");
        let never = FaultPlan::lossless();
        assert!((0..10_000).all(|t| !never.drops(3, t)));
        let always = FaultPlan::with_drop(1000, 1);
        assert!((0..100).all(|t| always.drops(3, t)));
    }

    #[test]
    fn delay_respects_window_and_copies_differ() {
        let plan = FaultPlan::with_drop(0, 5).delayed(3);
        let mut seen = [false; 4];
        let mut copies_differ = false;
        for t in 0..1000 {
            let d = plan.delay(9, t, 0);
            assert!(d <= 3);
            seen[d as usize] = true;
            if plan.delay(9, t, 1) != d {
                copies_differ = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all delays in the window occur");
        assert!(copies_differ, "duplicate copies draw their own delay");
        assert_eq!(FaultPlan::lossless().delay(9, 1, 0), 0);
    }

    #[test]
    fn crash_rounds_localize_against_the_phase_base() {
        let plan = FaultPlan::lossless()
            .with_crash(3, 100)
            .with_crash_group(&[5, 6], 40);
        assert!(!FaultPlan::lossless().has_crashes());
        assert!(plan.has_crashes());
        assert_eq!(plan.crash_round_of(3, 0), Some(100));
        assert_eq!(plan.crash_round_of(3, 90), Some(10));
        assert_eq!(plan.crash_round_of(3, 100), Some(0), "already dead");
        assert_eq!(plan.crash_round_of(3, 500), Some(0), "stays dead");
        assert_eq!(plan.crash_round_of(4, 0), None);
        assert_eq!(plan.crash_round_of(5, 39), Some(1));
        assert_eq!(plan.crash_round_of(6, 39), Some(1), "correlated group");
    }

    #[test]
    fn rejoin_expires_events_at_phase_boundaries() {
        let plan = FaultPlan::lossless().with_crashes(vec![CrashEvent {
            node: 2,
            at_round: 10,
            rejoin: Some(30),
        }]);
        assert_eq!(plan.crash_round_of(2, 15), Some(0), "down mid-outage");
        assert_eq!(plan.crash_round_of(2, 30), None, "rejoined");
        let rebased = plan.rebased(30);
        assert!(!rebased.has_crashes(), "expired events are dropped");
        let shifted = plan.rebased(12);
        assert_eq!(shifted.crashes[0].at_round, 0);
        assert_eq!(shifted.crashes[0].rejoin, Some(18));
    }

    #[test]
    fn remapping_drops_excised_nodes() {
        let plan = FaultPlan::lossless().with_crash(1, 5).with_crash(7, 50);
        // Node 1 was excised; node 7 becomes node 6 in the subgraph.
        let m = plan.remapped(|v| if v == 1 { None } else { Some(v - 1) });
        assert_eq!(m.crashes.len(), 1);
        assert_eq!((m.crashes[0].node, m.crashes[0].at_round), (6, 50));
    }

    #[test]
    fn suspicion_window_tracks_the_delay_and_timeout() {
        let plan = FaultPlan::lossless();
        assert_eq!(plan.suspect_after(), 8 * (4 + 1));
        let lossy = FaultPlan::with_drop(50, 1).delayed(2);
        assert_eq!(lossy.suspect_after(), 8 * (4 + 2 + 1));
        // Suspicion must fire well before the retransmission budget (so a
        // payload parked for a dead peer is abandoned, not a typed error).
        assert!(lossy.suspect_after() < u64::from(lossy.max_attempts) * lossy.timeout());
        let patient = FaultPlan {
            suspect_patience: 3,
            ..FaultPlan::lossless()
        };
        assert_eq!(patient.suspect_after(), 3 * 5);
        let zero = FaultPlan {
            suspect_patience: 0,
            ..FaultPlan::lossless()
        };
        assert_eq!(zero.suspect_after(), 8 * 5, "0 falls back to the default");
    }
}
