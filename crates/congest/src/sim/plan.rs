//! The deterministic adversary model: a [`FaultPlan`] describes *which*
//! faults the simulated network injects, and a seeded counter-mode hash
//! decides *where* — so two runs with the same plan perturb the same
//! frames, regardless of wall clock, thread count, or test ordering.
//!
//! Probabilities are stored per mille (integer ‰) rather than as floats:
//! the coin arithmetic is pure integer (`hash % 1000 < p`), which keeps
//! [`FaultPlan`] `Copy + Eq` (it lives inside
//! [`crate::ExecutorKind::Faulty`]) and makes determinism independent of
//! floating-point rounding.

/// What the adversary is allowed to do to each transmitted frame, and
/// how the α-synchronizer fights back. All knobs are deterministic
/// functions of `seed`; the default plan is lossless (no drops, no
/// duplicates, no delay), which isolates the synchronizer's own
/// overhead.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed of every fault coin. Same seed + same plan ⇒ byte-identical
    /// executions (see `sim_determinism`).
    pub seed: u64,
    /// Per-frame drop probability in ‰ (`0..=1000`; `1000` drops every
    /// frame, which exhausts the retransmission budget by design).
    pub drop_per_mille: u16,
    /// Per-frame duplication probability in ‰. A duplicated frame is
    /// delivered twice, each copy with its own delay draw; the receiver
    /// deduplicates by sequence number.
    pub dup_per_mille: u16,
    /// Maximum extra delivery delay in ticks: each surviving frame
    /// arrives `1 + d` ticks after transmission with `d` drawn uniformly
    /// from `0..=max_delay`. Unequal delays reorder frames within the
    /// window.
    pub max_delay: u8,
    /// Retransmission timeout: an unacknowledged payload (or an
    /// unconfirmed safety announcement) is retransmitted every
    /// `resend_after` ticks (≥ 1; `0` is treated as 1).
    pub resend_after: u16,
    /// Per-payload retransmission budget: a payload (or safety value)
    /// transmitted more than this many times without acknowledgement
    /// aborts the phase with
    /// [`crate::CongestError::RetransmitExhausted`]. This is what turns
    /// an adversary with `drop_per_mille = 1000` into a typed error
    /// instead of a livelock.
    pub max_attempts: u32,
}

impl Default for FaultPlan {
    /// The lossless plan: perfect channels, so the only cost is the
    /// synchronizer's ack/safety traffic and its round dilation.
    fn default() -> Self {
        FaultPlan {
            seed: 0x5EED_CA57,
            drop_per_mille: 0,
            dup_per_mille: 0,
            max_delay: 0,
            resend_after: 4,
            max_attempts: 64,
        }
    }
}

impl FaultPlan {
    /// The lossless plan (alias of [`FaultPlan::default`]).
    pub fn lossless() -> Self {
        Self::default()
    }

    /// A lossy plan: drop probability in ‰ with the given seed, default
    /// duplication (none), delay window 0, and default timers.
    pub fn with_drop(drop_per_mille: u16, seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille,
            ..Self::default()
        }
    }

    /// This plan with the given delay window.
    pub fn delayed(self, max_delay: u8) -> Self {
        FaultPlan { max_delay, ..self }
    }

    /// This plan with the given duplication probability in ‰.
    pub fn duplicated(self, dup_per_mille: u16) -> Self {
        FaultPlan {
            dup_per_mille,
            ..self
        }
    }

    /// The effective retransmission timeout (≥ 1 tick).
    pub(crate) fn timeout(&self) -> u64 {
        u64::from(self.resend_after.max(1))
    }

    /// Does the adversary drop the frame sent on directed edge `edge` at
    /// `tick`?
    pub(crate) fn drops(&self, edge: usize, tick: u64) -> bool {
        per_mille(self.coin(edge, tick, SALT_DROP), self.drop_per_mille)
    }

    /// Does the adversary duplicate the frame sent on `edge` at `tick`?
    pub(crate) fn duplicates(&self, edge: usize, tick: u64) -> bool {
        per_mille(self.coin(edge, tick, SALT_DUP), self.dup_per_mille)
    }

    /// The extra delivery delay (in ticks, `0..=max_delay`) of copy
    /// `copy` of the frame sent on `edge` at `tick`.
    pub(crate) fn delay(&self, edge: usize, tick: u64, copy: u64) -> u64 {
        if self.max_delay == 0 {
            return 0;
        }
        self.coin(edge, tick, SALT_DELAY ^ copy.wrapping_mul(MIX_C))
            % (u64::from(self.max_delay) + 1)
    }

    /// One 64-bit coin for (`seed`, `edge`, `tick`, `salt`) — a
    /// splitmix64 finalizer over the mixed key, so nearby keys decohere.
    fn coin(&self, edge: usize, tick: u64, salt: u64) -> u64 {
        let key = self
            .seed
            .wrapping_mul(MIX_A)
            .wrapping_add((edge as u64).wrapping_mul(MIX_B))
            .wrapping_add(tick.wrapping_mul(MIX_C))
            .wrapping_add(salt);
        splitmix64(key)
    }
}

const SALT_DROP: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_DUP: u64 = 0xD1B5_4A32_D192_ED03;
const SALT_DELAY: u64 = 0x8CB9_2BA7_2F3D_8DD7;
const MIX_A: u64 = 0xA24B_AED4_963E_E407;
const MIX_B: u64 = 0x9FB2_1C65_1E98_DF25;
const MIX_C: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// `true` with probability `p`/1000 given a uniform 64-bit coin.
fn per_mille(coin: u64, p: u16) -> bool {
    coin % 1000 < u64::from(p)
}

/// The splitmix64 output mixer (public-domain reference constants).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coins_are_deterministic_per_plan() {
        let a = FaultPlan::with_drop(300, 7);
        let b = FaultPlan::with_drop(300, 7);
        for edge in 0..50 {
            for tick in 0..50 {
                assert_eq!(a.drops(edge, tick), b.drops(edge, tick));
                assert_eq!(a.delay(edge, tick, 0), b.delay(edge, tick, 0));
            }
        }
        let c = FaultPlan::with_drop(300, 8);
        let agree = (0..1000)
            .filter(|&t| a.drops(0, t) == c.drops(0, t))
            .count();
        assert!(agree < 1000, "different seeds must decohere");
    }

    #[test]
    fn drop_rate_tracks_per_mille() {
        let plan = FaultPlan::with_drop(200, 42);
        let drops = (0..10_000).filter(|&t| plan.drops(3, t)).count();
        assert!((1_700..2_300).contains(&drops), "drops = {drops}");
        let never = FaultPlan::lossless();
        assert!((0..10_000).all(|t| !never.drops(3, t)));
        let always = FaultPlan::with_drop(1000, 1);
        assert!((0..100).all(|t| always.drops(3, t)));
    }

    #[test]
    fn delay_respects_window_and_copies_differ() {
        let plan = FaultPlan::with_drop(0, 5).delayed(3);
        let mut seen = [false; 4];
        let mut copies_differ = false;
        for t in 0..1000 {
            let d = plan.delay(9, t, 0);
            assert!(d <= 3);
            seen[d as usize] = true;
            if plan.delay(9, t, 1) != d {
                copies_differ = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all delays in the window occur");
        assert!(copies_differ, "duplicate copies draw their own delay");
        assert_eq!(FaultPlan::lossless().delay(9, 1, 0), 0);
    }
}
