//! The faulty executor: an α-synchronizer over an adversarial network.
//!
//! [`FaultyExecutor`] drives a phase over a network whose links drop,
//! duplicate, delay, and reorder frames according to a seeded
//! [`FaultPlan`], while presenting node code with **exactly** the
//! synchronous CONGEST semantics of [`crate::SerialExecutor`]: every
//! algorithm in the workspace runs unmodified, and its per-node outputs,
//! virtual round count, and payload-level metrics are bit-identical to a
//! fault-free run (the `sim_parity` suites assert this on the full
//! min-cut pipeline).
//!
//! # The synchronizer
//!
//! Time advances in physical **ticks**; each directed edge carries at
//! most one *frame* per tick (the transport stays CONGEST-shaped). A
//! frame bundles an optional payload with three piggybacked control
//! fields — a cumulative payload ack, the sender's *safe count*, and an
//! echo of the receiver's safe count:
//!
//! * **Acks + stop-and-wait retransmission.** Payloads are sequence-
//!   numbered per directed edge; the receiver acknowledges cumulatively
//!   and deduplicates, the sender retransmits on timeout and gives up —
//!   with [`crate::CongestError::RetransmitExhausted`] — after the
//!   plan's attempt budget. Because a node only enters round `r + 1`
//!   after its round-`r` payloads are acked, each edge carries at most
//!   one unacked payload, and cumulative values make every control field
//!   monotone — duplicates and reordering are harmless by construction.
//! * **Safe-round detection.** Node `v` is *safe through round `r`*
//!   (safe count `r + 1`) once all its sends of rounds `≤ r` are acked;
//!   a halted node that has drained its channels is safe forever
//!   (`u64::MAX`). Safe counts are gossiped to neighbors and
//!   retransmitted until echoed back.
//! * **The α rule.** `v` executes round `r + 1` once it is safe through
//!   `r` *and* every neighbor has announced safety through `r`. A
//!   neighbor's ack implies arrival, so at that moment every round-`r`
//!   payload addressed to `v` is already buffered — `v`'s inbox for
//!   round `r + 1` is complete and identical to the synchronous one.
//!   Neighbors' virtual rounds can skew by at most one, payloads carry
//!   their virtual round, and inboxes are replayed in port order, so the
//!   per-node state trajectory is the synchronous trajectory.
//!
//! # Crash faults and failure detection
//!
//! When the plan schedules [`crate::sim::CrashEvent`]s, nodes
//! **fail-stop** at their scheduled virtual round: a crashed node
//! executes no further rounds, sends nothing, acks nothing, and its
//! inbound frames vanish. Because a node only reaches round `r` after
//! all its earlier payloads are acked, a crash at a round boundary
//! leaves no half-delivered state — the crash is exactly "the node ran
//! rounds `< r` of this phase, then went silent".
//!
//! Detection is timeout-based, layered on the machinery above. In
//! crash mode every live node *keeps each still-relevant channel warm*
//! (one control frame per [`FaultPlan::timeout`] ticks even when idle),
//! so a channel silent for the plan's full suspicion window
//! ([`FaultPlan::suspect_after`] ticks) marks its sender **suspected**.
//! Suspicion is advisory and revocable — it overrides the suspect's
//! *effective* safe count (never the recorded one), quiesces the
//! channel toward it, and is cleared by the suspect's next arriving
//! frame — so it is *eventually accurate*: every crashed neighbor is
//! eventually suspected, and no live node stays suspected. What the
//! first suspicion does is the plan's
//! [`SuspicionPolicy`](crate::sim::SuspicionPolicy): abort the phase
//! with a typed [`CongestError::NodeSuspected`] (default — a recovery
//! driver's cue), or continue and expose the suspected set through
//! [`crate::NodeCtx::suspects`]. Crash-free plans take none of these
//! paths — no keepalives, no detector — and remain bit-identical to
//! the fault-free executors.
//!
//! # Accounting
//!
//! The algorithm-level [`PhaseMetrics`] fields (rounds, messages, bits,
//! `max_message_bits`, `max_edge_load_bits`) count **payloads at virtual
//! rounds** — they match the fault-free run. The transport's work
//! (ticks, data/control frames, retransmissions, drops, duplicates,
//! suspicions) lands in [`SimPhaseStats`], which is where the
//! synchronizer's round-overhead factor (`sim.phys_rounds / rounds`)
//! comes from.

use crate::algorithm::{Algorithm, Step};
use crate::error::CongestError;
use crate::executor::{PhaseSpec, RoundExecutor};
use crate::message::Message;
use crate::metrics::{PhaseMetrics, SimPhaseStats};
use crate::node::Port;
use crate::obs::{self, CostCenter, EventKind};
use crate::sim::plan::{FaultPlan, SuspicionPolicy};
use graphs::NodeId;
use std::collections::BTreeMap;

/// The fault-injecting round executor. See the module docs for the
/// protocol; construct one from a [`FaultPlan`] (or select it with
/// [`crate::ExecutorKind::Faulty`]) and pass it to
/// [`crate::Network::run_with`]. Not `Copy`: the plan may carry a
/// crash schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultyExecutor {
    plan: FaultPlan,
}

impl FaultyExecutor {
    /// An executor injecting faults per `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyExecutor { plan }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl RoundExecutor for FaultyExecutor {
    fn run_phase<A: Algorithm>(
        &self,
        spec: &PhaseSpec<'_>,
        algo: &A,
        inputs: Vec<A::Input>,
    ) -> Result<(Vec<A::Output>, PhaseMetrics), CongestError> {
        let sink = spec.obs;
        let total = obs::total_begin(sink);
        let out = Machine::new(&self.plan, spec, algo).run(inputs);
        obs::total_end(sink, total);
        out
    }
}

/// One unacknowledged payload on a directed edge.
#[derive(Clone)]
struct TxData<M> {
    /// Per-edge payload sequence number (1-based).
    seq: u64,
    /// The virtual round the payload was sent in.
    round: u64,
    msg: M,
}

/// Sender-side channel state of one directed edge.
struct ChanTx<M> {
    /// The current unacked payload (at most one — stop-and-wait).
    data: Option<TxData<M>>,
    /// Payloads accepted for transmission so far.
    seq: u64,
    /// Transmissions of the current payload.
    attempts: u32,
    /// Transmissions of the current safe-count value.
    safe_attempts: u32,
    /// Tick of the last frame sent on this edge.
    last_send: u64,
    /// The receiver's confirmed view of this sender's safe count.
    peer_safe_seen: u64,
    /// A control frame is due next tick (fresh ack or safety advance).
    dirty: bool,
}

impl<M> Default for ChanTx<M> {
    fn default() -> Self {
        ChanTx {
            data: None,
            seq: 0,
            attempts: 0,
            safe_attempts: 0,
            last_send: 0,
            peer_safe_seen: 0,
            dirty: false,
        }
    }
}

/// Receiver-side channel state of one directed edge.
#[derive(Clone)]
struct ChanRx {
    /// Payloads accepted (cumulative ack value).
    rcv_seq: u64,
    /// The sender's announced safe count (`u64::MAX` = halted+drained).
    peer_safe: u64,
}

/// Per-node executor state.
struct SimNode<S> {
    state: Option<S>,
    /// Last executed virtual round (0 after boot).
    round: u64,
    halted: bool,
    /// Outstanding unacked payloads across this node's edges.
    unacked: u32,
    /// Safe count: all sends of rounds `< safe` are acked.
    safe: u64,
}

/// One frame on the wire.
#[derive(Clone)]
struct Frame<M> {
    data: Option<TxData<M>>,
    ack_seq: u64,
    safe_upto: u64,
    safe_seen: u64,
    /// The sender is waiting for an echo of `safe_upto`: the receiver
    /// must answer with a control frame. Responses themselves set this
    /// only while *their* sender is unconfirmed, so the exchange
    /// converges instead of ping-ponging.
    needs_echo: bool,
    /// Per-phase transport checksum over the control plane (sequence
    /// numbers, ack, safety fields — see [`frame_checksum`]). Computed
    /// at send, verified first thing at arrival: a mismatch discards
    /// the frame whole (no ack, no keepalive credit) and meters
    /// `sim.corrupted`. The adversary's corruption species flips one
    /// seeded bit in a covered field, so every corrupt frame is caught
    /// and repaired by retransmission.
    crc: u64,
}

/// The per-phase checksum of a frame's control plane: a splitmix64
/// chain over the phase salt and every field a corruption flip may
/// touch. Message payloads expose only `bit_len`, so payload bits are
/// not coverable — the corruption adversary therefore targets exactly
/// the covered control fields, and coverage is honest: nothing the
/// adversary may flip escapes the checksum.
fn frame_checksum<M>(phase_salt: u64, f: &Frame<M>) -> u64 {
    let mut h = phase_salt;
    for word in [
        f.data.as_ref().map_or(0, |dt| dt.seq),
        f.data.as_ref().map_or(0, |dt| dt.round.wrapping_add(1)),
        f.ack_seq,
        f.safe_upto,
        f.safe_seen,
        u64::from(f.needs_echo),
    ] {
        h = splitmix64(h ^ word);
    }
    h
}

/// The splitmix64 output mixer (same constants as the plan's coins).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One node's buffered future inboxes: virtual round → (port, payload).
type InboxBuffer<M> = BTreeMap<u64, Vec<(Port, M)>>;

/// The whole simulation state of one phase under the faulty executor.
struct Machine<'a, A: Algorithm> {
    plan: &'a FaultPlan,
    spec: &'a PhaseSpec<'a>,
    algo: &'a A,
    /// Destination node of each slot (directed edge), by slot index.
    slot_owner: Vec<u32>,
    nodes: Vec<SimNode<A::State>>,
    inboxes: Vec<InboxBuffer<A::Msg>>,
    tx: Vec<ChanTx<A::Msg>>,
    rx: Vec<ChanRx>,
    /// Delivery ring buffer: arrivals at tick `t` live in slot
    /// `t % calendar.len()`.
    calendar: Vec<Vec<(usize, Frame<A::Msg>)>>,
    in_flight: usize,
    active: Vec<usize>,
    is_active: Vec<bool>,
    ready: Vec<u32>,
    live: usize,
    unacked_total: u64,
    max_round: u64,
    /// The minimum-(round, node) error observed so far, if any.
    err: Option<(u64, u64, CongestError)>,
    metrics: PhaseMetrics,
    sim: SimPhaseStats,
    edge_load: Vec<u64>,
    /// Crash machinery (armed only when the plan schedules crashes).
    /// Phase-local round before which each node fails (`u64::MAX` =
    /// never): the node executes rounds `< crash_local[v]` only.
    crash_local: Vec<u64>,
    /// Nodes that have executed their fail-stop.
    crashed: Vec<bool>,
    /// Per receive slot: the last tick a frame arrived on it.
    last_heard: Vec<u64>,
    /// Per receive slot: the receiver currently suspects the sender of
    /// having crashed (advisory, cleared by the next arrival).
    suspected: Vec<bool>,
    /// `plan.has_crashes() || plan.has_partitions()` — gates keepalives
    /// and the detector so crash- and partition-free plans stay
    /// bit-identical to PR 5 behavior. Partitions arm the detector too:
    /// a window outlasting the suspicion budget must be *suspectable*,
    /// and the post-heal rehabilitation is the observable that tells
    /// "partitioned" from "dead".
    detect: bool,
    /// Cached [`FaultPlan::suspect_after`] window.
    suspect_after: u64,
    /// Per directed slot, a bitmask of the plan's partition events
    /// whose cut set contains the slot's undirected edge (empty vec
    /// when the plan schedules no partitions — the hot path stays
    /// untouched). At most 64 windows per plan.
    part_mask: Vec<u64>,
    /// Per partition event: the tick its window opened (`None` until
    /// the session clock reaches the event's onset round).
    part_onset: Vec<Option<u64>>,
    /// Salt of the per-phase frame checksum (a hash of the phase name,
    /// so identical control fields in different phases checksum apart).
    phase_salt: u64,
    /// The tick currently executing, mirrored from the main loop so
    /// event emitters called without a tick argument (crash, round
    /// completion) can stamp their events (0 during boot).
    cur_tick: u64,
    /// Wall time the current [`Machine::transmit`] sweep spent inside
    /// retransmissions, so the channel-scan cost center can be reported
    /// net of the nested retransmit one (always 0 with obs detached).
    retrans_ns: u64,
}

impl<'a, A: Algorithm> Machine<'a, A> {
    fn new(plan: &'a FaultPlan, spec: &'a PhaseSpec<'a>, algo: &'a A) -> Self {
        let n = spec.n;
        let total = spec.slot_base[n];
        let mut slot_owner = vec![0u32; total];
        for v in 0..n {
            slot_owner[spec.slot_base[v]..spec.slot_base[v + 1]].fill(v as u32);
        }
        let part_mask = Self::partition_masks(plan, spec, &slot_owner);
        Machine {
            plan,
            spec,
            algo,
            slot_owner,
            nodes: (0..n)
                .map(|_| SimNode {
                    state: None,
                    round: 0,
                    halted: false,
                    unacked: 0,
                    safe: 0,
                })
                .collect(),
            inboxes: (0..n).map(|_| BTreeMap::new()).collect(),
            tx: (0..total).map(|_| ChanTx::default()).collect(),
            rx: vec![
                ChanRx {
                    rcv_seq: 0,
                    peer_safe: 0,
                };
                total
            ],
            calendar: (0..plan.max_delay as usize + 2)
                .map(|_| Vec::new())
                .collect(),
            in_flight: 0,
            active: Vec::new(),
            is_active: vec![false; total],
            ready: Vec::new(),
            live: n,
            unacked_total: 0,
            max_round: 0,
            err: None,
            metrics: PhaseMetrics {
                name: spec.name.to_string(),
                ..Default::default()
            },
            sim: SimPhaseStats::default(),
            edge_load: vec![0u64; total],
            crash_local: (0..n)
                .map(|v| {
                    plan.crash_round_of(v as u32, spec.base_round)
                        .unwrap_or(u64::MAX)
                })
                .collect(),
            crashed: vec![false; n],
            last_heard: vec![0u64; total],
            suspected: vec![false; total],
            detect: plan.has_crashes() || plan.has_partitions(),
            suspect_after: plan.suspect_after(),
            part_mask,
            part_onset: vec![None; plan.partitions.len()],
            phase_salt: spec
                .name
                .bytes()
                .fold(plan.seed, |h, b| splitmix64(h ^ u64::from(b))),
            cur_tick: 0,
            retrans_ns: 0,
        }
    }

    /// Records one transport-lifecycle event on the attached obs sink
    /// (a no-op — not even an `Instant` read — when none is attached).
    fn obs_event(&self, kind: EventKind, a: u32, b: u32, round: u64, tick: u64) {
        if let Some(sink) = self.spec.obs {
            sink.record(kind, a, b, round, tick);
        }
    }

    /// Per-slot membership bitmasks of the plan's partition windows
    /// (empty when none are scheduled). Slot `d` delivers the frames
    /// some sender writes toward `slot_owner[d]`; the undirected edge
    /// behind it is the (sender, receiver) pair, normalized.
    fn partition_masks(plan: &FaultPlan, spec: &PhaseSpec<'_>, slot_owner: &[u32]) -> Vec<u64> {
        if plan.partitions.is_empty() {
            return Vec::new();
        }
        assert!(
            plan.partitions.len() <= 64,
            "at most 64 partition windows per plan"
        );
        let cut_sets: Vec<std::collections::BTreeSet<(u32, u32)>> = plan
            .partitions
            .iter()
            .map(|w| {
                w.cut_edges
                    .iter()
                    .map(|&(a, b)| (a.min(b), a.max(b)))
                    .collect()
            })
            .collect();
        (0..slot_owner.len())
            .map(|d| {
                let v = slot_owner[d];
                let u = slot_owner[spec.write_slot[d]];
                let key = (u.min(v), u.max(v));
                cut_sets
                    .iter()
                    .enumerate()
                    .filter(|(_, set)| set.contains(&key))
                    .fold(0u64, |m, (i, _)| m | 1 << i)
            })
            .collect()
    }

    /// Opens every partition window whose onset round the session clock
    /// has reached (called once per tick while partitions are
    /// scheduled). Onset is measured on the same global virtual clock
    /// as crashes; the heal deadline is physical, `heal_at` ticks from
    /// the opening tick.
    fn open_partitions(&mut self, tick: u64) {
        for (i, w) in self.plan.partitions.iter().enumerate() {
            match self.part_onset[i] {
                None if self.spec.base_round + self.max_round >= w.at_round => {
                    self.part_onset[i] = Some(tick);
                    self.obs_event(
                        EventKind::PartitionOpen,
                        i as u32,
                        obs::NONE,
                        w.at_round,
                        tick,
                    );
                }
                // The window heals implicitly at `t0 + heal_at`; this is
                // the first tick the cut is conductive again, observable
                // only to the trace (nothing else runs at the boundary).
                Some(t0) if tick == t0 + w.heal_at => {
                    self.obs_event(
                        EventKind::PartitionHeal,
                        i as u32,
                        obs::NONE,
                        w.at_round,
                        tick,
                    );
                }
                _ => {}
            }
        }
    }

    /// Is edge `d` silenced by an open, not-yet-healed partition window
    /// at `tick`?
    fn partition_silences(&self, d: usize, tick: u64) -> bool {
        let mut mask = self.part_mask[d];
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if let Some(t0) = self.part_onset[i] {
                if tick < t0 + self.plan.partitions[i].heal_at {
                    return true;
                }
            }
        }
        false
    }

    /// The reverse directed edge of slot `d` (the delivery slot of the
    /// opposite direction; `write_slot` is an involution).
    fn rev(&self, d: usize) -> usize {
        self.spec.write_slot[d]
    }

    /// The sender node of edge `d`.
    fn sender(&self, d: usize) -> usize {
        self.slot_owner[self.rev(d)] as usize
    }

    /// The sender's port number for edge `d`.
    fn sender_port(&self, d: usize) -> Port {
        let u = self.sender(d);
        Port((self.rev(d) - self.spec.slot_base[u]) as u32)
    }

    /// Records an error at (virtual `round`, `node`), keeping the
    /// lexicographic minimum — the same selection rule as the fault-free
    /// executors ("the earliest round's lowest-id node wins"). Execution
    /// continues, gated to rounds ≤ the current minimum error round (see
    /// [`Machine::may_advance`]), so every error the serial schedule
    /// would have hit first is observed before the phase returns.
    fn record_err(&mut self, round: u64, node: u64, e: CongestError) {
        match &self.err {
            Some((r, v, _)) if (*r, *v) <= (round, node) => {}
            _ => self.err = Some((round, node, e)),
        }
    }

    /// Takes the recorded minimum error for returning, mirroring one
    /// serial quirk exactly: `MessageToHalted` reports the *delivery*
    /// round when any node was still live then (the sweep's
    /// halted-segment check), but the *last executed* round when the
    /// whole network halted first (the serial all-halted path reports
    /// its loop counter). Clamping to `max_round` reproduces both: the
    /// error-round gate lets live nodes reach the delivery round, so
    /// the clamp only bites when nobody could.
    fn take_err(&mut self) -> CongestError {
        let (_, _, mut e) = self.err.take().expect("error recorded");
        if let CongestError::MessageToHalted { round, .. } = &mut e {
            *round = (*round).min(self.max_round);
        }
        e
    }

    fn activate(&mut self, d: usize) {
        if !self.is_active[d] {
            self.is_active[d] = true;
            self.active.push(d);
        }
    }

    /// Raises `v`'s safe count and schedules the announcement toward
    /// every neighbor that might still be waiting on it.
    fn set_safe(&mut self, v: usize, safe: u64) {
        self.nodes[v].safe = safe;
        for s in self.spec.slot_base[v]..self.spec.slot_base[v + 1] {
            let out = self.spec.write_slot[s];
            // `s` receives from the same neighbor `out` sends to: a peer
            // announced permanently safe never advances again and needs
            // no more safety gossip from us. A suspected peer is treated
            // the same (it would never echo); if the suspicion turns out
            // false, the rehabilitation path re-activates the channel.
            if self.rx[s].peer_safe != u64::MAX
                && !self.suspected[s]
                && self.tx[out].peer_safe_seen < safe
            {
                self.tx[out].dirty = true;
                self.tx[out].safe_attempts = 0;
                self.activate(out);
            }
        }
    }

    /// Validates and enqueues one round's outbox of node `v`, mirroring
    /// the fault-free executors' `route_outbox` enforcement (ports,
    /// double sends, bandwidth) and payload-level metering.
    fn enqueue_outbox(&mut self, v: usize, round: u64, msgs: Vec<(Port, A::Msg)>) {
        let degree = self.spec.neighbors[v].len();
        let base = self.spec.slot_base[v];
        for (port, msg) in msgs {
            let p = port.index();
            if p >= degree {
                self.record_err(
                    round,
                    v as u64,
                    CongestError::InvalidPort {
                        phase: self.spec.name.to_string(),
                        node: NodeId::from_index(v),
                        port,
                        degree,
                    },
                );
                return;
            }
            let d = self.spec.write_slot[base + p];
            // A node advances only after all its previous payloads are
            // acked, so an occupied channel is a same-round double send.
            if self.tx[d].data.is_some() {
                self.record_err(
                    round,
                    v as u64,
                    CongestError::DoubleSend {
                        phase: self.spec.name.to_string(),
                        node: NodeId::from_index(v),
                        port,
                        round,
                    },
                );
                return;
            }
            let bits = msg.bit_len();
            if bits > self.spec.bandwidth_bits {
                if self.spec.strict {
                    self.record_err(
                        round,
                        v as u64,
                        CongestError::BandwidthExceeded {
                            phase: self.spec.name.to_string(),
                            node: NodeId::from_index(v),
                            port,
                            bits,
                            budget: self.spec.bandwidth_bits,
                            round,
                        },
                    );
                    return;
                }
                self.metrics.violations += 1;
            }
            self.metrics.messages += 1;
            self.metrics.bits += bits as u64;
            self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
            self.edge_load[d] += bits as u64;
            let t = &mut self.tx[d];
            t.seq += 1;
            t.data = Some(TxData {
                seq: t.seq,
                round,
                msg,
            });
            t.attempts = 0;
            self.nodes[v].unacked += 1;
            self.unacked_total += 1;
            self.activate(d);
        }
    }

    /// Re-derives `v`'s safe count after its outstanding payload count
    /// changed or it executed a round.
    fn refresh_safety(&mut self, v: usize) {
        let node = &self.nodes[v];
        let safe = if node.unacked > 0 {
            node.round
        } else if node.halted {
            u64::MAX
        } else {
            node.round + 1
        };
        if safe > self.nodes[v].safe {
            self.set_safe(v, safe);
        }
    }

    /// Executes every virtual round the α rule currently allows at the
    /// nodes queued in `ready`.
    fn advance_ready(&mut self) {
        let mut batch = std::mem::take(&mut self.ready);
        batch.sort_unstable();
        batch.dedup();
        for v in batch {
            self.advance_node(v as usize);
        }
    }

    /// Is `v` allowed to execute its next virtual round? Once an error
    /// is recorded, execution is gated to rounds up to the earliest
    /// error round: slower regions still catch up — so any
    /// earlier-round error is found and the minimum-(round, node)
    /// selection matches the serial schedule — but nothing runs *past*
    /// the erroring round (the serial engine aborts there, and beyond it
    /// inboxes could diverge).
    fn may_advance(&self, v: usize) -> bool {
        let node = &self.nodes[v];
        if node.halted || node.unacked > 0 {
            return false;
        }
        let next = node.round + 1;
        if let Some((err_round, _, _)) = &self.err {
            if next > *err_round {
                return false;
            }
        }
        // A suspected peer's *effective* safe count is `u64::MAX` — we
        // stop waiting for it (that is what lets survivors make
        // progress around a crash). Its recorded safe count is left
        // untouched so a false suspicion, once revoked, restores the
        // exact synchronous gating.
        (self.spec.slot_base[v]..self.spec.slot_base[v + 1])
            .all(|s| self.suspected[s] || self.rx[s].peer_safe >= next)
    }

    /// Executes a scheduled fail-stop: the node stops executing,
    /// sending, and acking; its channels go silent and its peers'
    /// failure detectors take over. It no longer counts as live, so
    /// phase completion does not wait for it. Called only at round
    /// boundaries (`may_advance` guarantees `unacked == 0` there), so
    /// a crash never strands a half-delivered payload of its own.
    fn kill(&mut self, v: usize) {
        debug_assert_eq!(
            self.nodes[v].unacked, 0,
            "crashes happen at round boundaries"
        );
        self.crashed[v] = true;
        self.obs_event(
            EventKind::Crash,
            v as u32,
            obs::NONE,
            self.nodes[v].round,
            self.cur_tick,
        );
        if !self.nodes[v].halted {
            self.nodes[v].halted = true;
            self.live -= 1;
        }
    }

    fn advance_node(&mut self, v: usize) {
        let spec = self.spec;
        let algo = self.algo;
        while self.may_advance(v) {
            let q = self.nodes[v].round + 1;
            // The plan's fail-stop: the node executes rounds
            // `< crash_local[v]` only (`u64::MAX` when unscheduled).
            if q >= self.crash_local[v] {
                self.kill(v);
                return;
            }
            if q > spec.cap {
                self.record_err(
                    q,
                    v as u64,
                    CongestError::MaxRoundsExceeded {
                        phase: spec.name.to_string(),
                        cap: spec.cap,
                    },
                );
                return;
            }
            let mut inbox = self.inboxes[v].remove(&q).unwrap_or_default();
            inbox.sort_by_key(|(p, _)| *p);
            let mut state = self.nodes[v].state.take().expect("booted node has state");
            let mut ctx = spec.ctx(v, q);
            // A node's receive slots are contiguous in the CSR arena, so
            // its detector view is a zero-copy slice (all-false under
            // crash-free plans — identical to the fault-free executors).
            ctx.suspected = &self.suspected[spec.slot_base[v]..spec.slot_base[v + 1]];
            let step = algo.round(&mut state, &ctx, &inbox);
            self.nodes[v].state = Some(state);
            self.nodes[v].round = q;
            if q > self.max_round {
                self.max_round = q;
                // The network-wide virtual clock advanced: one RoundEnd
                // per virtual round, stamped with the physical tick that
                // first reached it.
                if let Some(sink) = self.spec.obs {
                    sink.round_end(q, self.cur_tick);
                }
            }
            let outbox = match step {
                Step::Continue(o) => o,
                Step::Halt(o) => {
                    self.nodes[v].halted = true;
                    self.live -= 1;
                    o
                }
            };
            self.enqueue_outbox(v, q, outbox.msgs);
            if self.nodes[v].halted {
                // Anything still buffered was addressed to a round this
                // node will never execute — exactly the fault-free
                // engines' message-to-halted condition.
                if let Some((&round, _)) = self.inboxes[v].iter().next() {
                    if spec.strict {
                        self.record_err(
                            round,
                            v as u64,
                            CongestError::MessageToHalted {
                                phase: spec.name.to_string(),
                                node: NodeId::from_index(v),
                                round,
                            },
                        );
                    } else {
                        self.inboxes[v].clear();
                    }
                }
            }
            self.refresh_safety(v);
            if self.nodes[v].halted {
                return;
            }
        }
    }

    /// Processes one arriving frame on edge `d`.
    fn process_arrival(&mut self, d: usize, f: Frame<A::Msg>) {
        let v = self.slot_owner[d] as usize;
        // A crashed receiver is gone: the frame vanishes — no ack, no
        // gossip, no inbox entry, and in particular no
        // `MessageToHalted` (the sender could not have known).
        if self.crashed[v] {
            return;
        }
        let out = self.rev(d);
        // Safety gossip from the sender.
        if f.safe_upto > self.rx[d].peer_safe {
            self.rx[d].peer_safe = f.safe_upto;
            self.ready.push(v as u32);
        }
        // The sender is retransmitting its safety until we echo it back:
        // answer with a control frame (the echo rides in `safe_seen`).
        if f.needs_echo {
            self.tx[out].dirty = true;
            self.activate(out);
        }
        // Echo of our own safety (confirms the announcement).
        if f.safe_seen > self.tx[out].peer_safe_seen {
            self.tx[out].peer_safe_seen = f.safe_seen;
            if self.tx[out].peer_safe_seen >= self.nodes[v].safe {
                self.tx[out].safe_attempts = 0;
            }
        }
        // Cumulative ack of our payload on the reverse edge.
        let acked = self.tx[out]
            .data
            .as_ref()
            .is_some_and(|dt| dt.seq <= f.ack_seq);
        if acked {
            self.obs_event(
                EventKind::FrameAck,
                v as u32,
                self.sender(d) as u32,
                self.nodes[v].round,
                self.cur_tick,
            );
            self.tx[out].data = None;
            self.tx[out].attempts = 0;
            self.nodes[v].unacked -= 1;
            self.unacked_total -= 1;
            if self.nodes[v].unacked == 0 {
                self.refresh_safety(v);
                self.ready.push(v as u32);
            }
        }
        // The payload itself.
        if let Some(dt) = f.data {
            if dt.seq <= self.rx[d].rcv_seq {
                // A duplicate (or a stale delayed copy): our ack was
                // lost or is still in flight — re-ack.
                self.tx[out].dirty = true;
                self.activate(out);
            } else {
                debug_assert_eq!(
                    dt.seq,
                    self.rx[d].rcv_seq + 1,
                    "stop-and-wait: payloads arrive in order"
                );
                self.rx[d].rcv_seq = dt.seq;
                if self.nodes[v].halted {
                    if self.spec.strict {
                        self.record_err(
                            dt.round + 1,
                            v as u64,
                            CongestError::MessageToHalted {
                                phase: self.spec.name.to_string(),
                                node: NodeId::from_index(v),
                                round: dt.round + 1,
                            },
                        );
                    }
                    // Acked at the transport, dropped at the algorithm
                    // (in strict mode the recorded error ends the phase
                    // once every earlier round has been ruled out).
                } else {
                    let port = Port((d - self.spec.slot_base[v]) as u32);
                    self.inboxes[v]
                        .entry(dt.round + 1)
                        .or_default()
                        .push((port, dt.msg));
                }
                self.tx[out].dirty = true;
                self.activate(out);
            }
        }
    }

    /// Emits frames on every active edge that is due, applying the
    /// adversary to each transmission.
    fn transmit(&mut self, tick: u64) {
        let timeout = self.plan.timeout();
        let mut edges = std::mem::take(&mut self.active);
        // Sender-side order (sort by the reverse slot, which lives in the
        // sender's CSR range): transmissions — and therefore budget
        // errors — happen lowest-sender-first, echoing the serial sweep.
        edges.sort_unstable_by_key(|&d| self.spec.write_slot[d]);
        for d in edges {
            let u = self.sender(d);
            // Dead senders transmit nothing, ever.
            if self.crashed[u] {
                self.is_active[d] = false;
                continue;
            }
            let rev = self.rev(d);
            let t = &self.tx[d];
            let timer_due = t.attempts == 0 || tick >= t.last_send + timeout;
            let data_due = t.data.is_some() && timer_due;
            // A suspected peer counts as done for *safety* purposes: it
            // will never echo, and without this the gossip path would
            // burn its retransmission budget against a dead node.
            let peer_done = self.rx[rev].peer_safe == u64::MAX || self.suspected[rev];
            let needs_safety = !peer_done && t.peer_safe_seen < self.nodes[u].safe;
            let safety_due = needs_safety && (t.dirty || tick >= t.last_send + timeout);
            if data_due || safety_due || t.dirty {
                // A scheduled send of an already-attempted payload is a
                // retransmission: time it separately so the enclosing
                // channel-scan span can report itself net of it.
                let retrans = data_due && t.attempts > 0;
                let span = obs::cc_begin(if retrans { self.spec.obs } else { None });
                self.send_frame(d, tick, needs_safety, data_due);
                if retrans {
                    self.retrans_ns += obs::cc_end(self.spec.obs, span, CostCenter::Retransmit);
                }
            }
            // Stays active while something remains unconfirmed (data
            // unacked or safety unechoed); throttled by the timeout.
            let t = &self.tx[d];
            if t.data.is_some() || (!peer_done && t.peer_safe_seen < self.nodes[u].safe) {
                self.active.push(d);
            } else {
                self.is_active[d] = false;
            }
        }
    }

    /// Crash-detection mode only: keeps every still-relevant channel
    /// warm with one control frame per timeout even when idle, so that
    /// silence — the detector's only signal — implies a dead (or, with
    /// probability ~`drop^patience`, an extraordinarily unlucky) peer.
    /// Runs after [`Machine::transmit`], so any channel that already
    /// sent this tick (`last_send == tick`) is naturally skipped.
    fn send_keepalives(&mut self, tick: u64) {
        let timeout = self.plan.timeout();
        for d in 0..self.tx.len() {
            let u = self.sender(d);
            if self.crashed[u] {
                continue;
            }
            // A sender whose final `u64::MAX` safety the peer has echoed
            // is allowed to be silent forever — the peer skips suspicion
            // for it. Until that echo lands, even a *halted* sender must
            // keep the channel warm: a node that halts while a payload
            // toward a third neighbor is still unacked announces a
            // finite safe round, and its other channels would otherwise
            // go quiet long enough to be falsely suspected.
            if self.tx[d].peer_safe_seen == u64::MAX {
                continue;
            }
            // Still keep the channel warm while *we* suspect the peer:
            // if the suspicion is false, our frames are what clear the
            // peer's reciprocal suspicion of us.
            if self.rx[self.rev(d)].peer_safe == u64::MAX {
                continue;
            }
            if tick < self.tx[d].last_send + timeout {
                continue;
            }
            self.obs_event(
                EventKind::Keepalive,
                u as u32,
                self.slot_owner[d],
                self.max_round,
                tick,
            );
            self.send_frame(d, tick, false, false);
        }
    }

    /// Crash-detection mode only: raises a suspicion on every receive
    /// slot that has been silent past the suspicion window, quiescing
    /// the suspecting node's own channel toward the suspect. Slots are
    /// scanned in ascending order, so the first suspicion of a tick is
    /// deterministic. Returns the phase-ending error when the plan's
    /// policy is [`SuspicionPolicy::Abort`]: the recorded algorithm
    /// error if one exists (it predates the crash fallout), otherwise
    /// a [`CongestError::NodeSuspected`] naming the suspect, the
    /// detector, and the session-global round reached.
    fn detect_failures(&mut self, tick: u64) -> Option<CongestError> {
        for d in 0..self.rx.len() {
            if self.suspected[d] {
                continue;
            }
            let v = self.slot_owner[d] as usize;
            // A drained-halted sender announced `u64::MAX`: it is
            // legitimately silent forever, not crashed.
            if self.crashed[v] || self.rx[d].peer_safe == u64::MAX {
                continue;
            }
            // A receiver that needs nothing more from this sender — it
            // halted, its payload toward the sender is acked, and the
            // sender echoed its final safety — must not suspect: live
            // peers stop keepaliving toward it the moment they see its
            // `u64::MAX`, so from here the channel is legitimately
            // quiet in both directions.
            let out = self.rev(d);
            if self.nodes[v].halted
                && self.tx[out].data.is_none()
                && self.tx[out].peer_safe_seen >= self.nodes[v].safe
            {
                continue;
            }
            if tick.saturating_sub(self.last_heard[d]) <= self.suspect_after {
                continue;
            }
            let u = self.sender(d);
            self.suspected[d] = true;
            self.sim.suspicions += 1;
            self.obs_event(
                EventKind::Suspect,
                v as u32,
                u as u32,
                self.spec.base_round + self.max_round,
                tick,
            );
            if !self.crashed[u] {
                // Ground truth from the plan: the suspect lives. The
                // detector will rehabilitate it on its next frame.
                self.sim.false_suspicions += 1;
            }
            // Quiesce our channel toward the suspect: nothing will be
            // acked or echoed from over there, and a starved channel
            // must not block phase completion (or burn its budget).
            let out = self.rev(d);
            if self.tx[out].data.take().is_some() {
                self.tx[out].attempts = 0;
                self.nodes[v].unacked -= 1;
                self.unacked_total -= 1;
            }
            if self.nodes[v].unacked == 0 {
                self.refresh_safety(v);
            }
            self.ready.push(v as u32);
            if self.plan.on_suspect == SuspicionPolicy::Abort {
                if self.err.is_some() {
                    return Some(self.take_err());
                }
                return Some(CongestError::NodeSuspected {
                    phase: self.spec.name.to_string(),
                    node: NodeId::from_index(u),
                    by: NodeId::from_index(v),
                    round: self.spec.base_round + self.max_round,
                });
            }
        }
        None
    }

    /// Builds, meters, and (adversary permitting) schedules one frame on
    /// edge `d`. `data_scheduled` says the retransmit timer (or a first
    /// send) asked for the payload; an ack-driven frame still
    /// *piggybacks* a pending payload opportunistically, but only
    /// scheduled transmissions consume the attempt budget and count as
    /// retransmissions — a lossless run therefore reports zero.
    fn send_frame(&mut self, d: usize, tick: u64, needs_echo: bool, data_scheduled: bool) {
        let u = self.sender(d);
        let rev = self.rev(d);
        let port = self.sender_port(d);
        let budget = self.plan.max_attempts.max(1);
        // Budget checks come first, *before* anything is counted or put
        // on the wire: a starved channel records its typed error and
        // goes quiet (no frames, no "progress"), so the run winds down
        // through the stall detector instead of retransmitting forever.
        if self.tx[d].data.is_some() {
            debug_assert!(
                data_scheduled || self.tx[d].attempts > 0,
                "a payload's first transmission is always scheduled"
            );
            if data_scheduled {
                if self.tx[d].attempts >= budget {
                    let round = self.tx[d].data.as_ref().map_or(0, |dt| dt.round);
                    self.record_err(
                        round,
                        u as u64,
                        CongestError::RetransmitExhausted {
                            phase: self.spec.name.to_string(),
                            node: NodeId::from_index(u),
                            peer: NodeId::from_index(self.slot_owner[d] as usize),
                            port,
                            round,
                            attempts: budget,
                        },
                    );
                    return;
                }
                self.tx[d].attempts += 1;
                if self.tx[d].attempts > 1 {
                    self.sim.retransmitted += 1;
                    let round = self.tx[d].data.as_ref().map_or(0, |dt| dt.round);
                    self.obs_event(
                        EventKind::FrameRetransmit,
                        u as u32,
                        self.slot_owner[d],
                        round,
                        tick,
                    );
                }
            }
            self.sim.data_frames += 1;
        } else {
            if needs_echo {
                if self.tx[d].safe_attempts >= budget {
                    let round = self.nodes[u].round;
                    self.record_err(
                        round,
                        u as u64,
                        CongestError::RetransmitExhausted {
                            phase: self.spec.name.to_string(),
                            node: NodeId::from_index(u),
                            peer: NodeId::from_index(self.slot_owner[d] as usize),
                            port,
                            round,
                            attempts: budget,
                        },
                    );
                    return;
                }
                self.tx[d].safe_attempts += 1;
            }
            self.sim.ctrl_frames += 1;
        }
        self.tx[d].last_send = tick;
        self.tx[d].dirty = false;
        let mut frame = Frame {
            data: self.tx[d].data.clone(),
            ack_seq: self.rx[rev].rcv_seq,
            safe_upto: self.nodes[u].safe,
            safe_seen: self.rx[rev].peer_safe,
            needs_echo,
            crc: 0,
        };
        frame.crc = frame_checksum(self.phase_salt, &frame);
        // An open partition window swallows the frame before the link
        // faults even see it: the cut is physical, coins are moot.
        if !self.part_mask.is_empty() && self.partition_silences(d, tick) {
            self.sim.partitioned += 1;
            return;
        }
        let ev_round = frame
            .data
            .as_ref()
            .map_or(self.nodes[u].round, |dt| dt.round);
        if self.plan.drops(d, tick) {
            self.sim.dropped += 1;
            self.obs_event(
                EventKind::FrameDrop,
                u as u32,
                self.slot_owner[d],
                ev_round,
                tick,
            );
            return;
        }
        self.obs_event(
            EventKind::FrameSend,
            u as u32,
            self.slot_owner[d],
            ev_round,
            tick,
        );
        let window = self.calendar.len();
        let at = (tick + 1 + self.plan.delay(d, tick, 0)) as usize % window;
        self.in_flight += 1;
        if self.plan.duplicates(d, tick) {
            self.sim.duplicated += 1;
            self.obs_event(
                EventKind::FrameDup,
                u as u32,
                self.slot_owner[d],
                ev_round,
                tick,
            );
            let at2 = (tick + 1 + self.plan.delay(d, tick, 1)) as usize % window;
            let mut copy = frame.clone();
            self.maybe_corrupt(&mut copy, d, tick, 1);
            self.calendar[at2].push((d, copy));
            self.in_flight += 1;
        }
        self.maybe_corrupt(&mut frame, d, tick, 0);
        self.calendar[at].push((d, frame));
    }

    /// The corruption adversary: with probability `corrupt_per_mille`,
    /// flips one seeded bit in one checksummed control field of this
    /// frame copy. The frame still decodes — same shape, plausible
    /// values — which is exactly what makes the checksum (not the
    /// parser) the last line of defense.
    fn maybe_corrupt(&mut self, frame: &mut Frame<A::Msg>, d: usize, tick: u64, copy: u64) {
        if self.plan.corrupt_per_mille == 0 || !self.plan.corrupts(d, tick, copy) {
            return;
        }
        let coin = self.plan.corruption(d, tick, copy);
        let bit = 1u64 << (coin >> 8 & 63);
        match coin % 3 {
            0 => frame.ack_seq ^= bit,
            1 => frame.safe_upto ^= bit,
            _ => frame.safe_seen ^= bit,
        }
    }

    fn run(
        mut self,
        inputs: Vec<A::Input>,
    ) -> Result<(Vec<A::Output>, PhaseMetrics), CongestError> {
        let spec = self.spec;
        let algo = self.algo;
        let obs = spec.obs;
        let n = spec.n;
        // Boot every node at virtual round 0.
        let span = obs::cc_begin(obs);
        for (v, input) in inputs.into_iter().enumerate() {
            let ctx = spec.ctx(v, 0);
            let (state, outbox) = algo.boot(&ctx, input);
            self.nodes[v].state = Some(state);
            // Crashed before the phase began (boot is local round 0):
            // the node keeps its booted state for the zombie `finish`,
            // but its outbox is discarded unmetered — it was never
            // there as far as the network is concerned.
            if self.crash_local[v] == 0 {
                self.kill(v);
                continue;
            }
            self.enqueue_outbox(v, 0, outbox.msgs);
            self.refresh_safety(v);
            self.ready.push(v as u32);
        }
        obs::cc_end(obs, span, CostCenter::Boot);
        // Boot is round 0 for everyone, so after the loop every round-0
        // error has been observed: the minimum-node one wins, as under
        // the serial boot sweep.
        if self.err.is_some() {
            return Err(self.take_err());
        }
        // A very generous physical cap: the virtual cap times the worst
        // per-round transport cost. Reaching it means the synchronizer
        // itself livelocked, which the attempt budgets make unreachable;
        // it exists so a logic bug fails instead of spinning.
        let per_round = (self.plan.timeout() + u64::from(self.plan.max_delay) + 2)
            .saturating_mul(u64::from(self.plan.max_attempts.max(1)) + 1);
        // Each crash can stall the network for a full suspicion window
        // before the detector unwedges it — budget those on top.
        // Partition windows stall their edges for their whole duration
        // (plus a suspicion window if the detector fires across the
        // cut) — budget those too.
        let partition_allowance: u64 = self
            .plan
            .partitions
            .iter()
            .map(|w| w.heal_at.saturating_add(self.suspect_after))
            .fold(0, u64::saturating_add);
        let tick_cap = spec
            .cap
            .saturating_add(2)
            .saturating_mul(per_round)
            .saturating_add(
                self.suspect_after
                    .saturating_mul(self.plan.crashes.len() as u64 + 1),
            )
            .saturating_add(partition_allowance);
        let mut idle_ticks = 0u64;
        let mut tick = 0u64;
        loop {
            self.cur_tick = tick;
            let span = obs::cc_begin(obs);
            let before = (
                self.sim.data_frames,
                self.sim.ctrl_frames,
                self.max_round,
                self.sim.suspicions,
            );
            // 0. Open any partition window whose onset round the
            //    session clock has reached.
            if !self.part_onset.is_empty() {
                self.open_partitions(tick);
            }
            // 1. Deliver this tick's arrivals (sorted by edge so the
            //    order is schedule-independent and destination-grouped).
            let window = self.calendar.len();
            let mut arrivals = std::mem::take(&mut self.calendar[tick as usize % window]);
            self.in_flight -= arrivals.len();
            arrivals.sort_by_key(|&(d, _)| d);
            let had_arrivals = !arrivals.is_empty();
            obs::cc_end(obs, span, CostCenter::Bookkeeping);
            let span = obs::cc_begin(obs);
            for (d, frame) in arrivals {
                // Transport checksum first: a frame the adversary
                // bit-flipped is discarded whole — it earns no ack, no
                // suspicion rehabilitation, no keepalive credit (an
                // imposter frame must not vouch for a dead sender).
                if frame.crc != frame_checksum(self.phase_salt, &frame) {
                    self.sim.corrupted += 1;
                    self.obs_event(
                        EventKind::FrameCorrupt,
                        self.slot_owner[d],
                        self.sender(d) as u32,
                        self.max_round,
                        tick,
                    );
                    continue;
                }
                if self.detect {
                    self.last_heard[d] = tick;
                    if self.suspected[d] {
                        // The suspect lives: rehabilitate it and
                        // reconsider the channel toward it (safety
                        // gossip suspended by the suspicion resumes on
                        // its timers).
                        self.suspected[d] = false;
                        self.obs_event(
                            EventKind::Clear,
                            self.slot_owner[d],
                            self.sender(d) as u32,
                            self.max_round,
                            tick,
                        );
                        let out = self.rev(d);
                        self.activate(out);
                    }
                }
                self.process_arrival(d, frame);
            }
            obs::cc_end(obs, span, CostCenter::AckBookkeeping);
            // 2. Execute every virtual round the α rule now allows
            //    (gated to rounds ≤ the earliest error round once an
            //    error is recorded, so slower regions surface any
            //    earlier-round error before the phase returns).
            let span = obs::cc_begin(obs);
            self.advance_ready();
            obs::cc_end(obs, span, CostCenter::Execute);
            // 3. Transmit on due edges; in crash mode, keep idle
            //    channels warm and run the failure detector. The scan
            //    span is reported net of the retransmissions nested in
            //    it (see [`Machine::transmit`]).
            self.retrans_ns = 0;
            let span = obs::cc_begin(obs);
            self.transmit(tick);
            obs::cc_end_split(obs, span, CostCenter::ChannelScan, self.retrans_ns);
            if self.detect {
                let span = obs::cc_begin(obs);
                self.send_keepalives(tick);
                obs::cc_end(obs, span, CostCenter::SafetyGossip);
                let span = obs::cc_begin(obs);
                let verdict = self.detect_failures(tick);
                obs::cc_end(obs, span, CostCenter::Detector);
                if let Some(e) = verdict {
                    return Err(e);
                }
            }
            let span = obs::cc_begin(obs);
            // 4. Error wind-down: once every node still running has
            //    executed through the earliest error round, no
            //    earlier-(round, node) error can exist — return the
            //    minimum, exactly the serial executor's selection.
            if let Some((err_round, _, _)) = &self.err {
                let err_round = *err_round;
                if self
                    .nodes
                    .iter()
                    .all(|nd| nd.halted || nd.round >= err_round)
                {
                    return Err(self.take_err());
                }
            }
            // 5. Done? Once every node has halted and every payload is
            //    acked and delivered, the remaining control chatter is
            //    irrelevant. Frames still in flight toward *crashed*
            //    receivers don't count: a halted survivor keepalives
            //    toward a dead peer forever (it cannot know the peer
            //    will never echo its final safety), and with enough
            //    such channels their staggered sends cover every tick —
            //    in-flight would never reach zero.
            if self.live == 0 && self.unacked_total == 0 {
                let drained = self.in_flight == 0
                    || self
                        .calendar
                        .iter()
                        .flatten()
                        .all(|(d, _)| self.crashed[self.slot_owner[*d] as usize]);
                if drained {
                    // Clamped to the virtual round count so the documented
                    // `phys_rounds ≥ rounds` invariant holds even for
                    // transport-free phases (an isolated node runs all its
                    // rounds inside one tick).
                    self.sim.phys_rounds = (tick + 1).max(self.max_round);
                    break;
                }
            }
            let progressed = had_arrivals
                || before
                    != (
                        self.sim.data_frames,
                        self.sim.ctrl_frames,
                        self.max_round,
                        self.sim.suspicions,
                    );
            idle_ticks = if progressed { 0 } else { idle_ticks + 1 };
            tick += 1;
            // A whole timeout-plus-window of ticks with no arrival, no
            // frame, no round, and no suspicion: either a recorded error
            // starved the network (budget-exhausted channels go quiet) —
            // return it — or the synchronizer is stalled, impossible by
            // design, and failing typed beats spinning. In crash mode
            // the network can be legitimately silent for a full
            // suspicion window (e.g. every live node halted, waiting on
            // a suspicion to quiesce a channel toward a dead peer), so
            // the allowance stretches by `suspect_after`.
            let idle_limit = self.plan.timeout()
                + window as u64
                + 1
                + if self.detect { self.suspect_after } else { 0 };
            if tick > tick_cap || idle_ticks > idle_limit {
                return Err(if self.err.is_some() {
                    self.take_err()
                } else {
                    CongestError::MaxRoundsExceeded {
                        phase: spec.name.to_string(),
                        cap: spec.cap,
                    }
                });
            }
            obs::cc_end(obs, span, CostCenter::Bookkeeping);
        }
        let span = obs::cc_begin(obs);
        self.metrics.rounds = self.max_round;
        self.metrics.max_edge_load_bits =
            self.edge_load.iter().copied().max().unwrap_or(0) as usize;
        self.metrics.sim = self.sim;
        let mut outputs = Vec::with_capacity(n);
        let nodes = std::mem::take(&mut self.nodes);
        for (v, node) in nodes.into_iter().enumerate() {
            let mut ctx = spec.ctx(v, self.max_round);
            // Crashed nodes still produce (zombie) outputs — the caller
            // needs a full vector — but their detector view is empty: a
            // dead node reports no suspects, which is how a recovery
            // driver tells survivor reports from zombie ones.
            if !self.crashed[v] {
                ctx.suspected = &self.suspected[spec.slot_base[v]..spec.slot_base[v + 1]];
            }
            let out = algo
                .finish(node.state.expect("state present"), &ctx)
                .map_err(|violation| CongestError::Protocol {
                    phase: spec.name.to_string(),
                    node: NodeId::from_index(v),
                    reason: violation.reason,
                })?;
            outputs.push(out);
        }
        obs::cc_end(obs, span, CostCenter::Finish);
        Ok((outputs, self.metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{FinishResult, Outbox};
    use crate::config::NetworkConfig;
    use crate::engine::Network;
    use crate::executor::ExecutorKind;
    use crate::node::NodeCtx;

    /// Every node floods its id for `ttl` rounds and outputs the minimum
    /// seen (the engine's canonical smoke algorithm).
    struct MinFlood {
        ttl: u64,
    }

    struct MinState {
        best: u32,
        changed: bool,
    }

    impl Algorithm for MinFlood {
        type Input = ();
        type State = MinState;
        type Msg = u32;
        type Output = u32;

        fn boot(&self, ctx: &NodeCtx<'_>, _input: ()) -> (MinState, Outbox<u32>) {
            let mut o = Outbox::new();
            o.send_all(ctx.ports(), ctx.node.raw());
            (
                MinState {
                    best: ctx.node.raw(),
                    changed: false,
                },
                o,
            )
        }

        fn round(&self, s: &mut MinState, ctx: &NodeCtx<'_>, inbox: &[(Port, u32)]) -> Step<u32> {
            s.changed = false;
            for (_, m) in inbox {
                if *m < s.best {
                    s.best = *m;
                    s.changed = true;
                }
            }
            if ctx.round >= self.ttl {
                return Step::halt();
            }
            let mut o = Outbox::new();
            if s.changed {
                o.send_all(ctx.ports(), s.best);
            }
            Step::Continue(o)
        }

        fn finish(&self, s: MinState, _ctx: &NodeCtx<'_>) -> FinishResult<u32> {
            Ok(s.best)
        }
    }

    fn run_flood(
        g: &graphs::WeightedGraph,
        kind: ExecutorKind,
        ttl: u64,
    ) -> crate::engine::RunOutcome<u32> {
        let cfg = NetworkConfig::default().with_executor(kind);
        let mut net = Network::new(g, cfg).unwrap();
        net.run("flood", &MinFlood { ttl }, vec![(); g.node_count()])
            .expect("flood succeeds")
    }

    /// The payload-level view of a faulty run — outputs, virtual rounds,
    /// messages, bits, and both load maxima — is bit-identical to the
    /// serial executor; only `sim` differs.
    #[test]
    fn lossless_plan_matches_serial_bit_for_bit() {
        for g in [
            graphs::generators::path(9).unwrap(),
            graphs::generators::grid2d(4, 5).unwrap(),
            graphs::generators::complete(6, 2).unwrap(),
        ] {
            let want = run_flood(&g, ExecutorKind::Serial, 12);
            let got = run_flood(&g, ExecutorKind::faulty(), 12);
            assert_eq!(got.outputs, want.outputs);
            let mut payload = got.metrics.clone();
            assert!(
                payload.sim.phys_rounds > payload.rounds,
                "{:?}",
                payload.sim
            );
            assert_eq!(payload.sim.dropped, 0);
            assert_eq!(payload.sim.duplicated, 0);
            assert_eq!(
                payload.sim.retransmitted, 0,
                "a lossless run never times out a payload"
            );
            payload.sim = SimPhaseStats::default();
            assert_eq!(payload, want.metrics);
        }
    }

    /// Serial reports `MessageToHalted` with the *delivery* round when
    /// any node is still live then, but with the *last executed* round
    /// when the whole network halted first (its all-halted loop-top
    /// check). The faulty executor reproduces both values exactly.
    #[test]
    fn all_halted_late_send_matches_serial_round() {
        struct LastWords;
        impl Algorithm for LastWords {
            type Input = ();
            type State = ();
            type Msg = u32;
            type Output = ();
            fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<u32>) {
                ((), Outbox::new())
            }
            fn round(&self, _s: &mut (), ctx: &NodeCtx<'_>, _i: &[(Port, u32)]) -> Step<u32> {
                // Node 1 halts at round 1; node 0 sends to it at round 2
                // and halts in the same step — the whole network is
                // halted before the message's delivery round.
                if ctx.node.raw() == 1 {
                    return Step::halt();
                }
                if ctx.round == 2 {
                    let mut o = Outbox::new();
                    o.send(Port(0), 9);
                    return Step::Halt(o);
                }
                Step::idle()
            }
            fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
                Ok(())
            }
        }
        let g = graphs::generators::path(2).unwrap();
        let run_err = |kind: ExecutorKind| {
            let cfg = NetworkConfig::default().with_executor(kind);
            let mut net = Network::new(&g, cfg).unwrap();
            net.run("late", &LastWords, vec![(); 2]).unwrap_err()
        };
        let want = run_err(ExecutorKind::Serial);
        assert!(
            matches!(&want, CongestError::MessageToHalted { round: 2, .. }),
            "serial's all-halted path reports the send round: {want:?}"
        );
        for plan in [
            FaultPlan::lossless(),
            FaultPlan::with_drop(300, 9).delayed(2),
        ] {
            assert_eq!(
                run_err(ExecutorKind::Faulty(plan.clone())),
                want,
                "plan {plan:?}"
            );
        }
    }

    /// Heavy faults — drops, duplicates, a delay window wide enough to
    /// reorder — change nothing at the algorithm level.
    #[test]
    fn lossy_plans_preserve_outputs_and_payload_metrics() {
        let g = graphs::generators::grid2d(5, 5).unwrap();
        let want = run_flood(&g, ExecutorKind::Serial, 14);
        for (drop, dup, delay, seed) in [
            (200u16, 0u16, 0u8, 7u64),
            (100, 150, 3, 8),
            (300, 100, 2, 9),
        ] {
            let plan = FaultPlan::with_drop(drop, seed)
                .duplicated(dup)
                .delayed(delay);
            let got = run_flood(&g, ExecutorKind::Faulty(plan.clone()), 14);
            assert_eq!(got.outputs, want.outputs, "plan {plan:?}");
            assert_eq!(got.metrics.rounds, want.metrics.rounds, "plan {plan:?}");
            assert_eq!(got.metrics.messages, want.metrics.messages, "plan {plan:?}");
            assert_eq!(got.metrics.bits, want.metrics.bits, "plan {plan:?}");
            assert!(got.metrics.sim.dropped > 0, "plan {plan:?}");
            assert!(got.metrics.sim.retransmitted > 0, "plan {plan:?}");
            if dup > 0 {
                assert!(got.metrics.sim.duplicated > 0, "plan {plan:?}");
            }
        }
    }

    /// Same plan ⇒ byte-identical metrics, frame counts included.
    #[test]
    fn identical_plans_are_deterministic() {
        let g = graphs::generators::torus2d(4, 5).unwrap();
        let plan = FaultPlan::with_drop(250, 11).duplicated(100).delayed(3);
        let a = run_flood(&g, ExecutorKind::Faulty(plan.clone()), 10);
        let b = run_flood(&g, ExecutorKind::Faulty(plan), 10);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
        let c = run_flood(&g, ExecutorKind::Faulty(FaultPlan::with_drop(250, 12)), 10);
        assert_eq!(a.outputs, c.outputs, "outputs are seed-independent");
        assert_ne!(
            a.metrics.sim, c.metrics.sim,
            "different seeds perturb different frames"
        );
    }

    /// An adversary that drops everything exhausts the retransmission
    /// budget and surfaces as a typed error, not a livelock.
    #[test]
    fn total_loss_exhausts_the_retransmit_budget() {
        let g = graphs::generators::path(3).unwrap();
        let plan = FaultPlan {
            drop_per_mille: 1000,
            max_attempts: 5,
            resend_after: 1,
            ..FaultPlan::default()
        };
        let cfg = NetworkConfig::default().with_fault_plan(plan);
        let mut net = Network::new(&g, cfg).unwrap();
        let err = net
            .run("flood", &MinFlood { ttl: 5 }, vec![(); 3])
            .unwrap_err();
        match err {
            CongestError::RetransmitExhausted { node, attempts, .. } => {
                assert_eq!(node.raw(), 0, "lowest sender gives up first");
                assert_eq!(attempts, 5);
            }
            other => panic!("expected RetransmitExhausted, got {other:?}"),
        }
    }

    /// Node 0 messages node 1 after node 1 halted — the strict-mode
    /// violation is detected under faults too, with the same fields the
    /// serial executor reports.
    #[test]
    fn strict_message_to_halted_is_detected() {
        struct LateSender;
        impl Algorithm for LateSender {
            type Input = ();
            type State = ();
            type Msg = u32;
            type Output = ();
            fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<u32>) {
                ((), Outbox::new())
            }
            fn round(&self, _s: &mut (), ctx: &NodeCtx<'_>, _i: &[(Port, u32)]) -> Step<u32> {
                if ctx.node.raw() == 1 {
                    return Step::halt();
                }
                if ctx.round == 2 && ctx.node.raw() == 0 {
                    let mut o = Outbox::new();
                    o.send(Port(0), 9);
                    return Step::Halt(o);
                }
                if ctx.round >= 3 {
                    return Step::halt();
                }
                Step::idle()
            }
            fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
                Ok(())
            }
        }
        for plan in [
            FaultPlan::lossless(),
            FaultPlan::with_drop(200, 3).delayed(2),
        ] {
            let g = graphs::generators::path(3).unwrap();
            let cfg = NetworkConfig::default().with_fault_plan(plan);
            let mut net = Network::new(&g, cfg).unwrap();
            let err = net.run("late", &LateSender, vec![(); 3]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CongestError::MessageToHalted { ref node, round: 3, .. } if node.raw() == 1
                ),
                "got {err:?}"
            );
        }
    }

    /// Error *selection* parity: when several nodes err in different
    /// virtual rounds, the faulty executor returns the earliest round's
    /// lowest-id error — the serial executor's documented choice — even
    /// though skew can make the later-round error happen first in
    /// physical time. (Execution is gated at the earliest recorded
    /// error round until every slower region has caught up.)
    #[test]
    fn error_selection_matches_serial_across_rounds_and_nodes() {
        struct TwoFaults;
        impl Algorithm for TwoFaults {
            type Input = ();
            type State = ();
            type Msg = u32;
            type Output = ();
            fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<u32>) {
                ((), Outbox::new())
            }
            fn round(&self, _s: &mut (), ctx: &NodeCtx<'_>, _i: &[(Port, u32)]) -> Step<u32> {
                // Node 2 double-sends at round 5; node 35 double-sends
                // at round 3. The earliest round wins regardless of
                // node order or physical timing: the error must be
                // node 35's, round 3.
                let mut o = Outbox::new();
                if ctx.node.raw() == 2 && ctx.round == 5 {
                    o.send(Port(0), 1).send(Port(0), 2);
                    return Step::Continue(o);
                }
                if ctx.node.raw() == 35 && ctx.round == 3 {
                    o.send(Port(0), 1).send(Port(0), 2);
                    return Step::Continue(o);
                }
                if ctx.round >= 6 {
                    return Step::halt();
                }
                Step::idle()
            }
            fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
                Ok(())
            }
        }
        let g = graphs::generators::path(40).unwrap();
        let run_err = |kind: ExecutorKind| {
            let cfg = NetworkConfig::default().with_executor(kind);
            let mut net = Network::new(&g, cfg).unwrap();
            net.run("faults", &TwoFaults, vec![(); 40]).unwrap_err()
        };
        let want = run_err(ExecutorKind::Serial);
        assert!(
            matches!(
                &want,
                CongestError::DoubleSend { node, round: 3, .. } if node.raw() == 35
            ),
            "serial picks the earliest round: {want:?}"
        );
        for plan in [
            FaultPlan::lossless(),
            FaultPlan::with_drop(150, 5).delayed(2),
            FaultPlan::with_drop(250, 6).delayed(3).duplicated(100),
        ] {
            let got = run_err(ExecutorKind::Faulty(plan.clone()));
            assert_eq!(got, want, "plan {plan:?}");
        }
    }

    /// A livelocked algorithm still hits the virtual round cap.
    #[test]
    fn livelock_hits_the_virtual_round_cap() {
        struct Livelock;
        impl Algorithm for Livelock {
            type Input = ();
            type State = ();
            type Msg = ();
            type Output = ();
            fn boot(&self, _c: &NodeCtx<'_>, _i: ()) -> ((), Outbox<()>) {
                ((), Outbox::new())
            }
            fn round(&self, _s: &mut (), _c: &NodeCtx<'_>, _i: &[(Port, ())]) -> Step<()> {
                Step::idle()
            }
            fn finish(&self, _s: (), _c: &NodeCtx<'_>) -> FinishResult<()> {
                Ok(())
            }
        }
        let g = graphs::generators::path(3).unwrap();
        let cfg = NetworkConfig {
            max_rounds: 40,
            ..Default::default()
        }
        .with_fault_plan(FaultPlan::lossless());
        let mut net = Network::new(&g, cfg).unwrap();
        let err = net.run("livelock", &Livelock, vec![(); 3]).unwrap_err();
        assert!(matches!(
            err,
            CongestError::MaxRoundsExceeded { cap: 40, .. }
        ));
    }

    /// A single isolated node runs to completion without any transport.
    #[test]
    fn single_node_needs_no_synchronizer() {
        let g = graphs::WeightedGraph::from_edges(1, []).unwrap();
        let out = run_flood(&g, ExecutorKind::faulty(), 4);
        assert_eq!(out.outputs, vec![0]);
        assert_eq!(out.metrics.rounds, 4);
        assert_eq!(out.metrics.messages, 0);
    }

    /// Under the default `Abort` policy, a mid-phase crash surfaces as
    /// a typed `NodeSuspected` naming the dead node — the recovery
    /// driver's cue — deterministically.
    #[test]
    fn crash_is_detected_and_aborts_typed() {
        let g = graphs::generators::grid2d(3, 3).unwrap();
        let run_one = || {
            let plan = FaultPlan::lossless().with_crash(4, 2);
            let cfg = NetworkConfig::default().with_fault_plan(plan);
            let mut net = Network::new(&g, cfg).unwrap();
            net.run("flood", &MinFlood { ttl: 12 }, vec![(); 9])
                .unwrap_err()
        };
        let err = run_one();
        match &err {
            CongestError::NodeSuspected {
                node, by, round, ..
            } => {
                assert_eq!(node.raw(), 4, "the crashed node is the suspect");
                assert_ne!(by.raw(), 4, "a neighbor detects it");
                assert!(*round >= 1, "some progress happened before the crash");
            }
            other => panic!("expected NodeSuspected, got {other:?}"),
        }
        assert_eq!(err, run_one(), "same plan, same suspicion");
    }

    /// Under `Continue`, a dead-from-boot node is simply absent: the
    /// survivors complete around it (its id never floods) and the
    /// suspicion counters land in the metrics with zero false alarms.
    #[test]
    fn dead_from_boot_nodes_are_silent_under_continue() {
        let g = graphs::generators::path(3).unwrap();
        let plan = FaultPlan::lossless()
            .with_crash(0, 0)
            .continue_on_suspicion();
        let cfg = NetworkConfig::default().with_fault_plan(plan);
        let mut net = Network::new(&g, cfg).unwrap();
        let out = net
            .run("flood", &MinFlood { ttl: 6 }, vec![(); 3])
            .expect("survivors complete");
        assert_eq!(
            out.outputs,
            vec![0, 1, 1],
            "node 0 is a zombie (its boot state), the rest never saw id 0"
        );
        assert!(out.metrics.sim.suspicions >= 1);
        assert_eq!(
            out.metrics.sim.false_suspicions, 0,
            "lossless keepalives never miss"
        );
    }

    /// A crash scheduled far past the phase's end changes outputs and
    /// payload metrics not at all — the detector mode only adds
    /// keepalive control frames, and nobody gets suspected.
    #[test]
    fn unreached_crash_rounds_only_add_keepalives() {
        let g = graphs::generators::grid2d(4, 4).unwrap();
        let want = run_flood(&g, ExecutorKind::Serial, 10);
        let armed = run_flood(
            &g,
            ExecutorKind::Faulty(FaultPlan::lossless().with_crash(0, 10_000)),
            10,
        );
        assert_eq!(armed.outputs, want.outputs);
        assert_eq!(armed.metrics.rounds, want.metrics.rounds);
        assert_eq!(armed.metrics.messages, want.metrics.messages);
        assert_eq!(armed.metrics.bits, want.metrics.bits);
        assert_eq!(armed.metrics.sim.suspicions, 0);
        assert_eq!(armed.metrics.sim.false_suspicions, 0);
        let unarmed = run_flood(&g, ExecutorKind::faulty(), 10);
        assert!(
            armed.metrics.sim.ctrl_frames >= unarmed.metrics.sim.ctrl_frames,
            "keepalives only add control traffic"
        );
    }

    /// Crashes under lossy transport stay deterministic: same plan,
    /// same typed abort, byte for byte.
    #[test]
    fn lossy_crash_detection_is_deterministic() {
        let g = graphs::generators::torus2d(4, 4).unwrap();
        let plan = FaultPlan::with_drop(50, 77).delayed(2).with_crash(5, 3);
        let run_one = |p: FaultPlan| {
            let cfg = NetworkConfig::default().with_fault_plan(p);
            let mut net = Network::new(&g, cfg).unwrap();
            net.run("flood", &MinFlood { ttl: 12 }, vec![(); 16])
                .unwrap_err()
        };
        let a = run_one(plan.clone());
        let b = run_one(plan);
        assert!(
            matches!(&a, CongestError::NodeSuspected { node, .. } if node.raw() == 5),
            "got {a:?}"
        );
        assert_eq!(a, b);
    }
}
