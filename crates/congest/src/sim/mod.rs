//! `congest::sim` — the asynchronous, faulty network simulation layer.
//!
//! The rest of this crate models the clean synchronous CONGEST model.
//! This module runs the *same algorithms, unmodified* over a network
//! whose links lose, duplicate, delay, and reorder messages:
//!
//! * [`FaultPlan`] is the seeded, deterministic adversary — per-frame
//!   drop/duplication probabilities (integer ‰), a bounded delay window
//!   (which induces in-window reordering), the synchronizer's
//!   retransmission timeout and budget, and a schedule of fail-stop
//!   [`CrashEvent`]s (single nodes or correlated groups, with optional
//!   rejoin rounds honored at phase boundaries);
//! * [`FaultyExecutor`] is a third [`crate::executor::RoundExecutor`]
//!   (select it with [`crate::ExecutorKind::Faulty`]) that layers an
//!   **α-synchronizer** — per-message acks, stop-and-wait
//!   retransmission, safe-round detection — over the adversarial
//!   transport, so node code still observes globally synchronous rounds
//!   and produces outputs bit-identical to the fault-free executors.
//!
//! When the plan schedules crashes, the executor arms a timeout-based
//! **failure detector**: a channel silent for the plan's full suspicion
//! window ([`FaultPlan::suspect_after`] physical ticks) marks its
//! sender *suspected*. Suspicion is advisory and revocable (eventually
//! accurate, never permanently wrong about a live node); what happens
//! on the first suspicion is the plan's [`SuspicionPolicy`] — abort
//! with a typed [`crate::CongestError::NodeSuspected`] (default; a
//! recovery driver catches it and re-runs on the surviving component),
//! or continue and let the algorithm read the suspected set off
//! [`crate::NodeCtx::suspects`] (how
//! [`crate::primitives::failure_detector`] works).
//!
//! The cost of asynchrony is measured, not hidden: the transport's
//! ticks, frames, retransmissions, drops, and duplicates land in
//! [`crate::metrics::SimPhaseStats`] (`PhaseMetrics::sim`), and
//! `sim.phys_rounds / rounds` is the synchronizer's round-overhead
//! factor — a first-class quantity in the bench trajectory and the CI
//! overhead gate. See `docs/sim.md` for the protocol, its correctness
//! argument, and measured overheads.
//!
//! ```
//! use congest::sim::FaultPlan;
//! use congest::{ExecutorKind, Network, NetworkConfig};
//! use congest::primitives::leader_bfs::LeaderBfs;
//!
//! # fn main() -> Result<(), congest::CongestError> {
//! let g = graphs::generators::cycle(8).expect("valid cycle");
//! // 10% drops, delay window 2, fixed seed: deterministic faults.
//! let plan = FaultPlan::with_drop(100, 42).delayed(2);
//! let cfg = NetworkConfig::default().with_executor(ExecutorKind::Faulty(plan));
//! let mut net = Network::new(&g, cfg)?;
//! let out = net.run("leader_bfs", &LeaderBfs::new(), vec![(); 8])?;
//! assert_eq!(out.outputs[0].leader.raw(), 0); // same winner as fault-free
//! assert!(out.metrics.sim.phys_rounds >= out.metrics.rounds);
//! # Ok(())
//! # }
//! ```

mod executor;
mod plan;

pub use executor::FaultyExecutor;
pub use plan::{CrashEvent, FaultPlan, PartitionEvent, SuspicionPolicy, DEFAULT_SUSPECT_PATIENCE};
