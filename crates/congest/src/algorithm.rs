//! The [`Algorithm`] trait: what one phase of node code looks like.

use crate::message::Message;
use crate::node::{NodeCtx, Port};

/// Messages a node emits in one round: at most one per port.
#[derive(Clone, Debug)]
pub struct Outbox<M> {
    pub(crate) msgs: Vec<(Port, M)>,
}

impl<M: Message> Outbox<M> {
    /// An empty outbox (sends nothing this round).
    pub fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Queues `msg` on `port`. The engine rejects two sends on the same port
    /// in the same round.
    pub fn send(&mut self, port: Port, msg: M) -> &mut Self {
        self.msgs.push((port, msg));
        self
    }

    /// Queues `msg` on every port in `ports`.
    pub fn send_all<I: IntoIterator<Item = Port>>(&mut self, ports: I, msg: M) -> &mut Self {
        for p in ports {
            self.msgs.push((p, msg.clone()));
        }
        self
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

impl<M: Message> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// A protocol violation detected by node code: the phase ended in a state
/// the algorithm's contract forbids (e.g. a broadcast that never reached
/// this node). Returned from [`Algorithm::finish`]; the engine maps it to
/// [`crate::CongestError::Protocol`] with the phase and node filled in, so
/// a misbehaving algorithm surfaces as an error instead of aborting the
/// whole simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// What went wrong, in the algorithm's own words.
    pub reason: String,
}

impl ProtocolViolation {
    /// Creates a violation with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        ProtocolViolation {
            reason: reason.into(),
        }
    }
}

/// What [`Algorithm::finish`] returns: the node's output, or a
/// [`ProtocolViolation`] the engine turns into a typed error.
pub type FinishResult<O> = Result<O, ProtocolViolation>;

/// A node's decision at the end of a round.
#[derive(Clone, Debug)]
pub enum Step<M> {
    /// Keep participating; send the queued messages.
    Continue(Outbox<M>),
    /// Send the queued messages, then stop: the engine will not call this
    /// node again, and (in strict mode) it is an error for anyone to message
    /// it afterwards.
    Halt(Outbox<M>),
}

impl<M: Message> Step<M> {
    /// A `Continue` with an empty outbox (idle round).
    pub fn idle() -> Self {
        Step::Continue(Outbox::new())
    }

    /// A `Halt` with an empty outbox.
    pub fn halt() -> Self {
        Step::Halt(Outbox::new())
    }
}

/// One phase of a distributed algorithm in the CONGEST model.
///
/// The engine instantiates per-node state via [`Algorithm::boot`] (from a
/// per-node input, modelling local knowledge carried over from earlier
/// phases), then calls [`Algorithm::round`] once per round per live node
/// with that node's inbox, and finally [`Algorithm::finish`] to extract the
/// per-node output.
///
/// Node code receives only `&mut` its own state, the local [`NodeCtx`], and
/// its inbox — it cannot observe the graph or other nodes, which is what
/// makes simulated round counts meaningful.
///
/// The `Sync` supertrait and the `Send` bounds on `Input` and `State`
/// exist for the parallel round executor: the algorithm is shared by
/// reference across worker threads, and a node's input/state may be
/// booted, stepped, and finished on different threads (never
/// concurrently — the engine hands each node to exactly one worker per
/// round). Plain-data algorithms satisfy them automatically.
pub trait Algorithm: Sync {
    /// Per-node input (local knowledge from previous phases).
    type Input: Send;
    /// Per-node mutable state.
    type State: Send;
    /// Message type for this phase.
    type Msg: Message;
    /// Per-node output.
    type Output;

    /// Initializes a node and returns the messages it sends in round 1.
    fn boot(&self, ctx: &NodeCtx<'_>, input: Self::Input) -> (Self::State, Outbox<Self::Msg>);

    /// Executes one round at one node: consume the inbox (pairs of arrival
    /// port and message, sorted by port), update state, emit messages.
    fn round(
        &self,
        state: &mut Self::State,
        ctx: &NodeCtx<'_>,
        inbox: &[(Port, Self::Msg)],
    ) -> Step<Self::Msg>;

    /// Extracts the node's output after it halted, or reports a
    /// [`ProtocolViolation`] if the phase ended in a state the
    /// algorithm's contract forbids.
    fn finish(&self, state: Self::State, ctx: &NodeCtx<'_>) -> FinishResult<Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_messages() {
        let mut o: Outbox<u64> = Outbox::new();
        assert!(o.is_empty());
        o.send(Port(0), 5).send(Port(2), 6);
        o.send_all([Port(1), Port(3)], 7);
        assert_eq!(o.len(), 4);
        assert!(!o.is_empty());
    }

    #[test]
    fn step_helpers() {
        let s: Step<u64> = Step::idle();
        assert!(matches!(s, Step::Continue(o) if o.is_empty()));
        let h: Step<u64> = Step::halt();
        assert!(matches!(h, Step::Halt(o) if o.is_empty()));
    }
}
