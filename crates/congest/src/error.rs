//! Errors reported by the simulation engine.

use crate::node::Port;
use graphs::NodeId;
use std::error::Error;
use std::fmt;

/// Errors from [`crate::Network::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestError {
    /// A message exceeded the per-edge bandwidth budget (strict mode).
    BandwidthExceeded {
        /// Phase in which it happened.
        phase: String,
        /// Sending node.
        node: NodeId,
        /// Port it was sent on.
        port: Port,
        /// The message's size in bits.
        bits: usize,
        /// The budget it exceeded.
        budget: usize,
        /// Round number.
        round: u64,
    },
    /// A node queued two messages on the same port in one round.
    DoubleSend {
        /// Phase in which it happened.
        phase: String,
        /// Sending node.
        node: NodeId,
        /// The port used twice.
        port: Port,
        /// Round number.
        round: u64,
    },
    /// A node addressed a port it does not have.
    InvalidPort {
        /// Phase in which it happened.
        phase: String,
        /// Sending node.
        node: NodeId,
        /// The bogus port.
        port: Port,
        /// The node's degree.
        degree: usize,
    },
    /// A message arrived at a node that had already halted (strict mode).
    MessageToHalted {
        /// Phase in which it happened.
        phase: String,
        /// The halted recipient.
        node: NodeId,
        /// Round number.
        round: u64,
    },
    /// The phase exceeded the round cap — almost certainly a livelock.
    MaxRoundsExceeded {
        /// Phase in which it happened.
        phase: String,
        /// The cap that was hit.
        cap: u64,
    },
    /// `inputs.len()` did not match the node count.
    WrongInputCount {
        /// Phase name.
        phase: String,
        /// Inputs provided.
        got: usize,
        /// Nodes in the network.
        want: usize,
    },
    /// The input graph's adjacency is not symmetric: `node` lists
    /// `neighbor`, but not vice versa. Raised by [`crate::Network::new`]
    /// on malformed topologies instead of panicking.
    AsymmetricAdjacency {
        /// The node whose adjacency entry has no reverse.
        node: NodeId,
        /// The neighbor that does not list `node` back.
        neighbor: NodeId,
    },
    /// The α-synchronizer of the faulty executor gave up on a channel:
    /// a payload (or a safety announcement) was transmitted
    /// `attempts` times without acknowledgement — the adversary's drop
    /// rate exceeded the retransmission budget of the
    /// [`crate::sim::FaultPlan`].
    RetransmitExhausted {
        /// Phase in which it happened.
        phase: String,
        /// The sending node whose channel starved.
        node: NodeId,
        /// The destination node of the starved directed edge (`node` →
        /// `peer`) — with crash schedules in play this names the likely
        /// culprit directly.
        peer: NodeId,
        /// The port of the starved channel (`node`'s local name for the
        /// edge).
        port: Port,
        /// The virtual (algorithm) round the stuck payload belongs to.
        round: u64,
        /// Transmissions attempted before giving up.
        attempts: u32,
    },
    /// The faulty executor's failure detector suspected a crashed peer
    /// while the plan's policy is
    /// [`crate::sim::SuspicionPolicy::Abort`]: `by` heard nothing from
    /// `node` for the plan's full suspicion window
    /// ([`crate::sim::FaultPlan::suspect_after`] ticks). A recovery
    /// driver catches this, maps the surviving component, and re-runs
    /// there (`mincut::dist::recover`).
    NodeSuspected {
        /// Phase in which the suspicion fired.
        phase: String,
        /// The suspected (presumed crashed) node.
        node: NodeId,
        /// The neighbor whose detector fired.
        by: NodeId,
        /// The session-global virtual round reached when the suspicion
        /// fired (phase base + rounds executed in this phase) — the
        /// clock a recovery driver rebases the crash schedule against.
        round: u64,
    },
    /// Node code reported a protocol violation from
    /// [`crate::Algorithm::finish`] (see
    /// [`crate::algorithm::ProtocolViolation`]).
    Protocol {
        /// Phase in which it happened.
        phase: String,
        /// The node that detected the violation.
        node: NodeId,
        /// The algorithm's description of what went wrong.
        reason: String,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::BandwidthExceeded {
                phase,
                node,
                port,
                bits,
                budget,
                round,
            } => write!(
                f,
                "phase {phase:?} round {round}: node {node} sent {bits} bits on {port}, budget {budget}"
            ),
            CongestError::DoubleSend {
                phase,
                node,
                port,
                round,
            } => write!(
                f,
                "phase {phase:?} round {round}: node {node} sent twice on {port}"
            ),
            CongestError::InvalidPort {
                phase,
                node,
                port,
                degree,
            } => write!(
                f,
                "phase {phase:?}: node {node} used {port} but has degree {degree}"
            ),
            CongestError::MessageToHalted { phase, node, round } => write!(
                f,
                "phase {phase:?} round {round}: message delivered to halted node {node}"
            ),
            CongestError::MaxRoundsExceeded { phase, cap } => {
                write!(f, "phase {phase:?} exceeded {cap} rounds (livelock?)")
            }
            CongestError::WrongInputCount { phase, got, want } => {
                write!(f, "phase {phase:?}: {got} inputs for {want} nodes")
            }
            CongestError::AsymmetricAdjacency { node, neighbor } => write!(
                f,
                "malformed graph: node {node} lists neighbor {neighbor}, but not vice versa"
            ),
            CongestError::RetransmitExhausted {
                phase,
                node,
                peer,
                port,
                round,
                attempts,
            } => write!(
                f,
                "phase {phase:?} round {round}: node {node} gave up on {port} toward node {peer} after {attempts} transmissions (retransmission budget exhausted)"
            ),
            CongestError::NodeSuspected {
                phase,
                node,
                by,
                round,
            } => write!(
                f,
                "phase {phase:?} round {round}: node {by} suspects node {node} of having crashed (silent for the full suspicion window)"
            ),
            CongestError::Protocol {
                phase,
                node,
                reason,
            } => write!(f, "phase {phase:?}: protocol violation at node {node}: {reason}"),
        }
    }
}

impl Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CongestError::BandwidthExceeded {
            phase: "mst".into(),
            node: NodeId::new(3),
            port: Port(1),
            bits: 99,
            budget: 80,
            round: 7,
        };
        let s = e.to_string();
        assert!(s.contains("mst") && s.contains("99") && s.contains("80"));
    }
}
