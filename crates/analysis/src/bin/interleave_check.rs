//! `interleave_check` — the executor-protocol interleaving model checker.
//!
//! Usage: `cargo run --release -p mincut-analysis --bin interleave_check`
//!
//! Runs every scenario in `mincut_analysis::mc`, exhaustively exploring
//! thread interleavings of the extracted executor protocol
//! (`congest::executor::protocol`) and asserting the disjointness
//! contract. One scenario is a deliberate falsification (a cross-sender
//! slot race that the real executor's sender-unique slot mapping makes
//! impossible) — its counterexamples are the expected output, proving
//! the checker can actually see the bug class.
//!
//! Any violated invariant panics, so a non-zero exit is a failure.

use mincut_analysis::mc::run_all_scenarios;

fn main() {
    println!("interleave_check: exhaustive executor-protocol interleaving exploration");
    let reports = run_all_scenarios();
    let mut executions = 0u64;
    let mut steps = 0u64;
    for r in &reports {
        println!("  {r}");
        executions += r.executions;
        steps += r.steps;
    }
    println!(
        "interleave_check: {} scenario(s) passed, {executions} interleavings, {steps} steps",
        reports.len()
    );
}
