//! `congest_lint` — the workspace invariant linter.
//!
//! Usage: `cargo run -p mincut-analysis --bin congest_lint [-- --root DIR]`
//!
//! Without `--root`, the workspace root is discovered by walking up from
//! the current directory to the first `Cargo.toml` declaring
//! `[workspace]`. Exit status is 0 when clean, 1 when any violation is
//! found (each printed as `file:line: [rule] message`), 2 on usage or
//! I/O errors.

use mincut_analysis::lint::lint_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("congest_lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: congest_lint [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("congest_lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(discover_root) {
        Some(r) => r,
        None => {
            eprintln!("congest_lint: no workspace root found (try --root DIR)");
            return ExitCode::from(2);
        }
    };
    if !root.join("Cargo.toml").is_file() {
        eprintln!("congest_lint: {} has no Cargo.toml", root.display());
        return ExitCode::from(2);
    }

    let violations = match lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("congest_lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if violations.is_empty() {
        println!("congest_lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("congest_lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
